"""Shared fixtures for the test suite.

The session-scoped ``testbed`` provisions one CA and a handful of devices;
tests needing isolated randomness build their own contexts from it (each
``context()`` call draws a fresh DRBG stream).  Protocol transcripts that
many tests inspect are cached per protocol, since transcripts are immutable
once the run completes.
"""

from __future__ import annotations

import pytest

from repro.protocols import TABLE_ORDER, run_protocol
from repro.testbed import make_testbed


@pytest.fixture(scope="session")
def testbed():
    """One provisioned network shared by the whole test session."""
    return make_testbed(("alice", "bob", "carol"), seed=b"pytest-testbed")


@pytest.fixture(scope="session")
def transcripts(testbed):
    """One completed transcript per protocol variant (read-only)."""
    result = {}
    for name in TABLE_ORDER:
        party_a, party_b = testbed.party_pair(name, "alice", "bob")
        result[name] = run_protocol(party_a, party_b)
    return result


@pytest.fixture()
def fresh_testbed():
    """A testbed private to one test (safe to mutate contexts)."""
    return make_testbed(("alice", "bob"), seed=b"pytest-fresh")
