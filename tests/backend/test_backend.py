"""Backend registry semantics: selection, scoping, errors, fallback.

The parity contract itself (same bytes, same trace events) is fuzzed in
``test_parity_fuzz.py``; this module locks down the plumbing — how a
backend is chosen, how scopes nest, and how the accelerated backend
degrades when the optional ``cryptography`` package is absent.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.backend import (
    available_backends,
    get_backend,
    register_backend,
    set_backend,
    use_backend,
)
from repro.backend.accelerated import AcceleratedBackend
from repro.backend.reference import ReferenceBackend
from repro.errors import BackendError, CryptoError, ReproError


#: What this process's default backend should be: the suite also runs
#: in CI with ``REPRO_BACKEND=accelerated`` exported (the backend-matrix
#: lane), where the ambient default is legitimately not the reference.
ENV_DEFAULT = os.environ.get("REPRO_BACKEND", "reference")


@pytest.fixture(autouse=True)
def _restore_default_backend():
    """Every test leaves the process on its configured default."""
    yield
    set_backend(ENV_DEFAULT)


class TestRegistry:
    def test_default_follows_environment(self):
        assert get_backend().name == ENV_DEFAULT
        if ENV_DEFAULT == "reference":
            assert isinstance(get_backend(), ReferenceBackend)

    def test_reference_is_the_fallback_without_env(self):
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.backend import get_backend;"
                "print(get_backend().name)",
            ],
            env={
                **{k: v for k, v in os.environ.items()
                   if k != "REPRO_BACKEND"},
                "PYTHONPATH": "src",
            },
            capture_output=True,
            text=True,
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == "reference"

    def test_available_backends_names_both_builtins(self):
        assert set(available_backends()) >= {"reference", "accelerated"}

    def test_instances_are_cached(self):
        assert get_backend() is get_backend()
        with use_backend("accelerated") as first:
            pass
        with use_backend("accelerated") as second:
            pass
        assert first is second

    def test_set_backend_switches_process_default(self):
        backend = set_backend("accelerated")
        assert isinstance(backend, AcceleratedBackend)
        assert get_backend() is backend

    def test_unknown_backend_is_actionable_and_catchable(self):
        with pytest.raises(BackendError, match="turbo.*accelerated"):
            set_backend("turbo")
        with pytest.raises(ReproError):
            set_backend("turbo")
        # A failed switch must not corrupt the current selection.
        assert get_backend().name == ENV_DEFAULT

    def test_register_backend_rejects_builtin_names_and_junk(self):
        with pytest.raises(BackendError, match="built-in"):
            register_backend("reference", ReferenceBackend)
        with pytest.raises(BackendError, match="non-empty"):
            register_backend("", ReferenceBackend)
        with pytest.raises(BackendError, match="callable"):
            register_backend("probe", ReferenceBackend())

    def test_register_custom_backend_roundtrip(self):
        class Custom(ReferenceBackend):
            """Registry-extension probe."""

            name = "custom-probe"

        register_backend("custom-probe", Custom)
        try:
            with use_backend("custom-probe") as backend:
                assert backend.name == "custom-probe"
                assert get_backend() is backend
        finally:
            from repro.backend import _FACTORIES, _INSTANCES

            _FACTORIES.pop("custom-probe", None)
            _INSTANCES.pop("custom-probe", None)


class TestScoping:
    def test_use_backend_scopes_and_restores(self):
        set_backend("reference")  # pin: scoping is default-independent
        with use_backend("accelerated"):
            assert get_backend().name == "accelerated"
            with use_backend("reference"):
                assert get_backend().name == "reference"
            assert get_backend().name == "accelerated"
        assert get_backend().name == "reference"

    def test_use_backend_none_is_a_no_op_scope(self):
        with use_backend(None) as backend:
            assert backend is get_backend()
        set_backend("accelerated")
        with use_backend(None) as backend:
            assert backend.name == "accelerated"

    def test_scoped_override_wins_over_set_backend(self):
        with use_backend("accelerated"):
            set_backend("reference")
            assert get_backend().name == "accelerated"
        assert get_backend().name == "reference"

    def test_restores_even_on_exception(self):
        set_backend("reference")
        with pytest.raises(RuntimeError):
            with use_backend("accelerated"):
                raise RuntimeError("boom")
        assert get_backend().name == "reference"


class TestEnvSelection:
    def test_repro_backend_env_selects_the_default(self):
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.backend import get_backend;"
                "print(get_backend().name)",
            ],
            env={**os.environ, "REPRO_BACKEND": "accelerated",
                 "PYTHONPATH": "src"},
            capture_output=True,
            text=True,
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == "accelerated"

    def test_bogus_env_value_fails_loudly_on_first_use(self):
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.primitives import sha256; sha256(b'x')",
            ],
            env={**os.environ, "REPRO_BACKEND": "warp-drive",
                 "PYTHONPATH": "src"},
            capture_output=True,
            text=True,
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        )
        assert out.returncode != 0
        assert "warp-drive" in out.stderr
        assert "REPRO_BACKEND" in out.stderr


class TestAcceleratedSurface:
    def test_describe_names_the_implementations(self):
        with use_backend("accelerated") as backend:
            described = backend.describe()
        assert described["name"] == "accelerated"
        assert "hashlib" in described["sha2"]

    def test_unknown_hash_names_raise_crypto_errors(self):
        with use_backend("accelerated") as backend:
            with pytest.raises(CryptoError, match="unknown hash"):
                backend.create_hash("md5")
            with pytest.raises(CryptoError, match="unknown hash"):
                backend.hash_digest("md5", b"")
            with pytest.raises(CryptoError, match="unknown hash"):
                backend.hmac_digest(b"k", b"m", "md5")

    def test_bad_aes_keys_and_blocks_match_reference_errors(self):
        with use_backend("accelerated") as backend:
            with pytest.raises(CryptoError, match="16/24/32"):
                backend.create_cipher(b"short")
            cipher = backend.create_cipher(b"k" * 16)
            with pytest.raises(CryptoError, match="16 bytes"):
                cipher.encrypt_block(b"tiny")

    def test_streaming_hash_rejects_text_like_reference(self):
        with use_backend("accelerated") as backend:
            with pytest.raises(CryptoError, match="bytes-like"):
                backend.create_hash("sha256").update("text")

    def test_aes_fallback_when_cryptography_is_missing(self, monkeypatch):
        """Hashes stay accelerated; AES degrades to the reference class."""
        from repro.primitives.aes import Aes

        backend = AcceleratedBackend()
        monkeypatch.setattr(backend, "aes_accelerated", False)
        cipher = backend.create_cipher(b"0123456789abcdef")
        assert isinstance(cipher, Aes)
        assert "fallback" in backend.describe()["aes"]
        # And the cipher still satisfies the bulk protocol used by modes.
        assert cipher.encrypt_ecb(b"p" * 16) != b"p" * 16


class TestEcSurface:
    def test_describe_includes_the_ec_layer(self):
        with use_backend("reference") as backend:
            assert "Jacobian" in backend.describe()["ec"]
        with use_backend("accelerated") as backend:
            description = backend.describe()["ec"]
        # Either tier names itself honestly.
        assert "cryptography" in description or "fallback" in description

    def test_base_class_defaults_are_the_reference_path(self):
        # A custom backend that implements nothing EC-specific inherits
        # bit-exact reference behaviour from CryptoBackend's defaults.
        from repro.backend import CryptoBackend
        from repro.ec import SECP256R1, mul_base, mul_point

        defaults = CryptoBackend()
        with use_backend("reference"):
            k = 0xDECAFBAD % SECP256R1.n
            assert defaults.ec_mul_base(SECP256R1, k) == mul_base(k, SECP256R1)
            g = SECP256R1.generator
            assert defaults.ec_mul(SECP256R1, k, g) == mul_point(k, g)

    def test_ec_fallback_for_unknown_curves(self):
        # A curve object that is NOT the canonical registry entry (here:
        # a structurally equal copy is canonical, so use a fresh Curve
        # with a bogus name) must never reach OpenSSL; the wide-comb
        # fallback still matches the reference bit for bit.
        import dataclasses

        from repro.backend.ec_accelerated import AcceleratedEc
        from repro.ec import SECP256R1, mul_base

        rogue = dataclasses.replace(SECP256R1, name="not-a-registry-curve")
        engine = AcceleratedEc()
        assert engine._curve_impl(rogue) is None
        got = engine.mul_base(rogue, 12345)
        want = mul_base(12345, SECP256R1)
        assert (got.x, got.y) == (want.x, want.y)

    def test_ec_fallback_when_cryptography_is_missing(self, monkeypatch):
        import repro.backend.ec_accelerated as ec_mod
        from repro.ec import SECP256R1, mul_base, mul_point

        monkeypatch.setattr(ec_mod, "OPENSSL_EC", False)
        engine = ec_mod.AcceleratedEc()
        assert engine._curve_impl(SECP256R1) is None
        assert "fallback" in engine.describe()
        k = 0xFEEDFACE % SECP256R1.n
        assert engine.mul_base(SECP256R1, k) == mul_base(k, SECP256R1)
        g = SECP256R1.generator
        assert engine.mul(SECP256R1, k, g) == mul_point(k, g)

    def test_openssl_tier_active_in_this_environment(self):
        # The container ships `cryptography`, so the accelerated backend
        # must actually be offloading EC here — guards against silently
        # testing only the fallback tier.
        from repro.backend.ec_accelerated import OPENSSL_EC

        assert OPENSSL_EC
        backend = AcceleratedBackend()
        assert backend.ec_accelerated
