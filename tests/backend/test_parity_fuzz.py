"""Hypothesis cross-backend parity fuzz: same bytes, same trace events.

Every property here computes one primitive twice — once under the
``reference`` backend, once under ``accelerated`` — over random keys,
lengths and chunkings, and asserts that **both** the output bytes and
the recorded :mod:`repro.trace` event counts are identical.  This is the
contract that makes backend selection invisible to hardware pricing,
energy accounting and every golden fleet digest.

SHA-2 streaming is fuzzed with random ``update()`` split points and
``copy()`` forks because the accelerated backend counts compressed
blocks analytically per call boundary — exactly the places where an
off-by-one in buffered-byte accounting would hide.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import trace
from repro.backend import use_backend
from repro.primitives import (
    Hmac,
    HmacDrbg,
    cbc_decrypt,
    cbc_encrypt,
    cmac,
    ctr_crypt,
    ecb_decrypt,
    ecb_encrypt,
    hkdf,
    hmac,
    new_hash,
    x963_kdf,
)
from repro.primitives.drbg import rfc6979_nonce

BACKENDS = ("reference", "accelerated")
HASH_NAMES = ("sha224", "sha256", "sha384", "sha512")

aes_keys = st.binary(min_size=16, max_size=16) | st.binary(
    min_size=24, max_size=24
) | st.binary(min_size=32, max_size=32)
messages = st.binary(min_size=0, max_size=400)
hash_names = st.sampled_from(HASH_NAMES)


def run_on(backend: str, fn):
    """Run ``fn`` under ``backend`` inside a fresh trace scope."""
    with use_backend(backend):
        with trace.trace(backend) as t:
            out = fn()
    return out, t.as_dict()


def assert_parity(fn):
    """``fn``'s bytes and trace counts must not depend on the backend."""
    (ref_out, ref_trace) = run_on("reference", fn)
    (acc_out, acc_trace) = run_on("accelerated", fn)
    assert ref_out == acc_out
    assert ref_trace == acc_trace
    return ref_out


class TestSha2Parity:
    @settings(max_examples=40, deadline=None)
    @given(name=hash_names, message=st.binary(max_size=700))
    def test_one_shot_digest(self, name, message):
        from repro.primitives import sha224, sha256, sha384, sha512

        one_shot = {"sha224": sha224, "sha256": sha256,
                    "sha384": sha384, "sha512": sha512}[name]
        assert_parity(lambda: one_shot(message))

    @settings(max_examples=40, deadline=None)
    @given(
        name=hash_names,
        chunks=st.lists(st.binary(max_size=200), max_size=6),
        fork_point=st.integers(min_value=0, max_value=6),
        tail=st.binary(max_size=70),
    )
    def test_streaming_with_splits_copies_and_redigests(
        self, name, chunks, fork_point, tail
    ):
        def scenario():
            h = new_hash(name)
            fork = None
            for index, chunk in enumerate(chunks):
                if index == fork_point:
                    fork = h.copy()
                h.update(chunk)
            first = h.digest()  # digest() must be repeatable ...
            second = h.digest()  # ... and emit final blocks both times
            forked = b""
            if fork is not None:
                forked = fork.update(tail).digest()
            return first + second + forked + h.hexdigest().encode()

        assert_parity(scenario)

    @settings(max_examples=20, deadline=None)
    @given(name=hash_names, size=st.integers(min_value=0, max_value=300))
    def test_block_boundary_lengths(self, name, size):
        # Exercise exact block/padding boundaries around the fuzzed size.
        sizes = {size, 55, 56, 63, 64, 111, 112, 127, 128}

        def scenario():
            return b"".join(
                new_hash(name, b"\xa5" * s).digest() for s in sorted(sizes)
            )

        assert_parity(scenario)


class TestMacParity:
    @settings(max_examples=40, deadline=None)
    @given(
        key=st.binary(min_size=0, max_size=200),
        message=messages,
        name=hash_names,
    )
    def test_hmac_one_shot_including_long_keys(self, key, message, name):
        assert_parity(lambda: hmac(key, message, name))

    @settings(max_examples=25, deadline=None)
    @given(
        key=st.binary(min_size=1, max_size=150),
        chunks=st.lists(st.binary(max_size=120), max_size=5),
        name=hash_names,
    )
    def test_hmac_streaming_matches_one_shot(self, key, chunks, name):
        def scenario():
            mac = Hmac(key, name)
            for chunk in chunks:
                mac.update(chunk)
            streamed = mac.digest()
            assert streamed == hmac(key, b"".join(chunks), name)
            return streamed

        assert_parity(scenario)

    @settings(max_examples=40, deadline=None)
    @given(
        key=aes_keys,
        message=messages,
        tag_length=st.integers(min_value=1, max_value=16),
    )
    def test_cmac(self, key, message, tag_length):
        assert_parity(lambda: cmac(key, message, tag_length))


class TestKdfParity:
    @settings(max_examples=30, deadline=None)
    @given(
        ikm=st.binary(min_size=1, max_size=80),
        salt=st.binary(max_size=80),
        info=st.binary(max_size=40),
        length=st.integers(min_value=1, max_value=150),
        name=hash_names,
    )
    def test_hkdf(self, ikm, salt, info, length, name):
        assert_parity(lambda: hkdf(ikm, salt, info, length, name))

    @settings(max_examples=30, deadline=None)
    @given(
        secret=st.binary(min_size=1, max_size=66),
        shared=st.binary(max_size=40),
        length=st.integers(min_value=1, max_value=150),
        name=hash_names,
    )
    def test_x963(self, secret, shared, length, name):
        assert_parity(lambda: x963_kdf(secret, shared, length, name))


class TestDrbgParity:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.binary(min_size=1, max_size=48),
        personalization=st.binary(max_size=32),
        additional=st.binary(max_size=32),
        sizes=st.lists(
            st.integers(min_value=0, max_value=120), min_size=1, max_size=4
        ),
        name=hash_names,
    )
    def test_generate_stream_and_scalars(
        self, seed, personalization, additional, sizes, name
    ):
        def scenario():
            drbg = HmacDrbg(seed, personalization, name)
            out = b"".join(drbg.generate(n, additional) for n in sizes)
            drbg.reseed(b"entropy", additional)
            out += drbg.generate(33)
            out += str(drbg.random_scalar(2**255 - 19)).encode()
            return out

        assert_parity(scenario)

    @settings(max_examples=25, deadline=None)
    @given(
        private_key=st.integers(min_value=1, max_value=2**256 - 190),
        message_hash=st.binary(min_size=32, max_size=32),
        extra=st.binary(max_size=16),
        name=hash_names,
    )
    def test_rfc6979_nonces(self, private_key, message_hash, extra, name):
        order = 2**256 - 189

        def scenario():
            nonce = rfc6979_nonce(
                private_key, message_hash, order, name, extra
            )
            assert 1 <= nonce < order
            return str(nonce).encode()

        assert_parity(scenario)


class TestAesParity:
    @settings(max_examples=40, deadline=None)
    @given(
        key=aes_keys,
        n_blocks=st.integers(min_value=1, max_value=8),
        filler=st.binary(min_size=16, max_size=16),
    )
    def test_ecb_roundtrip(self, key, n_blocks, filler):
        plaintext = (filler * n_blocks)[: 16 * n_blocks]

        def scenario():
            ciphertext = ecb_encrypt(key, plaintext)
            assert ecb_decrypt(key, ciphertext) == plaintext
            return ciphertext

        assert_parity(scenario)

    @settings(max_examples=40, deadline=None)
    @given(
        key=aes_keys,
        iv=st.binary(min_size=16, max_size=16),
        message=st.binary(max_size=200),
    )
    def test_cbc_roundtrip_with_padding(self, key, iv, message):
        def scenario():
            ciphertext = cbc_encrypt(key, iv, message)
            assert cbc_decrypt(key, iv, ciphertext) == message
            return ciphertext

        assert_parity(scenario)

    @settings(max_examples=40, deadline=None)
    @given(
        key=aes_keys,
        nonce=st.binary(min_size=16, max_size=16),
        message=st.binary(max_size=200),
    )
    def test_ctr_roundtrip(self, key, nonce, message):
        def scenario():
            ciphertext = ctr_crypt(key, nonce, message)
            assert ctr_crypt(key, nonce, ciphertext) == message
            return ciphertext

        assert_parity(scenario)

    @settings(max_examples=10, deadline=None)
    @given(key=aes_keys, message=st.binary(max_size=80))
    def test_ctr_counter_wraparound(self, key, message):
        # A nonce at the very top of the counter space must wrap mod
        # 2^128 identically in pure Python and OpenSSL.
        nonce = b"\xff" * 16
        assert_parity(lambda: ctr_crypt(key, nonce, message))

    @settings(max_examples=25, deadline=None)
    @given(key=aes_keys, block=st.binary(min_size=16, max_size=16))
    def test_single_block_primitives(self, key, block):
        from repro.backend import get_backend

        def scenario():
            cipher = get_backend().create_cipher(key)
            ciphertext = cipher.encrypt_block(block)
            assert cipher.decrypt_block(ciphertext) == block
            return ciphertext

        assert_parity(scenario)


# -- elliptic-curve parity ---------------------------------------------------
#
# The EC seam promises the same contract as the primitives: identical
# point bytes AND identical ec.mul_* trace counts under both backends.
# Edge scalars straddle every special case of the accelerated paths —
# k == 1 / k == n-1 short-circuits, the k+1 ECDH companion scalar of the
# Okeya-Sakurai y-recovery, and the k % n == 0 degeneracy the *callers*
# must collapse before any backend sees it.

import pytest  # noqa: E402  (section-local: the EC tests parametrize)

from repro.ec import CURVES, encode_point, mul_base, mul_double, mul_point  # noqa: E402
from repro.ecdsa import Signature, sign, verify, verify_batch  # noqa: E402


def _edge_scalars(curve):
    n = curve.n
    return [1, 2, n - 2, n - 1, n, n + 1]


class TestEcParity:
    @pytest.mark.parametrize("curve_name", sorted(CURVES))
    def test_edge_scalars_mul_base_and_mul(self, curve_name):
        curve = CURVES[curve_name]
        g = curve.generator

        def scenario():
            out = b""
            for k in _edge_scalars(curve):
                out += encode_point(mul_base(k, curve))
                out += encode_point(mul_point(k, g))
            return out

        assert_parity(scenario)

    @pytest.mark.parametrize("curve_name", sorted(CURVES))
    def test_edge_scalars_on_arbitrary_point(self, curve_name):
        # Arbitrary (non-generator) points take the ECDH + y-recovery
        # path under OpenSSL rather than the derive_private_key one.
        curve = CURVES[curve_name]

        def scenario():
            q = mul_base(0xB0A710AD % curve.n, curve)
            out = b""
            for k in _edge_scalars(curve):
                out += encode_point(mul_point(k, q), compressed=False)
                out += encode_point(mul_double(k, curve.generator, k, q))
            return out

        assert_parity(scenario)

    @settings(max_examples=8, deadline=None)
    @given(
        curve_name=st.sampled_from(sorted(CURVES)),
        seed=st.integers(min_value=1, max_value=2**64),
    )
    def test_random_scalars_fuzz(self, curve_name, seed):
        curve = CURVES[curve_name]
        k = seed * 0x9E3779B97F4A7C15 % curve.n or 1

        def scenario():
            q = mul_point(k, curve.generator)
            return encode_point(q) + encode_point(
                mul_double(k, curve.generator, curve.n - k, q)
            )

        assert_parity(scenario)

    def test_verify_batch_with_edge_private_keys(self):
        curve = CURVES["secp256r1"]
        n = curve.n
        keys = [1, 2, n - 2, n - 1]

        def scenario():
            items = []
            for index, d in enumerate(keys):
                message = b"edge-key %d" % index
                signature = sign(curve, d, message)
                public = mul_base(d, curve)
                assert verify(public, message, signature)
                items.append((public, message, signature))
            # One deliberately corrupted item: parity must hold for the
            # False lane too (it skips the double multiplication).
            bad_sig = Signature(curve, items[0][2].r, (items[0][2].s + 1) % n or 1)
            items.append((items[0][0], items[0][1], bad_sig))
            results = verify_batch(items)
            assert results == [True, True, True, True, False]
            return b"".join(
                sig.to_bytes() for _, _, sig in items
            ) + bytes(results)

        assert_parity(scenario)
