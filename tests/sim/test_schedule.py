"""Tests for the STS optimization schedules (paper Eqs. 5-8)."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.hardware import S32K144, STM32F767
from repro.sim import (
    OpTimes,
    op_times_for,
    optimized_total_ms,
    protocol_total_ms,
    schedule_savings_ms,
    sequential_total_ms,
)

A = OpTimes(op1=10.0, op2=20.0, op3=12.0, op4=14.0, sym=1.0)
B = OpTimes(op1=10.0, op2=20.0, op3=12.0, op4=14.0, sym=1.0)
SLOW_B = OpTimes(op1=30.0, op2=60.0, op3=36.0, op4=42.0, sym=3.0)


class TestFormulas:
    def test_eq5_sequential(self):
        assert sequential_total_ms(A, B) == pytest.approx(2 * 57.0)

    def test_eq7_opt1_identical_devices(self):
        # τ' = 2·Op1 + Op2 + 2·Op3 + 2·Op4 (+ sym both sides).
        expected = 2 * 10 + 20 + 2 * 12 + 2 * 14 + 2 * 1
        assert optimized_total_ms(A, B, "opt1") == pytest.approx(expected)

    def test_eq8_opt2_identical_devices(self):
        expected = 2 * 10 + 20 + 12 + 2 * 14 + 2 * 1
        assert optimized_total_ms(A, B, "opt2") == pytest.approx(expected)

    def test_eq6_asymmetric_devices(self):
        # The overlapped op saves min(A_x, B_x): the pair pays max(A, B),
        # i.e. the residual |A_x − B_x| beyond the smaller side.
        seq = sequential_total_ms(A, SLOW_B)
        opt1 = optimized_total_ms(A, SLOW_B, "opt1")
        assert seq - opt1 == pytest.approx(min(A.op2, SLOW_B.op2))
        opt2 = optimized_total_ms(A, SLOW_B, "opt2")
        assert seq - opt2 == pytest.approx(
            min(A.op2, SLOW_B.op2) + min(A.op3, SLOW_B.op3)
        )

    def test_sequential_schedule_is_identity(self):
        assert optimized_total_ms(A, B, "sequential") == sequential_total_ms(A, B)

    def test_unknown_schedule(self):
        with pytest.raises(SimulationError):
            optimized_total_ms(A, B, "opt9")

    def test_savings_map(self):
        savings = schedule_savings_ms(A, B)
        assert savings["sequential"] == 0.0
        assert savings["opt1"] == pytest.approx(20.0)
        assert savings["opt2"] == pytest.approx(32.0)


class TestOnRealTranscripts:
    def test_ordering_opt2_lt_opt1_lt_seq(self, transcripts):
        tr = transcripts["sts"]
        seq = protocol_total_ms(tr, STM32F767, schedule="sequential")
        opt1 = protocol_total_ms(tr, STM32F767, schedule="opt1")
        opt2 = protocol_total_ms(tr, STM32F767, schedule="opt2")
        assert opt2 < opt1 < seq

    def test_opt2_beats_s_ecdsa(self, transcripts):
        # The paper's crossover claim: optimized STS undercuts static KD.
        opt2 = protocol_total_ms(transcripts["sts"], STM32F767, schedule="opt2")
        s_ecdsa = protocol_total_ms(transcripts["s-ecdsa"], STM32F767)
        assert opt2 < s_ecdsa

    def test_default_schedule_from_party(self, transcripts):
        # sts-opt2 transcripts carry their schedule tag.
        implicit = protocol_total_ms(transcripts["sts-opt2"], STM32F767)
        explicit = protocol_total_ms(
            transcripts["sts-opt2"], STM32F767, schedule="opt2"
        )
        assert implicit == pytest.approx(explicit)

    def test_opt2_within_paper_tolerance(self, transcripts):
        from repro.hardware import PAPER_TABLE1

        modelled = protocol_total_ms(transcripts["sts"], STM32F767, schedule="opt2")
        paper = PAPER_TABLE1["sts-opt2"]["stm32f767"]
        assert abs(modelled / paper - 1) < 0.06

    def test_asymmetric_real_devices(self, transcripts):
        tr = transcripts["sts"]
        a = op_times_for(tr.party_a, S32K144)
        b = op_times_for(tr.party_b, STM32F767)
        seq = sequential_total_ms(a, b)
        opt1 = optimized_total_ms(a, b, "opt1")
        # Mixed pair: saving bounded by the faster device's Op2.
        assert seq - opt1 == pytest.approx(min(a.op2, b.op2))
