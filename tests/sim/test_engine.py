"""Tests for the discrete-event engine and the serially-reusable resource."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import Resource, Simulator


class TestSimulator:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule_at(5.0, lambda: order.append("late"))
        sim.schedule_at(1.0, lambda: order.append("early"))
        sim.schedule_at(3.0, lambda: order.append("middle"))
        sim.run()
        assert order == ["early", "middle", "late"]
        assert sim.now == 5.0

    def test_simultaneous_events_fifo(self):
        sim = Simulator()
        order = []
        for tag in ("first", "second", "third"):
            sim.schedule_at(1.0, lambda t=tag: order.append(t))
        sim.run()
        assert order == ["first", "second", "third"]

    def test_schedule_after(self):
        sim = Simulator()
        times = []
        sim.schedule_after(2.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [2.0]

    def test_cascading_events(self):
        sim = Simulator()
        hits = []

        def step(n):
            hits.append((sim.now, n))
            if n < 3:
                sim.schedule_after(1.0, lambda: step(n + 1))

        sim.schedule_at(0.0, lambda: step(0))
        sim.run()
        assert hits == [(0.0, 0), (1.0, 1), (2.0, 2), (3.0, 3)]

    def test_run_until(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.schedule_at(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        assert sim.pending == 1

    def test_past_scheduling_rejected(self):
        sim = Simulator()
        sim.schedule_at(5.0, lambda: sim.schedule_at(1.0, lambda: None))
        with pytest.raises(SimulationError, match="past"):
            sim.run()

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule_after(-1.0, lambda: None)

    def test_runaway_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule_after(0.1, forever)

        sim.schedule_at(0.0, forever)
        with pytest.raises(SimulationError, match="runaway"):
            sim.run(max_events=100)

    def test_step_and_counters(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        assert sim.step()
        assert not sim.step()
        assert sim.events_processed == 1


class TestResource:
    def test_serial_reservation(self):
        cpu = Resource("cpu")
        s1, e1 = cpu.reserve(0.0, 10.0)
        s2, e2 = cpu.reserve(5.0, 10.0)  # wants 5, must wait until 10
        assert (s1, e1) == (0.0, 10.0)
        assert (s2, e2) == (10.0, 20.0)
        assert cpu.busy_ms == 20.0

    def test_idle_gap(self):
        cpu = Resource("cpu")
        cpu.reserve(0.0, 5.0)
        start, end = cpu.reserve(100.0, 5.0)
        assert (start, end) == (100.0, 105.0)
        assert cpu.intervals == [(0.0, 5.0), (100.0, 105.0)]

    def test_negative_duration_rejected(self):
        with pytest.raises(SimulationError):
            Resource("cpu").reserve(0.0, -1.0)
