"""Tests for the Fig. 7 session timeline reconstruction."""

from __future__ import annotations

import pytest

from repro.hardware import S32K144, STM32F767, pair_time_ms
from repro.network import NetworkStack
from repro.sim import simulate_session_timeline


@pytest.fixture(scope="module")
def sts_timeline(transcripts):
    return simulate_session_timeline(transcripts["sts"], S32K144)


class TestStructure:
    def test_segments_are_contiguous(self, sts_timeline):
        previous_end = 0.0
        for segment in sts_timeline.segments:
            assert segment.start_ms == pytest.approx(previous_end)
            previous_end = segment.end_ms
        assert sts_timeline.total_ms == pytest.approx(previous_end)

    def test_actors(self, sts_timeline):
        actors = {s.actor for s in sts_timeline.segments}
        assert actors == {"BMS", "EVCC", "bus"}

    def test_message_count(self, sts_timeline):
        transfers = [s for s in sts_timeline.segments if s.kind == "transfer"]
        assert len(transfers) == 4  # A1, B1, A2, B2

    def test_compute_matches_pair_time(self, sts_timeline, transcripts):
        assert sts_timeline.compute_ms == pytest.approx(
            pair_time_ms(transcripts["sts"], S32K144)
        )

    def test_transfer_negligible(self, sts_timeline):
        # Paper: CAN-FD transfer time negligible vs crypto processing.
        assert sts_timeline.transfer_ms < 0.01 * sts_timeline.compute_ms
        for segment in sts_timeline.segments:
            if segment.kind == "transfer":
                assert segment.duration_ms < 2.0

    def test_per_device_split(self, sts_timeline):
        per_device = sts_timeline.per_device_ms()
        assert set(per_device) == {"BMS", "EVCC"}
        assert per_device["BMS"] + per_device["EVCC"] == pytest.approx(
            sts_timeline.compute_ms
        )


class TestVariants:
    def test_asymmetric_devices(self, transcripts):
        timeline = simulate_session_timeline(
            transcripts["sts"], S32K144, STM32F767
        )
        per_device = timeline.per_device_ms()
        assert per_device["BMS"] > per_device["EVCC"]  # M4F slower than M7

    def test_custom_stack_accounting(self, transcripts):
        stack = NetworkStack()
        simulate_session_timeline(transcripts["s-ecdsa"], S32K144, stack=stack)
        assert stack.bus.frames_sent > 0
        assert stack.bus.busy_ms > 0

    def test_custom_names(self, transcripts):
        timeline = simulate_session_timeline(
            transcripts["scianc"], S32K144, device_names=("ecu1", "ecu2")
        )
        assert {s.actor for s in timeline.segments} == {"ecu1", "ecu2", "bus"}

    def test_render(self, sts_timeline):
        text = sts_timeline.render()
        assert "STS session timeline" in text
        assert "BMS" in text and "EVCC" in text
        assert "#" in text and "=" in text
