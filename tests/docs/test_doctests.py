"""Executable documentation: the public-API docstring examples run here.

Two guarantees:

1. **Examples can't rot** — every ``>>>`` example in the documented
   modules below is executed by doctest on each test run; a behaviour
   change that invalidates a docstring fails the suite, not a reader.
2. **Examples can't silently disappear** — the named public entry
   points of the fleet/scenario/backend API are required to *have*
   doctest examples, so deleting one is as loud as breaking one.

Examples are written against tiny seeded fleets (2–4 vehicles), so the
whole suite stays in tier-1 time budgets.
"""

from __future__ import annotations

import doctest
import os

import pytest

import repro
import repro.backend
import repro.fleet.orchestrator
import repro.fleet.policy
import repro.fleet.scenario
import repro.fleet.stats
import repro.obs
from repro.backend import set_backend

DOCUMENTED_MODULES = (
    repro,
    repro.backend,
    repro.fleet.orchestrator,
    repro.fleet.policy,
    repro.fleet.scenario,
    repro.fleet.stats,
    repro.obs,
)

#: Public APIs that must carry runnable examples (the docs satellite
#: contract): name -> the object whose docstring is checked.
MUST_HAVE_EXAMPLES = {
    "FleetConfig": repro.fleet.orchestrator.FleetConfig,
    "run_fleet": repro.fleet.orchestrator.run_fleet,
    "Scenario": repro.fleet.scenario.Scenario,
    "get_scenario": repro.fleet.scenario.get_scenario,
    "FleetStats": repro.fleet.stats.FleetStats,
    "repro.backend": repro.backend,
    "repro.fleet.policy": repro.fleet.policy,
    "repro.obs": repro.obs,
}


@pytest.fixture(autouse=True)
def _reference_default():
    """Doctests assume the documented default backend.

    Teardown restores the *environment's* default, not a hardcoded
    reference, so a ``REPRO_BACKEND=accelerated`` suite run keeps its
    ambient backend for every module collected after this one.
    """
    set_backend("reference")
    yield
    set_backend(os.environ.get("REPRO_BACKEND", "reference"))


@pytest.mark.parametrize(
    "module", DOCUMENTED_MODULES, ids=lambda m: m.__name__
)
def test_module_doctests_pass(module):
    failures, attempted = doctest.testmod(
        module,
        verbose=False,
        optionflags=doctest.NORMALIZE_WHITESPACE,
    )
    assert attempted > 0, f"{module.__name__} has no doctest examples"
    assert failures == 0, f"{failures} doctest failure(s) in {module.__name__}"


@pytest.mark.parametrize(
    "name", sorted(MUST_HAVE_EXAMPLES), ids=str
)
def test_required_api_carries_examples(name):
    target = MUST_HAVE_EXAMPLES[name]
    finder = doctest.DocTestFinder(exclude_empty=True)
    examples = [
        example
        for found in finder.find(target, name=name)
        for example in found.examples
    ]
    assert examples, f"{name} lost its runnable docstring examples"
