"""The BENCH_*.json regression gate: matching, thresholds, fail-closed.

The gate itself must be trustworthy: these tests pin its cell-matching
(structural keys, mode-aware baselines, nothing silently dropped), its
threshold semantics (>25 % worse fails, improvements don't, zero
baselines are skipped), and — as an integration check — that the
*committed* artifacts gate cleanly against the committed baselines, which
is the exact invocation CI runs after the smoke jobs.
"""

from __future__ import annotations

import copy
import importlib.util
import json
import os
import subprocess
import sys

import pytest

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_GATE_PATH = os.path.join(_REPO_ROOT, "benchmarks", "regression_gate.py")

_spec = importlib.util.spec_from_file_location("regression_gate", _GATE_PATH)
gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gate)


def _topology_payload(p50=10.0, throughput=100.0, churn_cell=True) -> dict:
    def cell(shards, v2v, churn=False):
        latency = {
            "count": 10,
            "min_ms": 1.0,
            "mean_ms": p50,
            "p50_ms": p50,
            "p95_ms": p50 * 2,
            "p99_ms": p50 * 3,
            "max_ms": p50 * 4,
        }
        return {
            "shards": shards,
            "v2v_fraction": v2v,
            "n_vehicles": 50,
            "churn": churn,
            "host_wall_s": 12.34,  # must never be gated
            "fleet": {
                "throughput_records_per_s": throughput,
                "sessions_per_s": throughput / 2,
                "enrollment_latency": latency,
                "establishment_latency": latency,
                "ca_queue_latency": latency,
            },
        }

    cells = [cell(1, 0.0), cell(2, 0.0), cell(4, 0.0), cell(2, 0.3)]
    if churn_cell:
        cells.append(cell(2, 0.0, churn=True))
    return {"benchmark": "topology", "mode": "quick", "cells": cells}


class TestCellExtraction:
    def test_topology_cells_keyed_structurally(self):
        cells = gate.extract_cells(_topology_payload())
        assert ("topology", "", "", 1, 0.0, 50, False) in cells
        assert ("topology", "", "", 2, 0.0, 50, True) in cells
        # The churn cell and the plain 2-shard cell are distinct keys.
        assert len(cells) == 5

    def test_scenario_cells_keyed_by_name(self):
        payload = _topology_payload()
        payload["benchmark"] = "scenarios"
        for name, cell in zip(("a", "b", "c", "d", "e"), payload["cells"]):
            cell["scenario"] = name
        cells = gate.extract_cells(payload)
        assert ("scenarios", "a", "", 1, 0.0, 50, False) in cells
        assert len(cells) == 5

    def test_policy_cells_keyed_by_bundle(self):
        # The policy-ablation sweep runs one workload shape under many
        # bundles: only the policy slot distinguishes its cells.
        payload = _topology_payload(churn_cell=False)
        payload["benchmark"] = "policies"
        for bundle, cell in zip(("w", "x", "y", "z"), payload["cells"]):
            cell["scenario"] = "policy-ablation"
            cell["policy"] = bundle
            cell.update(shards=2, v2v_fraction=0.0, churn=True)
        cells = gate.extract_cells(payload)
        assert ("policies", "policy-ablation", "x", 2, 0.0, 50, True) in cells
        assert len(cells) == 4

    def test_fleet_payload_is_one_cell(self):
        payload = {
            "benchmark": "fleet_scale",
            "mode": "full",
            "config": {"n_vehicles": 250},
            "fleet": {"throughput_records_per_s": 1.0},
        }
        cells = gate.extract_cells(payload)
        assert list(cells) == [("fleet_scale", "", "", 1, 0.0, 250, False)]

    def test_fleet_scale_sweep_cells_are_extracted(self):
        payload = {
            "benchmark": "fleet_scale",
            "mode": "quick",
            "config": {"n_vehicles": 250},
            "fleet": {"throughput_records_per_s": 1.0},
            "scale": {
                "host_cores": 4,
                "cells": [
                    {
                        "vehicles": 300,
                        "workers": 1,
                        "shards": 4,
                        "wall_s": 9.9,  # host metric, never gated
                        "fleet": {"throughput_records_per_s": 2.0},
                    },
                    {
                        "vehicles": 300,
                        "workers": 2,
                        "shards": 4,
                        "fleet": {"throughput_records_per_s": 2.0},
                    },
                    # A slim pre-gate cell without stats: skipped, not
                    # a crash.
                    {"vehicles": 1_200, "workers": 1, "shards": 4},
                ],
            },
        }
        cells = gate.extract_cells(payload)
        assert ("fleet_scale", "scale-w1", "", 4, 0.0, 300, False) in cells
        assert ("fleet_scale", "scale-w2", "", 4, 0.0, 300, False) in cells
        assert len(cells) == 3  # storm cell + two gateable scale cells

    def test_mode_selects_baseline_file(self):
        quick = {"mode": "quick"}
        full = {"mode": "full"}
        assert gate.baseline_path_for(
            quick, "/b", "BENCH_topology.json"
        ) == "/b/BENCH_topology_quick.json"
        assert gate.baseline_path_for(
            full, "/b", "BENCH_topology.json"
        ) == "/b/BENCH_topology.json"


class TestThresholdSemantics:
    def test_identical_payloads_pass(self):
        cells = gate.extract_cells(_topology_payload())
        report = gate.compare_cells(cells, cells)
        assert report["matched"] == 5
        assert report["regressions"] == []
        assert report["only_in_baseline"] == []
        assert report["only_in_candidate"] == []

    def test_p50_regression_over_threshold_fails(self):
        base = gate.extract_cells(_topology_payload(p50=10.0))
        cand = gate.extract_cells(_topology_payload(p50=13.5))  # +35 %
        report = gate.compare_cells(base, cand)
        assert report["regressions"]
        metrics = {entry["metric"] for entry in report["regressions"]}
        assert "enrollment_latency.p50_ms" in metrics

    def test_throughput_drop_over_threshold_fails(self):
        base = gate.extract_cells(_topology_payload(throughput=100.0))
        cand = gate.extract_cells(_topology_payload(throughput=70.0))
        report = gate.compare_cells(base, cand)
        assert any(
            entry["metric"] == "throughput_records_per_s"
            for entry in report["regressions"]
        )

    def test_within_threshold_drift_passes(self):
        base = gate.extract_cells(_topology_payload(p50=10.0))
        cand = gate.extract_cells(
            _topology_payload(p50=12.0, throughput=85.0)
        )  # +20 % / -15 %
        report = gate.compare_cells(base, cand)
        assert report["regressions"] == []

    def test_improvements_never_fail(self):
        base = gate.extract_cells(_topology_payload(p50=10.0, throughput=100.0))
        cand = gate.extract_cells(_topology_payload(p50=2.0, throughput=400.0))
        report = gate.compare_cells(base, cand)
        assert report["regressions"] == []
        assert report["improvements"]

    def test_zero_baseline_latency_appearing_is_a_regression(self):
        # A zero baseline has no ratio, but it must not be a permanent
        # exemption: latency appearing past the absolute floor fails.
        base = gate.extract_cells(_topology_payload(p50=0.0))
        cand = gate.extract_cells(_topology_payload(p50=50.0))
        report = gate.compare_cells(base, cand)
        assert any(
            "latency" in entry["metric"] for entry in report["regressions"]
        )

    def test_zero_baseline_noise_below_floor_passes(self):
        base = gate.extract_cells(_topology_payload(p50=0.0))
        cand = gate.extract_cells(_topology_payload(p50=0.3))
        report = gate.compare_cells(base, cand)
        assert not any(
            "latency" in entry["metric"] for entry in report["regressions"]
        )

    def test_unmatched_cells_are_reported_not_dropped(self):
        base = gate.extract_cells(_topology_payload(churn_cell=False))
        cand = gate.extract_cells(_topology_payload(churn_cell=True))
        report = gate.compare_cells(base, cand)
        assert report["matched"] == 4
        assert report["only_in_candidate"] == [
            ("topology", "", "", 2, 0.0, 50, True)
        ]

    def test_lost_baseline_cells_fail_the_gate(self, tmp_path):
        # A candidate that stopped producing baseline cells (e.g. the
        # sweep was accidentally truncated) must fail, even though the
        # surviving cell matches perfectly.
        baseline = tmp_path / "baselines" / "BENCH_topology_quick.json"
        baseline.parent.mkdir()
        baseline.write_text(json.dumps(_topology_payload()))
        truncated = _topology_payload()
        truncated["cells"] = truncated["cells"][:1]
        candidate = tmp_path / "BENCH_topology.json"
        candidate.write_text(json.dumps(truncated))
        result = subprocess.run(
            [
                sys.executable,
                _GATE_PATH,
                "--baseline-dir",
                str(baseline.parent),
                "--candidate-dir",
                str(tmp_path),
            ],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 1
        assert "LOST CELL" in result.stdout


class TestCommittedArtifacts:
    """The acceptance invocation: gate the committed BENCH_*.json."""

    def test_committed_artifacts_pass_against_baselines(self):
        # Exactly what CI runs (default dirs): committed artifacts vs
        # committed baselines must gate clean.
        result = subprocess.run(
            [sys.executable, _GATE_PATH],
            capture_output=True,
            text=True,
            cwd=_REPO_ROOT,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "regression gate: OK" in result.stdout

    def test_perturbed_committed_topology_fails(self, tmp_path):
        with open(os.path.join(_REPO_ROOT, "BENCH_topology.json")) as fh:
            payload = json.load(fh)
        bad = copy.deepcopy(payload)
        for cell in bad["cells"]:
            summary = cell["fleet"]["enrollment_latency"]
            summary["p50_ms"] *= 1.5
            summary["p99_ms"] *= 1.5
        candidate = tmp_path / "BENCH_topology.json"
        candidate.write_text(json.dumps(bad))
        baseline = os.path.join(
            _REPO_ROOT, "benchmarks", "baselines", "BENCH_topology.json"
        )
        report = gate.gate_file(baseline, str(candidate))
        assert report["regressions"]

    def test_gate_fails_closed_on_nothing_comparable(self, tmp_path):
        result = subprocess.run(
            [
                sys.executable,
                _GATE_PATH,
                "--candidate-dir",
                str(tmp_path),  # empty: no artifacts at all
            ],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 1
        assert "failing closed" in result.stdout


class TestJsonReport:
    """``--json-report``: the machine-readable verdict artifact."""

    def test_ok_verdict_written(self, tmp_path):
        out = tmp_path / "gate.json"
        result = subprocess.run(
            [sys.executable, _GATE_PATH, "--json-report", str(out)],
            capture_output=True,
            text=True,
            cwd=_REPO_ROOT,
        )
        assert result.returncode == 0
        assert f"json report -> {out}" in result.stdout
        payload = json.loads(out.read_text())
        assert payload["verdict"] == "ok"
        assert payload["regressions"] == 0
        assert payload["matched"] > 0
        assert payload["reports"]

    def test_fail_verdict_and_inf_serialisation(self, tmp_path):
        # Zero-baseline regressions carry change=inf internally; the
        # JSON artifact must stay parseable (inf -> null).
        baseline = tmp_path / "baselines" / "BENCH_topology_quick.json"
        baseline.parent.mkdir()
        baseline.write_text(json.dumps(_topology_payload(p50=0.0)))
        candidate = tmp_path / "BENCH_topology.json"
        candidate.write_text(json.dumps(_topology_payload(p50=50.0)))
        out = tmp_path / "gate.json"
        result = subprocess.run(
            [
                sys.executable,
                _GATE_PATH,
                "--baseline-dir",
                str(baseline.parent),
                "--candidate-dir",
                str(tmp_path),
                "--json-report",
                str(out),
            ],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 1
        payload = json.loads(out.read_text())  # strict JSON: no Infinity
        assert payload["verdict"] == "fail"
        assert payload["regressions"] > 0
        entry = payload["reports"][0]["regressions"][0]
        assert entry["change"] is None
        assert isinstance(entry["cell"], list)

    def test_written_even_when_nothing_to_compare(self, tmp_path):
        out = tmp_path / "gate.json"
        result = subprocess.run(
            [
                sys.executable,
                _GATE_PATH,
                "--candidate-dir",
                str(tmp_path),
                "--json-report",
                str(out),
            ],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 1
        payload = json.loads(out.read_text())
        assert payload["verdict"] == "nothing-to-compare"
        assert payload["reports"] == []

    def test_jsonable_report_round_trips_cells(self):
        cells = gate.extract_cells(_topology_payload())
        report = gate.compare_cells(cells, cells)
        report["baseline_path"] = "a"
        report["candidate_path"] = "b"
        jsonable = gate._jsonable_report(report)
        json.dumps(jsonable)
        assert jsonable["matched"] == report["matched"]
