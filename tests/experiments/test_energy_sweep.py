"""Tests for the derived energy and capability-sweep experiments."""

from __future__ import annotations

import pytest

from repro.experiments import run_energy, run_sweep
from repro.experiments.sweep import BUDGETS_MS
from repro.protocols import TABLE_ORDER


class TestEnergy:
    @pytest.fixture(scope="class")
    def energy(self):
        return run_energy()

    def test_all_combinations_present(self, energy):
        assert len(energy.estimates) == len(TABLE_ORDER) * 4

    def test_ordering_matches_time(self, energy):
        assert energy.orderings_match_time()

    def test_sts_premium_positive_everywhere(self, energy):
        for device in ("atmega2560", "s32k144", "stm32f767", "rpi4"):
            assert energy.sts_premium_mj(device) > 0

    def test_schedules_do_not_change_energy(self, energy):
        # Opt. I/II reduce latency, not work.
        for device in ("s32k144", "stm32f767"):
            assert energy.total_mj("sts", device) == pytest.approx(
                energy.total_mj("sts-opt2", device)
            )

    def test_high_end_device_uses_less_energy_despite_more_power(self, energy):
        # The RPi4 draws ~25x the ATmega's power but finishes ~2000x
        # faster, so per-session energy is far lower.
        assert energy.total_mj("sts", "rpi4") < energy.total_mj(
            "sts", "atmega2560"
        ) / 10

    def test_render(self, energy):
        text = energy.render()
        assert "mJ" in text and "premium" in text


class TestSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_sweep()

    def test_relative_premium_structural(self, sweep):
        assert sweep.ratio_is_structural()
        for point in sweep.points:
            assert 0.20 < point.premium_ratio < 0.28

    def test_absolute_premium_scales_linearly(self, sweep):
        by_cost = {p.scalar_mult_ms: p.premium_ms for p in sweep.points}
        assert by_cost[1000.0] / by_cost[100.0] == pytest.approx(10.0, rel=0.01)

    def test_crossovers_monotone(self, sweep):
        fast = sweep.crossover_ms(BUDGETS_MS["startup-100ms"])
        slow = sweep.crossover_ms(BUDGETS_MS["diagnostic-1s"])
        assert fast is not None and slow is not None
        assert fast < slow

    def test_opt2_always_beats_s_ecdsa(self, sweep):
        for point in sweep.points:
            assert point.sts_opt2_ms < point.s_ecdsa_ms

    def test_render(self, sweep):
        text = sweep.render()
        assert "premium" in text and "budget" in text

    def test_cli_includes_new_experiments(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["sweep"]) == 0
        assert "capability sweep" in capsys.readouterr().out
