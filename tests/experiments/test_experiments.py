"""End-to-end tests of every experiment runner against the paper's claims."""

from __future__ import annotations

import pytest

from repro.experiments import (
    run_fig3,
    run_fig4,
    run_fig7,
    run_fig8,
    run_table1,
    run_table2,
    run_table3,
)


@pytest.fixture(scope="module")
def table1():
    return run_table1()


class TestTable1:
    def test_all_cells_within_tolerance(self, table1):
        # One fitted parameter per device: every cell (including the
        # schedule-derived opt. rows) within 15 %, the directly-fitted
        # rows within 7 %.
        assert table1.max_abs_delta() < 0.15
        for protocol in ("s-ecdsa", "sts", "scianc", "poramb"):
            for device in ("atmega2560", "s32k144", "stm32f767", "rpi4"):
                assert abs(table1.cell(protocol, device).delta) < 0.07

    def test_headline_sts_overhead(self, table1):
        # ~20 % claim (Table I shows ~25 % on the boards, 21.67 % in the
        # prototype; our model lands in between).
        assert 0.15 < table1.sts_overhead_vs_s_ecdsa() < 0.30

    def test_orderings_hold(self, table1):
        assert table1.orderings_hold()

    def test_render(self, table1):
        text = table1.render()
        assert "ATMega2560" in text
        assert "sts-opt2" in text


class TestFig3:
    def test_shape(self):
        result = run_fig3()
        assert result.ordering_holds()
        assert result.device_label == "STM32F767"

    def test_op2_roughly_double_op1(self):
        # Op2 = reconstruction + premaster ≈ 2 multiplications.
        result = run_fig3()
        ratio = result.mean_ms("op2") / result.mean_ms("op1")
        assert 1.8 < ratio < 2.2

    def test_render(self):
        assert "Op1" in run_fig3().render()


class TestFig4:
    def test_orderings(self, table1):
        result = run_fig4(table1=table1)
        assert result.orderings_agree()
        assert result.ordering()[0] == "scianc"
        assert result.ordering()[-1] == "sts"

    def test_render(self, table1):
        text = run_fig4(table1=table1).render()
        assert "paper" in text


class TestTable2:
    def test_matches(self):
        result = run_table2()
        assert result.all_match_paper()


class TestFig7:
    @pytest.fixture(scope="class")
    def fig7(self):
        return run_fig7()

    def test_overhead_close_to_paper(self, fig7):
        assert 15.0 < fig7.overhead_percent < 30.0  # paper: 21.67 %

    def test_totals_in_seconds_range(self, fig7):
        # Paper: 3.257 s vs 2.677 s on the S32K144 pair.
        assert 2.5 < fig7.sts_total_s < 4.0
        assert 2.2 < fig7.s_ecdsa_total_s < 3.3
        assert fig7.sts_total_s > fig7.s_ecdsa_total_s

    def test_transfer_negligible(self, fig7):
        assert fig7.max_transfer_ms < 2.0

    def test_render(self, fig7):
        text = fig7.render()
        assert "BMS" in text and "EVCC" in text
        assert "paper" in text


class TestTable3AndFig8:
    def test_security_matrix(self):
        assert run_table3().matches_paper()

    def test_threat_model(self):
        result = run_fig8()
        assert result.fully_covered
        assert result.coverage["T1"] == ["C1"]
        assert "Fig. 8" in result.render()


class TestCli:
    def test_main_subset(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["fig8"]) == 0
        out = capsys.readouterr().out
        assert "Experiment fig8" in out

    def test_main_unknown(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["nope"]) == 2
