"""Tests for the security-module/accelerator study (paper future work)."""

from __future__ import annotations

import pytest

from repro.errors import HardwareModelError
from repro.hardware import (
    ACCELERATORS,
    Accelerator,
    ECC_ACCEL,
    FULL_HSM,
    NO_ACCELERATOR,
    SHE_AES,
    STM32F767,
    accelerate,
    accelerator_study,
    pair_time_ms,
    render_accelerator_study,
)


class TestAccelerate:
    def test_none_is_identity(self, transcripts):
        model = accelerate(STM32F767, NO_ACCELERATOR)
        assert pair_time_ms(transcripts["sts"], model) == pytest.approx(
            pair_time_ms(transcripts["sts"], STM32F767)
        )

    def test_ecc_accel_speeds_up_ec_protocols(self, transcripts):
        model = accelerate(STM32F767, ECC_ACCEL)
        base = pair_time_ms(transcripts["sts"], STM32F767)
        fast = pair_time_ms(transcripts["sts"], model)
        assert fast < base / 8  # ~10x minus call overheads

    def test_she_barely_moves_ec_protocols(self, transcripts):
        model = accelerate(STM32F767, SHE_AES)
        base = pair_time_ms(transcripts["sts"], STM32F767)
        she = pair_time_ms(transcripts["sts"], model)
        assert abs(she / base - 1) < 0.01  # AES is negligible in STS

    def test_aes_price_actually_reduced(self):
        model = accelerate(STM32F767, SHE_AES)
        assert model.cost.price_of("aes.block") == pytest.approx(
            STM32F767.cost.price_of("aes.block") / 20.0
        )

    def test_full_hsm_reduces_everything(self):
        model = accelerate(STM32F767, FULL_HSM)
        base_mul = STM32F767.cost.price_of("ec.mul_point")
        # ~10x plus the fixed call overhead.
        assert model.cost.price_of("ec.mul_point") == pytest.approx(
            base_mul / 10.0 + 0.05
        )
        assert model.cost.price_of("sha2.block") == pytest.approx(
            STM32F767.cost.price_of("sha2.block") / 10.0
        )

    def test_name_suffix(self):
        assert accelerate(STM32F767, FULL_HSM).name == "stm32f767+full-hsm"

    def test_invalid_speedup_rejected(self):
        with pytest.raises(HardwareModelError):
            Accelerator(name="bad", description="", ec_speedup=0.5)
        with pytest.raises(HardwareModelError):
            Accelerator(name="bad", description="", fixed_call_overhead_ms=-1)


class TestStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return accelerator_study(STM32F767)

    def test_all_presets_present(self, study):
        assert set(study) == set(ACCELERATORS)

    def test_relative_overhead_stable(self, study):
        # The headline finding: crypto offload shrinks the *absolute* STS
        # cost by ~10x but the ~20-25 % relative overhead persists -
        # forward secrecy's price is structural, not an artifact of slow
        # software EC.
        for row in study.values():
            ratio = row["sts"] / row["s-ecdsa"]
            assert 1.15 < ratio < 1.30

    def test_ordering_preserved_under_acceleration(self, study):
        for row in study.values():
            assert row["scianc"] < row["poramb"] < row["s-ecdsa"] < row["sts"]
            assert row["sts-opt2"] < row["s-ecdsa"]

    def test_absolute_gap_shrinks(self, study):
        gap_sw = study["none"]["sts"] - study["none"]["s-ecdsa"]
        gap_hsm = study["full-hsm"]["sts"] - study["full-hsm"]["s-ecdsa"]
        assert gap_hsm < gap_sw / 8

    def test_render(self, study):
        text = render_accelerator_study(study, "STM32F767")
        assert "full-hsm" in text
        assert "STS/S-ECDSA" in text
