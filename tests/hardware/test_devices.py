"""Tests for device models, calibration consistency and timing helpers."""

from __future__ import annotations

import pytest

from repro.errors import HardwareModelError
from repro.hardware import (
    ATMEGA2560,
    DEVICES,
    HASH_BLOCK_MS,
    PAPER_TABLE1,
    RASPBERRY_PI4,
    S32K144,
    STM32F767,
    TABLE_DEVICE_ORDER,
    estimate_energy,
    fit_all_devices,
    get_device,
    op_class_times,
    pair_time_ms,
    party_time_ms,
    step_times,
    validate_devices_match_calibration,
)


class TestRegistry:
    def test_four_devices(self):
        assert list(DEVICES) == list(TABLE_DEVICE_ORDER)

    def test_lookup(self):
        assert get_device("stm32f767") is STM32F767
        with pytest.raises(HardwareModelError):
            get_device("cortex-m85")

    def test_performance_classes(self):
        assert ATMEGA2560.performance_class == "low-end"
        assert S32K144.performance_class == "mid-tier"
        assert STM32F767.performance_class == "mid-tier"
        assert RASPBERRY_PI4.performance_class == "high-end"

    def test_speed_ordering(self):
        costs = [DEVICES[d].cost.scalar_mult_ms for d in TABLE_DEVICE_ORDER]
        assert costs[0] > costs[1] > costs[2] > costs[3]

    def test_cost_models_valid(self):
        for device in DEVICES.values():
            device.cost.validate()


class TestCalibration:
    def test_frozen_constants_match_fit(self):
        validate_devices_match_calibration(tolerance=1e-3)

    def test_residuals_small(self):
        for name, result in fit_all_devices().items():
            for protocol, residual in result.residuals.items():
                assert abs(residual) < 0.07, (name, protocol, residual)

    def test_calibration_data_complete(self):
        for protocol, row in PAPER_TABLE1.items():
            assert set(row) == set(TABLE_DEVICE_ORDER)
        assert set(HASH_BLOCK_MS) == set(TABLE_DEVICE_ORDER)


class TestTiming:
    def test_pair_time_close_to_paper(self, transcripts):
        # The directly-fitted rows must stay within a few percent.
        for protocol in ("s-ecdsa", "sts", "scianc", "poramb"):
            for device_name in TABLE_DEVICE_ORDER:
                modelled = pair_time_ms(
                    transcripts[protocol], DEVICES[device_name]
                )
                paper = PAPER_TABLE1[protocol][device_name]
                assert abs(modelled / paper - 1) < 0.07, (protocol, device_name)

    def test_sts_20_percent_overhead(self, transcripts):
        # The paper's headline claim.
        for device_name in TABLE_DEVICE_ORDER:
            device = DEVICES[device_name]
            ratio = pair_time_ms(transcripts["sts"], device) / pair_time_ms(
                transcripts["s-ecdsa"], device
            )
            assert 1.15 < ratio < 1.30, (device_name, ratio)

    def test_pair_time_sums_parties(self, transcripts):
        tr = transcripts["sts"]
        assert pair_time_ms(tr, STM32F767) == pytest.approx(
            party_time_ms(tr.party_a, STM32F767)
            + party_time_ms(tr.party_b, STM32F767)
        )

    def test_asymmetric_pair(self, transcripts):
        tr = transcripts["sts"]
        mixed = pair_time_ms(tr, S32K144, RASPBERRY_PI4)
        assert mixed < pair_time_ms(tr, S32K144)
        assert mixed > pair_time_ms(tr, RASPBERRY_PI4)

    def test_op_class_times_cover_party_total(self, transcripts):
        tr = transcripts["sts"]
        classes = op_class_times(tr.party_a, STM32F767)
        assert sum(classes.values()) == pytest.approx(
            party_time_ms(tr.party_a, STM32F767)
        )

    def test_step_times_cover_party_total(self, transcripts):
        tr = transcripts["s-ecdsa"]
        steps = step_times(tr.party_b, STM32F767)
        assert sum(ms for _, ms in steps) == pytest.approx(
            party_time_ms(tr.party_b, STM32F767)
        )


class TestEnergy:
    def test_energy_estimate(self, transcripts):
        est = estimate_energy(transcripts["sts"], S32K144)
        assert est.total_ms == pytest.approx(
            pair_time_ms(transcripts["sts"], S32K144)
        )
        assert est.total_mj == pytest.approx(
            S32K144.active_power_mw * est.total_ms / 1000.0
        )

    def test_sts_costs_more_energy_than_scianc(self, transcripts):
        sts = estimate_energy(transcripts["sts"], S32K144).total_mj
        scianc = estimate_energy(transcripts["scianc"], S32K144).total_mj
        assert sts > 3 * scianc

    def test_mixed_devices(self, transcripts):
        est = estimate_energy(transcripts["sts"], S32K144, RASPBERRY_PI4)
        assert est.device_a == "s32k144"
        assert est.device_b == "rpi4"
        assert est.mj_a != est.mj_b
