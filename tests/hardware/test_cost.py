"""Tests for the cost-model pricing machinery."""

from __future__ import annotations

import pytest

from repro.errors import HardwareModelError
from repro.hardware import (
    CostModel,
    EC_RELATIVE_WEIGHTS,
    SYM_RELATIVE_WEIGHTS,
    ec_units,
    sym_units,
)
from repro.trace import CostTrace


def make_trace(**counts) -> CostTrace:
    t = CostTrace()
    for event, n in counts.items():
        t.record(event.replace("_", "."), n)
    return t


class TestCostModel:
    MODEL = CostModel(scalar_mult_ms=100.0, hash_block_ms=0.5)

    def test_price_of_ec_events(self):
        assert self.MODEL.price_of("ec.mul_point") == 100.0
        assert self.MODEL.price_of("ec.mul_base") == 100.0
        assert self.MODEL.price_of("ec.mul_double") == pytest.approx(108.0)

    def test_price_of_sym_events(self):
        assert self.MODEL.price_of("sha2.block") == 0.5
        assert self.MODEL.price_of("aes.block") == pytest.approx(0.175)

    def test_unknown_event_is_free(self):
        assert self.MODEL.price_of("custom.event") == 0.0

    def test_extra_overrides(self):
        model = CostModel(100.0, 0.5, extra_ms={"custom.event": 3.0, "sha2.block": 1.0})
        assert model.price_of("custom.event") == 3.0
        assert model.price_of("sha2.block") == 1.5  # additive

    def test_price_trace(self):
        t = make_trace(ec_mul__point=2, sha2_block=4)
        t2 = CostTrace()
        t2.record("ec.mul_point", 2)
        t2.record("sha2.block", 4)
        assert self.MODEL.price(t2) == pytest.approx(202.0)

    def test_breakdown_sums_to_price(self):
        t = CostTrace()
        t.record("ec.mul_point", 3)
        t.record("aes.block", 10)
        t.record("mod.inv", 1)
        assert sum(self.MODEL.breakdown(t).values()) == pytest.approx(
            self.MODEL.price(t)
        )

    def test_ec_and_sym_split(self):
        t = CostTrace()
        t.record("ec.mul_point", 1)
        t.record("sha2.block", 2)
        assert self.MODEL.ec_ms(t) == pytest.approx(100.0)
        assert self.MODEL.sym_ms(t) == pytest.approx(1.0)

    def test_validate(self):
        CostModel(1.0, 0.0).validate()
        with pytest.raises(HardwareModelError):
            CostModel(0.0, 0.1).validate()
        with pytest.raises(HardwareModelError):
            CostModel(1.0, -0.1).validate()


class TestUnits:
    def test_ec_units(self):
        t = CostTrace()
        t.record("ec.mul_point", 2)
        t.record("ec.mul_double", 1)
        t.record("sha2.block", 100)  # ignored
        assert ec_units(t) == pytest.approx(2 + 1.08)

    def test_sym_units(self):
        t = CostTrace()
        t.record("sha2.block", 3)
        t.record("aes.block", 2)
        t.record("ec.mul_point", 5)  # ignored
        assert sym_units(t) == pytest.approx(3 + 0.7)

    def test_weights_cover_all_traced_events(self, transcripts):
        # Every event a protocol actually records must be priced by one
        # of the weight tables (or be knowingly free).
        priced = set(EC_RELATIVE_WEIGHTS) | set(SYM_RELATIVE_WEIGHTS)
        for transcript in transcripts.values():
            for party in (transcript.party_a, transcript.party_b):
                for event in party.total_cost().counts:
                    assert event in priced, f"unpriced event {event}"
