"""Tests for key pairs and DRBG-driven key generation."""

from __future__ import annotations

import pytest

from repro.ec import SECP256R1, decode_point, mul_base
from repro.ecdsa import KeyPair, generate_keypair, keypair_from_private
from repro.errors import CryptoError
from repro.primitives import HmacDrbg


class TestKeyPair:
    def test_from_private(self):
        kp = keypair_from_private(SECP256R1, 12345)
        assert kp.public == mul_base(12345, SECP256R1)

    def test_mismatched_public_rejected(self):
        with pytest.raises(CryptoError):
            KeyPair(SECP256R1, 5, mul_base(6, SECP256R1))

    @pytest.mark.parametrize("bad", [0, -1])
    def test_out_of_range_private_rejected(self, bad):
        with pytest.raises(CryptoError):
            keypair_from_private(SECP256R1, bad)

    def test_order_private_rejected(self):
        with pytest.raises(CryptoError):
            keypair_from_private(SECP256R1, SECP256R1.n)

    def test_public_bytes(self):
        kp = keypair_from_private(SECP256R1, 7)
        assert len(kp.public_bytes(compressed=True)) == 33
        assert len(kp.public_bytes(compressed=False)) == 65
        assert decode_point(SECP256R1, kp.public_bytes()) == kp.public

    def test_private_bytes(self):
        kp = keypair_from_private(SECP256R1, 7)
        raw = kp.private_bytes()
        assert len(raw) == 32
        assert int.from_bytes(raw, "big") == 7

    def test_repr_hides_private(self):
        kp = keypair_from_private(SECP256R1, 987654321)
        assert "987654321" not in repr(kp)


class TestGeneration:
    def test_deterministic_generation(self):
        a = generate_keypair(SECP256R1, HmacDrbg(b"seed"))
        b = generate_keypair(SECP256R1, HmacDrbg(b"seed"))
        assert a.private == b.private

    def test_distinct_draws(self):
        rng = HmacDrbg(b"seed")
        a = generate_keypair(SECP256R1, rng)
        b = generate_keypair(SECP256R1, rng)
        assert a.private != b.private

    def test_valid_range(self):
        rng = HmacDrbg(b"range")
        for _ in range(5):
            kp = generate_keypair(SECP256R1, rng)
            assert 1 <= kp.private < SECP256R1.n
