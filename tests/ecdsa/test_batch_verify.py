"""Batch ECDSA verification: agreement with the sequential verifier.

``verify_batch`` must be observably identical to calling ``verify`` in a
loop — same boolean outcomes on any mix of valid, forged and malformed
inputs, and the same priced cost trace (the shared Jacobian normalization
is untraced host-time, exactly like ``mul_base_batch``).
"""

from __future__ import annotations

import pytest

from repro import trace
from repro.ec import SECP192R1, SECP256R1, Point
from repro.ecdsa import (
    Signature,
    generate_keypair,
    sign,
    verify,
    verify_batch,
)
from repro.errors import SignatureError
from repro.primitives import HmacDrbg


def _signers(count, curve=SECP256R1, seed=b"batch-verify"):
    items = []
    for i in range(count):
        rng = HmacDrbg(seed, personalization=b"signer|%d" % i)
        keypair = generate_keypair(curve, rng)
        message = b"record %d" % i
        items.append(
            (keypair.public, message, sign(curve, keypair.private, message))
        )
    return items


class TestAgreement:
    def test_all_valid(self):
        items = _signers(8)
        assert verify_batch(items) == [True] * 8

    def test_mixed_outcomes_match_sequential(self):
        items = _signers(6)
        # Corrupt item 1 (message), item 3 (r), item 4 (swapped key).
        public1, _, sig1 = items[1]
        items[1] = (public1, b"tampered", sig1)
        public3, message3, sig3 = items[3]
        bad_r = Signature(sig3.curve, (sig3.r % (sig3.curve.n - 1)) + 1, sig3.s)
        items[3] = (public3, message3, bad_r)
        items[4] = (items[5][0], items[4][1], items[4][2])
        expected = [verify(p, m, s) for p, m, s in items]
        assert verify_batch(items) == expected
        assert expected == [True, False, True, False, False, True]

    def test_empty_batch(self):
        assert verify_batch([]) == []

    def test_infinity_key_is_false_not_an_error(self):
        items = _signers(2)
        public, message, signature = items[0]
        items[0] = (Point.infinity(SECP256R1), message, signature)
        assert verify_batch(items) == [False, True]

    def test_wrong_curve_signature_is_false(self):
        items = _signers(1)
        other = _signers(1, curve=SECP192R1)[0]
        assert verify_batch([(items[0][0], items[0][1], other[2])]) == [False]

    def test_mixed_key_curves_rejected(self):
        a = _signers(1)[0]
        b = _signers(1, curve=SECP192R1)[0]
        with pytest.raises(SignatureError):
            verify_batch([a, b])

    def test_unknown_hash_rejected(self):
        with pytest.raises(SignatureError):
            verify_batch(_signers(1), hash_name="md5")


class TestCostParity:
    def test_batch_trace_matches_sequential(self):
        items = _signers(5)
        with trace.trace("sequential") as seq_cost:
            for public, message, signature in items:
                verify(public, message, signature)
        with trace.trace("batched") as batch_cost:
            verify_batch(items)
        assert batch_cost.counts == seq_cost.counts
        assert batch_cost["ecdsa.verify"] == 5
        assert batch_cost["ec.mul_double"] == 5
