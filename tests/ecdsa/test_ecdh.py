"""Tests for ECDH: symmetry, SKD vs DKD semantics, degenerate inputs."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.ec import SECP192R1, Point, mul_base
from repro.ecdsa import (
    ephemeral_shared_secret,
    shared_point,
    shared_secret_bytes,
    static_shared_secret,
)
from repro.errors import CryptoError

C = SECP192R1


class TestSymmetry:
    @given(st.integers(1, C.n - 1), st.integers(1, C.n - 1))
    @settings(max_examples=20, deadline=None)
    def test_dh_symmetry(self, a, b):
        pub_a, pub_b = mul_base(a, C), mul_base(b, C)
        assert static_shared_secret(a, pub_b) == static_shared_secret(b, pub_a)

    def test_ephemeral_equals_static_math(self):
        # Same computation, different *inputs* - the point of the paper.
        a, b = 1234, 5678
        assert ephemeral_shared_secret(a, mul_base(b, C)) == static_shared_secret(
            a, mul_base(b, C)
        )


class TestOutputs:
    def test_secret_is_x_coordinate(self):
        a, b = 7, 11
        point = shared_point(a, mul_base(b, C))
        expected = point.x.to_bytes(C.field_bytes, "big")
        assert shared_secret_bytes(a, mul_base(b, C)) == expected

    def test_secret_length(self):
        assert len(static_shared_secret(3, mul_base(9, C))) == C.field_bytes


class TestErrors:
    def test_infinity_peer_rejected(self):
        with pytest.raises(CryptoError):
            shared_point(5, Point.infinity(C))

    def test_zero_scalar_rejected(self):
        with pytest.raises(CryptoError):
            shared_point(0, mul_base(3, C))

    def test_order_scalar_rejected(self):
        with pytest.raises(CryptoError):
            shared_point(C.n, mul_base(3, C))
