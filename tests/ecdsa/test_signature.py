"""Tests for ECDSA: RFC 6979 signature vectors, verification, negatives."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import trace
from repro.ec import SECP192R1, SECP256R1, mul_base
from repro.ecdsa import Signature, keypair_from_private, sign, verify, verify_strict
from repro.errors import SignatureError

# RFC 6979 A.2.5 (P-256).
X = 0xC9AFA9D845BA75166B5C215767B1D6934E50C3DB36E89B127B8A622B120F6721
Q_PUB = keypair_from_private(SECP256R1, X).public

RFC6979_P256_SHA256 = [
    (
        b"sample",
        0xEFD48B2AACB6A8FD1140DD9CD45E81D69D2C877B56AAF991C34D0EA84EAF3716,
        0xF7CB1C942D657C41D436C7A1B6E29F65F3E900DBB9AFF4064DC4AB2F843ACDA8,
    ),
    (
        b"test",
        0xF1ABB023518351CD71D881567B1EA663ED3EFCF6C5132B354F28D3B0B7D38367,
        0x019F4113742A2B14BD25926B49C649155F267E60D3814B4C0CC84250E46F0083,
    ),
]


class TestRfc6979Vectors:
    @pytest.mark.parametrize("message,r,s", RFC6979_P256_SHA256)
    def test_deterministic_signature(self, message, r, s):
        sig = sign(SECP256R1, X, message)
        assert (sig.r, sig.s) == (r, s)

    @pytest.mark.parametrize("message,r,s", RFC6979_P256_SHA256)
    def test_vector_verifies(self, message, r, s):
        assert verify(Q_PUB, message, Signature(SECP256R1, r, s))

    def test_sha512_vector(self):
        sig = sign(SECP256R1, X, b"sample", hash_name="sha512")
        assert sig.r == 0x8496A60B5E9B47C825488827E0495B0E3FA109EC4568FD3F8D1097678EB97F00
        assert sig.s == 0x2362AB1ADBE2B8ADF9CB9EDAB740EA6049C028114F2460F96554F61FAE3302FE


class TestSignVerify:
    @given(st.integers(1, SECP192R1.n - 1), st.binary(max_size=64))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip(self, private, message):
        sig = sign(SECP192R1, private, message)
        public = mul_base(private, SECP192R1)
        assert verify(public, message, sig)

    def test_wrong_message_rejected(self):
        sig = sign(SECP256R1, X, b"original")
        assert not verify(Q_PUB, b"tampered", sig)

    def test_wrong_key_rejected(self):
        sig = sign(SECP256R1, X, b"message")
        other = mul_base(X + 1, SECP256R1)
        assert not verify(other, b"message", sig)

    def test_tampered_r_rejected(self):
        sig = sign(SECP256R1, X, b"message")
        bad = Signature(SECP256R1, (sig.r + 1) % SECP256R1.n or 1, sig.s)
        assert not verify(Q_PUB, b"message", bad)

    def test_tampered_s_rejected(self):
        sig = sign(SECP256R1, X, b"message")
        bad = Signature(SECP256R1, sig.r, (sig.s + 1) % SECP256R1.n or 1)
        assert not verify(Q_PUB, b"message", bad)

    def test_cross_curve_rejected(self):
        sig = sign(SECP192R1, 12345, b"msg")
        assert not verify(Q_PUB, b"msg", sig)

    def test_infinity_key_rejected(self):
        from repro.ec import Point

        sig = sign(SECP256R1, X, b"msg")
        assert not verify(Point.infinity(SECP256R1), b"msg", sig)

    def test_extra_entropy_changes_signature_but_still_verifies(self):
        base = sign(SECP256R1, X, b"msg")
        alt = sign(SECP256R1, X, b"msg", extra_entropy=b"salt")
        assert (base.r, base.s) != (alt.r, alt.s)
        assert verify(Q_PUB, b"msg", alt)

    def test_private_key_out_of_range(self):
        with pytest.raises(SignatureError):
            sign(SECP256R1, 0, b"msg")
        with pytest.raises(SignatureError):
            sign(SECP256R1, SECP256R1.n, b"msg")

    def test_unknown_hash(self):
        with pytest.raises(SignatureError):
            sign(SECP256R1, X, b"msg", hash_name="sha1")

    def test_verify_strict_raises(self):
        sig = sign(SECP256R1, X, b"msg")
        verify_strict(Q_PUB, b"msg", sig)
        with pytest.raises(SignatureError):
            verify_strict(Q_PUB, b"other", sig)


class TestSignatureEncoding:
    def test_fixed_width_roundtrip(self):
        sig = sign(SECP256R1, X, b"enc")
        raw = sig.to_bytes()
        assert len(raw) == 64
        assert Signature.from_bytes(SECP256R1, raw) == sig

    def test_wire_size(self):
        assert sign(SECP256R1, X, b"x").wire_size == 64
        assert sign(SECP192R1, 7, b"x").wire_size == 48

    def test_bad_length_rejected(self):
        with pytest.raises(SignatureError):
            Signature.from_bytes(SECP256R1, b"\x01" * 63)

    def test_out_of_range_components_rejected(self):
        with pytest.raises(SignatureError):
            Signature(SECP256R1, 0, 1)
        with pytest.raises(SignatureError):
            Signature(SECP256R1, 1, SECP256R1.n)

    def test_zero_bytes_rejected(self):
        with pytest.raises(SignatureError):
            Signature.from_bytes(SECP256R1, b"\x00" * 64)


class TestTracing:
    def test_sign_and_verify_events(self):
        with trace.trace() as t:
            sig = sign(SECP256R1, X, b"traced")
        assert t["ecdsa.sign"] == 1
        assert t["ec.mul_base"] == 1
        with trace.trace() as t:
            verify(Q_PUB, b"traced", sig)
        assert t["ecdsa.verify"] == 1
        assert t["ec.mul_double"] == 1
