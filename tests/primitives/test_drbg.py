"""Tests for HMAC-DRBG and RFC 6979 deterministic nonce generation."""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.ec import SECP256R1
from repro.errors import CryptoError
from repro.primitives import HmacDrbg, rfc6979_nonce

Q = SECP256R1.n
X = 0xC9AFA9D845BA75166B5C215767B1D6934E50C3DB36E89B127B8A622B120F6721


class TestHmacDrbg:
    def test_determinism(self):
        a, b = HmacDrbg(b"seed"), HmacDrbg(b"seed")
        assert a.generate(64) == b.generate(64)
        assert a.generate(7) == b.generate(7)

    def test_personalization_separates_streams(self):
        a = HmacDrbg(b"seed", personalization=b"alice")
        b = HmacDrbg(b"seed", personalization=b"bob")
        assert a.generate(32) != b.generate(32)

    def test_seed_separates_streams(self):
        assert HmacDrbg(b"s1").generate(32) != HmacDrbg(b"s2").generate(32)

    def test_sequential_outputs_differ(self):
        drbg = HmacDrbg(b"seed")
        assert drbg.generate(32) != drbg.generate(32)

    def test_generate_sizes(self):
        drbg = HmacDrbg(b"seed")
        for n in (0, 1, 31, 32, 33, 100):
            assert len(drbg.generate(n)) == n

    def test_negative_size_rejected(self):
        with pytest.raises(CryptoError):
            HmacDrbg(b"seed").generate(-1)

    def test_empty_seed_rejected(self):
        with pytest.raises(CryptoError):
            HmacDrbg(b"")

    def test_unknown_hash_rejected(self):
        with pytest.raises(CryptoError):
            HmacDrbg(b"seed", hash_name="md5")

    def test_additional_input_changes_output(self):
        a, b = HmacDrbg(b"seed"), HmacDrbg(b"seed")
        assert a.generate(32, additional=b"x") != b.generate(32)

    def test_reseed_changes_stream(self):
        a, b = HmacDrbg(b"seed"), HmacDrbg(b"seed")
        a.reseed(b"fresh entropy")
        assert a.generate(32) != b.generate(32)

    def test_reseed_requires_entropy(self):
        with pytest.raises(CryptoError):
            HmacDrbg(b"seed").reseed(b"")

    def test_sha512_variant(self):
        drbg = HmacDrbg(b"seed", hash_name="sha512")
        assert len(drbg.generate(100)) == 100


class TestRandomScalar:
    @given(st.binary(min_size=1, max_size=32))
    @settings(max_examples=30)
    def test_in_range(self, seed):
        drbg = HmacDrbg(seed)
        for _ in range(3):
            k = drbg.random_scalar(Q)
            assert 1 <= k < Q

    def test_small_orders(self):
        drbg = HmacDrbg(b"seed")
        for order in (3, 5, 17, 257):
            for _ in range(10):
                assert 1 <= drbg.random_scalar(order) < order

    def test_order_too_small(self):
        with pytest.raises(CryptoError):
            HmacDrbg(b"seed").random_scalar(2)

    def test_distribution_covers_range(self):
        # Weak sanity check: scalars should not cluster in one half.
        drbg = HmacDrbg(b"dist-check")
        draws = [drbg.random_scalar(Q) for _ in range(40)]
        low = sum(1 for d in draws if d < Q // 2)
        assert 5 <= low <= 35


class TestRfc6979:
    def test_p256_sha256_sample(self):
        h1 = hashlib.sha256(b"sample").digest()
        k = rfc6979_nonce(X, h1, Q, "sha256")
        assert k == 0xA6E3C57DD01ABE90086538398355DD4C3B17AA873382B0F24D6129493D8AAD60

    def test_p256_sha256_test(self):
        h1 = hashlib.sha256(b"test").digest()
        k = rfc6979_nonce(X, h1, Q, "sha256")
        assert k == 0xD16B6AE827F17175E040871A1C7EC3500192C4C92677336EC2537ACAEE0008E0

    def test_p256_sha512_sample(self):
        h1 = hashlib.sha512(b"sample").digest()
        k = rfc6979_nonce(X, h1, Q, "sha512")
        assert k == 0x5FA81C63109BADB88C1F367B47DA606DA28CAD69AA22C4FE6AD7DF73A7173AA5

    def test_deterministic(self):
        h1 = hashlib.sha256(b"msg").digest()
        assert rfc6979_nonce(X, h1, Q) == rfc6979_nonce(X, h1, Q)

    def test_extra_entropy_changes_nonce(self):
        h1 = hashlib.sha256(b"msg").digest()
        assert rfc6979_nonce(X, h1, Q) != rfc6979_nonce(X, h1, Q, extra_entropy=b"x")

    def test_key_separation(self):
        h1 = hashlib.sha256(b"msg").digest()
        assert rfc6979_nonce(X, h1, Q) != rfc6979_nonce(X + 1, h1, Q)

    @given(st.integers(1, Q - 1))
    @settings(max_examples=20)
    def test_nonce_in_range(self, private):
        h1 = hashlib.sha256(b"range").digest()
        assert 1 <= rfc6979_nonce(private, h1, Q) < Q
