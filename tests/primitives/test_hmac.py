"""Tests for HMAC against RFC 4231 vectors and the stdlib."""

from __future__ import annotations

import hashlib
import hmac as py_hmac

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CryptoError
from repro.primitives import Hmac, hmac, hmac_verify

# RFC 4231 test cases (SHA-256 and SHA-512 tags).
RFC4231 = [
    (
        b"\x0b" * 20,
        b"Hi There",
        "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7",
        "87aa7cdea5ef619d4ff0b4241a1d6cb02379f4e2ce4ec2787ad0b30545e17cde"
        "daa833b7d6b8a702038b274eaea3f4e4be9d914eeb61f1702e696c203a126854",
    ),
    (
        b"Jefe",
        b"what do ya want for nothing?",
        "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843",
        "164b7a7bfcf819e2e395fbe73b56e0a387bd64222e831fd610270cd7ea250554"
        "9758bf75c05a994a6d034f65f8f0e6fdcaeab1a34d4a6b4b636e070a38bce737",
    ),
    (
        b"\xaa" * 20,
        b"\xdd" * 50,
        "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe",
        "fa73b0089d56a284efb0f0756c890be9b1b5dbdd8ee81a3655f83e33b2279d39"
        "bf3e848279a722c806b485a47e67c807b946a337bee8942674278859e13292fb",
    ),
    (
        b"\xaa" * 131,
        b"Test Using Larger Than Block-Size Key - Hash Key First",
        "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54",
        "80b24263c7c1a3ebb71493c1dd7be8b49b46d1f41b4aeec1121b013783f8f352"
        "6b56d037e05f2598bd0fd2215d6a1e5295e64f73f63f0aec8b915a985d786598",
    ),
]


class TestRfc4231:
    @pytest.mark.parametrize("key,msg,tag256,tag512", RFC4231)
    def test_sha256(self, key, msg, tag256, tag512):
        assert hmac(key, msg, "sha256").hex() == tag256

    @pytest.mark.parametrize("key,msg,tag256,tag512", RFC4231)
    def test_sha512(self, key, msg, tag256, tag512):
        assert hmac(key, msg, "sha512").hex() == tag512


class TestAgainstStdlib:
    @given(st.binary(max_size=200), st.binary(max_size=400))
    @settings(max_examples=40)
    def test_sha256_matches(self, key, msg):
        assert hmac(key, msg) == py_hmac.new(key, msg, hashlib.sha256).digest()

    @pytest.mark.parametrize("hash_name", ["sha224", "sha256", "sha384", "sha512"])
    def test_all_variants(self, hash_name):
        key, msg = b"key-material", b"the message"
        expected = py_hmac.new(key, msg, getattr(hashlib, hash_name)).digest()
        assert hmac(key, msg, hash_name) == expected

    def test_exact_blocksize_key(self):
        key = b"k" * 64
        assert hmac(key, b"m") == py_hmac.new(key, b"m", hashlib.sha256).digest()


class TestStreamingAndVerify:
    def test_streaming_matches_oneshot(self):
        mac = Hmac(b"key")
        mac.update(b"part one ")
        mac.update(b"part two")
        assert mac.digest() == hmac(b"key", b"part one part two")

    def test_digest_idempotent(self):
        mac = Hmac(b"key").update(b"data")
        assert mac.digest() == mac.digest()

    def test_hexdigest(self):
        assert Hmac(b"k").update(b"m").hexdigest() == hmac(b"k", b"m").hex()

    def test_verify_accepts_valid(self):
        tag = hmac(b"key", b"msg")
        assert hmac_verify(b"key", b"msg", tag)

    def test_verify_rejects_tampered(self):
        tag = bytearray(hmac(b"key", b"msg"))
        tag[0] ^= 1
        assert not hmac_verify(b"key", b"msg", bytes(tag))

    def test_verify_rejects_truncated(self):
        assert not hmac_verify(b"key", b"msg", hmac(b"key", b"msg")[:-1])

    def test_unknown_hash_rejected(self):
        with pytest.raises(CryptoError):
            Hmac(b"key", "sha1")

    def test_digest_size_attribute(self):
        assert Hmac(b"k").digest_size == 32
        assert Hmac(b"k", "sha512").digest_size == 64
