"""Tests for HKDF (RFC 5869 vectors) and the ANSI X9.63 KDF."""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CryptoError
from repro.primitives import hkdf, hkdf_expand, hkdf_extract, x963_kdf


class TestHkdfRfc5869:
    def test_case_1(self):
        okm = hkdf(
            ikm=bytes.fromhex("0b" * 22),
            salt=bytes.fromhex("000102030405060708090a0b0c"),
            info=bytes.fromhex("f0f1f2f3f4f5f6f7f8f9"),
            length=42,
        )
        assert okm.hex() == (
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_case_2_long_inputs(self):
        ikm = bytes(range(0x00, 0x50))
        salt = bytes(range(0x60, 0xB0))
        info = bytes(range(0xB0, 0x100))
        okm = hkdf(ikm, salt, info, 82)
        assert okm.hex() == (
            "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c"
            "59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71"
            "cc30c58179ec3e87c14c01d5c1f3434f1d87"
        )

    def test_case_3_empty_salt_and_info(self):
        okm = hkdf(bytes.fromhex("0b" * 22), b"", b"", 42)
        assert okm.hex() == (
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8"
        )

    def test_extract_then_expand_equals_hkdf(self):
        prk = hkdf_extract(b"salt", b"ikm")
        assert hkdf_expand(prk, b"info", 32) == hkdf(b"ikm", b"salt", b"info", 32)


class TestHkdfProperties:
    @given(st.integers(1, 255 * 32))
    @settings(max_examples=25, deadline=None)
    def test_output_length(self, n):
        # deadline=None: a near-maximum n costs ~255 reference HMACs,
        # which overruns hypothesis's 200 ms default on slow hosts.
        assert len(hkdf(b"ikm", b"salt", b"info", n)) == n

    def test_prefix_property(self):
        long = hkdf(b"ikm", b"s", b"i", 64)
        short = hkdf(b"ikm", b"s", b"i", 32)
        assert long[:32] == short

    def test_salt_changes_output(self):
        assert hkdf(b"ikm", b"salt1") != hkdf(b"ikm", b"salt2")

    def test_info_changes_output(self):
        assert hkdf(b"ikm", b"s", b"info1") != hkdf(b"ikm", b"s", b"info2")

    def test_zero_length_rejected(self):
        with pytest.raises(CryptoError):
            hkdf(b"ikm", length=0)

    def test_too_long_rejected(self):
        with pytest.raises(CryptoError):
            hkdf_expand(b"\x00" * 32, b"", 255 * 32 + 1)


class TestX963:
    def test_reference_construction(self):
        # X9.63: block_i = Hash(Z || counter_i || SharedInfo).
        z, info = b"shared-secret", b"context"
        expected = (
            hashlib.sha256(z + (1).to_bytes(4, "big") + info).digest()
            + hashlib.sha256(z + (2).to_bytes(4, "big") + info).digest()
        )[:48]
        assert x963_kdf(z, info, 48) == expected

    @given(st.integers(1, 200))
    @settings(max_examples=25, deadline=None)
    def test_output_length(self, n):
        assert len(x963_kdf(b"z", b"", n)) == n

    def test_prefix_property(self):
        assert x963_kdf(b"z", b"i", 64)[:16] == x963_kdf(b"z", b"i", 16)

    def test_shared_info_separates(self):
        assert x963_kdf(b"z", b"a", 32) != x963_kdf(b"z", b"b", 32)

    def test_secret_separates(self):
        assert x963_kdf(b"z1", b"", 32) != x963_kdf(b"z2", b"", 32)

    def test_zero_length_rejected(self):
        with pytest.raises(CryptoError):
            x963_kdf(b"z", length=0)

    def test_sha512_variant(self):
        out = x963_kdf(b"z", b"", 32, hash_name="sha512")
        expected = hashlib.sha512(b"z" + (1).to_bytes(4, "big")).digest()[:32]
        assert out == expected
