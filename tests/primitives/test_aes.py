"""Tests for the from-scratch AES against FIPS 197 and derived properties."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import trace
from repro.errors import CryptoError
from repro.primitives import Aes
from repro.primitives.aes import INV_SBOX, SBOX, _gf_mul

FIPS_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")

FIPS_CASES = [
    ("000102030405060708090a0b0c0d0e0f", "69c4e0d86a7b0430d8cdb78070b4c55a"),
    (
        "000102030405060708090a0b0c0d0e0f1011121314151617",
        "dda97ca4864cdfe06eaf70a0ec0d7191",
    ),
    (
        "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
        "8ea2b7ca516745bfeafc49904b496089",
    ),
]


class TestFips197:
    @pytest.mark.parametrize("key_hex,ct_hex", FIPS_CASES)
    def test_encrypt(self, key_hex, ct_hex):
        cipher = Aes(bytes.fromhex(key_hex))
        assert cipher.encrypt_block(FIPS_PLAINTEXT).hex() == ct_hex

    @pytest.mark.parametrize("key_hex,ct_hex", FIPS_CASES)
    def test_decrypt(self, key_hex, ct_hex):
        cipher = Aes(bytes.fromhex(key_hex))
        assert cipher.decrypt_block(bytes.fromhex(ct_hex)) == FIPS_PLAINTEXT

    def test_aes128_appendix_b(self):
        cipher = Aes(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
        ct = cipher.encrypt_block(bytes.fromhex("3243f6a8885a308d313198a2e0370734"))
        assert ct.hex() == "3925841d02dc09fbdc118597196a0b32"


class TestSbox:
    def test_known_entries(self):
        assert SBOX[0x00] == 0x63
        assert SBOX[0x01] == 0x7C
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_is_permutation(self):
        assert sorted(SBOX) == list(range(256))

    def test_inverse_consistency(self):
        for value in range(256):
            assert INV_SBOX[SBOX[value]] == value

    def test_no_fixed_points(self):
        for value in range(256):
            assert SBOX[value] != value
            assert SBOX[value] != value ^ 0xFF


class TestGf:
    def test_known_products(self):
        assert _gf_mul(0x57, 0x83) == 0xC1  # FIPS 197 example
        assert _gf_mul(0x57, 0x13) == 0xFE

    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=60)
    def test_commutativity(self, a, b):
        assert _gf_mul(a, b) == _gf_mul(b, a)

    @given(st.integers(0, 255))
    def test_identity(self, a):
        assert _gf_mul(a, 1) == a
        assert _gf_mul(a, 0) == 0


class TestRoundTrips:
    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
    @settings(max_examples=40)
    def test_aes128_roundtrip(self, key, block):
        cipher = Aes(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    @given(st.binary(min_size=32, max_size=32))
    @settings(max_examples=15)
    def test_aes256_roundtrip(self, key):
        cipher = Aes(key)
        block = b"\xa5" * 16
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_encryption_is_not_identity(self):
        cipher = Aes(b"\x00" * 16)
        assert cipher.encrypt_block(b"\x00" * 16) != b"\x00" * 16


class TestInterface:
    @pytest.mark.parametrize("bad_len", [0, 8, 15, 17, 31, 33])
    def test_bad_key_length(self, bad_len):
        with pytest.raises(CryptoError):
            Aes(b"\x00" * bad_len)

    def test_bad_block_length(self):
        cipher = Aes(b"\x00" * 16)
        with pytest.raises(CryptoError):
            cipher.encrypt_block(b"short")
        with pytest.raises(CryptoError):
            cipher.decrypt_block(b"\x00" * 17)

    def test_rounds(self):
        assert Aes(b"\x00" * 16).rounds == 10
        assert Aes(b"\x00" * 24).rounds == 12
        assert Aes(b"\x00" * 32).rounds == 14

    def test_trace_counts_blocks(self):
        cipher = Aes(b"\x00" * 16)
        with trace.trace() as t:
            cipher.encrypt_block(b"\x11" * 16)
            cipher.decrypt_block(b"\x22" * 16)
        assert t["aes.block"] == 2
