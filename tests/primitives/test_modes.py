"""Tests for block modes (ECB/CBC/CTR) and PKCS#7 padding."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CryptoError
from repro.primitives import (
    cbc_decrypt,
    cbc_encrypt,
    ctr_crypt,
    ctr_keystream,
    ecb_decrypt,
    ecb_encrypt,
    pkcs7_pad,
    pkcs7_unpad,
)

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
IV = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
# NIST SP 800-38A F.2.1 (CBC-AES128) first two blocks.
NIST_PT = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51"
)
NIST_CBC_CT = bytes.fromhex(
    "7649abac8119b246cee98e9b12e9197d5086cb9b507219ee95db113a917678b2"
)
# NIST SP 800-38A F.5.1 (CTR-AES128) first block.
NIST_CTR_IV = bytes.fromhex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
NIST_CTR_CT = bytes.fromhex("874d6191b620e3261bef6864990db6ce")


class TestPkcs7:
    def test_pad_lengths(self):
        assert pkcs7_pad(b"") == b"\x10" * 16
        assert pkcs7_pad(b"a" * 15) == b"a" * 15 + b"\x01"
        assert pkcs7_pad(b"a" * 16) == b"a" * 16 + b"\x10" * 16

    @given(st.binary(max_size=100))
    @settings(max_examples=40)
    def test_roundtrip(self, data):
        assert pkcs7_unpad(pkcs7_pad(data)) == data

    def test_unpad_rejects_bad_length(self):
        with pytest.raises(CryptoError):
            pkcs7_unpad(b"12345")

    def test_unpad_rejects_zero_byte(self):
        with pytest.raises(CryptoError):
            pkcs7_unpad(b"a" * 15 + b"\x00")

    def test_unpad_rejects_inconsistent(self):
        with pytest.raises(CryptoError):
            pkcs7_unpad(b"a" * 13 + b"\x01\x02\x03")

    def test_bad_block_size(self):
        with pytest.raises(CryptoError):
            pkcs7_pad(b"x", 0)


class TestCbc:
    def test_nist_vector(self):
        assert cbc_encrypt(KEY, IV, NIST_PT, pad=False) == NIST_CBC_CT
        assert cbc_decrypt(KEY, IV, NIST_CBC_CT, pad=False) == NIST_PT

    @given(st.binary(max_size=130))
    @settings(max_examples=30)
    def test_padded_roundtrip(self, data):
        assert cbc_decrypt(KEY, IV, cbc_encrypt(KEY, IV, data)) == data

    def test_iv_affects_ciphertext(self):
        other_iv = bytes(16)
        assert cbc_encrypt(KEY, IV, b"x" * 16) != cbc_encrypt(KEY, other_iv, b"x" * 16)

    def test_chaining_propagates(self):
        # Same plaintext blocks encrypt differently under CBC.
        ct = cbc_encrypt(KEY, IV, b"A" * 32, pad=False)
        assert ct[:16] != ct[16:]

    def test_bad_iv_length(self):
        with pytest.raises(CryptoError):
            cbc_encrypt(KEY, b"short", b"x" * 16)

    def test_unpadded_requires_whole_blocks(self):
        with pytest.raises(CryptoError):
            cbc_encrypt(KEY, IV, b"x" * 15, pad=False)

    def test_decrypt_empty_rejected(self):
        with pytest.raises(CryptoError):
            cbc_decrypt(KEY, IV, b"")

    def test_tampered_padding_detected(self):
        ct = bytearray(cbc_encrypt(KEY, IV, b"hello"))
        ct[-1] ^= 0xFF
        with pytest.raises(CryptoError):
            cbc_decrypt(KEY, IV, bytes(ct))


class TestCtr:
    def test_nist_vector(self):
        pt = NIST_PT[:16]
        assert ctr_crypt(KEY, NIST_CTR_IV, pt) == NIST_CTR_CT

    @given(st.binary(max_size=200))
    @settings(max_examples=30)
    def test_involution(self, data):
        assert ctr_crypt(KEY, IV, ctr_crypt(KEY, IV, data)) == data

    def test_keystream_length(self):
        assert len(ctr_keystream(KEY, IV, 100)) == 100
        assert len(ctr_keystream(KEY, IV, 0)) == 0

    def test_counter_wraps(self):
        nonce = b"\xff" * 16  # increments wrap modulo 2^128
        stream = ctr_keystream(KEY, nonce, 32)
        assert stream[16:] == ctr_keystream(KEY, b"\x00" * 16, 16)

    def test_bad_nonce_length(self):
        with pytest.raises(CryptoError):
            ctr_crypt(KEY, b"short", b"data")


class TestEcb:
    def test_roundtrip(self):
        data = b"B" * 48
        assert ecb_decrypt(KEY, ecb_encrypt(KEY, data)) == data

    def test_identical_blocks_leak(self):
        # The well-known ECB weakness - also a correctness check.
        ct = ecb_encrypt(KEY, b"A" * 32)
        assert ct[:16] == ct[16:]

    def test_partial_block_rejected(self):
        with pytest.raises(CryptoError):
            ecb_encrypt(KEY, b"x" * 20)
        with pytest.raises(CryptoError):
            ecb_decrypt(KEY, b"x" * 20)
