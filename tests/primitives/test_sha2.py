"""Tests for the from-scratch SHA-2 family against hashlib and NIST vectors."""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro import trace
from repro.errors import CryptoError
from repro.primitives import (
    Sha224,
    Sha256,
    Sha384,
    Sha512,
    new_hash,
    sha224,
    sha256,
    sha384,
    sha512,
)

NIST_SHA256 = [
    (b"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"),
    (b"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"),
    (
        b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
    ),
]

NIST_SHA512 = [
    (
        b"abc",
        "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
        "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f",
    ),
]


class TestKnownVectors:
    @pytest.mark.parametrize("message,expected", NIST_SHA256)
    def test_sha256_nist(self, message, expected):
        assert sha256(message).hex() == expected

    @pytest.mark.parametrize("message,expected", NIST_SHA512)
    def test_sha512_nist(self, message, expected):
        assert sha512(message).hex() == expected

    def test_sha224_abc(self):
        assert (
            sha224(b"abc").hex()
            == "23097d223405d8228642a477bda255b32aadbce4bda0b3f7e36c9da7"
        )

    def test_sha384_abc(self):
        assert sha384(b"abc").hex() == (
            "cb00753f45a35e8bb5a03d699ac65007272c32ab0eded1631a8b605a43ff5bed"
            "8086072ba1e7cc2358baeca134c825a7"
        )

    def test_million_a_sha256(self):
        assert (
            sha256(b"a" * 1_000_000).hex()
            == "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        )


class TestAgainstHashlib:
    @given(st.binary(max_size=600))
    @settings(max_examples=60)
    def test_sha256_matches(self, data):
        assert sha256(data) == hashlib.sha256(data).digest()

    @given(st.binary(max_size=600))
    @settings(max_examples=40)
    def test_sha512_matches(self, data):
        assert sha512(data) == hashlib.sha512(data).digest()

    @pytest.mark.parametrize(
        "n", [0, 1, 55, 56, 57, 63, 64, 65, 111, 112, 119, 127, 128, 129, 257]
    )
    def test_padding_boundaries_all_variants(self, n):
        # Lengths straddling the Merkle-Damgard padding boundaries.
        data = bytes(range(256))[:n] if n <= 256 else bytes(n)
        assert sha224(data) == hashlib.sha224(data).digest()
        assert sha256(data) == hashlib.sha256(data).digest()
        assert sha384(data) == hashlib.sha384(data).digest()
        assert sha512(data) == hashlib.sha512(data).digest()


class TestStreaming:
    @given(st.binary(max_size=400), st.integers(0, 400))
    @settings(max_examples=40)
    def test_split_update_equals_oneshot(self, data, split):
        split = min(split, len(data))
        hasher = Sha256()
        hasher.update(data[:split])
        hasher.update(data[split:])
        assert hasher.digest() == sha256(data)

    def test_digest_is_idempotent(self):
        hasher = Sha256(b"hello")
        first = hasher.digest()
        assert hasher.digest() == first
        hasher.update(b" world")
        assert hasher.digest() == sha256(b"hello world")

    def test_copy_independence(self):
        hasher = Sha256(b"base")
        clone = hasher.copy()
        clone.update(b"-more")
        assert hasher.digest() == sha256(b"base")
        assert clone.digest() == sha256(b"base-more")

    def test_hexdigest(self):
        assert Sha256(b"abc").hexdigest() == sha256(b"abc").hex()

    def test_update_chaining(self):
        assert Sha256().update(b"ab").update(b"c").digest() == sha256(b"abc")

    def test_non_bytes_rejected(self):
        with pytest.raises(CryptoError):
            Sha256().update("not bytes")  # type: ignore[arg-type]


class TestFactoryAndTracing:
    def test_new_hash(self):
        assert new_hash("sha256", b"x").digest() == sha256(b"x")
        assert new_hash("sha384").digest_size == 48

    def test_unknown_hash(self):
        with pytest.raises(CryptoError):
            new_hash("md5")

    def test_block_counting_sha256(self):
        with trace.trace() as t:
            sha256(b"")  # 1 padded block
        assert t["sha2.block"] == 1
        with trace.trace() as t:
            sha256(b"x" * 64)  # one data block + one padding block
        assert t["sha2.block"] == 2
        with trace.trace() as t:
            sha256(b"x" * 55)  # still fits one block with padding
        assert t["sha2.block"] == 1

    def test_block_counting_sha512(self):
        with trace.trace() as t:
            sha512(b"x" * 128)
        assert t["sha2.block"] == 2

    def test_digest_sizes(self):
        assert len(sha224(b"")) == 28
        assert len(sha256(b"")) == 32
        assert len(sha384(b"")) == 48
        assert len(sha512(b"")) == 64
        assert Sha224.block_size == 64
        assert Sha384.block_size == 128
