"""Tests for AES-CMAC against the RFC 4493 vectors."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import trace
from repro.errors import CryptoError
from repro.primitives import cmac, cmac_verify

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
MSG64 = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52eff69f2445df4f9b17ad2b417be66c3710"
)

RFC4493 = [
    (b"", "bb1d6929e95937287fa37d129b756746"),
    (MSG64[:16], "070a16b46b4d4144f79bdd9dd04a287c"),
    (MSG64[:40], "dfa66747de9ae63030ca32611497c827"),
    (MSG64, "51f0bebf7e3b9d92fc49741779363cfe"),
]


class TestRfc4493:
    @pytest.mark.parametrize("message,expected", RFC4493)
    def test_vectors(self, message, expected):
        assert cmac(KEY, message).hex() == expected


class TestProperties:
    @given(st.binary(max_size=100))
    @settings(max_examples=30)
    def test_deterministic(self, message):
        assert cmac(KEY, message) == cmac(KEY, message)

    def test_key_separation(self):
        other = bytes.fromhex("603deb1015ca71be2b73aef0857d7781")
        assert cmac(KEY, b"msg") != cmac(other, b"msg")

    def test_message_sensitivity(self):
        assert cmac(KEY, b"msg0") != cmac(KEY, b"msg1")

    def test_block_boundary_distinction(self):
        # Complete vs incomplete final block use different subkeys.
        assert cmac(KEY, b"a" * 16) != cmac(KEY, b"a" * 15 + b"\x80")

    def test_truncation(self):
        full = cmac(KEY, b"message")
        assert cmac(KEY, b"message", tag_length=8) == full[:8]

    def test_bad_tag_length(self):
        with pytest.raises(CryptoError):
            cmac(KEY, b"m", tag_length=0)
        with pytest.raises(CryptoError):
            cmac(KEY, b"m", tag_length=17)

    def test_aes256_key(self):
        tag = cmac(b"\x01" * 32, b"message")
        assert len(tag) == 16


class TestVerify:
    def test_accepts_valid(self):
        tag = cmac(KEY, b"payload")
        assert cmac_verify(KEY, b"payload", tag)

    def test_accepts_truncated(self):
        tag = cmac(KEY, b"payload", tag_length=12)
        assert cmac_verify(KEY, b"payload", tag)

    def test_rejects_tampered(self):
        tag = bytearray(cmac(KEY, b"payload"))
        tag[5] ^= 1
        assert not cmac_verify(KEY, b"payload", bytes(tag))

    def test_rejects_wrong_message(self):
        assert not cmac_verify(KEY, b"other", cmac(KEY, b"payload"))

    def test_trace_event(self):
        with trace.trace() as t:
            cmac(KEY, b"x" * 32)
        assert t["cmac.call"] == 1
        assert t["aes.block"] >= 3  # subkey derivation + 2 blocks
