"""Tests for the Table II transmission-overhead accounting."""

from __future__ import annotations

import pytest

from repro.analysis import (
    PAPER_TABLE2,
    measure_overhead,
    overhead_table,
    render_overhead_table,
    verify_against_paper,
)
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def table():
    return overhead_table()


class TestTable2:
    def test_all_rows_match_paper(self, table):
        verify_against_paper(table)  # raises on mismatch

    @pytest.mark.parametrize(
        "protocol,steps,total", [(k, *v) for k, v in PAPER_TABLE2.items()]
    )
    def test_individual_rows(self, table, protocol, steps, total):
        row = table[protocol]
        assert row.n_steps == steps
        assert row.total_bytes == total

    def test_scianc_smallest_sts_close_to_s_ecdsa(self, table):
        # The §V-B narrative: SCIANC smallest, S-ECDSA/STS similar,
        # PORAMB largest.
        assert table["scianc"].total_bytes < table["s-ecdsa"].total_bytes
        assert table["poramb"].total_bytes > table["sts"].total_bytes
        assert abs(table["sts"].total_bytes - table["s-ecdsa"].total_bytes) <= 64

    def test_frame_counts_positive(self, table):
        for row in table.values():
            assert row.total_frames >= row.n_steps

    def test_measure_from_transcript(self, transcripts):
        overhead = measure_overhead(transcripts["sts"])
        assert overhead.n_steps == 4
        assert overhead.total_bytes == 491
        assert overhead.messages[0].layout == "A1: ID(16), XG(64)"

    def test_render(self, table):
        text = render_overhead_table(table)
        assert "MATCH" in text
        assert "MISMATCH" not in text

    def test_verify_raises_on_bad_row(self, table):
        import copy

        broken = copy.deepcopy(table)
        broken["sts"].messages.pop()
        with pytest.raises(AnalysisError, match="Table II mismatch"):
            verify_against_paper(broken)
