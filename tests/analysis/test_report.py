"""Tests for the machine-generated reproduction report."""

from __future__ import annotations

import pytest

from repro.analysis import build_report, write_report


@pytest.fixture(scope="module")
def report():
    return build_report()


class TestReport:
    def test_all_experiments_pass(self, report):
        assert report.all_pass, report.verdicts

    def test_sections_complete(self, report):
        assert set(report.sections) == set(report.verdicts) == {
            "tab1", "fig3", "fig4", "tab2", "fig7", "tab3", "fig8",
        }

    def test_markdown_structure(self, report):
        text = report.to_markdown()
        assert text.startswith("# Reproduction report")
        assert text.count("\n## ") == 7  # bars in bodies also contain '#'
        assert "PASS" in text and "FAIL" not in text

    def test_write_report(self, report, tmp_path):
        path = tmp_path / "report.md"
        written = write_report(str(path))
        assert written.all_pass
        content = path.read_text()
        assert "Table III" in content
        assert "BMS" in content  # the fig7 timeline made it in


class TestUnknownSections:
    """Regression: ``to_markdown`` raised KeyError on any section id not
    pre-registered in ``_SECTION_TITLES`` — unknown ids must render with
    the raw id as title instead."""

    def _report(self):
        from repro.analysis.report import ReproductionReport

        return ReproductionReport(
            sections={"tab1": "body", "exp9": "future experiment body"},
            verdicts={"tab1": True, "exp9": True},
        )

    def test_unknown_id_renders_instead_of_raising(self):
        text = self._report().to_markdown()
        assert "## exp9" in text
        assert "future experiment body" in text

    def test_unknown_id_in_verdict_list(self):
        text = self._report().to_markdown()
        assert "* `exp9` — exp9: **PASS**" in text

    def test_known_ids_keep_their_titles(self):
        text = self._report().to_markdown()
        assert "## Table I — KD execution time across devices" in text


class TestAttachObservability:
    def test_rollup_becomes_a_section(self):
        from repro.analysis.report import (
            ReproductionReport,
            attach_observability,
        )
        from repro.fleet import FleetConfig, run_fleet
        from repro.obs import Observer

        obs = Observer()
        run_fleet(
            FleetConfig(
                n_vehicles=2,
                seed=b"report-obs",
                records_per_vehicle=2,
                max_records=2,
                arrival_spread_ms=5.0,
            ),
            obs=obs,
        )
        report = ReproductionReport(
            sections={"tab1": "body"}, verdicts={"tab1": True}
        )
        attach_observability(report, obs)
        assert report.verdicts["obs"] is True
        assert report.all_pass
        text = report.to_markdown()
        assert "## Observability — fleet telemetry rollup" in text
        assert "fleet.records_sent" in text

    def test_invalid_observer_fails_the_section(self):
        from repro.analysis.report import (
            ReproductionReport,
            attach_observability,
        )
        from repro.obs import Observer

        obs = Observer()
        obs.spans.begin("leaked", "run", 0.0)  # left open: validate() raises
        report = ReproductionReport(sections={}, verdicts={})
        attach_observability(report, obs)
        assert report.verdicts["obs"] is False
        assert not report.all_pass
