"""Tests for the machine-generated reproduction report."""

from __future__ import annotations

import pytest

from repro.analysis import build_report, write_report


@pytest.fixture(scope="module")
def report():
    return build_report()


class TestReport:
    def test_all_experiments_pass(self, report):
        assert report.all_pass, report.verdicts

    def test_sections_complete(self, report):
        assert set(report.sections) == set(report.verdicts) == {
            "tab1", "fig3", "fig4", "tab2", "fig7", "tab3", "fig8",
        }

    def test_markdown_structure(self, report):
        text = report.to_markdown()
        assert text.startswith("# Reproduction report")
        assert text.count("\n## ") == 7  # bars in bodies also contain '#'
        assert "PASS" in text and "FAIL" not in text

    def test_write_report(self, report, tmp_path):
        path = tmp_path / "report.md"
        written = write_report(str(path))
        assert written.all_pass
        content = path.read_text()
        assert "Table III" in content
        assert "BMS" in content  # the fig7 timeline made it in
