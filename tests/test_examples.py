"""Examples smoke test: every ``examples/*.py`` must run clean.

Examples are documentation that executes; nothing rots faster than an
example nobody runs.  This test discovers every script under
``examples/`` (so a new example is covered the day it lands) and runs it
in quick mode (``REPRO_EXAMPLES_QUICK=1``, honored by the fleet-scale
examples to shrink their fleets) with the library importable from
``src/``.  A non-zero exit, a traceback or a tripped in-example
assertion fails the suite.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest

_REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
_EXAMPLES = sorted((_REPO_ROOT / "examples").glob("*.py"))


def test_every_example_is_collected():
    """The discovery glob itself must keep finding the examples."""
    names = {path.name for path in _EXAMPLES}
    assert "quickstart.py" in names
    assert "fleet_scenarios.py" in names
    assert len(names) >= 10


@pytest.mark.parametrize(
    "example", _EXAMPLES, ids=[path.stem for path in _EXAMPLES]
)
def test_example_runs_clean(example, tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["REPRO_EXAMPLES_QUICK"] = "1"
    result = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True,
        text=True,
        env=env,
        cwd=tmp_path,  # examples must not depend on (or dirty) the repo
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{example.name} exited {result.returncode}\n"
        f"stdout:\n{result.stdout[-2000:]}\n"
        f"stderr:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{example.name} printed nothing"
