"""Property-based invariants for the observability layer.

Three laws, each driven over randomly generated programs rather than
hand-picked cases:

1. **Snapshot merge is order-independent and associative** (with
   ``MetricsSnapshot.empty()`` as identity) — the algebra that lets a
   future process-parallel orchestrator fold per-shard telemetry in any
   completion order and land on the same bits.
2. **Random begin/end programs yield well-formed span trees** — ids
   stay sequential, ``validate()`` accepts exactly the programs that
   respect nesting.
3. **Equal (config, seed) ⇒ identical deterministic event streams** —
   the observability analogue of the golden-digest contract.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.fleet import FleetConfig, run_fleet
from repro.obs import MetricsRegistry, MetricsSnapshot, Observer, SpanRecorder

# -- metric program strategy --------------------------------------------------

_names = st.sampled_from(["lat", "records", "batch", "wait"])
_labels = st.fixed_dictionaries(
    {},
    optional={
        "shard": st.integers(0, 3),
        "kind": st.sampled_from(["a", "b"]),
    },
)
_values = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)

_ops = st.one_of(
    st.tuples(st.just("inc"), _names, _labels, st.integers(0, 1000)),
    st.tuples(st.just("gauge"), _names, _labels, _values),
    st.tuples(st.just("observe"), _names, _labels, _values),
)


def _run_program(ops) -> MetricsSnapshot:
    reg = MetricsRegistry()
    for op, name, labels, value in ops:
        if op == "inc":
            reg.counter(f"c.{name}", **labels).inc(value)
        elif op == "gauge":
            reg.gauge(f"g.{name}", **labels).record(value)
        else:
            reg.histogram(f"h.{name}", **labels).observe(value)
    return reg.snapshot()


_programs = st.lists(_ops, min_size=0, max_size=30)


class TestMergeAlgebra:
    @given(a=_programs, b=_programs)
    @settings(max_examples=60, deadline=None)
    def test_merge_is_commutative(self, a, b):
        snap_a, snap_b = _run_program(a), _run_program(b)
        assert snap_a.merge(snap_b) == snap_b.merge(snap_a)

    @given(a=_programs, b=_programs, c=_programs)
    @settings(max_examples=60, deadline=None)
    def test_merge_is_associative(self, a, b, c):
        snap_a, snap_b, snap_c = (
            _run_program(a), _run_program(b), _run_program(c),
        )
        left = snap_a.merge(snap_b).merge(snap_c)
        right = snap_a.merge(snap_b.merge(snap_c))
        assert left == right

    @given(a=_programs)
    @settings(max_examples=60, deadline=None)
    def test_empty_is_identity(self, a):
        snap = _run_program(a)
        assert snap.merge(MetricsSnapshot.empty()) == snap
        assert MetricsSnapshot.empty().merge(snap) == snap

    @given(a=_programs, b=_programs)
    @settings(max_examples=40, deadline=None)
    def test_merge_equals_interleaved_program(self, a, b):
        # Running A's ops and B's ops in one registry is the same as
        # merging their separate snapshots — merging loses nothing.
        combined = _run_program(list(a) + list(b))
        merged = _run_program(a).merge(_run_program(b))
        assert merged == combined

    @given(a=_programs, b=_programs)
    @settings(max_examples=40, deadline=None)
    def test_events_round_trip_after_merge(self, a, b):
        merged = _run_program(a).merge(_run_program(b))
        assert MetricsSnapshot.from_events(merged.events()) == merged


# -- span tree programs -------------------------------------------------------

@st.composite
def span_programs(draw):
    """A random well-nested program: a stack of begin/end at rising times."""
    steps = draw(st.lists(st.booleans(), min_size=1, max_size=40))
    program = []
    depth = 0
    clock = 0.0
    for push in steps:
        clock += draw(st.floats(0.0, 10.0, allow_nan=False))
        if push or depth == 0:
            program.append(("begin", clock))
            depth += 1
        else:
            program.append(("end", clock))
            depth -= 1
    while depth:
        clock += 1.0
        program.append(("end", clock))
        depth -= 1
    return program


class TestSpanTreeProperties:
    @given(program=span_programs())
    @settings(max_examples=60, deadline=None)
    def test_stack_programs_always_validate(self, program):
        rec = SpanRecorder()
        stack = []
        for index, (op, at_ms) in enumerate(program):
            if op == "begin":
                parent = stack[-1] if stack else None
                stack.append(
                    rec.begin(f"s{index}", "vehicle", at_ms, parent=parent)
                )
            else:
                rec.end(stack.pop(), at_ms)
        rec.validate()
        spans = rec.finished()
        # Ids are exactly 0..n-1 in begin order.
        assert [s.span_id for s in spans] == list(range(len(spans)))
        for span in spans:
            assert span.end_ms >= span.start_ms

    @given(program=span_programs())
    @settings(max_examples=30, deadline=None)
    def test_deterministic_dicts_are_reproducible(self, program):
        def run():
            rec = SpanRecorder(wall_clock=True)
            stack = []
            for index, (op, at_ms) in enumerate(program):
                if op == "begin":
                    parent = stack[-1] if stack else None
                    stack.append(
                        rec.begin(f"s{index}", "vehicle", at_ms,
                                  parent=parent)
                    )
                else:
                    rec.end(stack.pop(), at_ms)
            return rec

        first, second = run(), run()
        # wall_ns differs between runs; the deterministic view does not.
        assert [s.deterministic_dict() for s in first.finished()] == [
            s.deterministic_dict() for s in second.finished()
        ]


# -- whole-run determinism ----------------------------------------------------

_seeds = st.sampled_from(
    [b"obs-prop-a", b"obs-prop-b", b"obs-prop-c", b"obs-prop-d"]
)


class TestRunDeterminism:
    @given(
        seed=_seeds,
        n_vehicles=st.integers(2, 5),
        shards=st.sampled_from([1, 2]),
    )
    @settings(max_examples=8, deadline=None)
    def test_equal_config_and_seed_give_identical_streams(
        self, seed, n_vehicles, shards
    ):
        config = FleetConfig(
            n_vehicles=n_vehicles,
            seed=seed,
            records_per_vehicle=2,
            max_records=2,
            send_interval_ms=20.0,
            arrival_spread_ms=15.0,
            shards=shards,
        )

        def observed_run():
            obs = Observer(wall_clock=True, heartbeat_interval_ms=50.0)
            result = run_fleet(config, obs=obs)
            obs.validate()
            return result.stats.digest(), obs.deterministic_events()

        digest_a, events_a = observed_run()
        digest_b, events_b = observed_run()
        assert digest_a == digest_b
        assert events_a == events_b
        # And the stream is non-trivial: spans + metrics + heartbeats.
        kinds = {event["type"] for event in events_a}
        assert {"meta", "span", "heartbeat", "counter"} <= kinds

    @given(seed=_seeds)
    @settings(max_examples=4, deadline=None)
    def test_observed_digest_matches_unobserved(self, seed):
        config = FleetConfig(
            n_vehicles=3,
            seed=seed,
            records_per_vehicle=2,
            max_records=2,
            arrival_spread_ms=10.0,
        )
        plain = run_fleet(config).stats.digest()
        obs = Observer()
        assert run_fleet(config, obs=obs).stats.digest() == plain
