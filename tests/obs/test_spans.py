"""Unit tests for the deterministic span recorder."""

from __future__ import annotations

import pytest

from repro.errors import ObsError
from repro.obs import FLEET_CATEGORIES, Span, SpanRecorder


class TestSpanRecorder:
    def test_ids_are_sequential_in_begin_order(self):
        rec = SpanRecorder()
        first = rec.begin("a", "run", 0.0)
        second = rec.begin("b", "vehicle", 1.0, parent=first)
        third = rec.begin("c", "vehicle", 2.0, parent=first)
        assert (first, second, third) == (0, 1, 2)

    def test_end_returns_finished_span(self):
        rec = SpanRecorder()
        span_id = rec.begin("enroll", "enroll", 5.0, shard=1)
        span = rec.end(span_id, 12.5, latency=7.5)
        assert span.span_id == span_id
        assert span.start_ms == 5.0 and span.end_ms == 12.5
        assert span.duration_ms == 7.5
        assert dict(span.attributes) == {"shard": 1, "latency": 7.5}

    def test_unknown_parent_rejected(self):
        rec = SpanRecorder()
        with pytest.raises(ObsError, match="unknown parent"):
            rec.begin("orphan", "vehicle", 0.0, parent=99)

    def test_double_end_rejected(self):
        rec = SpanRecorder()
        span_id = rec.begin("a", "run", 0.0)
        rec.end(span_id, 1.0)
        with pytest.raises(ObsError, match="not open"):
            rec.end(span_id, 2.0)

    def test_negative_interval_rejected(self):
        rec = SpanRecorder()
        span_id = rec.begin("a", "run", 10.0)
        with pytest.raises(ObsError, match="before"):
            rec.end(span_id, 5.0)

    def test_event_is_zero_duration(self):
        rec = SpanRecorder()
        run = rec.begin("run", "run", 0.0)
        marker = rec.event("rejoin", "rejoin", 3.0, parent=run)
        assert marker.start_ms == marker.end_ms == 3.0
        rec.end(run, 10.0)
        rec.validate()

    def test_finished_sorted_by_id(self):
        rec = SpanRecorder()
        outer = rec.begin("outer", "run", 0.0)
        inner = rec.begin("inner", "vehicle", 1.0, parent=outer)
        rec.end(inner, 2.0)  # inner finishes first...
        rec.end(outer, 3.0)
        assert [s.span_id for s in rec.finished()] == [0, 1]

    def test_by_category(self):
        rec = SpanRecorder()
        run = rec.begin("run", "run", 0.0)
        veh = rec.begin("veh", "vehicle", 0.0, parent=run)
        rec.end(veh, 1.0)
        rec.end(run, 2.0)
        assert [s.name for s in rec.by_category("vehicle")] == ["veh"]
        assert rec.by_category("migrate") == ()


class TestValidation:
    def test_open_span_fails_validation(self):
        rec = SpanRecorder()
        rec.begin("leak", "run", 0.0)
        with pytest.raises(ObsError, match="still open"):
            rec.validate()

    def test_child_escaping_parent_fails(self):
        rec = SpanRecorder()
        run = rec.begin("run", "run", 0.0)
        child = rec.begin("child", "vehicle", 5.0, parent=run)
        rec.end(child, 20.0)  # past the parent's end below
        rec.end(run, 10.0)
        with pytest.raises(ObsError, match="escapes parent"):
            rec.validate()

    def test_nested_tree_validates(self):
        rec = SpanRecorder()
        run = rec.begin("run", "run", 0.0)
        veh = rec.begin("veh", "vehicle", 1.0, parent=run)
        enroll = rec.begin("enroll", "enroll", 1.0, parent=veh)
        rec.end(enroll, 4.0)
        rec.end(veh, 9.0)
        rec.end(run, 10.0)
        rec.validate()


class TestSerialization:
    def test_deterministic_dict_strips_wall(self):
        span = Span(
            span_id=3, parent_id=0, name="x", category="enroll",
            start_ms=1.0, end_ms=2.0, attributes=(("shard", 0),),
            wall_ns=12345,
        )
        det = span.deterministic_dict()
        assert "wall" not in det
        assert det["attrs"] == {"shard": 0}
        full = span.as_dict()
        assert full["wall"] == {"wall_ns": 12345}

    def test_wall_clock_recorder_annotates(self):
        rec = SpanRecorder(wall_clock=True)
        span = rec.end(rec.begin("a", "run", 0.0), 1.0)
        assert span.wall_ns is not None and span.wall_ns >= 0

    def test_default_recorder_has_no_wall(self):
        rec = SpanRecorder()
        span = rec.end(rec.begin("a", "run", 0.0), 1.0)
        assert span.wall_ns is None

    def test_non_json_attrs_coerced_to_str(self):
        rec = SpanRecorder()
        span = rec.end(rec.begin("a", "run", 0.0, blob=b"\x00"), 1.0)
        assert dict(span.attributes)["blob"] == str(b"\x00")


def test_fleet_categories_cover_instrumentation():
    # The instrumentation's category names must stay in the advisory set
    # (exporters group tracks by it).
    for needed in ("run", "shard", "vehicle", "enroll", "establish",
                   "v2v", "migrate", "ca-batch", "injection"):
        assert needed in FLEET_CATEGORIES
