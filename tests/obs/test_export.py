"""Unit tests for the JSONL / Chrome-trace exporters and the validator."""

from __future__ import annotations

import json

import pytest

from repro.errors import ObsError
from repro.obs import (
    MetricsRegistry,
    SpanRecorder,
    chrome_trace,
    markdown_rollup,
    read_jsonl,
    validate_chrome_trace,
    validate_events,
    validate_schema,
    write_chrome_trace,
    write_jsonl,
)


def _small_tree(wall_clock=False):
    rec = SpanRecorder(wall_clock=wall_clock)
    run = rec.begin("run", "run", 0.0)
    shard = rec.begin("shard0", "shard", 0.0, parent=run, shard=0)
    veh = rec.begin("veh0000", "vehicle", 1.0, parent=run, vehicle=0, shard=0)
    rec.end(veh, 8.0, records=3)
    rec.end(shard, 9.0)
    rec.end(run, 10.0)
    rec.validate()
    return rec


class TestMiniValidator:
    def test_type_mismatch_names_path(self):
        with pytest.raises(ObsError, match=r"\$\.x"):
            validate_schema(
                {"x": "no"},
                {"type": "object", "properties": {"x": {"type": "integer"}}},
            )

    def test_bool_is_not_integer(self):
        with pytest.raises(ObsError):
            validate_schema(True, {"type": "integer"})

    def test_type_list_accepts_null(self):
        validate_schema(None, {"type": ["string", "null"]})

    def test_minimum_enforced(self):
        with pytest.raises(ObsError, match="below minimum"):
            validate_schema(-1, {"type": "integer", "minimum": 0})

    def test_required_and_enum(self):
        with pytest.raises(ObsError, match="missing required"):
            validate_schema({}, {"type": "object", "required": ["a"]})
        with pytest.raises(ObsError, match="not in enum"):
            validate_schema("z", {"enum": ["a", "b"]})

    def test_items_recurse(self):
        with pytest.raises(ObsError, match=r"\$\[1\]"):
            validate_schema([1, "x"], {"type": "array",
                                       "items": {"type": "integer"}})

    def test_additional_properties_false(self):
        with pytest.raises(ObsError, match="unexpected key"):
            validate_schema(
                {"a": 1, "b": 2},
                {"type": "object", "properties": {"a": {}},
                 "additionalProperties": False},
            )


class TestEventValidation:
    def test_valid_stream(self):
        rec = _small_tree()
        events = [
            {"type": "meta", "run": "fleet", "sim_end_ms": 10.0},
            *[span.as_dict() for span in rec.finished()],
            {"type": "heartbeat", "sim_ms": 5.0, "vehicles_done": 1,
             "vehicles_total": 1, "records_sent": 3},
        ]
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").record(1.0)
        reg.histogram("h").observe(2.0)
        events.extend(reg.snapshot().events())
        assert validate_events(events) == len(events)

    def test_unknown_type_rejected(self):
        with pytest.raises(ObsError, match="unknown event type"):
            validate_events([{"type": "mystery"}])

    def test_typeless_event_rejected(self):
        with pytest.raises(ObsError, match="not an object"):
            validate_events([{"name": "no type"}])

    def test_malformed_span_rejected(self):
        bad = _small_tree().finished()[0].as_dict()
        del bad["start_ms"]
        with pytest.raises(ObsError, match="start_ms"):
            validate_events([bad])


class TestJsonl:
    def test_write_read_round_trip(self, tmp_path):
        events = [
            {"type": "meta", "run": "fleet", "sim_end_ms": 1.0},
            {"type": "counter", "name": "c", "labels": {}, "value": 3},
        ]
        path = tmp_path / "events.jsonl"
        assert write_jsonl(path, events) == 2
        assert read_jsonl(path) == events

    def test_lines_are_individually_parseable(self, tmp_path):
        path = tmp_path / "events.jsonl"
        write_jsonl(path, [{"type": "meta", "run": "x", "sim_end_ms": 0.0}])
        for line in path.read_text().splitlines():
            json.loads(line)

    def test_corrupt_line_raises_obs_error_with_path_and_line(
        self, tmp_path
    ):
        # Regression: a corrupt archive used to leak the raw
        # json.JSONDecodeError with no file/line context.
        path = tmp_path / "corrupt.jsonl"
        path.write_text(
            '{"type": "meta", "run": "x", "sim_end_ms": 0.0}\n'
            "{not json\n"
        )
        with pytest.raises(ObsError, match=r"corrupt\.jsonl.*line 2"):
            read_jsonl(path)

    def test_corrupt_line_number_skips_blank_lines(self, tmp_path):
        path = tmp_path / "blank.jsonl"
        path.write_text(
            '{"type": "meta", "run": "x", "sim_end_ms": 0.0}\n'
            "\n"
            "{oops\n"
        )
        # The reported number is the physical archive line, blanks
        # included, so editors jump to the right place.
        with pytest.raises(ObsError, match="line 3"):
            read_jsonl(path)

    def test_validate_on_load(self, tmp_path):
        path = tmp_path / "invalid.jsonl"
        write_jsonl(path, [{"type": "meta", "run": "x", "sim_end_ms": 0.0}])
        assert len(read_jsonl(path, validate=True)) == 1
        write_jsonl(path, [{"type": "not-a-real-event"}])
        assert len(read_jsonl(path)) == 1  # opt-in: default stays lax
        with pytest.raises(ObsError, match="not-a-real-event"):
            read_jsonl(path, validate=True)


class TestChromeTrace:
    def test_track_layout(self):
        rec = _small_tree()
        trace = chrome_trace(rec.finished())
        assert validate_chrome_trace(trace) == len(trace["traceEvents"])
        spans = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        by_name = {e["name"]: e for e in spans}
        assert by_name["run"]["tid"] == 0
        assert by_name["shard0"]["tid"] == 100
        assert by_name["veh0000"]["tid"] == 1000  # vehicle beats shard attr
        # Metadata header names each track.
        labels = {
            e["tid"]: e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M"
        }
        assert labels == {0: "fleet run", 100: "shard 0",
                          1000: "vehicle 0"}

    def test_timestamps_are_sim_microseconds(self):
        rec = _small_tree()
        trace = chrome_trace(rec.finished())
        veh = next(
            e for e in trace["traceEvents"] if e["name"] == "veh0000"
        )
        assert veh["ts"] == 1000.0 and veh["dur"] == 7000.0

    def test_heartbeats_become_counter_series(self):
        beat = {"type": "heartbeat", "sim_ms": 5.0, "vehicles_done": 1,
                "vehicles_total": 2, "records_sent": 3}
        trace = chrome_trace(_small_tree().finished(), heartbeats=[beat])
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert counters[0]["args"] == {"vehicles_done": 1,
                                       "records_sent": 3}
        validate_chrome_trace(trace)

    def test_wall_ns_lands_in_args(self):
        rec = _small_tree(wall_clock=True)
        trace = chrome_trace(rec.finished())
        run = next(e for e in trace["traceEvents"] if e["name"] == "run")
        assert "wall_ns" in run["args"]

    def test_write_chrome_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        written = write_chrome_trace(path, _small_tree().finished(),
                                     meta={"digest": "abc"})
        on_disk = json.loads(path.read_text())
        assert on_disk == written
        assert on_disk["metadata"]["digest"] == "abc"


class TestMarkdownRollup:
    def test_rollup_sections(self):
        rec = _small_tree()
        reg = MetricsRegistry()
        reg.counter("fleet.records_sent", shard=0).inc(3)
        reg.gauge("fleet.ca_max_batch", shard=0).record(4)
        reg.histogram("fleet.enrollment_latency_ms", shard=0).observe(7.0)
        beat = {"type": "heartbeat", "sim_ms": 10.0, "vehicles_done": 1,
                "vehicles_total": 1, "records_sent": 3,
                "wall": {"peak_rss_kb": 4096}}
        text = markdown_rollup(
            rec.finished(), reg.snapshot(), heartbeats=[beat],
            meta={"run": "fleet", "n_vehicles": 1, "sim_end_ms": 10.0},
        )
        assert "Run: run=fleet, n_vehicles=1" in text
        assert "| span category |" in text and "| vehicle | 1 |" in text
        assert "fleet.enrollment_latency_ms" in text
        assert "fleet.records_sent" in text
        assert "1/1 vehicles" in text
        assert "Peak RSS (non-deterministic): 4096 kB." in text

    def test_empty_rollup(self):
        from repro.obs import MetricsSnapshot

        text = markdown_rollup((), MetricsSnapshot.empty())
        assert text == "No telemetry recorded.\n"
