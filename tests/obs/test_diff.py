"""Run-diffing tests: localization correctness and the O(depth) bound."""

from __future__ import annotations

import copy
import json

import pytest

from repro.fleet import FleetConfig, run_fleet
from repro.obs import (
    DigestTree,
    Observer,
    diff_runs,
    event_tree_path,
    read_jsonl,
    write_jsonl,
)


@pytest.fixture(scope="module")
def big_run(tmp_path_factory):
    """One 1k-vehicle observed run, archived — shared by the module."""
    obs = Observer()
    run_fleet(
        FleetConfig(
            n_vehicles=1_000,
            seed=b"diff-localization",
            records_per_vehicle=2,
            max_records=2,
            send_interval_ms=20.0,
            arrival_spread_ms=150.0,
            shards=4,
            backend="accelerated",
        ),
        obs=obs,
    )
    path = tmp_path_factory.mktemp("diff") / "big.jsonl"
    write_jsonl(path, obs.deterministic_events())
    return path


class TestIdentical:
    def test_self_diff_is_one_comparison(self, big_run):
        report = diff_runs(big_run, big_run)
        assert not report.diverged
        assert report.kind == "identical"
        assert report.nodes_compared == 1
        assert report.a_root == report.b_root

    def test_identical_markdown_and_json(self, big_run):
        report = diff_runs(big_run, big_run)
        assert "identical" in report.to_markdown()
        assert json.loads(report.to_json())["diverged"] is False


class TestLocalization:
    def test_single_event_mutation_is_localized_exactly(self, big_run):
        """The acceptance proof: mutate one event in a 1k-vehicle
        archive; ``diff_runs`` must name exactly that vehicle/span path
        in O(tree-depth) node comparisons."""
        events = read_jsonl(big_run)
        mutated = copy.deepcopy(events)
        target_index = next(
            i
            for i, e in enumerate(mutated)
            if e.get("type") == "span"
            and e.get("cat") == "establish"
            and e.get("attrs", {}).get("vehicle", 0) > 500
        )
        target = mutated[target_index]
        target["end_ms"] += 0.5

        report = diff_runs(events, mutated)
        assert report.diverged
        assert report.kind == "changed"
        # Exactly the mutated leaf's tree path, nothing else.
        assert report.path == event_tree_path(target)
        assert report.delta == {
            "end_ms": [
                events[target_index]["end_ms"],
                target["end_ms"],
            ]
        }
        # Archive line numbers point at the mutated event (1-based).
        assert report.left_lines == (target_index + 1,)
        assert report.right_lines == (target_index + 1,)
        # Only the one leaf diverged, so no diverging siblings anywhere
        # on the walk and no metric-plane fallout.
        assert report.sibling_divergences == ()
        assert report.metric_diff == {}

    def test_localization_is_o_depth_not_o_events(self, big_run):
        """The walk's comparison count is bounded by fanout x depth —
        with 8-digit ids grouped 2 per level the vehicle trie is 4
        levels of fanout ≤ 100 under a root of ~10 sections, far below
        the ~3k events in the archive."""
        events = read_jsonl(big_run)
        assert len(events) > 3_000  # the bound must beat a real corpus
        mutated = copy.deepcopy(events)
        for event in mutated:
            if (
                event.get("type") == "span"
                and event.get("attrs", {}).get("vehicle") == 987
                and event.get("cat") == "vehicle"
            ):
                event["end_ms"] += 1.0
                break
        report = diff_runs(events, mutated)
        assert report.diverged
        # Root + (sections + radix fanout) per level of the 5-deep
        # descent: comfortably under 600 even in the worst bucket, and
        # independent of the event population.
        assert report.nodes_compared < 600

    def test_subtree_only_in_one_run(self, big_run):
        events = read_jsonl(big_run)
        truncated = [
            e
            for e in events
            if not (
                e.get("type") == "span"
                and e.get("attrs", {}).get("vehicle") == 3
            )
        ]
        report = diff_runs(events, truncated)
        assert report.diverged
        assert report.kind == "only-in-a"
        assert report.path[0] == "veh:00xxxxxx"

    def test_include_restricts_the_comparison(self, big_run):
        events = read_jsonl(big_run)
        mutated = copy.deepcopy(events)
        for event in mutated:
            if event.get("type") == "heartbeat":
                event["records_sent"] += 1
                break
        # A heartbeat-only mutation is invisible on the metric plane...
        metric_report = diff_runs(events, mutated, include=("metrics",))
        assert not metric_report.diverged
        # ...and localized on the heartbeat plane.
        beat_report = diff_runs(events, mutated, include=("heartbeats",))
        assert beat_report.diverged
        assert beat_report.path[0] == "heartbeats"


class TestMetricDiff:
    def test_metric_divergence_renders_snapshot_diff(self):
        def counter(value):
            return {
                "type": "counter",
                "name": "fleet.sessions",
                "labels": {"shard": "0"},
                "value": value,
            }

        report = diff_runs([counter(3)], [counter(5)])
        assert report.diverged
        assert report.metric_diff  # per-series delta included
        markdown = report.to_markdown()
        assert "fleet.sessions" in markdown
        assert "| value | 3 | 5 |" in markdown

    def test_inputs_may_be_trees_observers_or_archives(self, big_run):
        tree = DigestTree.from_events(read_jsonl(big_run))
        assert not diff_runs(tree, big_run).diverged
        obs = Observer()
        run_fleet(
            FleetConfig(
                n_vehicles=2,
                seed=b"diff-inputs",
                records_per_vehicle=2,
                max_records=2,
                arrival_spread_ms=5.0,
            ),
            obs=obs,
        )
        assert not diff_runs(obs, obs.digest_tree()).diverged
