"""Property-based laws of the digest tree (`repro.obs.tree`).

Three algebraic claims, each driven over random metric programs:

1. **Permutation invariance** — the root digest hashes *content*, not
   archive order: shuffling the event list never changes the root
   (only the per-leaf line annotations move).
2. **Split/merge ≡ whole-run** — partitioning a program across two
   builders and merging the trees lands on the same root as building
   one tree from the whole program; metric leaves fold (counters add,
   gauges max, histograms merge exactly).
3. **Worker-absorb law** — the tree of a parent registry that
   ``absorb``-ed worker snapshots equals the merge of the workers' own
   subtrees, the algebra the parallel orchestrator's merge proof
   verifies on every run.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.obs import DigestTree, MetricsRegistry

# -- metric program strategy --------------------------------------------------

_names = st.sampled_from(["lat", "records", "batch", "wait"])
_labels = st.fixed_dictionaries(
    {},
    optional={
        "shard": st.integers(0, 3),
        "kind": st.sampled_from(["a", "b"]),
    },
)
_values = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)

_ops = st.one_of(
    st.tuples(st.just("inc"), _names, _labels, st.integers(0, 1000)),
    st.tuples(st.just("gauge"), _names, _labels, _values),
    st.tuples(st.just("observe"), _names, _labels, _values),
)

_programs = st.lists(_ops, min_size=0, max_size=30)


def _registry(ops) -> MetricsRegistry:
    reg = MetricsRegistry()
    for op, name, labels, value in ops:
        if op == "inc":
            reg.counter(f"c.{name}", **labels).inc(value)
        elif op == "gauge":
            reg.gauge(f"g.{name}", **labels).record(value)
        else:
            reg.histogram(f"h.{name}", **labels).observe(value)
    return reg


def _events(ops) -> list:
    return _registry(ops).snapshot().events()


class TestPermutationInvariance:
    @given(program=_programs, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_shuffled_metric_events_keep_the_root(self, program, data):
        events = _events(program)
        shuffled = data.draw(st.permutations(events))
        assert (
            DigestTree.from_events(shuffled).root_digest
            == DigestTree.from_events(events).root_digest
        )

    @given(program=_programs, data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_only_line_annotations_depend_on_order(self, program, data):
        events = _events(program)
        shuffled = data.draw(st.permutations(events))
        a = DigestTree.from_events(events)
        b = DigestTree.from_events(shuffled)
        assert a.leaves() == b.leaves()
        for path in a.leaves():
            assert a.node(path).digest == b.node(path).digest


class TestSplitMergeLaw:
    @given(program=_programs, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_partitioned_build_merges_to_the_whole(self, program, data):
        # Split the *program* (not the folded events): each op lands in
        # one of two registries, so counters genuinely split their sums
        # and histograms their observations across the parts.
        mask = data.draw(
            st.lists(
                st.booleans(),
                min_size=len(program),
                max_size=len(program),
            )
        )
        left = [op for op, keep in zip(program, mask) if keep]
        right = [op for op, keep in zip(program, mask) if not keep]
        merged = DigestTree.from_events(_events(left)).merge(
            DigestTree.from_events(_events(right))
        )
        whole = DigestTree.from_events(_events(program))
        assert merged.root_digest == whole.root_digest

    @given(a=_programs, b=_programs, c=_programs)
    @settings(max_examples=40, deadline=None)
    def test_merge_is_associative_and_commutative(self, a, b, c):
        ta, tb, tc = (
            DigestTree.from_events(_events(p)) for p in (a, b, c)
        )
        assert (
            ta.merge(tb).merge(tc).root_digest
            == ta.merge(tb.merge(tc)).root_digest
        )
        assert ta.merge(tb).root_digest == tb.merge(ta).root_digest

    @given(a=_programs)
    @settings(max_examples=30, deadline=None)
    def test_empty_tree_is_identity(self, a):
        tree = DigestTree.from_events(_events(a))
        empty = DigestTree.from_events([])
        assert tree.merge(empty).root_digest == tree.root_digest


class TestWorkerAbsorbLaw:
    @given(workers=st.lists(_programs, min_size=1, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_absorbed_registry_tree_equals_merged_subtrees(self, workers):
        # The parallel orchestrator's merge proof, as an algebraic law:
        # each worker ships DigestTree.from_metrics(its snapshot); the
        # parent absorbs the snapshots and recomputes — both sides must
        # land on the same root for every partition of work.
        parent = MetricsRegistry()
        subtrees = []
        for program in workers:
            snap = _registry(program).snapshot()
            parent.absorb(snap)
            subtrees.append(DigestTree.from_metrics(snap))
        folded = subtrees[0].merge(*subtrees[1:])
        recomputed = DigestTree.from_metrics(parent.snapshot())
        assert folded.root_digest == recomputed.root_digest

    @given(a=_programs, b=_programs)
    @settings(max_examples=40, deadline=None)
    def test_from_metrics_commutes_with_snapshot_merge(self, a, b):
        snap_a = _registry(a).snapshot()
        snap_b = _registry(b).snapshot()
        via_snapshots = DigestTree.from_metrics(snap_a.merge(snap_b))
        via_trees = DigestTree.from_metrics(snap_a).merge(
            DigestTree.from_metrics(snap_b)
        )
        assert via_snapshots.root_digest == via_trees.root_digest
