"""Subprocess smoke tests for the ``python -m repro.obs`` archive CLI."""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.fleet import FleetConfig, run_fleet
from repro.obs import Observer, write_jsonl
from repro.obs.__main__ import build_parser, main

_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def _cli(*args, check=False):
    """Run the CLI in a real subprocess; return (exit_code, stdout+stderr)."""
    env = dict(os.environ, PYTHONPATH=os.path.abspath(_SRC))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.obs", *map(str, args)],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    if check and proc.returncode != 0:
        raise AssertionError(proc.stdout + proc.stderr)
    return proc.returncode, proc.stdout + proc.stderr


@pytest.fixture(scope="module")
def archive(tmp_path_factory):
    """One observed quick run, archived for the whole module."""
    obs = Observer(heartbeat_interval_ms=500.0)
    run_fleet(
        FleetConfig(
            n_vehicles=4,
            seed=b"cli-smoke",
            records_per_vehicle=3,
            max_records=3,
            arrival_spread_ms=25.0,
            shards=2,
        ),
        obs=obs,
    )
    path = tmp_path_factory.mktemp("cli") / "run.jsonl"
    write_jsonl(path, obs.deterministic_events())
    return path


@pytest.fixture(scope="module")
def forked_archive(archive, tmp_path_factory):
    """The same fleet with one extra record per vehicle."""
    obs = Observer(heartbeat_interval_ms=500.0)
    run_fleet(
        FleetConfig(
            n_vehicles=4,
            seed=b"cli-smoke",
            records_per_vehicle=4,
            max_records=4,
            arrival_spread_ms=25.0,
            shards=2,
        ),
        obs=obs,
    )
    path = tmp_path_factory.mktemp("cli") / "forked.jsonl"
    write_jsonl(path, obs.deterministic_events())
    return path


class TestValidate:
    def test_clean_archive_exits_zero(self, archive):
        code, out = _cli("validate", archive)
        assert code == 0
        assert "all valid" in out

    def test_corrupt_archive_exits_one_with_line(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "meta", "run": "x", "sim_end_ms": 0.0}\n{oops\n')
        code, out = _cli("validate", bad)
        assert code == 1
        assert "line 2" in out

    def test_invalid_event_exits_one(self, tmp_path):
        bad = tmp_path / "invalid.jsonl"
        bad.write_text('{"type": "mystery"}\n')
        code, out = _cli("validate", bad)
        assert code == 1


class TestLint:
    def test_clean_archive_exits_zero(self, archive):
        code, out = _cli("lint", archive)
        assert code == 0
        assert "clean" in out

    def test_violation_exits_one_and_names_rule_and_line(self, tmp_path):
        dirty = tmp_path / "dirty.jsonl"
        write_jsonl(
            dirty,
            [
                {
                    "type": "heartbeat", "sim_ms": 1.0, "vehicles_done": 2,
                    "vehicles_total": 2, "records_sent": 5,
                },
                {
                    "type": "heartbeat", "sim_ms": 2.0, "vehicles_done": 1,
                    "vehicles_total": 2, "records_sent": 5,
                },
            ],
        )
        code, out = _cli("lint", dirty)
        assert code == 1
        assert "counter-monotonic:2:" in out

    def test_rules_flag_restricts_selection(self, tmp_path):
        dirty = tmp_path / "dirty.jsonl"
        write_jsonl(dirty, [
            {"type": "span", "id": 0, "parent": None, "name": "run",
             "cat": "run", "start_ms": 0.0, "end_ms": 1.0, "attrs": {}},
        ])
        # Violates heartbeat-coverage, clean under span-nesting.
        assert _cli("lint", dirty)[0] == 1
        assert _cli("lint", dirty, "--rules", "span-nesting")[0] == 0


class TestDiff:
    def test_self_diff_exits_zero(self, archive):
        code, out = _cli("diff", archive, archive)
        assert code == 0
        assert "identical" in out

    def test_divergence_exits_one_with_path(self, archive, forked_archive):
        code, out = _cli("diff", archive, forked_archive)
        assert code == 1
        assert "First divergence" in out

    def test_json_output_parses(self, archive, forked_archive):
        code, out = _cli("diff", archive, forked_archive, "--json")
        assert code == 1
        payload = json.loads(out)
        assert payload["diverged"] is True
        assert payload["path"]

    def test_only_restricts_sections(self, archive, forked_archive):
        # The fork changes record counts, so even the metric plane
        # diverges — but a metrics-only diff of identical archives
        # must stay clean.
        assert _cli(
            "diff", archive, archive, "--only", "metrics"
        )[0] == 0
        assert _cli(
            "diff", archive, forked_archive, "--only", "metrics"
        )[0] == 1


class TestPerfetto:
    def test_rebuild_round_trips(self, archive, tmp_path):
        out_path = tmp_path / "trace.json"
        code, out = _cli("perfetto", archive, "-o", out_path, check=True)
        assert code == 0
        from repro.obs import validate_chrome_trace

        trace = json.loads(out_path.read_text())
        assert validate_chrome_trace(trace) > 0


class TestParser:
    def test_every_subcommand_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for sub in ("validate", "lint", "diff", "perfetto"):
            assert sub in text

    def test_main_is_importable_without_subprocess(self, archive):
        # In-process path for coverage: same exit-code contract.
        assert main(["lint", str(archive)]) == 0
