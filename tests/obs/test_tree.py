"""Unit tests for the hierarchical digest tree (`repro.obs.tree`)."""

from __future__ import annotations

import pytest

from repro.errors import ObsError
from repro.fleet import FleetConfig, run_fleet
from repro.obs import (
    DigestTree,
    DigestTreeBuilder,
    Observer,
    TREE_SECTIONS,
    event_tree_path,
)
from repro.obs.tree import _radix


def _meta():
    return {"type": "meta", "run": "fleet", "sim_end_ms": 10.0}


def _span(span_id, **attrs):
    return {
        "type": "span",
        "id": span_id,
        "parent": None,
        "name": f"s{span_id}",
        "cat": "vehicle" if "vehicle" in attrs else "run",
        "start_ms": 0.0,
        "end_ms": 1.0,
        "attrs": attrs,
    }


def _counter(name, value, **labels):
    return {
        "type": "counter",
        "name": name,
        "labels": {k: str(v) for k, v in labels.items()},
        "value": value,
    }


def _beat(sim_ms, done=1):
    return {
        "type": "heartbeat",
        "sim_ms": sim_ms,
        "vehicles_done": done,
        "vehicles_total": 2,
        "records_sent": done,
    }


class TestRadix:
    def test_fixed_fanout_path(self):
        assert _radix("veh", 1234) == (
            "veh:00xxxxxx",
            "veh:0000xxxx",
            "veh:000012xx",
            "veh:00001234",
        )

    def test_every_bucket_has_bounded_fanout(self):
        # 10_000 ids → every trie node ends up with ≤ 100 children.
        children: dict = {}
        for i in range(10_000):
            path = ("run", *_radix("veh", i))
            for parent, child in zip(path, path[1:]):
                children.setdefault(parent, set()).add(child)
        assert max(len(kids) for kids in children.values()) <= 100


class TestEventPlacement:
    def test_vehicle_span_under_vehicle_radix(self):
        path = event_tree_path(_span(7, vehicle=42, shard=1))
        assert path[:-1] == _radix("veh", 42)
        assert path[-1].startswith("span:vehicle:")

    def test_shard_span_under_shard(self):
        event = _span(3, shard=1)
        event["cat"] = "shard"
        assert event_tree_path(event)[0] == "shard:1"

    def test_run_span_under_spans_trie(self):
        assert event_tree_path(_span(5))[0] == "spans"

    def test_sharded_metric_under_shard(self):
        path = event_tree_path(_counter("fleet.sessions", 3, shard=0))
        assert path[0] == "shard:0"
        assert path[1] == "metrics"

    def test_unsharded_metric_under_metrics(self):
        path = event_tree_path(_counter("fleet.migrations", 1))
        assert path[0] == "metrics"

    def test_heartbeat_keyed_by_stream_seq(self):
        assert event_tree_path(_beat(1.0), heartbeat_seq=3)[-1] == (
            "beat:00000003"
        )

    def test_unknown_type_rejected(self):
        with pytest.raises(ObsError, match="unknown"):
            event_tree_path({"type": "mystery"})


class TestBuilder:
    def test_root_changes_with_any_event_change(self):
        events = [_meta(), _span(0, vehicle=1), _counter("c", 1)]
        base = DigestTree.from_events(events).root_digest
        changed = [_meta(), _span(0, vehicle=1), _counter("c", 2)]
        assert DigestTree.from_events(changed).root_digest != base

    def test_wall_annotations_do_not_change_the_root(self):
        beat = _beat(5.0)
        dirty = {**beat, "wall": {"peak_rss_kb": 12345}}
        clean_root = DigestTree.from_events([_meta(), beat]).root_digest
        dirty_root = DigestTree.from_events([_meta(), dirty]).root_digest
        assert clean_root == dirty_root

    def test_duplicate_span_leaf_rejected(self):
        builder = DigestTreeBuilder()
        builder.add_event(_span(1, vehicle=2))
        with pytest.raises(ObsError, match="duplicate"):
            builder.add_event(_span(1, vehicle=2))

    def test_duplicate_metric_leaf_folds(self):
        builder = DigestTreeBuilder()
        builder.add_event(_counter("c", 3))
        builder.add_event(_counter("c", 4))
        tree = builder.build()
        assert tree.node(("metrics", "counter:c")).payload["value"] == 7

    def test_include_filter(self):
        events = [_meta(), _span(0, vehicle=1), _counter("c", 1), _beat(1.0)]
        metrics_only = DigestTree.from_events(events, include=("metrics",))
        assert metrics_only.leaf_count == 1
        assert set(metrics_only.root.children) == {"metrics"}

    def test_unknown_section_rejected(self):
        with pytest.raises(ObsError, match="unknown tree sections"):
            DigestTreeBuilder(include=("not-a-section",))

    def test_sections_constant_matches_builder(self):
        for section in TREE_SECTIONS:
            DigestTreeBuilder(include=(section,))

    def test_leaf_lines_are_archive_lines(self):
        events = [_meta(), _span(0, vehicle=1)]
        tree = DigestTree.from_events(events)
        leaf = tree.node(event_tree_path(events[1]))
        assert leaf.lines == (2,)


class TestMerge:
    def test_merge_equals_whole_run(self):
        part_a = [_span(0, vehicle=1), _counter("c", 3, shard=0)]
        part_b = [_span(1, vehicle=2), _counter("c", 4, shard=0)]
        whole = [
            _span(0, vehicle=1),
            _span(1, vehicle=2),
            _counter("c", 7, shard=0),
        ]
        merged = DigestTree.from_events(part_a).merge(
            DigestTree.from_events(part_b)
        )
        assert merged.root_digest == DigestTree.from_events(
            whole
        ).root_digest

    def test_merge_collision_on_span_rejected(self):
        tree = DigestTree.from_events([_span(0, vehicle=1)])
        with pytest.raises(ObsError, match="not a.*partition"):
            tree.merge(DigestTree.from_events([_span(0, vehicle=1)]))

    def test_gauge_folds_by_max(self):
        def gauge(value):
            return {
                "type": "gauge",
                "name": "g",
                "labels": {},
                "value": value,
            }

        merged = DigestTree.from_events([gauge(3)]).merge(
            DigestTree.from_events([gauge(9)]), DigestTree.from_events([gauge(5)])
        )
        assert merged.root_digest == DigestTree.from_events(
            [gauge(9)]
        ).root_digest


class TestRealRun:
    @pytest.fixture(scope="class")
    def observed(self):
        obs = Observer()
        run_fleet(
            FleetConfig(
                n_vehicles=6,
                seed=b"tree-real-run",
                records_per_vehicle=4,
                max_records=4,
                arrival_spread_ms=30.0,
                shards=2,
            ),
            obs=obs,
        )
        return obs

    def test_observer_tree_covers_every_event(self, observed):
        events = observed.deterministic_events()
        tree = observed.digest_tree()
        # Span/heartbeat/meta leaves are 1:1 with events; metric leaves
        # fold duplicates, but this run emits each series once.
        assert tree.leaf_count == len(events)

    def test_tree_reproducible_and_order_matters_not_for_archive(
        self, observed
    ):
        events = observed.deterministic_events()
        a = DigestTree.from_events(events)
        b = observed.digest_tree()
        assert a.root_digest == b.root_digest

    def test_section_trees_partition_the_full_tree(self, observed):
        full = observed.digest_tree()
        total = sum(
            observed.digest_tree(include=(section,)).leaf_count
            for section in TREE_SECTIONS
        )
        assert total == full.leaf_count

    def test_as_dict_round_trips_digests(self, observed):
        rendered = observed.digest_tree().as_dict()
        assert rendered["digest"] == observed.digest_tree().root_digest
        assert rendered["leaves"] > 0
