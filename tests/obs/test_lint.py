"""tracelint tests: every rule on clean runs and synthetic violations."""

from __future__ import annotations

import pytest

from repro.errors import ObsError
from repro.fleet import FleetConfig, run_fleet
from repro.obs import (
    LINT_RULES,
    Observer,
    lint_archive,
    lint_rule,
    run_lint,
    write_jsonl,
)


def _span(span_id, name, cat, start, end, parent=None, **attrs):
    return {
        "type": "span",
        "id": span_id,
        "parent": parent,
        "name": name,
        "cat": cat,
        "start_ms": float(start),
        "end_ms": float(end),
        "attrs": attrs,
    }


def _beat(sim_ms, done, total=2, records=0):
    return {
        "type": "heartbeat",
        "sim_ms": float(sim_ms),
        "vehicles_done": done,
        "vehicles_total": total,
        "records_sent": records,
    }


def _counter(name, value, **labels):
    return {
        "type": "counter",
        "name": name,
        "labels": {k: str(v) for k, v in labels.items()},
        "value": value,
    }


def _findings_for(rule, events):
    return [f for f in run_lint(events, rules=(rule,))]


class TestRegistry:
    def test_all_eight_rules_registered(self):
        assert set(LINT_RULES) == {
            "span-nesting",
            "sim-time-monotonic",
            "single-flight",
            "counter-monotonic",
            "shard-conservation",
            "injection-balance",
            "heartbeat-coverage",
            "policy-balance",
        }

    def test_unknown_rule_rejected(self):
        with pytest.raises(ObsError, match="unknown lint rules"):
            run_lint([], rules=("not-a-rule",))

    def test_double_registration_rejected(self):
        with pytest.raises(ObsError, match="registered twice"):
            lint_rule("span-nesting")(lambda events: ())

    def test_rule_selection_runs_only_named_rules(self):
        # An archive violating heartbeat coverage is clean under a
        # nesting-only lint.
        events = [_span(0, "run", "run", 0, 10)]
        assert not _findings_for("span-nesting", events)
        assert _findings_for("heartbeat-coverage", events)

    def test_finding_render_format(self):
        finding = _findings_for(
            "heartbeat-coverage", [_span(0, "run", "run", 0, 10)]
        )[0]
        assert finding.render() == (
            "heartbeat-coverage:1: archive has a fleet run span but no"
            " heartbeats"
        )


class TestSpanNesting:
    def test_duplicate_id(self):
        events = [
            _span(1, "a", "run", 0, 5),
            _span(1, "b", "run", 5, 9),
        ]
        (finding,) = _findings_for("span-nesting", events)
        assert finding.rule == "span-nesting"
        assert finding.line == 2
        assert "duplicate span id 1" in finding.message

    def test_unknown_parent(self):
        (finding,) = _findings_for(
            "span-nesting", [_span(0, "orphan", "vehicle", 0, 1, parent=99)]
        )
        assert "unknown parent 99" in finding.message

    def test_negative_interval(self):
        (finding,) = _findings_for(
            "span-nesting", [_span(0, "back", "run", 5, 2)]
        )
        assert "negative interval" in finding.message

    def test_child_escapes_parent(self):
        events = [
            _span(0, "run", "run", 0, 10),
            _span(1, "late", "vehicle", 8, 12, parent=0, vehicle=1),
        ]
        (finding,) = _findings_for("span-nesting", events)
        assert finding.line == 2
        assert "escapes parent" in finding.message


class TestSimTimeMonotonic:
    def test_backwards_span_start(self):
        events = [
            _span(0, "first", "enroll", 5, 6, vehicle=1),
            _span(1, "second", "enroll", 3, 4, vehicle=2),
        ]
        (finding,) = _findings_for("sim-time-monotonic", events)
        assert finding.line == 2
        assert "before the earlier-begun" in finding.message

    def test_ca_batch_exempt(self):
        # ca-batch spans carry future service windows by design.
        events = [
            _span(0, "enroll", "enroll", 5, 6, vehicle=1),
            _span(1, "batch", "ca-batch", 1, 9),
        ]
        assert not _findings_for("sim-time-monotonic", events)

    def test_backwards_heartbeat(self):
        events = [_beat(5.0, 1), _beat(3.0, 1)]
        (finding,) = _findings_for("sim-time-monotonic", events)
        assert finding.line == 2
        assert "ran backwards" in finding.message


class TestSingleFlight:
    def test_two_lifecycle_spans(self):
        events = [
            _span(0, "veh1", "vehicle", 0, 5, vehicle=1),
            _span(1, "veh1-again", "vehicle", 5, 9, vehicle=1),
        ]
        (finding,) = _findings_for("single-flight", events)
        assert finding.line == 2
        assert "2 lifecycle spans" in finding.message

    def test_overlapping_same_category_ops(self):
        events = [
            _span(0, "enroll-a", "enroll", 0, 5, vehicle=1),
            _span(1, "enroll-b", "enroll", 3, 8, vehicle=1),
        ]
        (finding,) = _findings_for("single-flight", events)
        assert finding.line == 2
        assert "overlapping 'enroll'" in finding.message

    def test_different_categories_may_overlap(self):
        events = [
            _span(0, "enroll", "enroll", 0, 5, vehicle=1),
            _span(1, "establish", "establish", 3, 8, vehicle=1),
        ]
        assert not _findings_for("single-flight", events)

    def test_different_vehicles_may_overlap(self):
        events = [
            _span(0, "a", "enroll", 0, 5, vehicle=1),
            _span(1, "b", "enroll", 0, 5, vehicle=2),
        ]
        assert not _findings_for("single-flight", events)


class TestCounterMonotonic:
    def test_vehicles_done_decrease(self):
        events = [_beat(1.0, 2, records=4), _beat(2.0, 1, records=4)]
        (finding,) = _findings_for("counter-monotonic", events)
        assert finding.line == 2
        assert "vehicles_done decreased" in finding.message

    def test_records_sent_decrease(self):
        events = [_beat(1.0, 1, records=9), _beat(2.0, 1, records=4)]
        (finding,) = _findings_for("counter-monotonic", events)
        assert "records_sent decreased" in finding.message

    def test_done_exceeds_total(self):
        (finding,) = _findings_for("counter-monotonic", [_beat(1.0, 3)])
        assert "exceeds vehicles_total" in finding.message


class TestShardConservation:
    def test_vacuous_without_migration_counters(self):
        assert not _findings_for(
            "shard-conservation", [_counter("fleet.sessions", 3, shard=0)]
        )

    def test_unbalanced_flow(self):
        events = [
            _counter("fleet.migrations_out", 3, shard=0),
            _counter("fleet.migrations_in", 2, shard=1),
        ]
        (finding,) = _findings_for("shard-conservation", events)
        assert "not conserved: 2 in != 3 out" in finding.message

    def test_flow_disagrees_with_fleet_total(self):
        events = [
            _counter("fleet.migrations_out", 2, shard=0),
            _counter("fleet.migrations_in", 2, shard=1),
            _counter("fleet.migrations", 5),
        ]
        (finding,) = _findings_for("shard-conservation", events)
        assert "disagrees with" in finding.message

    def test_balanced_flow_clean(self):
        events = [
            _counter("fleet.migrations_out", 2, shard=0),
            _counter("fleet.migrations_in", 2, shard=1),
            _counter("fleet.migrations", 2),
        ]
        assert not _findings_for("shard-conservation", events)


class TestInjectionBalance:
    def test_lost_attempts_on_counters(self):
        events = [
            _counter("fleet.injection_attempts", 5, kind="replay"),
            _counter("fleet.injection_rejected", 2, kind="replay"),
            _counter("fleet.injection_succeeded", 1, kind="replay"),
        ]
        (finding,) = _findings_for("injection-balance", events)
        assert finding.line == 1
        assert "lost attempts: 5 != 2 rejected + 1 succeeded" in (
            finding.message
        )

    def test_balanced_counters_clean(self):
        events = [
            _counter("fleet.injection_attempts", 5, kind="replay"),
            _counter("fleet.injection_rejected", 4, kind="replay"),
            _counter("fleet.injection_succeeded", 1, kind="replay"),
        ]
        assert not _findings_for("injection-balance", events)

    def test_span_over_accounting(self):
        events = [
            _span(
                0, "inject", "injection", 0, 5,
                attempts=3, rejected=2, succeeded=2,
            )
        ]
        (finding,) = _findings_for("injection-balance", events)
        assert "over-accounts" in finding.message

    def test_span_under_accounting_allowed(self):
        # CA-flood rejections tally as the queue drains, after the
        # dispatch-time span is recorded — under-counting is legal.
        events = [
            _span(
                0, "inject", "injection", 0, 5,
                attempts=3, rejected=0, succeeded=1,
            )
        ]
        assert not _findings_for("injection-balance", events)


class TestHeartbeatCoverage:
    def test_run_without_beats(self):
        (finding,) = _findings_for(
            "heartbeat-coverage", [_span(0, "run", "run", 0, 10)]
        )
        assert "no heartbeats" in finding.message

    def test_incomplete_final_beat(self):
        (finding,) = _findings_for("heartbeat-coverage", [_beat(5.0, 1)])
        assert "ended incomplete" in finding.message

    def test_beat_postdates_run_end(self):
        events = [
            {"type": "meta", "run": "fleet", "sim_end_ms": 4.0},
            _beat(5.0, 2),
        ]
        (finding,) = _findings_for("heartbeat-coverage", events)
        assert finding.line == 2
        assert "postdates the run end" in finding.message

    def test_no_spans_no_beats_is_clean(self):
        assert not _findings_for(
            "heartbeat-coverage", [_counter("c", 1)]
        )


class TestPolicyBalance:
    def test_vacuous_without_policy_counters(self):
        # Archives predating the policy layer carry action counters
        # only — the rule must not demand decisions that never existed.
        assert not _findings_for(
            "policy-balance",
            [
                _counter("fleet.migrations_in", 3, shard=1),
                _counter("fleet.rekeys", 2, shard=0),
            ],
        )

    def test_unbalanced_migrate_decisions(self):
        events = [
            _counter("policy.migrate", 3, rule="threshold-rebalance"),
            _counter("fleet.migrations_in", 2, shard=1),
        ]
        (finding,) = _findings_for("policy-balance", events)
        assert finding.line == 1
        assert "policy.migrate decisions (3) do not balance" in (
            finding.message
        )

    def test_unbalanced_rekey_decisions(self):
        events = [
            _counter("policy.rekey", 4, rule="session-expiry-rekey"),
            _counter("fleet.rekeys", 5, shard=0),
        ]
        (finding,) = _findings_for("policy-balance", events)
        assert "policy.rekey decisions (4) do not balance" in (
            finding.message
        )

    def test_decisions_summed_across_rules(self):
        # Two rules firing at one point balance against the one action
        # counter together, not individually.
        events = [
            _counter("policy.rekey", 2, rule="storm-rekey"),
            _counter("policy.rekey", 3, rule="session-expiry-rekey"),
            _counter("fleet.rekeys", 5, shard=0),
        ]
        assert not _findings_for("policy-balance", events)

    def test_api_pseudo_rule_counts(self):
        # Manual migrate() calls are attributed to the pseudo rule
        # "api" and balance like any engine decision.
        events = [
            _counter("policy.migrate", 1, rule="api"),
            _counter("policy.migrate", 1, rule="roam-cadence"),
            _counter("fleet.migrations_in", 1, shard=0),
            _counter("fleet.migrations_in", 1, shard=1),
        ]
        assert not _findings_for("policy-balance", events)

    def test_span_count_disagrees_with_counter(self):
        events = [
            _span(
                0, "veh0001:policy:migrate", "policy", 5, 5,
                vehicle=1, rule="threshold-rebalance",
            ),
            _counter("policy.migrate", 2, rule="threshold-rebalance"),
            _counter("fleet.migrations_in", 2, shard=1),
        ]
        (finding,) = _findings_for("policy-balance", events)
        assert finding.line == 1
        assert "span events for point 'migrate' (1)" in finding.message
        assert "counter total (2)" in finding.message

    def test_spanless_merged_archive_is_clean(self):
        # Process-parallel runs merge counters but keep spans
        # worker-local: counter-only archives skip the span check.
        events = [
            _counter("policy.migrate", 2, rule="threshold-rebalance"),
            _counter("fleet.migrations_in", 2, shard=1),
        ]
        assert not _findings_for("policy-balance", events)

    def test_balanced_archive_with_spans_clean(self):
        events = [
            _span(
                0, "veh0000:policy:rekey", "policy", 3, 3,
                vehicle=0, rule="session-expiry-rekey",
            ),
            _counter("policy.rekey", 1, rule="session-expiry-rekey"),
            _counter("fleet.rekeys", 1, shard=0),
        ]
        assert not _findings_for("policy-balance", events)


class TestRealRun:
    @pytest.fixture(scope="class")
    def archive(self, tmp_path_factory):
        obs = Observer(heartbeat_interval_ms=500.0)
        run_fleet(
            FleetConfig(
                n_vehicles=8,
                seed=b"lint-clean-run",
                records_per_vehicle=4,
                max_records=4,
                arrival_spread_ms=40.0,
                shards=2,
                shard_fail_at_ms=800.0,
                shard_rejoin_at_ms=1200.0,
                migrate_threshold=2,
            ),
            obs=obs,
        )
        path = tmp_path_factory.mktemp("lint") / "clean.jsonl"
        write_jsonl(path, obs.deterministic_events())
        return path

    def test_real_run_is_clean_under_every_rule(self, archive):
        assert lint_archive(archive) == []

    def test_tampered_archive_is_flagged_with_line(self, archive):
        from repro.obs import read_jsonl

        events = read_jsonl(archive)
        beat_index = next(
            i
            for i, e in enumerate(events)
            if e.get("type") == "heartbeat"
        )
        events[beat_index]["vehicles_done"] = (
            events[beat_index]["vehicles_total"] + 1
        )
        findings = run_lint(events, rules=("counter-monotonic",))
        assert findings
        assert findings[0].line == beat_index + 1
