"""Unit tests for the mergeable metrics instruments."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.errors import ObsError
from repro.obs import (
    DEFAULT_BUCKETS_MS,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
)


class TestCounter:
    def test_increments(self):
        reg = MetricsRegistry()
        counter = reg.counter("fleet.records_sent", shard=0)
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_same_name_and_labels_is_same_instrument(self):
        reg = MetricsRegistry()
        reg.counter("c", shard=1, kind="a").inc()
        reg.counter("c", kind="a", shard=1).inc()  # label order irrelevant
        assert reg.counter("c", shard=1, kind="a").value == 2

    def test_negative_or_float_increment_rejected(self):
        reg = MetricsRegistry()
        counter = reg.counter("c")
        with pytest.raises(ObsError):
            counter.inc(-1)
        with pytest.raises(ObsError):
            counter.inc(1.5)


class TestGauge:
    def test_high_watermark_semantics(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("fleet.ca_max_batch", shard=0)
        gauge.record(3)
        gauge.record(7)
        gauge.record(5)  # lower: watermark must not drop
        assert gauge.value == 7.0

    def test_unset_gauge_absent_from_snapshot(self):
        reg = MetricsRegistry()
        reg.gauge("never.recorded")
        assert reg.snapshot().gauges == {}


class TestHistogram:
    def test_bucketing_and_overflow(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat", bounds=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 100.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap.bucket_counts == (2, 1, 1)  # <=1, <=10, overflow
        assert snap.count == 4
        assert snap.min == 0.5 and snap.max == 100.0
        assert snap.sum == 106.5

    def test_exact_sum_is_fraction(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat")
        hist.observe(0.1)
        hist.observe(0.2)
        snap = hist.snapshot()
        assert isinstance(snap.sum_exact, Fraction)
        # Exactly the sum of the two binary floats, not a rounded 0.3.
        assert snap.sum_exact == Fraction(0.1) + Fraction(0.2)

    def test_non_increasing_bounds_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ObsError, match="strictly increasing"):
            reg.histogram("bad", bounds=(5.0, 1.0))

    def test_bounds_fixed_per_metric_name(self):
        reg = MetricsRegistry()
        reg.histogram("lat", bounds=(1.0, 2.0), shard=0)
        # Same name, new label series: inherits the fixed bounds.
        other = reg.histogram("lat", shard=1)
        assert other.bounds == (1.0, 2.0)
        with pytest.raises(ObsError, match="already registered"):
            reg.histogram("lat", bounds=(3.0, 4.0), shard=2)

    def test_default_bounds(self):
        reg = MetricsRegistry()
        assert reg.histogram("lat").bounds == DEFAULT_BUCKETS_MS

    def test_mean_of_empty_is_zero(self):
        snap = MetricsRegistry().histogram("lat").snapshot()
        assert snap.mean == 0.0 and snap.min is None


class TestSnapshotMerge:
    def _snap(self, n=1, lat=10.0):
        reg = MetricsRegistry()
        reg.counter("c", shard=0).inc(n)
        reg.gauge("g").record(lat)
        reg.histogram("h").observe(lat)
        return reg.snapshot()

    def test_merge_adds_counters_maxes_gauges_folds_histograms(self):
        merged = self._snap(n=2, lat=5.0).merge(self._snap(n=3, lat=9.0))
        assert merged.counter_total("c") == 5
        ((_, gauge_value),) = merged.gauges.items()
        assert gauge_value == 9.0
        ((_, hist),) = merged.histograms.items()
        assert hist.count == 2 and hist.max == 9.0

    def test_empty_is_identity(self):
        snap = self._snap()
        assert snap.merge(MetricsSnapshot.empty()) == snap
        assert MetricsSnapshot.empty().merge(snap) == snap

    def test_mismatched_histogram_bounds_refuse_merge(self):
        a = HistogramSnapshot(
            count=0, sum_exact=Fraction(0), min=None, max=None,
            bounds=(1.0,), bucket_counts=(0, 0),
        )
        b = HistogramSnapshot(
            count=0, sum_exact=Fraction(0), min=None, max=None,
            bounds=(2.0,), bucket_counts=(0, 0),
        )
        with pytest.raises(ObsError, match="different bucket bounds"):
            a.merge(b)

    def test_counter_total_sums_across_labels(self):
        reg = MetricsRegistry()
        reg.counter("c", shard=0).inc(2)
        reg.counter("c", shard=1).inc(3)
        reg.counter("other").inc(100)
        assert reg.snapshot().counter_total("c") == 5


class TestEventsRoundTrip:
    def test_events_round_trip_through_from_events(self):
        reg = MetricsRegistry()
        reg.counter("c", shard=0).inc(7)
        reg.gauge("g", shard=1).record(3.5)
        reg.histogram("h").observe(0.1)
        reg.histogram("h").observe(250.0)
        snap = reg.snapshot()
        rebuilt = MetricsSnapshot.from_events(snap.events())
        assert rebuilt == snap

    def test_histogram_dict_round_trip_is_exact(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h")
        hist.observe(0.1)
        hist.observe(0.2)
        snap = hist.snapshot()
        assert HistogramSnapshot.from_dict(snap.as_dict()) == snap

    def test_events_deterministically_ordered(self):
        reg = MetricsRegistry()
        reg.counter("z").inc()
        reg.counter("a").inc()
        names = [e["name"] for e in reg.snapshot().events()]
        assert names == sorted(names)
