"""Unit tests for the backend profiling hooks.

The profiler is pure delegation: identical bytes out, identical trace
counts, identical digests — only wall-clock buckets are added on the
side.  These tests pin that contract plus the registry hygiene of the
temporary ``profiled`` backend.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.backend import available_backends, use_backend
from repro.errors import ObsError
from repro.fleet import FleetConfig, run_fleet
from repro.obs import (
    PRIMITIVE_CLASSES,
    ProfilingBackend,
    profile_fleet_run,
    profiled_backend,
    render_speedup_table,
    speedup_table,
)

_CONFIG = FleetConfig(
    n_vehicles=3,
    seed=b"obs-profile",
    records_per_vehicle=2,
    max_records=2,
    send_interval_ms=20.0,
    arrival_spread_ms=15.0,
)


class TestProfilingBackend:
    def test_delegation_is_bit_exact(self):
        with use_backend("reference") as inner:
            pass
        profiler = ProfilingBackend(inner)
        data = b"profiling parity"
        assert profiler.hash_digest("sha256", data) == inner.hash_digest(
            "sha256", data
        )
        assert profiler.hmac_digest(b"k" * 32, data, "sha256") == (
            inner.hmac_digest(b"k" * 32, data, "sha256")
        )
        assert profiler.timings["sha2"]["calls"] == 1
        assert profiler.timings["hmac"]["calls"] == 1
        assert profiler.timings["sha2"]["wall_ns"] > 0

    def test_streaming_hash_proxy_stays_chainable(self):
        with use_backend("reference") as inner:
            pass
        profiler = ProfilingBackend(inner)
        proxy = profiler.create_hash("sha256")
        chained = proxy.update(b"ab")
        # Chainable update returns the *proxy*, not the bare inner object,
        # so follow-on calls keep being timed.
        assert chained is proxy
        reference = inner.create_hash("sha256", b"ab").digest()
        assert proxy.digest() == reference

    def test_describe_marks_profiled(self):
        with use_backend("reference") as inner:
            info = ProfilingBackend(inner).describe()
        assert info["profiled"] is True
        assert info["name"].startswith("profiled:")

    def test_timings_cover_every_primitive_class(self):
        with use_backend("reference") as inner:
            profiler = ProfilingBackend(inner)
        assert set(profiler.timings) == set(PRIMITIVE_CLASSES)


class TestProfiledBackendScope:
    def test_registry_left_untouched(self):
        before = available_backends()
        with profiled_backend("reference"):
            assert "profiled" in available_backends()
        assert available_backends() == before

    def test_unregistered_even_on_error(self):
        before = available_backends()
        with pytest.raises(RuntimeError):
            with profiled_backend("reference"):
                raise RuntimeError("boom")
        assert available_backends() == before


class TestProfileFleetRun:
    def test_profile_preserves_digest(self):
        plain = run_fleet(_CONFIG)
        report = profile_fleet_run(_CONFIG, backend="reference")
        assert report.digest == plain.stats.digest()
        assert report.backend == "reference"
        assert report.wall_s > 0

    def test_profile_strips_config_backend(self):
        # A config pinning its own backend must still profile under the
        # requested one (the profiled scope wins).
        pinned = dataclasses.replace(_CONFIG, backend="accelerated")
        report = profile_fleet_run(pinned, backend="reference")
        assert report.digest == run_fleet(_CONFIG).stats.digest()

    def test_rows_reconcile_against_trace_counts(self):
        report = profile_fleet_run(_CONFIG, backend="reference")
        rows = {row["event"]: row for row in report.rows()}
        for event in ("ec.mul_base", "sha2", "hmac", "aes"):
            assert rows[event]["trace_count"] > 0
            assert rows[event]["calls"] > 0
            assert rows[event]["wall_ns"] > 0
        # Every profiled call class the trace counts, the profiler saw.
        assert rows["ec.mul_base"]["trace_event"] == "ec.mul_base"
        assert rows["sha2"]["trace_event"] == "sha2.block"

    def test_as_dict_is_json_shaped(self):
        import json

        report = profile_fleet_run(_CONFIG, backend="reference")
        payload = report.as_dict()
        json.dumps(payload)
        assert payload["backend"] == "reference"
        assert {row["event"] for row in payload["rows"]} == set(
            PRIMITIVE_CLASSES
        )


class TestSpeedupTable:
    def test_speedup_table_over_both_backends(self):
        reference = profile_fleet_run(_CONFIG, backend="reference")
        accelerated = profile_fleet_run(_CONFIG, backend="accelerated")
        table = speedup_table(reference, accelerated)
        assert table["digest"] == reference.digest
        rows = {row["event"]: row for row in table["rows"]}
        assert rows["sha2"]["speedup"] is not None
        text = render_speedup_table(table)
        assert "primitive" in text and "sha2" in text

    def test_digest_mismatch_rejected(self):
        reference = profile_fleet_run(_CONFIG, backend="reference")
        other = profile_fleet_run(
            dataclasses.replace(_CONFIG, n_vehicles=4),
            backend="accelerated",
        )
        with pytest.raises(ObsError, match="diverged"):
            speedup_table(reference, other)

    def test_zero_time_rows_render_as_dash(self):
        reference = profile_fleet_run(_CONFIG, backend="reference")
        accelerated = profile_fleet_run(_CONFIG, backend="accelerated")
        table = speedup_table(reference, accelerated)
        normalize = next(
            row for row in table["rows"] if row["event"] == "ec.normalize"
        )
        if normalize["accelerated_ms"] == 0.0:
            assert normalize["speedup"] is None
        assert "—" in render_speedup_table(table) or all(
            row["speedup"] is not None for row in table["rows"]
        )
