"""Tests for shared utilities, the cost tracer and the testbed helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import trace
from repro.errors import ReproError
from repro.testbed import device_id, make_testbed
from repro.utils import (
    byte_length,
    bytes_to_int,
    chunks,
    constant_time_equal,
    hexstr,
    int_to_bytes,
    xor_bytes,
)


class TestIntBytes:
    @given(st.integers(0, 2**256 - 1))
    @settings(max_examples=40)
    def test_roundtrip(self, value):
        assert bytes_to_int(int_to_bytes(value, 32)) == value

    def test_fixed_width(self):
        assert int_to_bytes(1, 4) == b"\x00\x00\x00\x01"

    def test_overflow_rejected(self):
        with pytest.raises(ReproError):
            int_to_bytes(256, 1)

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            int_to_bytes(-1, 4)

    def test_byte_length(self):
        assert byte_length(0) == 1
        assert byte_length(255) == 1
        assert byte_length(256) == 2
        with pytest.raises(ReproError):
            byte_length(-1)


class TestByteHelpers:
    def test_constant_time_equal(self):
        assert constant_time_equal(b"abc", b"abc")
        assert not constant_time_equal(b"abc", b"abd")
        assert not constant_time_equal(b"abc", b"abcd")

    def test_xor_bytes(self):
        assert xor_bytes(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"
        with pytest.raises(ReproError):
            xor_bytes(b"\x00", b"\x00\x00")

    def test_chunks(self):
        assert chunks(b"abcdefg", 3) == [b"abc", b"def", b"g"]
        assert chunks(b"", 3) == []
        with pytest.raises(ReproError):
            chunks(b"abc", 0)

    def test_hexstr(self):
        assert hexstr(b"\xde\xad\xbe\xef") == "deadbeef"
        assert hexstr(b"\xde\xad\xbe\xef", group=2) == "dead beef"


class TestTrace:
    def test_inactive_is_noop(self):
        assert not trace.tracing_active()
        trace.record("anything")  # must not raise

    def test_basic_counting(self):
        with trace.trace("t") as t:
            trace.record("x")
            trace.record("x", 2)
            trace.record("y")
        assert t["x"] == 3
        assert t["y"] == 1
        assert t["z"] == 0
        assert t.total() == 4
        assert t.total("x") == 3

    def test_nested_traces_both_record(self):
        with trace.trace() as outer:
            trace.record("a")
            with trace.trace() as inner:
                trace.record("b")
            trace.record("c")
        assert outer.as_dict() == {"a": 1, "b": 1, "c": 1}
        assert inner.as_dict() == {"b": 1}

    def test_merge_and_copy(self):
        a = trace.CostTrace()
        a.record("x", 2)
        b = a.copy()
        b.record("x")
        assert a["x"] == 2 and b["x"] == 3
        a.merge(b)
        assert a["x"] == 5

    def test_scope_exits_cleanly_on_error(self):
        with pytest.raises(ValueError):
            with trace.trace():
                raise ValueError("boom")
        assert not trace.tracing_active()


class TestTestbed:
    def test_device_id(self):
        assert device_id("bms") == b"bms" + b"-" * 13
        assert len(device_id("a-very-long-name")) == 16
        with pytest.raises(ReproError):
            device_id("a-name-that-is-too-long")

    def test_unknown_device(self):
        testbed = make_testbed(("alice",), seed=b"tb")
        with pytest.raises(ReproError, match="unknown device"):
            testbed.context("mallory")

    def test_contexts_draw_fresh_randomness(self):
        testbed = make_testbed(("alice",), seed=b"tb2")
        c1 = testbed.context("alice")
        c2 = testbed.context("alice")
        assert c1.rng.generate(16) != c2.rng.generate(16)

    def test_credentials_bound_to_ca(self):
        testbed = make_testbed(("alice", "bob"), seed=b"tb3")
        from repro.ecqv import reconstruct_public_key

        for name in ("alice", "bob"):
            cred = testbed.credentials[name]
            assert (
                reconstruct_public_key(
                    cred.certificate, testbed.ca.public_key
                )
                == cred.public_key
            )

    def test_psk_installed_for_poramb_pairs(self):
        testbed = make_testbed(("alice", "bob"), seed=b"tb4")
        ctx_a, ctx_b = testbed.context_pair("alice", "bob", "poramb")
        assert bytes(ctx_b.device_id) in ctx_a.pre_shared_keys

    def test_psk_symmetric_regardless_of_order(self):
        testbed = make_testbed(("alice", "bob"), seed=b"tb5")
        ab = testbed.context_pair("alice", "bob", "poramb")
        ba = testbed.context_pair("bob", "alice", "poramb")
        key_ab = ab[0].pre_shared_keys[bytes(ab[1].device_id)]
        key_ba = ba[0].pre_shared_keys[bytes(ba[1].device_id)]
        assert key_ab == key_ba
