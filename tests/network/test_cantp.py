"""Tests for ISO-TP segmentation, reassembly, flow control and timing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SegmentationError
from repro.network import (
    CanFdBus,
    IsoTpChannel,
    Reassembler,
    TpFrameType,
    flow_control_frame,
    segment_message,
)


def roundtrip(data: bytes) -> bytes:
    reassembler = Reassembler()
    out = None
    for frame in segment_message(data):
        out = reassembler.accept(frame)
    assert out is not None
    return out


class TestSegmentation:
    def test_classic_single_frame(self):
        frames = segment_message(b"short")
        assert len(frames) == 1
        assert frames[0].frame_type == TpFrameType.SINGLE
        assert frames[0].payload[0] == 5

    def test_escape_single_frame(self):
        frames = segment_message(b"x" * 40)
        assert len(frames) == 1
        assert frames[0].payload[:2] == bytes([0x00, 40])

    def test_single_frame_boundary(self):
        assert len(segment_message(b"x" * 62)) == 1
        assert len(segment_message(b"x" * 63)) > 1

    def test_multi_frame_structure(self):
        frames = segment_message(b"x" * 245)  # STS B1 size + header
        assert frames[0].frame_type == TpFrameType.FIRST
        assert all(
            f.frame_type == TpFrameType.CONSECUTIVE for f in frames[1:]
        )
        # FF carries 62, CFs 63 each: 62 + 3*63 = 251 >= 245.
        assert len(frames) == 4

    def test_first_frame_length_encoding(self):
        frames = segment_message(b"x" * 300)
        pci = frames[0].payload
        assert ((pci[0] & 0xF) << 8) | pci[1] == 300

    def test_sequence_numbers_roll(self):
        frames = segment_message(b"x" * 1200)
        sequences = [f.payload[0] & 0xF for f in frames[1:]]
        assert sequences[:16] == list(range(1, 16)) + [0]

    def test_empty_message_rejected(self):
        with pytest.raises(SegmentationError):
            segment_message(b"")

    def test_oversized_rejected(self):
        with pytest.raises(SegmentationError):
            segment_message(b"x" * 4096)

    def test_bad_tx_dl(self):
        with pytest.raises(SegmentationError):
            segment_message(b"x" * 100, tx_dl=7)


class TestReassembly:
    @given(st.binary(min_size=1, max_size=2000))
    @settings(max_examples=40)
    def test_roundtrip_any_size(self, data):
        assert roundtrip(data) == data

    @pytest.mark.parametrize("n", [1, 7, 8, 62, 63, 124, 125, 126, 245, 4095])
    def test_boundary_sizes(self, n):
        data = bytes(range(256)) * 16
        assert roundtrip(data[:n]) == data[:n]

    def test_sequence_error_detected(self):
        frames = segment_message(b"x" * 200)
        reassembler = Reassembler()
        reassembler.accept(frames[0])
        with pytest.raises(SegmentationError, match="sequence"):
            reassembler.accept(frames[2])  # skip frames[1]

    def test_cf_without_ff_rejected(self):
        frames = segment_message(b"x" * 200)
        with pytest.raises(SegmentationError, match="without first"):
            Reassembler().accept(frames[1])

    def test_nested_ff_rejected(self):
        frames = segment_message(b"x" * 200)
        reassembler = Reassembler()
        reassembler.accept(frames[0])
        with pytest.raises(SegmentationError, match="nested"):
            reassembler.accept(frames[0])

    def test_fc_to_reassembler_rejected(self):
        with pytest.raises(SegmentationError):
            Reassembler().accept(flow_control_frame())

    def test_in_progress_flag(self):
        frames = segment_message(b"x" * 200)
        reassembler = Reassembler()
        assert not reassembler.in_progress
        reassembler.accept(frames[0])
        assert reassembler.in_progress
        for frame in frames[1:]:
            reassembler.accept(frame)
        assert not reassembler.in_progress


class TestFlowControl:
    def test_frame_encoding(self):
        frame = flow_control_frame(0, 4, 10)
        assert frame.payload == bytes([0x30, 4, 10])

    def test_invalid_args(self):
        with pytest.raises(SegmentationError):
            flow_control_frame(status=7)
        with pytest.raises(SegmentationError):
            flow_control_frame(block_size=300)
        with pytest.raises(SegmentationError):
            flow_control_frame(st_min_ms=0x80)


class TestChannelTiming:
    def test_single_frame_no_fc(self):
        channel = IsoTpChannel(bus=CanFdBus())
        timing = channel.transfer(b"x" * 40)
        assert timing.n_frames == 1
        assert timing.n_flow_controls == 0
        assert timing.total_ms == pytest.approx(timing.data_ms)

    def test_segmented_has_one_fc(self):
        channel = IsoTpChannel(bus=CanFdBus())
        timing = channel.transfer(b"x" * 245)
        assert timing.n_frames == 4
        assert timing.n_flow_controls == 1
        assert timing.flow_control_ms > 0

    def test_block_size_adds_fcs(self):
        channel = IsoTpChannel(bus=CanFdBus(), block_size=1)
        timing = channel.transfer(b"x" * 245)  # FF + 3 CFs
        assert timing.n_flow_controls == 1 + 2

    def test_st_min_gaps(self):
        quick = IsoTpChannel(bus=CanFdBus(), st_min_ms=0)
        slow = IsoTpChannel(bus=CanFdBus(), st_min_ms=5)
        fast_t = quick.transfer(b"x" * 245)
        slow_t = slow.transfer(b"x" * 245)
        assert slow_t.total_ms > fast_t.total_ms
        assert slow_t.st_min_gap_ms == 5 * 2  # 3 CFs -> 2 gaps

    def test_kd_messages_transfer_under_3ms(self):
        # All KD protocol messages are small; with the paper's bit rates
        # each transfers in low single-digit milliseconds at most.
        channel = IsoTpChannel(bus=CanFdBus())
        for size in (48, 80, 165, 213, 245, 197):
            assert channel.transfer(b"x" * size).total_ms < 3.0

    def test_roundtrip_check_helper(self):
        channel = IsoTpChannel(bus=CanFdBus())
        assert channel.roundtrip_check(b"y" * 500) == b"y" * 500
