"""Tests for the application layer and the composed network stack."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.network import (
    AppMessage,
    COMM_APP_DATA,
    COMM_KEY_DERIVATION,
    NetworkStack,
    data_message,
    decode_kd_payload,
    kd_message,
)


class TestAppMessage:
    def test_roundtrip(self):
        msg = kd_message(7, "B1", b"payload-bytes")
        decoded = AppMessage.decode(msg.encode())
        assert decoded == msg
        assert decoded.label == "B1"
        assert decoded.session_id == 7

    def test_header_size(self):
        msg = kd_message(1, "A1", b"")
        assert len(msg.encode()) == 4

    def test_data_message(self):
        msg = data_message(3, b"record")
        assert msg.comm_code == COMM_APP_DATA
        assert msg.label == "DATA"

    def test_unknown_label_rejected(self):
        with pytest.raises(NetworkError):
            kd_message(1, "Z9", b"")

    def test_invalid_fields_rejected(self):
        with pytest.raises(NetworkError):
            AppMessage(0x99, 1, 1, b"")
        with pytest.raises(NetworkError):
            AppMessage(COMM_KEY_DERIVATION, 1 << 16, 1, b"")

    def test_decode_short_rejected(self):
        with pytest.raises(NetworkError):
            AppMessage.decode(b"\x10\x00")

    def test_unknown_op_label_formatting(self):
        msg = AppMessage(COMM_KEY_DERIVATION, 1, 0x99, b"")
        assert msg.label == "op0x99"


class TestNetworkStack:
    def test_loopback(self):
        stack = NetworkStack()
        payload = kd_message(2, "B1", b"p" * 245).encode()
        assert stack.loopback(payload) == payload

    def test_kd_transfer_timing(self):
        stack = NetworkStack()
        timing = stack.kd_transfer(1, "B1", b"x" * 245)
        assert timing.total_ms < 3.0
        assert stack.bus.frames_sent == timing.n_frames + timing.n_flow_controls

    def test_frames_for_kd(self):
        stack = NetworkStack()
        frames = stack.frames_for_kd(1, "A1", b"x" * 80)
        assert len(frames) == 2  # 84 bytes with header -> FF + CF

    def test_decode_kd_payload(self):
        stack = NetworkStack()
        raw = stack.loopback(kd_message(9, "A2", b"cert||resp").encode())
        decoded = decode_kd_payload(raw)
        assert decoded.session_id == 9
        assert decoded.data == b"cert||resp"
