"""Tests for the CAN-FD frame and bit-time model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FrameError
from repro.network import (
    CANFD_DATA_LENGTHS,
    CanFdBus,
    CanFdBusConfig,
    CanFdFrame,
    dlc_for_length,
    make_frame,
    padded_length,
)


class TestDlc:
    def test_valid_lengths(self):
        assert CANFD_DATA_LENGTHS == (0, 1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 20, 24, 32, 48, 64)

    @given(st.integers(0, 64))
    def test_padded_length_covers(self, n):
        padded = padded_length(n)
        assert padded >= n
        assert padded in CANFD_DATA_LENGTHS

    def test_padded_length_exact_for_valid(self):
        for n in CANFD_DATA_LENGTHS:
            assert padded_length(n) == n

    def test_out_of_range(self):
        with pytest.raises(FrameError):
            padded_length(65)
        with pytest.raises(FrameError):
            padded_length(-1)

    def test_dlc_codes(self):
        assert dlc_for_length(0) == 0
        assert dlc_for_length(8) == 8
        assert dlc_for_length(64) == 15
        with pytest.raises(FrameError):
            dlc_for_length(9)


class TestFrames:
    def test_make_frame_pads(self):
        frame = make_frame(0x18, b"x" * 10)
        assert len(frame.data) == 12
        assert frame.data == b"x" * 10 + b"\x00\x00"

    def test_id_range(self):
        make_frame(0x7FF, b"")
        with pytest.raises(FrameError):
            CanFdFrame(0x800, b"")
        make_frame(0x1FFFFFFF, b"", extended_id=True)
        with pytest.raises(FrameError):
            CanFdFrame(0x2000_0000, b"", extended_id=True)

    def test_unpadded_data_rejected(self):
        with pytest.raises(FrameError, match="pad"):
            CanFdFrame(1, b"x" * 9)

    def test_dlc_property(self):
        assert make_frame(1, b"x" * 64).dlc == 15


class TestBitTime:
    def test_paper_configuration_defaults(self):
        config = CanFdBusConfig()
        assert config.nominal_bitrate == 500_000
        assert config.data_bitrate == 2_000_000

    def test_frame_time_under_1ms_for_64_bytes(self):
        # The paper's observation: physical transfer is negligible.
        bus = CanFdBus()
        frame = make_frame(0x18, b"x" * 64)
        assert bus.frame_time_ms(frame) < 1.0

    def test_longer_payload_takes_longer(self):
        bus = CanFdBus()
        times = [
            bus.frame_time_ms(make_frame(1, b"x" * n))
            for n in (0, 8, 16, 32, 64)
        ]
        assert times == sorted(times)
        assert times[0] > 0

    def test_brs_speeds_up_data_phase(self):
        bus = CanFdBus()
        fast = CanFdFrame(1, b"x" * 64, bit_rate_switch=True)
        slow = CanFdFrame(1, b"x" * 64, bit_rate_switch=False)
        assert bus.frame_time_ms(fast) < bus.frame_time_ms(slow)

    def test_extended_id_costs_more(self):
        bus = CanFdBus()
        base = make_frame(1, b"x" * 8)
        ext = make_frame(1, b"x" * 8, extended_id=True)
        assert bus.frame_time_ms(ext) > bus.frame_time_ms(base)

    def test_faster_bitrate_shortens(self):
        slow = CanFdBus(CanFdBusConfig(nominal_bitrate=125_000, data_bitrate=500_000))
        fast = CanFdBus()
        frame = make_frame(1, b"x" * 32)
        assert fast.frame_time_ms(frame) < slow.frame_time_ms(frame)

    def test_stuffing_increases_time(self):
        none = CanFdBus(CanFdBusConfig(stuff_ratio=0.0))
        worst = CanFdBus(CanFdBusConfig(stuff_ratio=0.2))
        frame = make_frame(1, b"x" * 32)
        assert worst.frame_time_ms(frame) > none.frame_time_ms(frame)

    def test_config_validation(self):
        with pytest.raises(FrameError):
            CanFdBusConfig(nominal_bitrate=0)
        with pytest.raises(FrameError):
            CanFdBusConfig(stuff_ratio=0.5)

    def test_transmit_accounting(self):
        bus = CanFdBus()
        frame = make_frame(1, b"x" * 16)
        duration = bus.transmit(frame)
        assert bus.frames_sent == 1
        assert bus.bytes_sent == 16
        assert bus.busy_ms == pytest.approx(duration)
