"""Tests for ECQV certificate encoding and public-key reconstruction."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import trace
from repro.ec import SECP192R1, SECP256R1, mul_base, mul_point
from repro.ecqv import (
    Certificate,
    CertificateAuthority,
    authority_key_identifier,
    cert_digest_scalar,
    issue_credential,
    minimal_cert_size,
    reconstruct_public_key,
)
from repro.errors import CertificateError
from repro.primitives import HmacDrbg
from repro.testbed import device_id


def make_cert(curve=SECP256R1, **overrides):
    defaults = dict(
        curve=curve,
        serial=42,
        issuer_id=b"I" * 16,
        subject_id=b"S" * 16,
        valid_from=1000,
        valid_to=2000,
        authority_key_id=b"K" * 16,
        reconstruction_point=mul_base(7, curve),
    )
    defaults.update(overrides)
    return Certificate(**defaults)


class TestEncoding:
    def test_minimal_size_is_101_on_p256(self):
        assert minimal_cert_size(SECP256R1) == 101
        assert len(make_cert().encode()) == 101

    def test_other_curve_sizes(self):
        assert minimal_cert_size(SECP192R1) == 68 + 25
        cert = make_cert(SECP192R1, reconstruction_point=mul_base(3, SECP192R1))
        assert len(cert.encode()) == minimal_cert_size(SECP192R1)

    def test_roundtrip(self):
        cert = make_cert()
        assert Certificate.decode(cert.encode()) == cert

    @given(st.integers(1, SECP256R1.n - 1), st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_random_contents(self, k, serial):
        cert = make_cert(
            serial=serial, reconstruction_point=mul_base(k, SECP256R1)
        )
        assert Certificate.decode(cert.encode()) == cert

    def test_decode_rejects_short(self):
        with pytest.raises(CertificateError):
            Certificate.decode(b"\x01" * 10)

    def test_decode_rejects_bad_version(self):
        raw = bytearray(make_cert().encode())
        raw[0] = 99
        with pytest.raises(CertificateError, match="version"):
            Certificate.decode(bytes(raw))

    def test_decode_rejects_bad_profile(self):
        raw = bytearray(make_cert().encode())
        raw[1] = 99
        with pytest.raises(CertificateError, match="profile"):
            Certificate.decode(bytes(raw))

    def test_decode_rejects_bad_length(self):
        with pytest.raises(CertificateError):
            Certificate.decode(make_cert().encode() + b"\x00")

    def test_decode_rejects_corrupt_point(self):
        raw = bytearray(make_cert().encode())
        raw[68] = 0x07  # invalid point prefix
        with pytest.raises(CertificateError, match="reconstruction point"):
            Certificate.decode(bytes(raw))


class TestValidation:
    def test_bad_id_lengths(self):
        with pytest.raises(CertificateError):
            make_cert(issuer_id=b"short")
        with pytest.raises(CertificateError):
            make_cert(subject_id=b"s" * 17)
        with pytest.raises(CertificateError):
            make_cert(authority_key_id=b"")

    def test_empty_validity_window(self):
        with pytest.raises(CertificateError):
            make_cert(valid_from=2000, valid_to=1000)

    def test_serial_range(self):
        with pytest.raises(CertificateError):
            make_cert(serial=1 << 64)

    def test_is_valid_at(self):
        cert = make_cert()
        assert cert.is_valid_at(1000)
        assert cert.is_valid_at(1500)
        assert cert.is_valid_at(2000)
        assert not cert.is_valid_at(999)
        assert not cert.is_valid_at(2001)

    def test_wrong_curve_point(self):
        with pytest.raises(CertificateError):
            make_cert(reconstruction_point=mul_base(3, SECP192R1))


class TestDigestScalar:
    def test_in_range(self):
        e = cert_digest_scalar(make_cert().encode(), SECP256R1)
        assert 1 <= e < SECP256R1.n

    def test_deterministic(self):
        enc = make_cert().encode()
        assert cert_digest_scalar(enc, SECP256R1) == cert_digest_scalar(
            enc, SECP256R1
        )

    def test_content_sensitivity(self):
        a = cert_digest_scalar(make_cert(serial=1).encode(), SECP256R1)
        b = cert_digest_scalar(make_cert(serial=2).encode(), SECP256R1)
        assert a != b


class TestReconstruction:
    def test_matches_equation_1(self):
        rng = HmacDrbg(b"ca")
        ca = CertificateAuthority(SECP256R1, device_id("ca"), rng)
        cred = issue_credential(ca, device_id("dev"), HmacDrbg(b"dev"))
        cert = cred.certificate
        e = cert_digest_scalar(cert.encode(), SECP256R1)
        manual = mul_point(e, cert.reconstruction_point) + ca.public_key
        assert manual == reconstruct_public_key(cert, ca.public_key)

    def test_cert_tampering_changes_key(self):
        rng = HmacDrbg(b"ca2")
        ca = CertificateAuthority(SECP256R1, device_id("ca"), rng)
        cred = issue_credential(ca, device_id("dev"), HmacDrbg(b"dev"))
        tampered = cred.certificate.with_subject(device_id("mallory"))
        q_orig = reconstruct_public_key(cred.certificate, ca.public_key)
        q_tampered = reconstruct_public_key(tampered, ca.public_key)
        # The implicit binding: any change to cert bytes moves the key.
        assert q_orig != q_tampered

    def test_wrong_ca_curve_rejected(self):
        cert = make_cert()
        with pytest.raises(CertificateError):
            reconstruct_public_key(cert, SECP192R1.generator)

    def test_cost_profile(self):
        # Reconstruction = 1 general mult + 1 standalone add (the Op2 half).
        cert = make_cert()
        with trace.trace() as t:
            reconstruct_public_key(cert, mul_base(99, SECP256R1))
        assert t["ec.mul_point"] == 1
        assert t["ec.add"] == 1


class TestAuthorityKeyId:
    def test_length_and_determinism(self):
        q = mul_base(5, SECP256R1)
        akid = authority_key_identifier(q)
        assert len(akid) == 16
        assert akid == authority_key_identifier(q)

    def test_distinct_keys_distinct_ids(self):
        assert authority_key_identifier(
            mul_base(5, SECP256R1)
        ) != authority_key_identifier(mul_base(6, SECP256R1))
