"""Tests for the ECQV issuance protocol (CA + requester sides)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.ec import SECP192R1, SECP256R1, mul_base
from repro.ecqv import (
    CertificateAuthority,
    CertificateRequest,
    CertificateRequester,
    issue_credential,
    reconstruct_public_key,
)
from repro.errors import CertificateError
from repro.primitives import HmacDrbg
from repro.testbed import device_id


@pytest.fixture()
def ca():
    return CertificateAuthority(
        SECP256R1, device_id("test-ca"), HmacDrbg(b"ca-seed"), clock=lambda: 5000
    )


class TestIssuance:
    def test_key_consistency(self, ca):
        cred = issue_credential(ca, device_id("alice"), HmacDrbg(b"alice"))
        assert mul_base(cred.private_key, SECP256R1) == cred.public_key
        assert reconstruct_public_key(
            cred.certificate, ca.public_key
        ) == cred.public_key

    def test_third_party_reconstruction(self, ca):
        # A verifier with only cert + CA key derives the same public key.
        cred = issue_credential(ca, device_id("bob"), HmacDrbg(b"bob"))
        raw = cred.certificate.encode()
        from repro.ecqv import Certificate

        assert (
            reconstruct_public_key(Certificate.decode(raw), ca.public_key)
            == cred.public_key
        )

    def test_serials_increment(self, ca):
        c1 = issue_credential(ca, device_id("d1"), HmacDrbg(b"d1"))
        c2 = issue_credential(ca, device_id("d2"), HmacDrbg(b"d2"))
        assert c2.certificate.serial == c1.certificate.serial + 1
        assert set(ca.issued) == {c1.certificate.serial, c2.certificate.serial}

    def test_distinct_devices_distinct_keys(self, ca):
        c1 = issue_credential(ca, device_id("d1"), HmacDrbg(b"d1"))
        c2 = issue_credential(ca, device_id("d2"), HmacDrbg(b"d2"))
        assert c1.private_key != c2.private_key
        assert c1.public_key != c2.public_key

    def test_same_device_reissue_rotates_keys(self, ca):
        rng = HmacDrbg(b"same-device")
        c1 = issue_credential(ca, device_id("dev"), rng)
        c2 = issue_credential(ca, device_id("dev"), rng)
        assert c1.private_key != c2.private_key

    def test_validity_window(self, ca):
        cred = issue_credential(
            ca, device_id("dev"), HmacDrbg(b"dev"), validity_seconds=3600
        )
        cert = cred.certificate
        assert cert.valid_from == 5000
        assert cert.valid_to == 5000 + 3600

    def test_metadata(self, ca):
        cred = issue_credential(ca, device_id("meta"), HmacDrbg(b"meta"))
        cert = cred.certificate
        assert cert.issuer_id == device_id("test-ca")
        assert cert.subject_id == device_id("meta")
        assert cert.authority_key_id == ca.authority_key_id

    @given(st.binary(min_size=1, max_size=16))
    @settings(max_examples=15, deadline=None)
    def test_issuance_always_consistent(self, seed):
        # Property: key confirmation holds for arbitrary DRBG streams.
        ca = CertificateAuthority(SECP192R1, device_id("pca"), HmacDrbg(seed))
        cred = issue_credential(ca, device_id("pdev"), HmacDrbg(seed + b"x"))
        assert mul_base(cred.private_key, SECP192R1) == cred.public_key


class TestRequesterErrors:
    def test_response_before_request(self, ca):
        requester = CertificateRequester(
            SECP256R1, device_id("dev"), HmacDrbg(b"dev")
        )
        request = CertificateRequest(device_id("dev"), mul_base(3, SECP256R1))
        issued = ca.issue(request)
        with pytest.raises(CertificateError, match="before create_request"):
            requester.process_response(issued, ca.public_key)

    def test_subject_mismatch(self, ca):
        requester = CertificateRequester(
            SECP256R1, device_id("dev"), HmacDrbg(b"dev")
        )
        requester.create_request()
        other = CertificateRequest(device_id("other"), mul_base(3, SECP256R1))
        issued = ca.issue(other)
        with pytest.raises(CertificateError, match="subject"):
            requester.process_response(issued, ca.public_key)

    def test_corrupted_reconstruction_data_caught(self, ca):
        # Key confirmation must reject a flipped private reconstruction r.
        requester = CertificateRequester(
            SECP256R1, device_id("dev"), HmacDrbg(b"dev")
        )
        request = requester.create_request()
        issued = ca.issue(request)
        from repro.ecqv import IssuedCertificate

        corrupted = IssuedCertificate(
            certificate=issued.certificate,
            private_reconstruction=(issued.private_reconstruction + 1)
            % SECP256R1.n,
        )
        with pytest.raises(CertificateError, match="confirmation"):
            requester.process_response(corrupted, ca.public_key)

    def test_wrong_ca_key_caught(self, ca):
        requester = CertificateRequester(
            SECP256R1, device_id("dev"), HmacDrbg(b"dev")
        )
        request = requester.create_request()
        issued = ca.issue(request)
        with pytest.raises(CertificateError, match="confirmation"):
            requester.process_response(issued, mul_base(99, SECP256R1))


class TestCaErrors:
    def test_bad_ca_id(self):
        with pytest.raises(CertificateError):
            CertificateAuthority(SECP256R1, b"short", HmacDrbg(b"x"))

    def test_wrong_curve_request(self, ca):
        request = CertificateRequest(device_id("dev"), mul_base(3, SECP192R1))
        with pytest.raises(CertificateError, match="curve"):
            ca.issue(request)

    def test_nonpositive_validity(self, ca):
        request = CertificateRequest(device_id("dev"), mul_base(3, SECP256R1))
        with pytest.raises(CertificateError):
            ca.issue(request, validity_seconds=0)
