"""Chained issuance and trust-store resolution (root → sub-CA → device)."""

from __future__ import annotations

import pytest

from repro.ec import SECP256R1, mul_base
from repro.ecqv import (
    CertificateAuthority,
    CertificateRequester,
    TrustStore,
    USAGE_CERT_SIGN,
    issue_credential,
    make_sub_ca,
)
from repro.errors import CertificateError
from repro.primitives import HmacDrbg
from repro.testbed import DEFAULT_NOW, device_id


@pytest.fixture()
def root():
    return CertificateAuthority(
        SECP256R1,
        device_id("chain-root"),
        HmacDrbg(b"chain", personalization=b"root"),
        clock=lambda: DEFAULT_NOW,
    )


def _sub(root, name=b"sub0", **kwargs):
    return make_sub_ca(
        root,
        device_id(name.decode()),
        HmacDrbg(b"chain", personalization=b"sub|" + name),
        clock=lambda: DEFAULT_NOW,
        **kwargs,
    )


def _leaf(ca, name="leaf"):
    requester = CertificateRequester(
        ca.curve,
        device_id(name),
        HmacDrbg(b"chain", personalization=b"leaf|" + name.encode()),
    )
    issued = ca.issue(requester.create_request())
    return requester.process_response(issued, ca.public_key)


class TestSubCa:
    def test_sub_ca_keypair_comes_from_its_credential(self, root):
        sub, cert = _sub(root)
        reconstructed = TrustStore(root.public_key).resolve_and_validate(
            cert, DEFAULT_NOW
        )
        assert reconstructed == sub.public_key
        assert mul_base(sub.keypair.private, SECP256R1) == sub.public_key

    def test_sub_ca_certificate_carries_cert_sign_usage(self, root):
        _, cert = _sub(root)
        assert cert.key_usage & USAGE_CERT_SIGN

    def test_signed_enrollment_at_strict_root(self):
        strict_root = CertificateAuthority(
            SECP256R1,
            device_id("strict-root"),
            HmacDrbg(b"chain", personalization=b"strict"),
            require_signed_requests=True,
        )
        sub, cert = _sub(strict_root, b"sub-signed", authenticate_request=True)
        assert cert.authority_key_id == strict_root.authority_key_id


class TestTrustStore:
    def test_two_level_resolution(self, root):
        sub, sub_cert = _sub(root)
        store = TrustStore(root.public_key, [sub_cert])
        leaf = _leaf(sub)
        assert (
            store.resolve_and_validate(leaf.certificate, DEFAULT_NOW)
            == leaf.public_key
        )

    def test_root_issued_leaf_resolves_directly(self, root):
        store = TrustStore(root.public_key)
        credential = issue_credential(
            root,
            device_id("root-leaf"),
            HmacDrbg(b"chain", personalization=b"root-leaf"),
        )
        assert (
            store.resolve_issuer(credential.certificate, DEFAULT_NOW)
            == root.public_key
        )

    def test_unknown_authority_rejected(self, root):
        sub, _ = _sub(root)  # intermediate NOT registered
        store = TrustStore(root.public_key)
        leaf = _leaf(sub)
        with pytest.raises(CertificateError, match="no trust path"):
            store.resolve_issuer(leaf.certificate, DEFAULT_NOW)

    def test_foreign_intermediate_rejected_at_registration(self, root):
        other_root = CertificateAuthority(
            SECP256R1,
            device_id("other-root"),
            HmacDrbg(b"chain", personalization=b"other"),
        )
        _, foreign_cert = _sub(other_root, b"foreign")
        store = TrustStore(root.public_key)
        with pytest.raises(CertificateError, match="not anchored"):
            store.add_intermediate(foreign_cert)

    def test_intermediate_without_cert_sign_usage_rejected(self, root):
        # A plain device credential registered as an intermediate must be
        # refused at resolution time: it lacks USAGE_CERT_SIGN.
        plain = issue_credential(
            root,
            device_id("plain-dev"),
            HmacDrbg(b"chain", personalization=b"plain"),
        )
        store = TrustStore(root.public_key, [plain.certificate])
        fake_sub = CertificateAuthority(
            SECP256R1,
            device_id("plain-dev"),
            HmacDrbg(b"chain", personalization=b"fake"),
            keypair=type(root.keypair)(
                SECP256R1, plain.private_key, plain.public_key
            ),
        )
        leaf = _leaf(fake_sub, name="victim")
        with pytest.raises(CertificateError, match="usage"):
            store.resolve_issuer(leaf.certificate, DEFAULT_NOW)

    def test_expired_intermediate_rejected(self, root):
        sub, sub_cert = _sub(root, b"short", validity_seconds=60)
        store = TrustStore(root.public_key, [sub_cert])
        leaf = _leaf(sub)
        with pytest.raises(CertificateError, match="validity window"):
            store.resolve_issuer(leaf.certificate, DEFAULT_NOW + 3600)


class TestChainEpochs:
    """Intermediate rollover: the rejoin story's chain-epoch check."""

    def _rolled_store(self, root):
        """A store whose sub-CA was replaced once (epoch 1 -> 2)."""
        old_sub, old_cert = _sub(root, b"rolling")
        store = TrustStore(root.public_key, [old_cert])
        # Same subject identity, fresh key material — a rejoined gateway.
        new_sub, new_cert = make_sub_ca(
            root,
            device_id("rolling"),
            HmacDrbg(b"chain", personalization=b"sub|rolling|epoch2"),
            clock=lambda: DEFAULT_NOW,
        )
        return store, old_sub, old_cert, new_sub, new_cert

    def test_first_registration_is_epoch_one(self, root):
        _, cert = _sub(root)
        store = TrustStore(root.public_key, [cert])
        assert store.chain_epoch(cert.subject_id) == 1
        assert store.chain_epoch(device_id("nobody")) == 0

    def test_replace_bumps_epoch_and_retires_old(self, root):
        store, old_sub, old_cert, new_sub, new_cert = self._rolled_store(root)
        assert store.replace_intermediate(new_cert) == 2
        assert store.chain_epoch(new_cert.subject_id) == 2
        old_leaf = _leaf(old_sub, name="old-epoch-leaf")
        with pytest.raises(CertificateError, match="chain epoch"):
            store.resolve_issuer(old_leaf.certificate, DEFAULT_NOW)
        assert store.is_retired(old_leaf.certificate.authority_key_id)

    def test_new_epoch_leaves_resolve(self, root):
        store, _, _, new_sub, new_cert = self._rolled_store(root)
        store.replace_intermediate(new_cert)
        leaf = _leaf(new_sub, name="new-epoch-leaf")
        assert (
            store.resolve_and_validate(leaf.certificate, DEFAULT_NOW)
            == leaf.public_key
        )

    def test_double_add_same_subject_rejected(self, root):
        store, _, old_cert, _, new_cert = self._rolled_store(root)
        with pytest.raises(CertificateError, match="replace_intermediate"):
            store.add_intermediate(new_cert)

    def test_replace_without_live_intermediate_rejected(self, root):
        _, cert = _sub(root, b"never-added")
        store = TrustStore(root.public_key)
        with pytest.raises(CertificateError, match="no live intermediate"):
            store.replace_intermediate(cert)

    def test_replace_with_same_key_material_rejected(self, root):
        # Rolling an epoch onto the *same* certificate would leave its
        # authority key id both live and retired at once.
        sub, cert = _sub(root, b"same-key")
        store = TrustStore(root.public_key, [cert])
        with pytest.raises(CertificateError, match="fresh key material"):
            store.replace_intermediate(cert)
        # The original registration is untouched by the failed replace.
        assert store.chain_epoch(cert.subject_id) == 1
        leaf = _leaf(sub, name="same-key-leaf")
        assert (
            store.resolve_issuer(leaf.certificate, DEFAULT_NOW)
            == sub.public_key
        )

    def test_replace_foreign_intermediate_rejected(self, root):
        store, *_ = self._rolled_store(root)
        other_root = CertificateAuthority(
            SECP256R1,
            device_id("other-root-2"),
            HmacDrbg(b"chain", personalization=b"other2"),
        )
        _, foreign = make_sub_ca(
            other_root,
            device_id("rolling"),
            HmacDrbg(b"chain", personalization=b"sub|foreign-roll"),
        )
        with pytest.raises(CertificateError, match="not anchored"):
            store.replace_intermediate(foreign)

    def test_epochs_roll_independently_per_subject(self, root):
        _, cert_a = _sub(root, b"shard-a")
        sub_b, cert_b = _sub(root, b"shard-b")
        store = TrustStore(root.public_key, [cert_a, cert_b])
        _, fresh_a = make_sub_ca(
            root,
            device_id("shard-a"),
            HmacDrbg(b"chain", personalization=b"sub|shard-a|epoch2"),
            clock=lambda: DEFAULT_NOW,
        )
        assert store.replace_intermediate(fresh_a) == 2
        assert store.chain_epoch(cert_a.subject_id) == 2
        assert store.chain_epoch(cert_b.subject_id) == 1
        # shard-b's chain is untouched by shard-a's roll: its leaves
        # still resolve.
        leaf_b = _leaf(sub_b, name="b-leaf")
        assert (
            store.resolve_issuer(leaf_b.certificate, DEFAULT_NOW)
            == sub_b.public_key
        )
