"""Chained issuance and trust-store resolution (root → sub-CA → device)."""

from __future__ import annotations

import pytest

from repro.ec import SECP256R1, mul_base
from repro.ecqv import (
    CertificateAuthority,
    CertificateRequester,
    TrustStore,
    USAGE_CERT_SIGN,
    issue_credential,
    make_sub_ca,
)
from repro.errors import CertificateError
from repro.primitives import HmacDrbg
from repro.testbed import DEFAULT_NOW, device_id


@pytest.fixture()
def root():
    return CertificateAuthority(
        SECP256R1,
        device_id("chain-root"),
        HmacDrbg(b"chain", personalization=b"root"),
        clock=lambda: DEFAULT_NOW,
    )


def _sub(root, name=b"sub0", **kwargs):
    return make_sub_ca(
        root,
        device_id(name.decode()),
        HmacDrbg(b"chain", personalization=b"sub|" + name),
        clock=lambda: DEFAULT_NOW,
        **kwargs,
    )


def _leaf(ca, name="leaf"):
    requester = CertificateRequester(
        ca.curve,
        device_id(name),
        HmacDrbg(b"chain", personalization=b"leaf|" + name.encode()),
    )
    issued = ca.issue(requester.create_request())
    return requester.process_response(issued, ca.public_key)


class TestSubCa:
    def test_sub_ca_keypair_comes_from_its_credential(self, root):
        sub, cert = _sub(root)
        reconstructed = TrustStore(root.public_key).resolve_and_validate(
            cert, DEFAULT_NOW
        )
        assert reconstructed == sub.public_key
        assert mul_base(sub.keypair.private, SECP256R1) == sub.public_key

    def test_sub_ca_certificate_carries_cert_sign_usage(self, root):
        _, cert = _sub(root)
        assert cert.key_usage & USAGE_CERT_SIGN

    def test_signed_enrollment_at_strict_root(self):
        strict_root = CertificateAuthority(
            SECP256R1,
            device_id("strict-root"),
            HmacDrbg(b"chain", personalization=b"strict"),
            require_signed_requests=True,
        )
        sub, cert = _sub(strict_root, b"sub-signed", authenticate_request=True)
        assert cert.authority_key_id == strict_root.authority_key_id


class TestTrustStore:
    def test_two_level_resolution(self, root):
        sub, sub_cert = _sub(root)
        store = TrustStore(root.public_key, [sub_cert])
        leaf = _leaf(sub)
        assert (
            store.resolve_and_validate(leaf.certificate, DEFAULT_NOW)
            == leaf.public_key
        )

    def test_root_issued_leaf_resolves_directly(self, root):
        store = TrustStore(root.public_key)
        credential = issue_credential(
            root,
            device_id("root-leaf"),
            HmacDrbg(b"chain", personalization=b"root-leaf"),
        )
        assert (
            store.resolve_issuer(credential.certificate, DEFAULT_NOW)
            == root.public_key
        )

    def test_unknown_authority_rejected(self, root):
        sub, _ = _sub(root)  # intermediate NOT registered
        store = TrustStore(root.public_key)
        leaf = _leaf(sub)
        with pytest.raises(CertificateError, match="no trust path"):
            store.resolve_issuer(leaf.certificate, DEFAULT_NOW)

    def test_foreign_intermediate_rejected_at_registration(self, root):
        other_root = CertificateAuthority(
            SECP256R1,
            device_id("other-root"),
            HmacDrbg(b"chain", personalization=b"other"),
        )
        _, foreign_cert = _sub(other_root, b"foreign")
        store = TrustStore(root.public_key)
        with pytest.raises(CertificateError, match="not anchored"):
            store.add_intermediate(foreign_cert)

    def test_intermediate_without_cert_sign_usage_rejected(self, root):
        # A plain device credential registered as an intermediate must be
        # refused at resolution time: it lacks USAGE_CERT_SIGN.
        plain = issue_credential(
            root,
            device_id("plain-dev"),
            HmacDrbg(b"chain", personalization=b"plain"),
        )
        store = TrustStore(root.public_key, [plain.certificate])
        fake_sub = CertificateAuthority(
            SECP256R1,
            device_id("plain-dev"),
            HmacDrbg(b"chain", personalization=b"fake"),
            keypair=type(root.keypair)(
                SECP256R1, plain.private_key, plain.public_key
            ),
        )
        leaf = _leaf(fake_sub, name="victim")
        with pytest.raises(CertificateError, match="usage"):
            store.resolve_issuer(leaf.certificate, DEFAULT_NOW)

    def test_expired_intermediate_rejected(self, root):
        sub, sub_cert = _sub(root, b"short", validity_seconds=60)
        store = TrustStore(root.public_key, [sub_cert])
        leaf = _leaf(sub)
        with pytest.raises(CertificateError, match="validity window"):
            store.resolve_issuer(leaf.certificate, DEFAULT_NOW + 3600)
