"""Proof-of-possession request authentication on the issuance path."""

from __future__ import annotations

import pytest

from repro.ec import SECP256R1
from repro.ecdsa import Signature, verify
from repro.ecqv import CertificateAuthority, CertificateRequester
from repro.errors import CertificateError
from repro.primitives import HmacDrbg
from repro.testbed import device_id


def _ca(require_signed=False, seed=b"req-auth"):
    return CertificateAuthority(
        SECP256R1,
        device_id("auth-ca"),
        HmacDrbg(seed, personalization=b"ca"),
        require_signed_requests=require_signed,
    )


def _request(name, authenticate):
    requester = CertificateRequester(
        SECP256R1,
        device_id(name),
        HmacDrbg(b"req-auth", personalization=b"dev|" + name.encode()),
    )
    return requester, requester.create_request(authenticate=authenticate)


class TestSignedRequests:
    def test_signature_verifies_against_request_point(self):
        _, request = _request("dev0", authenticate=True)
        assert request.signature is not None
        assert verify(
            request.request_point, request.signed_payload(), request.signature
        )

    def test_signing_does_not_perturb_the_drbg_stream(self):
        # Proof-of-possession uses RFC 6979 nonces (derived, not drawn),
        # so a signed and an unsigned request from identical DRBG state
        # carry the same ephemeral point.
        _, signed = _request("dev1", authenticate=True)
        _, unsigned = _request("dev1", authenticate=False)
        assert signed.request_point == unsigned.request_point

    def test_batch_issuance_accepts_valid_proofs(self):
        ca = _ca(require_signed=True)
        requests = [_request(f"dev{i}", True)[1] for i in range(5)]
        issued = ca.issue_batch(requests)
        assert len(issued) == 5

    def test_forged_proof_aborts_the_batch_by_index(self):
        ca = _ca()
        requests = [_request(f"dev{i}", True)[1] for i in range(4)]
        victim = requests[2]
        forged = type(victim)(
            subject_id=victim.subject_id,
            request_point=victim.request_point,
            signature=Signature(
                SECP256R1,
                victim.signature.r,
                (victim.signature.s % (SECP256R1.n - 1)) + 1,
            ),
        )
        requests[2] = forged
        with pytest.raises(CertificateError, match="request 2"):
            ca.issue_batch(requests)
        # A rejected batch leaves the CA untouched: same DRBG state, so
        # the retry issues exactly what an unforged first attempt would.
        assert ca.issued == {}
        requests[2] = victim
        issued = ca.issue_batch(requests)
        assert [c.certificate.serial for c in issued] == [1, 2, 3, 4]

    def test_unsigned_request_rejected_when_required(self):
        ca = _ca(require_signed=True)
        requests = [_request("dev0", True)[1], _request("dev1", False)[1]]
        with pytest.raises(CertificateError, match="request 1"):
            ca.issue_batch(requests)

    def test_mixed_batch_tolerated_when_not_required(self):
        ca = _ca()
        requests = [_request("dev0", True)[1], _request("dev1", False)[1]]
        assert len(ca.issue_batch(requests)) == 2

    def test_single_issue_also_authenticates(self):
        ca = _ca(require_signed=True)
        _, request = _request("dev0", True)
        issued = ca.issue(request)
        assert issued.certificate.subject_id == device_id("dev0")
        with pytest.raises(CertificateError):
            ca.issue(_request("dev1", False)[1])
