"""Batched ECQV issuance must be indistinguishable from sequential."""

from __future__ import annotations

import pytest

from repro import trace
from repro.ec import SECP192R1, SECP256R1
from repro.ecdsa import generate_keypair
from repro.ecqv import (
    CertificateAuthority,
    CertificateRequest,
    CertificateRequester,
)
from repro.errors import CertificateError
from repro.primitives import HmacDrbg
from repro.testbed import device_id


def make_ca(curve=SECP256R1, seed=b"batch-ca"):
    return CertificateAuthority(
        curve, device_id("batch-ca"), HmacDrbg(seed, personalization=b"ca")
    )


def make_requests(count, curve=SECP256R1, tag=b"batch-req"):
    requests = []
    for i in range(count):
        rng = HmacDrbg(tag, personalization=b"dev|%d" % i)
        keypair = generate_keypair(curve, rng)
        requests.append(
            CertificateRequest(device_id(f"dev{i:03d}"), keypair.public)
        )
    return requests


class TestIssueBatch:
    def test_identical_to_sequential_issuance(self):
        ca_batch = make_ca()
        ca_seq = make_ca()
        requests = make_requests(6)
        batched = ca_batch.issue_batch(requests)
        sequential = [ca_seq.issue(request) for request in requests]
        assert [b.certificate.encode() for b in batched] == [
            s.certificate.encode() for s in sequential
        ]
        assert [b.private_reconstruction for b in batched] == [
            s.private_reconstruction for s in sequential
        ]

    def test_serials_are_sequential(self):
        ca = make_ca()
        issued = ca.issue_batch(make_requests(4))
        assert [i.certificate.serial for i in issued] == [1, 2, 3, 4]
        assert sorted(ca.issued) == [1, 2, 3, 4]

    def test_credentials_key_confirm(self):
        # The full device-side round trip must succeed for every batch
        # member (key confirmation catches any cross-contamination of
        # ephemerals inside the batch).
        curve = SECP256R1
        ca = make_ca(curve)
        requesters = []
        requests = []
        for i in range(5):
            requester = CertificateRequester(
                curve,
                device_id(f"conf{i:03d}"),
                HmacDrbg(b"confirm", personalization=b"%d" % i),
            )
            requesters.append(requester)
            requests.append(requester.create_request())
        issued = ca.issue_batch(requests)
        for requester, certificate in zip(requesters, issued):
            credential = requester.process_response(
                certificate, ca.public_key
            )
            assert credential.certificate.subject_id == requester.subject_id

    def test_empty_batch(self):
        assert make_ca().issue_batch([]) == []

    def test_wrong_curve_rejected_before_any_issuance(self):
        ca = make_ca(SECP256R1)
        good = make_requests(1)
        bad = make_requests(1, curve=SECP192R1, tag=b"wrong-curve")
        with pytest.raises(CertificateError, match="wrong curve"):
            ca.issue_batch(good + bad)
        assert ca.issued == {}  # nothing was partially issued

    def test_invalid_validity_rejected(self):
        ca = make_ca()
        with pytest.raises(CertificateError, match="validity"):
            ca.issue_batch(make_requests(1), validity_seconds=0)

    def test_trace_events_match_sequential(self):
        requests = make_requests(4, tag=b"trace-req")
        ca_batch = make_ca(seed=b"trace-ca")
        ca_seq = make_ca(seed=b"trace-ca")
        with trace.trace() as batch_trace:
            ca_batch.issue_batch(requests)
        with trace.trace() as seq_trace:
            for request in requests:
                ca_seq.issue(request)
        assert batch_trace.as_dict() == seq_trace.as_dict()
