"""Tests for certificate acceptance policy validation."""

from __future__ import annotations

import pytest

from repro.ec import SECP256R1, mul_base
from repro.ecqv import (
    CertificateAuthority,
    USAGE_KEY_AGREEMENT,
    USAGE_SIGNATURE,
    ValidationPolicy,
    issue_credential,
    validate_certificate,
)
from repro.errors import CertificateError
from repro.primitives import HmacDrbg
from repro.testbed import device_id

NOW = 5000


@pytest.fixture()
def ca():
    return CertificateAuthority(
        SECP256R1, device_id("policy-ca"), HmacDrbg(b"seed"), clock=lambda: NOW
    )


@pytest.fixture()
def cert(ca):
    return issue_credential(ca, device_id("dev"), HmacDrbg(b"dev")).certificate


class TestDefaults:
    def test_valid_cert_passes(self, ca, cert):
        validate_certificate(cert, ca.public_key, NOW + 10)

    def test_expired_rejected(self, ca, cert):
        with pytest.raises(CertificateError, match="validity"):
            validate_certificate(cert, ca.public_key, cert.valid_to + 1)

    def test_not_yet_valid_rejected(self, ca, cert):
        with pytest.raises(CertificateError, match="validity"):
            validate_certificate(cert, ca.public_key, cert.valid_from - 1)

    def test_wrong_authority_rejected(self, ca, cert):
        with pytest.raises(CertificateError, match="authority"):
            validate_certificate(cert, mul_base(77, SECP256R1), NOW)


class TestPolicyKnobs:
    def test_validity_check_disabled(self, ca, cert):
        policy = ValidationPolicy(check_validity_window=False)
        validate_certificate(cert, ca.public_key, cert.valid_to + 10, policy)

    def test_authority_binding_disabled(self, ca, cert):
        policy = ValidationPolicy(check_authority_binding=False)
        validate_certificate(cert, mul_base(77, SECP256R1), NOW, policy)

    def test_trusted_issuers(self, ca, cert):
        good = ValidationPolicy(trusted_issuer_ids={device_id("policy-ca")})
        validate_certificate(cert, ca.public_key, NOW, good)
        bad = ValidationPolicy(trusted_issuer_ids={device_id("other-ca")})
        with pytest.raises(CertificateError, match="issuer"):
            validate_certificate(cert, ca.public_key, NOW, bad)

    def test_required_usage(self, ca, cert):
        ok = ValidationPolicy(
            required_usage=USAGE_KEY_AGREEMENT | USAGE_SIGNATURE
        )
        validate_certificate(cert, ca.public_key, NOW, ok)

    def test_missing_usage_rejected(self, ca):
        limited = issue_credential(
            ca, device_id("lim"), HmacDrbg(b"lim")
        ).certificate
        # Issue a key-agreement-only certificate through the CA API.
        from repro.ecqv import CertificateRequest

        request = CertificateRequest(
            device_id("lim2"), mul_base(5, SECP256R1)
        )
        issued = ca.issue(request, key_usage=USAGE_KEY_AGREEMENT)
        policy = ValidationPolicy(required_usage=USAGE_SIGNATURE)
        with pytest.raises(CertificateError, match="usage"):
            validate_certificate(
                issued.certificate, ca.public_key, NOW, policy
            )
        # The full-usage cert passes the same policy.
        validate_certificate(limited, ca.public_key, NOW, policy)
