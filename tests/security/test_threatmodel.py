"""Tests for the Fig. 8 threat-model graph."""

from __future__ import annotations

import networkx as nx

from repro.security import (
    COUNTERMEASURES,
    MITIGATIONS,
    THREATS,
    build_threat_model,
    coverage_summary,
    render_threat_model,
    uncovered_threats,
)
from repro.security.threatmodel import (
    KIND_ASSET,
    KIND_COUNTERMEASURE,
    KIND_PARTIAL,
    KIND_THREAT,
)


class TestGraphStructure:
    def test_node_counts(self):
        graph = build_threat_model()
        kinds = nx.get_node_attributes(graph, "kind")
        assert sum(1 for k in kinds.values() if k == KIND_ASSET) == 2
        assert sum(1 for k in kinds.values() if k == KIND_THREAT) == 5
        assert sum(1 for k in kinds.values() if k == KIND_COUNTERMEASURE) == 3
        assert sum(1 for k in kinds.values() if k == KIND_PARTIAL) == 1

    def test_is_dag(self):
        assert nx.is_directed_acyclic_graph(build_threat_model())

    def test_every_threat_reachable_from_an_asset(self):
        graph = build_threat_model()
        asset_successors = set()
        for node, data in graph.nodes(data=True):
            if data["kind"] == KIND_ASSET:
                asset_successors |= set(graph.successors(node))
        assert asset_successors == set(THREATS)

    def test_no_uncovered_threats(self):
        assert uncovered_threats() == []

    def test_t3_only_partially_protected(self):
        coverage = coverage_summary()
        assert coverage["T3"] == ["R"]

    def test_t1_covered_by_forward_secrecy(self):
        assert coverage_summary()["T1"] == ["C1"]

    def test_mitigation_edges_match_declaration(self):
        graph = build_threat_model()
        for threat_key, cm_keys in MITIGATIONS.items():
            assert set(graph.successors(threat_key)) == set(cm_keys)


class TestDefinitions:
    def test_threat_keys(self):
        assert set(THREATS) == {"T1", "T2", "T3", "T4", "T5"}

    def test_countermeasure_keys(self):
        assert set(COUNTERMEASURES) == {"C1", "C2", "C3"}

    def test_descriptions_non_empty(self):
        for threat in THREATS.values():
            assert threat.description
            assert threat.assets

    def test_render_mentions_everything(self):
        text = render_threat_model()
        for key in list(THREATS) + list(COUNTERMEASURES):
            assert key in text
        assert "Session Data" in text
        assert "Security Credentials" in text


class TestFleetInjectionMapping:
    """The fleet-scale injections stay anchored to the paper's threats."""

    def test_every_injection_kind_is_mapped(self):
        from repro.fleet.scenario import INJECTION_KINDS
        from repro.security import FLEET_INJECTION_THREATS

        assert set(FLEET_INJECTION_THREATS) == set(INJECTION_KINDS)

    def test_mapped_threats_exist_and_span_the_model(self):
        from repro.security import FLEET_INJECTION_THREATS

        covered = set()
        for kind, threat_keys in FLEET_INJECTION_THREATS.items():
            assert threat_keys, f"{kind} maps to no threats"
            for key in threat_keys:
                assert key in THREATS, f"{kind} maps to unknown {key}"
            covered.update(threat_keys)
        # Fleet-scale injections exercise an active-adversary slice of
        # the model (T1 forward secrecy stays a recorded-session attack).
        assert {"T2", "T3", "T4", "T5"} <= covered
