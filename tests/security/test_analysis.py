"""Tests for the Table III security matrix evaluation."""

from __future__ import annotations

import pytest

from repro.errors import AnalysisError
from repro.security import (
    PAPER_TABLE3,
    PROPERTIES,
    Rating,
    evaluate_protocol,
    evaluate_security_matrix,
)
from repro.testbed import make_testbed


@pytest.fixture(scope="module")
def matrix():
    return evaluate_security_matrix(make_testbed(seed=b"pytest-matrix"))


class TestMatrix:
    def test_matches_paper_exactly(self, matrix):
        assert matrix.matches_paper(), matrix.mismatches()

    def test_all_cells_present(self, matrix):
        assert len(matrix.cells) == len(PAPER_TABLE3) * len(PROPERTIES)

    def test_every_cell_has_rationale(self, matrix):
        for cell in matrix.cells.values():
            assert len(cell.rationale) > 10

    def test_attackable_cells_carry_evidence(self, matrix):
        for (protocol, prop), cell in matrix.cells.items():
            assert cell.evidence, (protocol, prop)

    def test_render(self, matrix):
        text = matrix.render()
        assert "S-ECDSA" in text and "STS" in text
        assert "Data exposure" in text

    def test_sts_dominates(self, matrix):
        """STS is never rated worse than any other protocol on any row."""
        order = {Rating.WEAK: 0, Rating.PARTIAL: 1, Rating.FULL: 2}
        for prop in PROPERTIES:
            sts = order[matrix.rating("sts", prop)]
            for protocol in PAPER_TABLE3:
                assert sts >= order[matrix.rating(protocol, prop)]

    def test_no_protocol_fully_protects_node_capture(self, matrix):
        """Paper: 'no algorithm is fully protected against node-capture'."""
        for protocol in PAPER_TABLE3:
            assert matrix.rating(protocol, "node_capturing") != Rating.FULL


class TestSingleProtocol:
    def test_unknown_protocol(self):
        with pytest.raises(AnalysisError):
            evaluate_protocol(make_testbed(seed=b"x"), "tls13")

    def test_scianc_auth_is_partial_via_session_key_binding(self):
        cells = evaluate_protocol(make_testbed(seed=b"y"), "scianc")
        assert cells["auth_procedure"].rating == Rating.PARTIAL
        assert "symmetric" in cells["auth_procedure"].rationale
