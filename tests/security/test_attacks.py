"""Tests for the executable attack simulations — the paper's security claims."""

from __future__ import annotations

import pytest

from repro.security import (
    kci_impersonation,
    key_reuse_across_sessions,
    mitm_without_credentials,
    node_capture,
    record_then_compromise,
    recover_skd_session_key,
    run_recorded_scenario,
    try_decrypt_records,
)
from repro.testbed import make_testbed


@pytest.fixture(scope="module")
def sec_testbed():
    return make_testbed(("alice", "bob"), seed=b"pytest-security")


class TestForwardSecrecy:
    """T1: record now, compromise later (the paper's central claim)."""

    @pytest.mark.parametrize("protocol", ["s-ecdsa", "scianc", "poramb"])
    def test_skd_protocols_exposed(self, sec_testbed, protocol):
        result = record_then_compromise(sec_testbed, protocol)
        assert result.success, result.detail
        assert len(result.recovered_plaintexts) == 3

    def test_sts_protected(self, sec_testbed):
        result = record_then_compromise(sec_testbed, "sts")
        assert not result.success, result.detail
        assert result.recovered_plaintexts == []

    def test_recovered_key_is_exact_for_skd(self, sec_testbed):
        scenario, material = run_recorded_scenario(sec_testbed, "s-ecdsa")
        assert recover_skd_session_key(scenario, material) == scenario.session_key

    def test_recovered_key_is_wrong_for_sts(self, sec_testbed):
        scenario, material = run_recorded_scenario(sec_testbed, "sts")
        assert recover_skd_session_key(scenario, material) != scenario.session_key

    def test_partial_decryption_reported(self, sec_testbed):
        # try_decrypt_records with the true key recovers everything;
        # with a wrong key, nothing (MACs fail).
        scenario, _ = run_recorded_scenario(sec_testbed, "scianc")
        assert try_decrypt_records(scenario, scenario.session_key) == list(
            scenario.plaintexts
        )
        wrong = bytes(48)
        assert try_decrypt_records(scenario, wrong) == []


class TestKeyReuse:
    """T4: the same long-term material spans sessions for SKD protocols."""

    @pytest.mark.parametrize("protocol", ["s-ecdsa", "scianc", "poramb"])
    def test_skd_reuse(self, sec_testbed, protocol):
        result = key_reuse_across_sessions(sec_testbed, protocol)
        assert result.success
        assert "4/4" in result.detail

    def test_sts_no_reuse(self, sec_testbed):
        result = key_reuse_across_sessions(sec_testbed, "sts")
        assert not result.success
        assert "0/4" in result.detail


class TestNodeCapture:
    """T3: past traffic exposure after capturing a device."""

    @pytest.mark.parametrize("protocol", ["s-ecdsa", "scianc", "poramb"])
    def test_skd_past_exposed(self, sec_testbed, protocol):
        result = node_capture(sec_testbed, protocol)
        assert result.success
        assert "EXPOSED" in result.detail

    def test_sts_past_protected(self, sec_testbed):
        result = node_capture(sec_testbed, "sts")
        assert not result.success
        assert "protected" in result.detail
        # But the paper's caveat about future sessions is recorded:
        assert "future impersonation" in result.detail


class TestKci:
    """Key-compromise impersonation (T2/T5 facet)."""

    @pytest.mark.parametrize("protocol", ["scianc", "poramb"])
    def test_symmetric_auth_protocols_vulnerable(self, sec_testbed, protocol):
        result = kci_impersonation(sec_testbed, protocol)
        assert result.success, result.detail

    @pytest.mark.parametrize("protocol", ["s-ecdsa", "sts"])
    def test_signature_protocols_resist(self, sec_testbed, protocol):
        result = kci_impersonation(sec_testbed, protocol)
        assert not result.success, result.detail


class TestMitm:
    """T2: forged (non-CA) certificates must be rejected everywhere."""

    @pytest.mark.parametrize(
        "protocol", ["s-ecdsa", "sts", "scianc", "poramb"]
    )
    def test_forged_certificate_rejected(self, sec_testbed, protocol):
        result = mitm_without_credentials(sec_testbed, protocol)
        assert not result.success, result.detail
        assert "aborted" in result.detail
