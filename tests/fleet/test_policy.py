"""Policy engine units: registry, specs, rules, bundles, config knobs.

The bit-parity of the ``default`` bundle against the pre-engine
orchestrator is locked separately (``test_policy_parity.py``); here the
engine itself is exercised rule by rule on synthetic
:class:`~repro.fleet.FleetState` snapshots, plus the config-level
validation that rejects ambiguous knob/bundle combinations.
"""

from __future__ import annotations

import dataclasses
import types

import pytest

from repro.errors import ConfigError, PolicyError
from repro.fleet import (
    BUNDLE_OVERRIDES,
    BehaviorProfile,
    Decision,
    FailoverSpread,
    FleetConfig,
    FleetState,
    POLICY_BUNDLES,
    POLICY_RULES,
    PolicyEngine,
    RoamCadence,
    Scenario,
    SessionExpiryRekey,
    ShardPolicyAssign,
    ShardView,
    StormRekey,
    ThresholdRebalance,
    UtilisationRebalance,
    VehicleView,
    bundle_conflict,
    compile_scenario,
    load_policy,
    policy_dict,
    policy_json,
    register_policy,
    resolve_policies,
    run_fleet,
)
from repro.primitives import sha256


# -- synthetic state builders -------------------------------------------------


def _shard(index, active=0, failed=False, utilisation=0.0, epoch=1):
    return ShardView(
        index=index,
        failed=failed,
        active_vehicles=active,
        queue_depth=0,
        epoch=epoch,
        utilisation=utilisation,
    )


def _vehicle(index=0, shard=0, **overrides):
    base = dict(
        index=index,
        name=f"veh{index:04d}",
        device_id=b"veh-%d" % index,
        shard=shard,
        records_sent=0,
        rekeys=0,
        migrations=0,
        migrating=False,
        re_enrolling=False,
        pinned_shard=None,
        roam_every=None,
        last_roam_records=-1,
    )
    base.update(overrides)
    return VehicleView(**base)


def _state(point, vehicle, shards, now=0.0, **overrides):
    return FleetState(
        point=point,
        now_ms=now,
        vehicle=vehicle,
        shards=tuple(shards),
        **overrides,
    )


# -- registry + spec round-trip -----------------------------------------------


class TestRegistry:
    def test_shipped_kinds_registered(self):
        assert set(POLICY_RULES) == {
            "shard-assign",
            "roam-cadence",
            "threshold-rebalance",
            "session-expiry-rekey",
            "utilisation-rebalance",
            "storm-rekey",
            "failover-spread",
        }

    def test_double_registration_rejected(self):
        with pytest.raises(PolicyError, match="registered twice"):
            register_policy("shard-assign")(ThresholdRebalance)

    def test_kind_must_be_nonempty_string(self):
        with pytest.raises(PolicyError, match="non-empty string"):
            register_policy("")

    def test_every_rule_round_trips_through_dict_and_json(self):
        rules = [
            ShardPolicyAssign(policy="least-loaded"),
            RoamCadence(),
            ThresholdRebalance(threshold=3),
            SessionExpiryRekey(),
            UtilisationRebalance(max_utilisation=0.5),
            StormRekey(window_ms=750.0, budget=2),
            FailoverSpread(),
        ]
        for rule in rules:
            assert load_policy(policy_dict(rule)) == rule
            assert load_policy(policy_json(rule)) == rule

    def test_policy_dict_rejects_unregistered_objects(self):
        with pytest.raises(PolicyError, match="not a registered policy"):
            policy_dict(object())

    def test_load_rejects_unknown_kind(self):
        with pytest.raises(PolicyError, match="unknown policy rule kind"):
            load_policy({"kind": "lane-hopping"})

    def test_load_rejects_unknown_parameters(self):
        with pytest.raises(PolicyError, match="unknown parameters"):
            load_policy({"kind": "threshold-rebalance", "treshold": 2})

    def test_load_rejects_malformed_json(self):
        with pytest.raises(PolicyError, match="not valid JSON"):
            load_policy("{nope")

    def test_load_rejects_non_object_payload(self):
        with pytest.raises(PolicyError, match="must be an object"):
            load_policy([1, 2, 3])


class TestSpecValidation:
    def test_threshold_must_be_positive_int(self):
        with pytest.raises(PolicyError, match="int >= 1"):
            ThresholdRebalance(threshold=0)
        with pytest.raises(PolicyError, match="int >= 1"):
            ThresholdRebalance(threshold=1.5)

    def test_utilisation_bounds(self):
        with pytest.raises(PolicyError, match="in \\(0, 1\\]"):
            UtilisationRebalance(max_utilisation=0.0)
        with pytest.raises(PolicyError, match="in \\(0, 1\\]"):
            UtilisationRebalance(max_utilisation=1.5)

    def test_storm_window_and_budget(self):
        with pytest.raises(PolicyError, match="window_ms"):
            StormRekey(window_ms=0.0)
        with pytest.raises(PolicyError, match="budget"):
            StormRekey(budget=0)

    def test_shard_assign_policy_name(self):
        with pytest.raises(PolicyError, match="unknown shard policy"):
            ShardPolicyAssign(policy="quantum")


# -- individual rules ---------------------------------------------------------


class TestShardPolicyAssign:
    def test_static_hash_matches_topology_arithmetic(self):
        vehicle = _vehicle(device_id=b"veh-test-device")
        shards = [_shard(0), _shard(1), _shard(2)]
        decision = ShardPolicyAssign().evaluate(
            _state("assign", vehicle, shards), {}
        )
        digest = sha256(b"fleet|shard-assign|" + vehicle.device_id)
        expected = int.from_bytes(digest[:8], "big") % 3
        assert decision.target_shard == expected

    def test_static_hash_skips_failed_shards(self):
        vehicle = _vehicle(device_id=b"veh-test-device")
        shards = [_shard(0, failed=True), _shard(1), _shard(2)]
        decision = ShardPolicyAssign().evaluate(
            _state("assign", vehicle, shards), {}
        )
        assert decision.target_shard in (1, 2)

    def test_least_loaded_picks_minimum_with_index_tiebreak(self):
        shards = [_shard(0, active=2), _shard(1, active=1), _shard(2, active=1)]
        decision = ShardPolicyAssign(policy="least-loaded").evaluate(
            _state("assign", _vehicle(), shards), {}
        )
        assert decision.target_shard == 1

    def test_round_robin_cycles_through_engine_memory(self):
        rule = ShardPolicyAssign(policy="round-robin")
        shards = [_shard(0), _shard(1), _shard(2)]
        memory = {}
        picks = [
            rule.evaluate(_state("assign", _vehicle(), shards), memory)
            .target_shard
            for _ in range(5)
        ]
        assert picks == [0, 1, 2, 0, 1]

    def test_no_alive_shards_defers(self):
        shards = [_shard(0, failed=True)]
        assert (
            ShardPolicyAssign().evaluate(
                _state("assign", _vehicle(), shards), {}
            )
            is None
        )


class TestRoamCadence:
    def _roamer(self, **overrides):
        base = dict(roam_every=4, records_sent=8, shard=0)
        base.update(overrides)
        return _vehicle(**base)

    def test_fires_on_cadence_to_successor_shard(self):
        shards = [_shard(0), _shard(1)]
        decision = RoamCadence().evaluate(
            _state("migrate", self._roamer(), shards), {}
        )
        assert decision == Decision(target_shard=1, roam=True)

    def test_wraps_past_the_last_shard(self):
        shards = [_shard(0), _shard(1)]
        decision = RoamCadence().evaluate(
            _state("migrate", self._roamer(shard=1), shards), {}
        )
        assert decision.target_shard == 0

    @pytest.mark.parametrize(
        "overrides",
        [
            {"roam_every": None},
            {"records_sent": 0},
            {"records_sent": 7},  # off-cadence
            {"records_sent": 8, "last_roam_records": 8},  # already roamed
            {"migrating": True},
            {"re_enrolling": True},
        ],
    )
    def test_guard_chain_defers(self, overrides):
        shards = [_shard(0), _shard(1)]
        state = _state("migrate", self._roamer(**overrides), shards)
        assert RoamCadence().evaluate(state, {}) is None

    def test_single_alive_shard_defers(self):
        shards = [_shard(0), _shard(1, failed=True)]
        state = _state("migrate", self._roamer(), shards)
        assert RoamCadence().evaluate(state, {}) is None


class TestThresholdRebalance:
    def test_fires_past_the_gap(self):
        shards = [_shard(0, active=4), _shard(1, active=1)]
        decision = ThresholdRebalance(threshold=2).evaluate(
            _state("migrate", _vehicle(shard=0), shards), {}
        )
        assert decision.target_shard == 1

    def test_gap_at_threshold_defers(self):
        shards = [_shard(0, active=3), _shard(1, active=1)]
        state = _state("migrate", _vehicle(shard=0), shards)
        assert ThresholdRebalance(threshold=2).evaluate(state, {}) is None

    def test_pinned_vehicle_defers(self):
        shards = [_shard(0, active=4), _shard(1, active=1)]
        state = _state(
            "migrate", _vehicle(shard=0, pinned_shard=0), shards
        )
        assert ThresholdRebalance(threshold=2).evaluate(state, {}) is None


class TestSessionExpiryRekey:
    def test_fires_exactly_on_rekey_due(self):
        rule = SessionExpiryRekey()
        due = _state("rekey", _vehicle(), [_shard(0)], rekey_due=True)
        idle = _state("rekey", _vehicle(), [_shard(0)], rekey_due=False)
        assert rule.evaluate(due, {}) == Decision(rekey=True)
        assert rule.evaluate(idle, {}) is None


class TestUtilisationRebalance:
    def test_fires_above_threshold(self):
        shards = [
            _shard(0, active=4, utilisation=0.8),
            _shard(1, active=1, utilisation=0.2),
        ]
        decision = UtilisationRebalance(max_utilisation=0.6).evaluate(
            _state("migrate", _vehicle(shard=0, records_sent=1), shards), {}
        )
        assert decision.target_shard == 1

    def test_cooldown_requires_progress_between_fires(self):
        rule = UtilisationRebalance(max_utilisation=0.6)
        shards = [
            _shard(0, active=4, utilisation=0.8),
            _shard(1, active=1, utilisation=0.2),
        ]
        memory = {}
        vehicle = _vehicle(shard=0, records_sent=1)
        assert rule.evaluate(_state("migrate", vehicle, shards), memory)
        # Same progress marker: the cool-down holds the rule back.
        assert (
            rule.evaluate(_state("migrate", vehicle, shards), memory)
            is None
        )
        # One more delivered record re-arms it.
        advanced = dataclasses.replace(vehicle, records_sent=2)
        assert rule.evaluate(_state("migrate", advanced, shards), memory)

    def test_below_threshold_defers(self):
        shards = [
            _shard(0, active=2, utilisation=0.5),
            _shard(1, active=2, utilisation=0.5),
        ]
        state = _state("migrate", _vehicle(shard=0, records_sent=1), shards)
        assert (
            UtilisationRebalance(max_utilisation=0.6).evaluate(state, {})
            is None
        )


class TestStormRekey:
    def test_fires_inside_window_past_budget(self):
        state = _state(
            "rekey",
            _vehicle(),
            [_shard(0)],
            now=4_500.0,
            last_storm_ms=4_000.0,
            session_records=4,
        )
        assert StormRekey().evaluate(state, {}) == Decision(rekey=True)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"last_storm_ms": None},
            {"now": 7_000.0},  # window expired
            {"session_records": 3},  # under budget
        ],
    )
    def test_defers_otherwise(self, overrides):
        base = dict(
            now=4_500.0, last_storm_ms=4_000.0, session_records=4
        )
        base.update(overrides)
        now = base.pop("now")
        state = _state("rekey", _vehicle(), [_shard(0)], now=now, **base)
        assert StormRekey().evaluate(state, {}) is None


class TestFailoverSpread:
    def test_adopts_onto_least_loaded(self):
        shards = [
            _shard(0, failed=True),
            _shard(1, active=3),
            _shard(2, active=1),
        ]
        decision = FailoverSpread().evaluate(
            _state("failover", _vehicle(shard=0), shards), {}
        )
        assert decision.target_shard == 2

    def test_defers_for_alive_pin(self):
        shards = [_shard(0, failed=True), _shard(1), _shard(2)]
        state = _state(
            "failover", _vehicle(shard=0, pinned_shard=1), shards
        )
        assert FailoverSpread().evaluate(state, {}) is None

    def test_adopts_when_pin_is_dead(self):
        shards = [_shard(0, failed=True), _shard(1, active=2), _shard(2)]
        decision = FailoverSpread().evaluate(
            _state("failover", _vehicle(shard=0, pinned_shard=0), shards),
            {},
        )
        assert decision.target_shard == 2


# -- the engine ---------------------------------------------------------------


class TestEngine:
    def test_first_match_wins_in_declaration_order(self):
        engine = PolicyEngine(
            (StormRekey(budget=1), SessionExpiryRekey())
        )
        state = _state(
            "rekey",
            _vehicle(),
            [_shard(0)],
            now=100.0,
            rekey_due=True,
            last_storm_ms=50.0,
            session_records=3,
        )
        decision = engine.decide("rekey", state)
        assert decision.rule == "storm-rekey"
        assert decision.point == "rekey"

    def test_stamps_rule_and_point(self):
        engine = PolicyEngine((ThresholdRebalance(threshold=1),))
        shards = [_shard(0, active=4), _shard(1, active=1)]
        decision = engine.decide(
            "migrate", _state("migrate", _vehicle(shard=0), shards)
        )
        assert decision.rule == "threshold-rebalance"
        assert decision.point == "migrate"

    def test_no_rules_at_point_returns_none(self):
        engine = PolicyEngine((SessionExpiryRekey(),))
        assert not engine.has_rules("migrate")
        assert (
            engine.decide(
                "migrate", _state("migrate", _vehicle(), [_shard(0)])
            )
            is None
        )

    def test_unregistered_rule_rejected(self):
        with pytest.raises(PolicyError, match="not a registered policy"):
            PolicyEngine((object(),))

    def test_unknown_point_rejected(self):
        engine = PolicyEngine(())
        with pytest.raises(PolicyError, match="unknown decision point"):
            engine.has_rules("teleport")

    def test_decision_counts_tally_per_rule(self):
        engine = PolicyEngine((SessionExpiryRekey(),))
        state = _state("rekey", _vehicle(), [_shard(0)], rekey_due=True)
        for _ in range(3):
            engine.decide("rekey", state)
        assert engine.decision_counts == {
            ("rekey", "session-expiry-rekey"): 3
        }

    def test_only_default_rekey_flag(self):
        assert PolicyEngine((SessionExpiryRekey(),)).only_default_rekey
        assert not PolicyEngine(
            (StormRekey(), SessionExpiryRekey())
        ).only_default_rekey

    def test_validation_rejects_out_of_range_target(self):
        decision = Decision(
            rule="threshold-rebalance", point="migrate", target_shard=7
        )
        state = _state("migrate", _vehicle(shard=0), [_shard(0), _shard(1)])
        with pytest.raises(PolicyError, match="out-of-range shard"):
            PolicyEngine._validate(decision, state, ThresholdRebalance())

    def test_validation_rejects_failed_target(self):
        decision = Decision(
            rule="threshold-rebalance", point="migrate", target_shard=1
        )
        state = _state(
            "migrate", _vehicle(shard=0), [_shard(0), _shard(1, failed=True)]
        )
        with pytest.raises(PolicyError, match="failed shard"):
            PolicyEngine._validate(decision, state, ThresholdRebalance())

    def test_validation_rejects_migration_onto_own_shard(self):
        decision = Decision(
            rule="threshold-rebalance", point="migrate", target_shard=0
        )
        state = _state("migrate", _vehicle(shard=0), [_shard(0), _shard(1)])
        with pytest.raises(PolicyError, match="own shard"):
            PolicyEngine._validate(decision, state, ThresholdRebalance())

    def test_validation_rejects_non_rekey_at_rekey_point(self):
        decision = Decision(
            rule="session-expiry-rekey", point="rekey", rekey=False
        )
        state = _state("rekey", _vehicle(), [_shard(0)])
        with pytest.raises(PolicyError, match="without requesting"):
            PolicyEngine._validate(decision, state, SessionExpiryRekey())


# -- bundles + resolution -----------------------------------------------------


class TestBundles:
    def test_shipped_bundle_names(self):
        assert set(POLICY_BUNDLES) == {
            "default",
            "utilisation-rebalance",
            "storm-hardened",
            "failover-spread",
        }

    def test_default_bundle_composition(self):
        config = FleetConfig(shards=2, migrate_threshold=2)
        rules = resolve_policies(config)
        assert [rule.kind for rule in rules] == [
            "shard-assign",
            "threshold-rebalance",
            "session-expiry-rekey",
        ]
        assert rules[1].threshold == 2

    def test_default_bundle_without_threshold(self):
        rules = resolve_policies(FleetConfig())
        assert [rule.kind for rule in rules] == [
            "shard-assign",
            "session-expiry-rekey",
        ]

    def test_roaming_schedule_adds_the_cadence_rule(self):
        scenario = Scenario(
            name="roam",
            profiles=(
                BehaviorProfile(name="roamer", count=4, roam_every=3),
            ),
        )
        config = FleetConfig(n_vehicles=4, shards=2)
        schedule = compile_scenario(scenario, config)
        rules = resolve_policies(config, schedule)
        assert [rule.kind for rule in rules] == [
            "shard-assign",
            "roam-cadence",
            "session-expiry-rekey",
        ]

    def test_scenario_policies_come_first(self):
        scenario = Scenario(
            name="custom", policies=(StormRekey(budget=2),)
        )
        config = FleetConfig(n_vehicles=2)
        schedule = compile_scenario(scenario, config)
        rules = resolve_policies(config, schedule)
        assert rules[0] == StormRekey(budget=2)
        assert rules[-1] == SessionExpiryRekey()

    def test_unknown_bundle_raises_policy_error(self):
        # FleetConfig rejects unknown bundles up front, so feed the
        # resolver a bare config-shaped object to reach its own check.
        config = types.SimpleNamespace(
            policy="turbo", shard_policy="static-hash", migrate_threshold=None
        )
        with pytest.raises(PolicyError, match="unknown policy bundle"):
            resolve_policies(config)

    def test_bundle_overrides_registry_matches_conflict_check(self):
        config = FleetConfig(shards=2, migrate_threshold=1, policy=None)
        for name, knobs in BUNDLE_OVERRIDES.items():
            message = bundle_conflict(name, config)
            assert message is not None
            for knob in knobs:
                assert knob in message


# -- config-level validation (the knob/bundle conflict fix) -------------------


class TestConfigValidation:
    def test_unknown_bundle_rejected_at_config_time(self):
        with pytest.raises(ConfigError, match="unknown policy bundle"):
            FleetConfig(policy="turbo")

    def test_conflicting_knob_and_bundle_rejected(self):
        with pytest.raises(ConfigError, match="migrate_threshold"):
            FleetConfig(
                shards=2,
                migrate_threshold=2,
                policy="utilisation-rebalance",
            )

    def test_conflict_message_is_actionable(self):
        with pytest.raises(ConfigError, match="drop migrate_threshold"):
            FleetConfig(
                shards=2,
                migrate_threshold=1,
                policy="utilisation-rebalance",
            )

    def test_bundle_without_conflicting_knob_accepted(self):
        config = FleetConfig(shards=2, policy="utilisation-rebalance")
        assert config.policy == "utilisation-rebalance"

    def test_default_bundle_keeps_explicit_threshold(self):
        config = FleetConfig(shards=2, migrate_threshold=2, policy="default")
        assert config.migrate_threshold == 2

    def test_policy_none_is_default(self):
        assert FleetConfig().policy is None


# -- end-to-end ---------------------------------------------------------------


class TestEndToEnd:
    def _config(self, **overrides):
        base = dict(
            n_vehicles=8,
            seed=b"policy-e2e",
            records_per_vehicle=6,
            max_records=8,
            send_interval_ms=20.0,
            arrival_spread_ms=30.0,
            shards=2,
        )
        base.update(overrides)
        return FleetConfig(**base)

    def test_alternative_bundle_runs_deterministically(self):
        config = self._config(policy="utilisation-rebalance")
        first = run_fleet(config).stats
        second = run_fleet(config).stats
        assert first.digest() == second.digest()
        assert first.policy == "utilisation-rebalance"

    def test_policy_field_is_digest_neutral_metadata(self):
        plain = run_fleet(self._config()).stats
        tagged = dataclasses.replace(plain, policy="relabelled")
        assert tagged.digest() == plain.digest()
        assert (
            type(plain).from_dict(tagged.as_dict()).policy == "relabelled"
        )

    def test_decision_counts_surface_on_the_orchestrator(self):
        from repro.fleet import FleetOrchestrator

        orch = FleetOrchestrator(self._config())
        orch.run()
        counts = orch.policy.decision_counts
        assert counts.get(("assign", "shard-assign"), 0) >= 8

    def test_storm_hardened_bundle_rekeys_at_least_as_often(self):
        scenario_config = self._config(
            records_per_vehicle=12, max_records=30
        )
        from repro.fleet import get_scenario

        scenario = get_scenario("replay-storm")
        base = run_fleet(scenario_config, scenario=scenario).stats
        hardened = run_fleet(
            dataclasses.replace(scenario_config, policy="storm-hardened"),
            scenario=scenario,
        ).stats
        assert hardened.rekeys >= base.rekeys
