"""Tests for fleet statistics: summaries, digests, derived rates."""

from __future__ import annotations

from repro.fleet import FleetStats, LatencySummary


def make_stats(**overrides):
    base = dict(
        vehicles=4,
        enrollments=4,
        sessions_established=8,
        rekeys=4,
        records_sent=40,
        duration_ms=2000.0,
        ca_busy_ms=150.0,
        ca_utilisation=0.075,
        ca_batches=2,
        ca_max_batch=3,
        enrollment_latency=LatencySummary.from_samples([10.0, 20.0]),
        establishment_latency=LatencySummary.from_samples([5.0]),
        vehicle_energy_mj=1.5,
        ca_energy_mj=0.5,
    )
    base.update(overrides)
    return FleetStats(**base)


class TestLatencySummary:
    def test_empty(self):
        summary = LatencySummary.from_samples([])
        assert summary.count == 0
        assert summary.max_ms == 0.0

    def test_single_sample(self):
        summary = LatencySummary.from_samples([7.5])
        assert summary.min_ms == summary.p50_ms == summary.max_ms == 7.5

    def test_percentiles_ordered(self):
        samples = [float(i) for i in range(100, 0, -1)]
        summary = LatencySummary.from_samples(samples)
        assert summary.min_ms == 1.0
        assert summary.max_ms == 100.0
        assert (
            summary.min_ms
            <= summary.p50_ms
            <= summary.p95_ms
            <= summary.max_ms
        )
        assert summary.p50_ms == 51.0  # nearest-rank on sorted 1..100
        assert summary.mean_ms == 50.5

    def test_unsorted_input_is_sorted(self):
        assert LatencySummary.from_samples(
            [3.0, 1.0, 2.0]
        ) == LatencySummary.from_samples([1.0, 2.0, 3.0])


class TestFleetStats:
    def test_throughput_rates(self):
        stats = make_stats()
        assert stats.throughput_records_per_s == 20.0  # 40 in 2 s
        assert stats.sessions_per_s == 4.0

    def test_zero_duration_rates(self):
        stats = make_stats(duration_ms=0.0)
        assert stats.throughput_records_per_s == 0.0
        assert stats.sessions_per_s == 0.0

    def test_digest_stable_and_sensitive(self):
        assert make_stats().digest() == make_stats().digest()
        assert make_stats().digest() != make_stats(records_sent=41).digest()
        assert (
            make_stats().digest()
            != make_stats(ca_busy_ms=150.000001).digest()
        )

    def test_render_mentions_headlines(self):
        text = make_stats().render()
        assert "4 vehicles" in text
        assert "re-keys" in text
        assert "utilisation" in text
