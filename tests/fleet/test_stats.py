"""Tests for fleet statistics: summaries, digests, derived rates."""

from __future__ import annotations

from repro.fleet import FleetStats, LatencySummary


def make_stats(**overrides):
    base = dict(
        vehicles=4,
        enrollments=4,
        sessions_established=8,
        rekeys=4,
        records_sent=40,
        duration_ms=2000.0,
        ca_busy_ms=150.0,
        ca_utilisation=0.075,
        ca_batches=2,
        ca_max_batch=3,
        enrollment_latency=LatencySummary.from_samples([10.0, 20.0]),
        establishment_latency=LatencySummary.from_samples([5.0]),
        vehicle_energy_mj=1.5,
        ca_energy_mj=0.5,
    )
    base.update(overrides)
    return FleetStats(**base)


class TestLatencySummary:
    def test_empty(self):
        summary = LatencySummary.from_samples([])
        assert summary.count == 0
        assert summary.max_ms == 0.0

    def test_single_sample(self):
        summary = LatencySummary.from_samples([7.5])
        assert summary.min_ms == summary.p50_ms == summary.max_ms == 7.5

    def test_percentiles_ordered(self):
        samples = [float(i) for i in range(100, 0, -1)]
        summary = LatencySummary.from_samples(samples)
        assert summary.min_ms == 1.0
        assert summary.max_ms == 100.0
        assert (
            summary.min_ms
            <= summary.p50_ms
            <= summary.p95_ms
            <= summary.max_ms
        )
        assert summary.p50_ms == 51.0  # nearest-rank on sorted 1..100
        assert summary.mean_ms == 50.5

    def test_unsorted_input_is_sorted(self):
        assert LatencySummary.from_samples(
            [3.0, 1.0, 2.0]
        ) == LatencySummary.from_samples([1.0, 2.0, 3.0])

    def test_from_dict_roundtrip(self):
        summary = LatencySummary.from_samples([1.0, 4.0, 2.0, 9.0])
        assert LatencySummary.from_dict(summary.as_dict()) == summary

    def test_from_dict_accepts_pre_topology_format(self):
        # Summaries serialized before p99_ms existed lack the key; they
        # must deserialize with the same 0.0 the field's default gives.
        old_format = {
            "count": 3,
            "min_ms": 1.0,
            "mean_ms": 2.0,
            "p50_ms": 2.0,
            "p95_ms": 3.0,
            "max_ms": 3.0,
        }
        summary = LatencySummary.from_dict(old_format)
        assert summary.p99_ms == 0.0
        assert summary.count == 3
        # Round-tripping upgrades the dict to the current format.
        assert LatencySummary.from_dict(summary.as_dict()) == summary

    def test_p99_uses_round_half_up_rank(self):
        # 151 samples: p99 rank is 0.99 * 150 = 148.5.  Banker's
        # rounding picks 148 (the lower sample) — the corrected p99
        # must round half up to index 149.
        samples = [float(i) for i in range(151)]
        summary = LatencySummary.from_samples(samples)
        assert summary.p99_ms == 149.0

    def test_digest_frozen_percentiles_keep_legacy_rounding(self):
        # p50/p95 are rendered into row() and therefore into every
        # historical digest: they must keep banker's rounding even on
        # exact .5 ranks.  4 samples: p50 rank 1.5 -> index 2 (even),
        # NOT index 1 as round-half-up would give.
        summary = LatencySummary.from_samples([10.0, 20.0, 30.0, 40.0])
        assert summary.p50_ms == 30.0
        # 11 samples: p95 rank 9.5 -> banker's picks index 10 here
        # (even), which happens to agree with round-half-up; the pin
        # documents the rule either way.
        summary11 = LatencySummary.from_samples([float(i) for i in range(11)])
        assert summary11.p95_ms == 10.0

    def test_p99_at_boundaries(self):
        assert LatencySummary.from_samples([]).p99_ms == 0.0
        assert LatencySummary.from_samples([5.0]).p99_ms == 5.0
        # p99 can never exceed the maximum sample.
        summary = LatencySummary.from_samples([1.0, 2.0])
        assert summary.p99_ms <= summary.max_ms


class TestFleetStats:
    def test_throughput_rates(self):
        stats = make_stats()
        assert stats.throughput_records_per_s == 20.0  # 40 in 2 s
        assert stats.sessions_per_s == 4.0

    def test_zero_duration_rates(self):
        stats = make_stats(duration_ms=0.0)
        assert stats.throughput_records_per_s == 0.0
        assert stats.sessions_per_s == 0.0

    def test_digest_stable_and_sensitive(self):
        assert make_stats().digest() == make_stats().digest()
        assert make_stats().digest() != make_stats(records_sent=41).digest()
        assert (
            make_stats().digest()
            != make_stats(ca_busy_ms=150.000001).digest()
        )

    def test_render_mentions_headlines(self):
        text = make_stats().render()
        assert "4 vehicles" in text
        assert "re-keys" in text
        assert "utilisation" in text
