"""Fleet churn: live migration, gateway rejoin, chain epochs, goldens.

Two contracts are locked down here:

1. **Backwards compatibility** — with churn disabled, the orchestrator
   reproduces the PR 2 digests bit-for-bit (golden values captured from
   the pre-churn orchestrator on the exact same configurations).
2. **Churn determinism** — the migration/rejoin scenarios are pure
   functions of the seed: same seed ⇒ same digest, different seed ⇒
   different digest (the seed-matrix test), with the whole lifecycle
   visible in the epoch-aware stats.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import CertificateError, SimulationError
from repro.fleet import (
    FleetConfig,
    FleetOrchestrator,
    plan_v2v_pairs,
    run_fleet,
)
from repro.protocols import SessionExpired
from repro.testbed import DEFAULT_NOW

# -- golden digests captured from the PR 2 (pre-churn) orchestrator ----------

#: ``_topology_config``-shaped runs (see tests/fleet/test_topology.py).
_PR2_TOPOLOGY_GOLDENS = {
    1: "a43e300427fe7035b2d2c1a68edaffe0d349313cf046a151c9f430aa153c6d4e",
    2: "6ed2a66e4325260712dd84192d06bab8cef9303a3b50768d51567ee46bc04a41",
    4: "3d0ba83a7e1369fa79147400588cf1bb013dc15809d89a6078f789992654df82",
}
_PR2_V2V_GOLDEN = (
    "b6d8c193008cf2c60d08616e1d44d24d3797227489a1a3b31ff143a7aec3d5e4"
)
_PR2_FAILOVER_GOLDEN = (
    "b5087aa40b037cd5709a3e735d9b7e41152aaef27908366bc84733415b38730d"
)


def _topology_config(**overrides) -> FleetConfig:
    base = dict(
        n_vehicles=6,
        seed=b"topology-det",
        records_per_vehicle=2,
        max_records=4,
        send_interval_ms=20.0,
        arrival_spread_ms=15.0,
    )
    base.update(overrides)
    return FleetConfig(**base)


def _churn_config(**overrides) -> FleetConfig:
    """Failure at 4 s, rejoin at 6 s, re-balancing threshold 2."""
    base = dict(
        n_vehicles=8,
        seed=b"churn-test",
        records_per_vehicle=40,
        max_records=100,
        send_interval_ms=25.0,
        arrival_spread_ms=15.0,
        shards=2,
        shard_fail_at_ms=4_000.0,
        fail_shard=0,
        shard_rejoin_at_ms=6_000.0,
        migrate_threshold=2,
    )
    base.update(overrides)
    return FleetConfig(**base)


class TestGoldenDigests:
    """Churn-disabled runs reproduce the PR 2 digests bit-for-bit."""

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_sharded_topology_digests_unchanged(self, shards):
        stats = run_fleet(_topology_config(shards=shards)).stats
        assert stats.digest() == _PR2_TOPOLOGY_GOLDENS[shards]
        assert not stats.is_churn_run

    def test_v2v_digest_unchanged(self):
        config = FleetConfig(
            n_vehicles=10,
            seed=b"topology-v2v",
            records_per_vehicle=2,
            max_records=4,
            send_interval_ms=20.0,
            arrival_spread_ms=15.0,
            shards=2,
            v2v_fraction=0.6,
            v2v_records=4,
        )
        assert run_fleet(config).stats.digest() == _PR2_V2V_GOLDEN

    def test_failover_digest_unchanged(self):
        config = FleetConfig(
            n_vehicles=8,
            seed=b"topology-failover",
            records_per_vehicle=40,
            max_records=100,
            send_interval_ms=25.0,
            arrival_spread_ms=15.0,
            shards=2,
            shard_fail_at_ms=4_000.0,
            fail_shard=0,
        )
        stats = run_fleet(config).stats
        assert stats.digest() == _PR2_FAILOVER_GOLDEN
        # Failover without rejoin leaves every shard at epoch 1, so the
        # per-shard rows hash exactly as they did before churn existed.
        assert all(s.epoch == 1 for s in stats.per_shard)


class TestSeedMatrix:
    """Churn scenarios are pure functions of the seed."""

    @pytest.mark.parametrize(
        "seed", [b"churn-seed-a", b"churn-seed-b", b"churn-seed-c"]
    )
    def test_same_seed_same_digest(self, seed):
        config = _churn_config(seed=seed)
        assert (
            run_fleet(config).stats.digest()
            == run_fleet(config).stats.digest()
        )

    def test_different_seeds_differ(self):
        digests = {
            run_fleet(_churn_config(seed=seed)).stats.digest()
            for seed in (b"churn-seed-a", b"churn-seed-b", b"churn-seed-c")
        }
        assert len(digests) == 3


class TestLiveMigration:
    @pytest.fixture(scope="class")
    def rebalanced(self):
        # static-hash places veh0000..0005 as 2/4 across two shards, so
        # threshold 1 forces the re-balancer to move one vehicle.
        config = _topology_config(
            n_vehicles=6,
            seed=b"churn-rebalance",
            records_per_vehicle=30,
            max_records=100,
            send_interval_ms=25.0,
            shards=2,
            migrate_threshold=1,
        )
        return config, run_fleet(config)

    def test_threshold_policy_triggers_migration(self, rebalanced):
        _, result = rebalanced
        stats = result.stats
        assert stats.migrations >= 1
        assert stats.re_enrollments >= stats.migrations
        assert stats.migration_latency.count == stats.migrations
        assert stats.is_churn_run and stats.is_topology_run

    def test_migrated_vehicle_re_enrolled_at_target_ca(self, rebalanced):
        _, result = rebalanced
        moved = [v for v in result.vehicles if v.migrations > 0]
        assert moved
        for vehicle in moved:
            assert vehicle.re_enrollments >= 1
            assert not vehicle.migrating
            kinds = [e.kind for e in vehicle.events]
            assert "migrate" in kinds and "re-enrolled" in kinds
        assert sum(v.migrations for v in moved) == result.stats.migrations

    def test_everyone_finishes_with_all_records(self, rebalanced):
        config, result = rebalanced
        assert all(
            v.records_sent == config.records_per_vehicle
            for v in result.vehicles
        )

    def test_per_shard_migration_counters_balance(self, rebalanced):
        _, result = rebalanced
        stats = result.stats
        assert sum(s.migrations_in for s in stats.per_shard) == (
            stats.migrations
        )
        assert sum(s.migrations_out for s in stats.per_shard) == (
            stats.migrations
        )

    def test_migration_digest_differs_from_non_churn(self, rebalanced):
        config, result = rebalanced
        still = dataclasses.replace(config, migrate_threshold=None)
        assert run_fleet(still).stats.digest() != result.stats.digest()


class TestExplicitMigrateApi:
    @pytest.fixture(scope="class")
    def forced(self):
        config = _topology_config(
            n_vehicles=6,
            seed=b"churn-explicit",
            records_per_vehicle=40,
            max_records=100,
            send_interval_ms=25.0,
            shards=2,
        )
        orchestrator = FleetOrchestrator(config)
        vehicle = orchestrator.vehicles[0]
        source_holder = {}

        def force() -> None:
            source = orchestrator.shards[vehicle.shard]
            target = orchestrator.shards[1 - vehicle.shard]
            source_holder["source"] = source
            orchestrator.migrate(vehicle, target)

        # Well after enrollment + first establishment, well before done.
        orchestrator.sim.schedule_at(4_200.0, force)
        result = orchestrator.run()
        return orchestrator, vehicle, source_holder["source"], result

    def test_explicit_migration_moves_and_re_enrolls(self, forced):
        orchestrator, vehicle, source, result = forced
        assert vehicle.migrations == 1
        assert vehicle.re_enrollments == 1
        assert vehicle.shard != source.index
        target = orchestrator.shards[vehicle.shard]
        assert (
            vehicle.credential.certificate.authority_key_id
            == target.ca.authority_key_id
        )
        assert vehicle.records_sent == result.stats.records_sent // 6

    def test_drained_half_sees_session_expired_only(self, forced):
        orchestrator, vehicle, source, _ = forced
        # The source gateway dropped its half at migration time: any use
        # of the stale pairing raises SessionExpired, never a MAC error.
        with pytest.raises(SessionExpired):
            source.manager.send(vehicle.device_id, b"stale")

    def test_migrating_to_own_shard_rejected(self, forced):
        orchestrator, vehicle, _, _ = forced
        with pytest.raises(SimulationError):
            orchestrator.migrate(vehicle, orchestrator.shards[vehicle.shard])


class TestGatewayRejoin:
    @pytest.fixture(scope="class")
    def churned(self):
        config = _churn_config()
        orchestrator = FleetOrchestrator(config)
        result = orchestrator.run()
        return config, orchestrator, result

    def test_rejoined_shard_is_alive_at_next_epoch(self, churned):
        _, orchestrator, result = churned
        shard = result.stats.per_shard[0]
        assert result.stats.rejoins == 1
        assert not shard.failed
        assert shard.epoch == 2
        assert orchestrator.shards[0].epoch == 2
        assert result.stats.per_shard[1].epoch == 1

    def test_trust_store_rolled_the_chain_epoch(self, churned):
        _, orchestrator, _ = churned
        store = orchestrator.topology.trust_store
        shard = orchestrator.shards[0]
        ca_subject = shard.ca_certificate.subject_id
        assert store.chain_epoch(ca_subject) == 2
        # The rejoined CA's current certificate resolves...
        assert (
            store.resolve_issuer(
                shard.gateway_credential.certificate, DEFAULT_NOW
            )
            == shard.ca.public_key
        )

    def test_old_epoch_certificates_rejected(self, churned):
        _, orchestrator, result = churned
        store = orchestrator.topology.trust_store
        # Vehicles may *hold* a retired-epoch credential to the end (an
        # undisturbed session never re-validates), but the chain itself
        # rejects it: resolution raises the chain-epoch error.
        stale = [
            v
            for v in result.vehicles
            if store.is_retired(v.credential.certificate.authority_key_id)
        ]
        assert stale, "expected at least one idle stale-credential holder"
        with pytest.raises(CertificateError, match="chain epoch"):
            store.resolve_issuer(stale[0].credential.certificate, DEFAULT_NOW)
        # And every vehicle that went through a churn re-enrollment left
        # the retired epoch behind.
        for vehicle in result.vehicles:
            if vehicle.re_enrollments > 0:
                assert not store.is_retired(
                    vehicle.credential.certificate.authority_key_id
                )
        assert result.stats.re_enrollments > 0

    def test_rejoined_shard_adopts_migrated_back_vehicles(self, churned):
        _, orchestrator, result = churned
        shard = result.stats.per_shard[0]
        assert shard.migrations_in >= 1
        back = [
            v
            for v in result.vehicles
            if v.shard == 0 and v.migrations > 0
        ]
        assert back, "expected at least one vehicle migrated back"
        for vehicle in back:
            # Adopted under the *new* sub-CA: the fresh credential chains
            # through the epoch-2 intermediate.
            assert (
                vehicle.credential.certificate.authority_key_id
                == orchestrator.shards[0].ca.authority_key_id
            )
            session = vehicle.manager.session_for(
                orchestrator.shards[0].gateway_id
            )
            assert session.peer_id == orchestrator.shards[0].gateway_id

    def test_everyone_finishes_through_the_full_lifecycle(self, churned):
        config, _, result = churned
        assert all(
            v.records_sent == config.records_per_vehicle
            for v in result.vehicles
        )
        assert result.stats.records_sent == (
            config.n_vehicles * config.records_per_vehicle
        )

    def test_rejoin_digest_is_epoch_aware(self, churned):
        config, _, result = churned
        # A failover-only run (no rejoin, no migration) must hash
        # differently: the churn segment and the epoch-2 shard row only
        # exist in the churn run.
        plain = dataclasses.replace(
            config, shard_rejoin_at_ms=None, migrate_threshold=None
        )
        assert run_fleet(plain).stats.digest() != result.stats.digest()


class TestEpochReEnrollment:
    def test_stale_credentials_re_enroll_after_rejoin(self):
        # A small record budget forces re-keys *after* the rejoin, so
        # vehicles still holding pre-failure (retired-epoch) credentials
        # must pull fresh certificates before re-establishing.
        config = _churn_config(
            seed=b"churn-epoch",
            records_per_vehicle=60,
            max_records=10,
            shard_rejoin_at_ms=5_500.0,
        )
        result = run_fleet(config)
        epoch_reenrolls = [
            (v.name, e.detail)
            for v in result.vehicles
            for e in v.events
            if e.kind == "re-enroll" and "chain epoch rolled" in e.detail
        ]
        assert epoch_reenrolls, "expected chain-epoch forced re-enrollments"
        assert result.stats.re_enrollments >= len(epoch_reenrolls)
        assert all(
            v.records_sent == config.records_per_vehicle
            for v in result.vehicles
        )


class TestV2VChurnOverlap:
    """Gateway re-keys and V2V re-keys racing one chain-epoch roll."""

    @pytest.fixture(scope="class")
    def overlapped(self):
        # Tight budgets on both the gateway and V2V sessions force both
        # paths to re-establish after the rejoin, so the same stale
        # credential can be demanded fresh by two paths at once.
        config = _churn_config(
            seed=b"churn-v2v-overlap",
            records_per_vehicle=60,
            max_records=10,
            v2v_fraction=0.5,
            v2v_records=25,
            shard_rejoin_at_ms=5_500.0,
        )
        return config, run_fleet(config)

    def test_everything_completes_and_is_deterministic(self, overlapped):
        config, result = overlapped
        assert all(
            v.records_sent == config.records_per_vehicle
            for v in result.vehicles
        )
        for a, b in plan_v2v_pairs(config):
            assert result.vehicles[a].v2v_done_at is not None
        assert result.stats.rejoins == 1
        assert run_fleet(config).stats.digest() == result.stats.digest()

    def test_concurrent_epoch_re_enrollments_coalesce(self, overlapped):
        _, result = overlapped
        assert result.stats.re_enrollments > 0
        for vehicle in result.vehicles:
            # The counter only counts real pipelines; coalesced requests
            # show up as timeline events instead of double enrollment.
            pipelines = sum(
                1
                for e in vehicle.events
                if e.kind == "re-enroll" and "coalesced" not in e.detail
            )
            assert vehicle.re_enrollments == pipelines
            assert not vehicle.re_enrolling


class TestChurnConfigValidation:
    def test_bad_churn_configs_rejected(self):
        with pytest.raises(SimulationError):
            FleetConfig(shards=2, shard_rejoin_at_ms=100.0)  # no failure
        with pytest.raises(SimulationError):
            FleetConfig(
                shards=2,
                shard_fail_at_ms=200.0,
                shard_rejoin_at_ms=100.0,  # before the failure
            )
        with pytest.raises(SimulationError):
            FleetConfig(
                shards=2,
                shard_fail_at_ms=200.0,
                shard_rejoin_at_ms=200.0,  # not strictly after
            )
        with pytest.raises(SimulationError):
            FleetConfig(shards=1, migrate_threshold=1)
        with pytest.raises(SimulationError):
            FleetConfig(shards=2, migrate_threshold=0)

    def test_migrate_between_failed_shards_rejected(self):
        config = _topology_config(shards=2)
        orchestrator = FleetOrchestrator(config)
        orchestrator.shards[1].failed = True
        with pytest.raises(SimulationError):
            orchestrator.migrate(
                orchestrator.vehicles[0], orchestrator.shards[1]
            )
