"""Property-based invariants for the scenario engine.

Golden digests and the example-based tests pin specific scenarios; these
pin the *laws*: any valid ``(spec, seed)`` pair must compile to the same
schedule twice (bit-identical digests), JSON serialization must be a
lossless inverse, arrivals must respect their declared envelopes, and
the scenario extensions of :class:`~repro.fleet.FleetStats` must
round-trip through ``as_dict``/``from_dict`` digest-stably.
"""

from __future__ import annotations

import json

from hypothesis import given, settings, strategies as st

from repro.fleet import (
    BehaviorProfile,
    BurstArrivals,
    CaQueueFlood,
    DiurnalArrivals,
    FleetConfig,
    FleetStats,
    InjectionStats,
    LatencySummary,
    PoissonArrivals,
    ReplayStorm,
    Scenario,
    StaleCertFlood,
    UniformArrivals,
    compile_scenario,
    load_scenario,
)

# -- strategies ---------------------------------------------------------------

_times = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)
_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz-", min_size=1, max_size=12
)


@st.composite
def arrival_specs(draw):
    """Any valid arrival process."""
    choice = draw(st.integers(0, 3))
    if choice == 0:
        spread = draw(
            st.one_of(st.none(), st.floats(0.0, 1e5, allow_nan=False))
        )
        return UniformArrivals(spread_ms=spread)
    if choice == 1:
        return PoissonArrivals(
            rate_per_s=draw(st.floats(0.1, 1e4, allow_nan=False))
        )
    if choice == 2:
        interval = draw(st.floats(1.0, 1e4, allow_nan=False))
        return BurstArrivals(
            waves=draw(st.integers(1, 8)),
            wave_interval_ms=interval,
            wave_spread_ms=draw(st.floats(0.0, 1.0)) * interval,
        )
    return DiurnalArrivals(
        period_ms=draw(st.floats(1.0, 1e5, allow_nan=False)),
        amplitude=draw(st.floats(0.0, 1.0)),
    )


@st.composite
def behavior_profiles(draw, name):
    """Any valid behavior profile with the given name."""
    roam = draw(st.one_of(st.none(), st.integers(1, 10)))
    convoy = (
        None if roam is not None
        else draw(st.one_of(st.none(), st.integers(2, 5)))
    )
    # Convoy profiles must claim whole convoys (compile rejects a
    # trailing partial one).
    count = (
        convoy * draw(st.integers(1, 3))
        if convoy is not None
        else draw(st.integers(1, 6))
    )
    return BehaviorProfile(
        name=name,
        count=count,
        records_per_vehicle=draw(st.one_of(st.none(), st.integers(1, 30))),
        send_interval_ms=draw(
            st.one_of(st.none(), st.floats(0.1, 1e3, allow_nan=False))
        ),
        max_records=draw(st.one_of(st.none(), st.integers(1, 20))),
        roam_every=roam,
        convoy_size=convoy,
    )


@st.composite
def injection_specs(draw):
    """Any valid injection spec."""
    choice = draw(st.integers(0, 2))
    at_ms = draw(st.floats(0.0, 1e5, allow_nan=False))
    if choice == 0:
        return ReplayStorm(
            at_ms=at_ms,
            replays=draw(st.integers(1, 200)),
            target_shard=draw(st.integers(0, 3)),
        )
    if choice == 1:
        return StaleCertFlood(at_ms=at_ms, attempts=draw(st.integers(1, 200)))
    return CaQueueFlood(
        at_ms=at_ms,
        requests=draw(st.integers(1, 200)),
        target_shard=draw(st.integers(0, 3)),
    )


@st.composite
def scenarios(draw):
    """Any structurally valid scenario spec."""
    names = draw(
        st.lists(_names, min_size=0, max_size=3, unique=True)
    )
    return Scenario(
        name=draw(_names),
        description=draw(st.text(max_size=40)),
        arrivals=draw(arrival_specs()),
        profiles=tuple(
            draw(behavior_profiles(name)) for name in names
        ),
        injections=tuple(
            draw(st.lists(injection_specs(), max_size=3))
        ),
    )


# -- spec properties ----------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(scenarios())
def test_scenario_json_round_trip_is_lossless(scenario):
    assert load_scenario(scenario.as_dict()) == scenario
    assert load_scenario(scenario.as_json()) == scenario
    # And the canonical JSON itself is stable across the round trip.
    assert load_scenario(scenario.as_json()).as_json() == scenario.as_json()
    # as_dict is genuinely JSON-serializable (no exotic types leak out).
    json.dumps(scenario.as_dict())


@settings(max_examples=30, deadline=None)
@given(
    arrivals=arrival_specs(),
    seed=st.binary(min_size=1, max_size=16),
    n_vehicles=st.integers(1, 24),
)
def test_equal_spec_and_seed_compile_identically(arrivals, seed, n_vehicles):
    scenario = Scenario(name="prop", arrivals=arrivals)
    config = FleetConfig(n_vehicles=n_vehicles, seed=seed, shards=4)
    first = compile_scenario(scenario, config)
    second = compile_scenario(scenario, config)
    assert first.digest() == second.digest()
    assert first.arrival_ms == second.arrival_ms
    # Round-tripping the spec through JSON must not perturb the schedule.
    third = compile_scenario(load_scenario(scenario.as_dict()), config)
    assert third.digest() == first.digest()


@settings(max_examples=30, deadline=None)
@given(
    arrivals=arrival_specs(),
    seed=st.binary(min_size=1, max_size=16),
    n_vehicles=st.integers(1, 24),
)
def test_arrivals_are_nonnegative_and_fleet_sized(arrivals, seed, n_vehicles):
    config = FleetConfig(n_vehicles=n_vehicles, seed=seed)
    schedule = compile_scenario(
        Scenario(name="prop", arrivals=arrivals), config
    )
    assert len(schedule.arrival_ms) == n_vehicles
    assert all(t >= 0.0 for t in schedule.arrival_ms)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.binary(min_size=1, max_size=16),
    spread=st.floats(0.0, 1e5, allow_nan=False),
    n_vehicles=st.integers(1, 24),
)
def test_uniform_arrivals_respect_their_spread(seed, spread, n_vehicles):
    config = FleetConfig(n_vehicles=n_vehicles, seed=seed)
    schedule = compile_scenario(
        Scenario(name="prop", arrivals=UniformArrivals(spread_ms=spread)),
        config,
    )
    assert all(0.0 <= t <= spread for t in schedule.arrival_ms)


@settings(max_examples=30, deadline=None)
@given(
    profiles=st.lists(_names, min_size=1, max_size=3, unique=True).flatmap(
        lambda names: st.tuples(
            *(behavior_profiles(name) for name in names)
        )
    ),
    seed=st.binary(min_size=1, max_size=16),
)
def test_profile_claims_partition_the_fleet(profiles, seed):
    claimed = sum(profile.count for profile in profiles)
    config = FleetConfig(n_vehicles=claimed + 3, seed=seed, shards=2)
    schedule = compile_scenario(
        Scenario(name="prop", profiles=profiles), config
    )
    assert schedule.profile_counts == tuple(
        (profile.name, profile.count) for profile in profiles
    )
    # Beyond the claimed block, nothing is assigned.
    assert all(name == "" for name in schedule.profile_of[claimed:])
    # Convoys partition exactly their profile's block.
    for convoy in schedule.convoys:
        names = {schedule.profile_of[i] for i in convoy}
        assert len(names) == 1
        assert len({schedule.pinned_shard[i] for i in convoy}) == 1


# -- stats properties ---------------------------------------------------------

_counts = st.integers(min_value=0, max_value=10_000)
_millis = st.floats(
    min_value=0.0, max_value=1e7, allow_nan=False, allow_infinity=False
)


@st.composite
def injection_stats(draw):
    """Arbitrary injection accounting rows."""
    return InjectionStats(
        kind=draw(
            st.sampled_from(["replay-storm", "stale-cert-flood", "ca-flood"])
        ),
        at_ms=draw(_millis),
        attempts=draw(_counts),
        rejected=draw(_counts),
        succeeded=draw(_counts),
    )


@st.composite
def scenario_fleet_stats(draw):
    """Minimal FleetStats carrying random scenario extensions."""
    latency = LatencySummary.from_samples(
        draw(st.lists(_millis, min_size=0, max_size=10))
    )
    return FleetStats(
        vehicles=draw(_counts),
        enrollments=draw(_counts),
        sessions_established=draw(_counts),
        rekeys=draw(_counts),
        records_sent=draw(_counts),
        duration_ms=draw(_millis),
        ca_busy_ms=draw(_millis),
        ca_utilisation=draw(st.floats(0.0, 1.0, allow_nan=False)),
        ca_batches=draw(_counts),
        ca_max_batch=draw(_counts),
        enrollment_latency=latency,
        establishment_latency=latency,
        vehicle_energy_mj=draw(_millis),
        ca_energy_mj=draw(_millis),
        scenario=draw(_names),
        profile_counts=tuple(
            draw(
                st.lists(
                    st.tuples(_names, _counts), min_size=0, max_size=3
                )
            )
        ),
        injection_stats=tuple(
            draw(st.lists(injection_stats(), min_size=0, max_size=3))
        ),
    )


@settings(max_examples=60, deadline=None)
@given(scenario_fleet_stats())
def test_fleet_stats_scenario_segments_round_trip(stats):
    rebuilt = FleetStats.from_dict(stats.as_dict())
    assert rebuilt == stats
    assert rebuilt.digest() == stats.digest()
    json.dumps(stats.as_dict())  # JSON-serializable end to end


@settings(max_examples=40, deadline=None)
@given(scenario_fleet_stats())
def test_scenario_name_is_metadata_not_digest_material(stats):
    from dataclasses import replace

    renamed = replace(stats, scenario=stats.scenario + "-renamed")
    assert renamed.digest() == stats.digest()
    if stats.injection_stats or stats.profile_counts:
        # But the accounting itself *is* digest material.
        stripped = replace(stats, injection_stats=(), profile_counts=())
        assert stripped.digest() != stats.digest()
