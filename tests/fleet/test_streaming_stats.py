"""Streaming accumulators vs. their materialized references.

The constant-memory orchestrator path replaces the unbounded latency
lists with :class:`~repro.fleet.stats.StreamingLatency` and the
sequential energy ``+=`` with :class:`~repro.fleet.stats.ExactSum`.
Both carry a hard contract:

* ``StreamingLatency.summary()`` reproduces
  ``LatencySummary.from_samples`` **bit-for-bit** on every
  digest-frozen field (count/min/mean/p50/p95/max at their historical
  rounding rules), for any sample multiset and any split/merge of it;
* ``ExactSum.value`` is the correctly-rounded exact sum — equal to
  ``math.fsum`` and independent of addition and merge order.

These laws are what make the multi-worker barrier merge digest-exact,
so they are fuzzed here, not just spot-checked.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import StatsError
from repro.fleet import ExactSum, LatencySummary, StreamingLatency

_millis = st.floats(
    min_value=0.0, max_value=1e7, allow_nan=False, allow_infinity=False
)
#: Heavily-quantized samples (the cost model emits few distinct values)
#: plus free floats — exercises both the counted-duplicate replay and
#: the general case.
_samples = st.lists(
    st.one_of(_millis, st.sampled_from([0.25, 1.5, 1.5, 12.0, 12.0])),
    min_size=0,
    max_size=80,
)


class TestStreamingLatencyEquivalence:
    @given(_samples)
    def test_summary_matches_from_samples_bitwise(self, samples):
        acc = StreamingLatency()
        for sample in samples:
            acc.add(sample)
        assert acc.summary() == LatencySummary.from_samples(samples)
        assert acc.count == len(samples)
        assert acc.distinct == len(set(samples))

    @given(_samples, st.integers(min_value=0, max_value=80), st.randoms())
    def test_split_merge_matches_single_stream(self, samples, cut, rng):
        shuffled = list(samples)
        rng.shuffle(shuffled)
        cut = min(cut, len(shuffled))
        left, right = StreamingLatency(), StreamingLatency()
        for sample in shuffled[:cut]:
            left.add(sample)
        for sample in shuffled[cut:]:
            right.add(sample)
        left.merge(right)
        # Any partition of the multiset, fed in any order, merges to the
        # exact summary of the whole — the parallel-barrier law.
        assert left.summary() == LatencySummary.from_samples(samples)
        assert left.count == len(samples)

    def test_empty_summary_is_all_zero(self):
        assert StreamingLatency().summary() == LatencySummary.from_samples(
            []
        )

    @given(_samples)
    def test_canonical_is_order_independent(self, samples):
        a, b = StreamingLatency(), StreamingLatency()
        for sample in samples:
            a.add(sample)
        for sample in reversed(samples):
            b.add(sample)
        assert a.canonical() == b.canonical()

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -math.inf])
    def test_rejects_non_finite(self, bad):
        with pytest.raises(StatsError):
            StreamingLatency().add(bad)


class TestExactSum:
    @given(st.lists(_millis, max_size=60), st.randoms())
    def test_value_is_fsum_in_any_order(self, values, rng):
        acc = ExactSum()
        shuffled = list(values)
        rng.shuffle(shuffled)
        for value in shuffled:
            acc.add(value)
        assert acc.value == math.fsum(values)

    @given(st.lists(_millis, max_size=60), st.integers(0, 60))
    def test_merge_matches_single_accumulator(self, values, cut):
        cut = min(cut, len(values))
        left, right = ExactSum(), ExactSum()
        for value in values[:cut]:
            left.add(value)
        for value in values[cut:]:
            right.add(value)
        left.merge(right)
        assert left.value == math.fsum(values)

    def test_exactness_beats_sequential_sum(self):
        # The classic cancellation case sequential += gets wrong.
        acc = ExactSum()
        for value in [1e16, 1.0, -1e16]:
            acc.add(value)
        assert acc.value == 1.0

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_rejects_non_finite(self, bad):
        with pytest.raises(StatsError):
            ExactSum().add(bad)


class TestNonFiniteRejection:
    """Regression: NaN/inf used to flow straight into digest material."""

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -math.inf])
    def test_from_samples_rejects(self, bad):
        with pytest.raises(StatsError):
            LatencySummary.from_samples([1.0, bad, 2.0])

    @pytest.mark.parametrize(
        "fields",
        [
            {"mean_ms": float("nan")},
            {"min_ms": float("inf")},
            {"p95_ms": float("-inf")},
            {"p99_ms": float("nan")},
        ],
    )
    def test_from_dict_rejects(self, fields):
        payload = LatencySummary.from_samples([1.0, 2.0]).as_dict()
        payload.update(fields)
        with pytest.raises(StatsError):
            LatencySummary.from_dict(payload)

    def test_error_is_catchable_as_simulation_error(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            LatencySummary.from_samples([float("nan")])


# -- legacy serialization back-compat -----------------------------------------

#: A frozen pre-topology (PR 1-era) FleetStats payload: no ``per_shard``,
#: ``v2v``, ``ca_queue_latency``, ``handovers``, ``churn`` or
#: ``scenario`` sections existed yet.  Regression: ``from_dict`` used to
#: KeyError on these instead of defaulting them.
_LEGACY_PAYLOAD = {
    "vehicles": 16,
    "enrollments": 16,
    "sessions_established": 22,
    "rekeys": 6,
    "records_sent": 800,
    "duration_ms": 4321.125,
    "throughput_records_per_s": 185.1369724319477,
    "sessions_per_s": 5.091266741878561,
    "ca_busy_ms": 987.5,
    "ca_utilisation": 0.2285,
    "ca_batches": 9,
    "ca_max_batch": 4,
    "enrollment_latency": {
        "count": 3,
        "min_ms": 10.5,
        "mean_ms": 12.25,
        "p50_ms": 12.25,
        "p95_ms": 14.0,
        "p99_ms": 14.0,
        "max_ms": 14.0,
    },
    "establishment_latency": {
        "count": 2,
        "min_ms": 3.5,
        "mean_ms": 3.875,
        "p50_ms": 3.5,
        "p95_ms": 4.25,
        "p99_ms": 4.25,
        "max_ms": 4.25,
    },
    "energy_mj": {"vehicles": 123.456, "ca": 78.9},
}

#: The digest the fixture's run produced when it was frozen; any
#: rebuild must reproduce it bit-for-bit.
_LEGACY_DIGEST = (
    "855e1174dc0939be5c03ebb319167b852d45c11cd8f3b40cd05c8f4a78ae0607"
)


class TestLegacyFromDictBackCompat:
    def test_pre_topology_payload_round_trips(self):
        from repro.fleet import FleetStats

        stats = FleetStats.from_dict(_LEGACY_PAYLOAD)
        assert stats.digest() == _LEGACY_DIGEST
        assert stats.per_shard == ()
        assert stats.v2v_sessions == 0
        assert stats.handovers == 0
        assert stats.migrations == 0
        assert stats.scenario == ""
        assert stats.injection_stats == ()
        assert stats.ca_queue_latency.count == 0
        # Modern re-serialization keeps the digest stable.
        assert FleetStats.from_dict(stats.as_dict()) == stats

    def test_pre_p99_latency_payload_still_loads(self):
        from repro.fleet import FleetStats

        payload = {
            key: (
                {k: v for k, v in value.items() if k != "p99_ms"}
                if key.endswith("_latency")
                else value
            )
            for key, value in _LEGACY_PAYLOAD.items()
        }
        stats = FleetStats.from_dict(payload)
        # p99 is digest-excluded, so the frozen digest survives its
        # absence too.
        assert stats.digest() == _LEGACY_DIGEST
        assert stats.enrollment_latency.p99_ms == 0.0
