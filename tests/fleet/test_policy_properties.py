"""Property-based invariants for the policy engine.

The example-based tests pin specific rules and bundles; these pin the
*laws* the reproducibility contract rests on: equal ``(state, spec)``
inputs produce identical decision streams (through a JSON round-trip of
the specs, too), spec serialization is a lossless inverse, and the
relative order of rules at *different* decision points cannot change a
fleet digest — only within-point order is semantic (first match wins).
"""

from __future__ import annotations

import functools
import json

from hypothesis import given, settings, strategies as st

from repro.fleet import (
    DECISION_POINTS,
    FailoverSpread,
    FleetConfig,
    FleetState,
    PolicyEngine,
    ReplayStorm,
    RoamCadence,
    SHARD_POLICIES,
    Scenario,
    SessionExpiryRekey,
    ShardPolicyAssign,
    ShardView,
    StormRekey,
    ThresholdRebalance,
    UtilisationRebalance,
    VehicleView,
    load_policy,
    load_scenario,
    policy_dict,
    policy_json,
    run_fleet,
)

# -- strategies ---------------------------------------------------------------

_policy_specs = st.one_of(
    st.builds(
        ShardPolicyAssign, policy=st.sampled_from(sorted(SHARD_POLICIES))
    ),
    st.builds(RoamCadence),
    st.builds(ThresholdRebalance, threshold=st.integers(1, 10)),
    st.builds(SessionExpiryRekey),
    st.builds(
        UtilisationRebalance,
        max_utilisation=st.floats(0.01, 1.0, allow_nan=False),
    ),
    st.builds(
        StormRekey,
        window_ms=st.floats(1.0, 1e5, allow_nan=False),
        budget=st.integers(1, 50),
    ),
    st.builds(FailoverSpread),
)


@st.composite
def fleet_states(draw):
    """Any self-consistent decision-time snapshot."""
    n_shards = draw(st.integers(1, 5))
    shards = tuple(
        ShardView(
            index=index,
            failed=draw(st.booleans()),
            active_vehicles=draw(st.integers(0, 10)),
            queue_depth=draw(st.integers(0, 5)),
            epoch=draw(st.integers(1, 3)),
            utilisation=draw(st.floats(0.0, 1.0, allow_nan=False)),
        )
        for index in range(n_shards)
    )
    vehicle = VehicleView(
        index=draw(st.integers(0, 9)),
        name="veh-prop",
        device_id=draw(st.binary(min_size=1, max_size=8)),
        shard=draw(st.integers(0, n_shards - 1)),
        records_sent=draw(st.integers(0, 40)),
        rekeys=draw(st.integers(0, 5)),
        migrations=draw(st.integers(0, 5)),
        migrating=draw(st.booleans()),
        re_enrolling=draw(st.booleans()),
        pinned_shard=draw(st.one_of(st.none(), st.integers(0, n_shards - 1))),
        roam_every=draw(st.one_of(st.none(), st.integers(1, 8))),
        last_roam_records=draw(st.integers(-1, 40)),
    )
    return FleetState(
        point=draw(st.sampled_from(DECISION_POINTS)),
        now_ms=draw(st.floats(0.0, 1e5, allow_nan=False)),
        vehicle=vehicle,
        shards=shards,
        rekey_due=draw(st.booleans()),
        session_records=draw(st.integers(0, 60)),
        last_storm_ms=draw(
            st.one_of(st.none(), st.floats(0.0, 1e5, allow_nan=False))
        ),
    )


# -- spec round-trips ---------------------------------------------------------


@given(spec=_policy_specs)
@settings(max_examples=80, deadline=None)
def test_policy_spec_round_trips_losslessly(spec):
    assert load_policy(policy_dict(spec)) == spec
    assert load_policy(policy_json(spec)) == spec
    # Canonical JSON is a fixed point of the round-trip.
    assert policy_json(load_policy(policy_json(spec))) == policy_json(spec)


@given(spec=_policy_specs)
@settings(max_examples=40, deadline=None)
def test_policy_json_is_plain_canonical_json(spec):
    payload = json.loads(policy_json(spec))
    assert payload["kind"] == spec.kind
    assert json.dumps(payload, sort_keys=True) == policy_json(spec)


@given(specs=st.lists(_policy_specs, max_size=4))
@settings(max_examples=40, deadline=None)
def test_scenario_policies_round_trip_through_scenario_json(specs):
    scenario = Scenario(name="prop-policies", policies=tuple(specs))
    assert load_scenario(scenario.as_dict()) == scenario
    assert load_scenario(json.dumps(scenario.as_dict())) == scenario


# -- decision-stream determinism ----------------------------------------------


@given(
    specs=st.lists(_policy_specs, max_size=6),
    states=st.lists(fleet_states(), max_size=24),
)
@settings(max_examples=50, deadline=None)
def test_equal_specs_and_states_give_identical_decision_streams(
    specs, states
):
    """Two engines from one spec list (one rebuilt via JSON) agree on
    every decision, in order, including their tallies."""
    original = PolicyEngine(tuple(specs))
    reloaded = PolicyEngine(
        tuple(load_policy(policy_json(spec)) for spec in specs)
    )
    stream_a = [original.decide(state.point, state) for state in states]
    stream_b = [reloaded.decide(state.point, state) for state in states]
    assert stream_a == stream_b
    assert original.decision_counts == reloaded.decision_counts


@given(
    specs=st.lists(_policy_specs, max_size=6),
    states=st.lists(fleet_states(), max_size=24),
)
@settings(max_examples=25, deadline=None)
def test_every_decision_is_stamped_and_valid(specs, states):
    engine = PolicyEngine(tuple(specs))
    for state in states:
        decision = engine.decide(state.point, state)
        if decision is None:
            continue
        assert decision.point == state.point
        assert decision.rule in {spec.kind for spec in specs}
        if decision.target_shard is not None:
            target = state.shards[decision.target_shard]
            assert not target.failed


# -- cross-point rule order is digest-neutral ---------------------------------

#: One rule per decision point (migrate / rekey / failover) — pairwise
#: independent, so their relative declaration order must not matter.
_INDEPENDENT_RULES = (
    UtilisationRebalance(max_utilisation=0.5),
    StormRekey(window_ms=1_500.0, budget=3),
    FailoverSpread(),
)


@functools.lru_cache(maxsize=None)
def _digest_for_order(rules) -> str:
    scenario = Scenario(
        name="perm-policies",
        policies=tuple(rules),
        # Mid-traffic (records flow ~3.7 s in, after the enrollment and
        # establishment phases): shard 0's records are captured by then
        # (the storm rejects a zero-victim schedule loudly) and the
        # storm-rekey window overlaps live re-key decisions.
        injections=(ReplayStorm(at_ms=4_500.0, replays=8, target_shard=0),),
    )
    config = FleetConfig(
        n_vehicles=6,
        seed=b"policy-perm",
        records_per_vehicle=12,
        max_records=4,
        send_interval_ms=20.0,
        arrival_spread_ms=25.0,
        shards=2,
        shard_policy="round-robin",
    )
    return run_fleet(config, scenario=scenario).stats.digest()


@given(ordered=st.permutations(_INDEPENDENT_RULES))
@settings(max_examples=6, deadline=None)
def test_rule_order_across_points_is_digest_neutral(ordered):
    assert (
        _digest_for_order(tuple(ordered))
        == _digest_for_order(_INDEPENDENT_RULES)
    )


@given(seed=st.binary(min_size=1, max_size=8))
@settings(max_examples=4, deadline=None)
def test_policy_runs_are_pure_functions_of_the_seed(seed):
    scenario = Scenario(
        name="seeded-policies",
        policies=(StormRekey(window_ms=1_000.0, budget=2),),
        injections=(ReplayStorm(at_ms=4_500.0, replays=6, target_shard=0),),
    )
    config = FleetConfig(
        n_vehicles=4,
        seed=seed,
        records_per_vehicle=8,
        max_records=4,
        send_interval_ms=20.0,
        arrival_spread_ms=25.0,
        shards=2,
        shard_policy="round-robin",
    )
    first = run_fleet(config, scenario=scenario).stats.digest()
    second = run_fleet(config, scenario=scenario).stats.digest()
    assert first == second
