"""Process-parallel orchestration: digest parity and the barrier merge.

The contract under test: for every partitionable (config, scenario,
seed), running with ``workers ∈ {2, 4}`` produces a
:class:`~repro.fleet.FleetStats` whose digest is **bit-identical** to
``workers=1`` — and non-partitionable configurations fall back to the
serial loop rather than silently diverging.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import ConfigError, SimulationError
from repro.fleet import (
    FleetConfig,
    FleetOrchestrator,
    get_scenario,
    partition_plan,
    run_fleet,
)
from repro.fleet.parallel import _checksum
from repro.obs import Observer


def _base(seed: bytes, shards: int = 4, **overrides) -> FleetConfig:
    kwargs = dict(
        n_vehicles=18,
        seed=seed,
        records_per_vehicle=3,
        max_records=4,
        send_interval_ms=20.0,
        arrival_spread_ms=300.0,
        shards=shards,
    )
    kwargs.update(overrides)
    return FleetConfig(**kwargs)


# -- partition planning -------------------------------------------------------


class TestPartitionPlan:
    def test_viable_config_gets_round_robin_plan(self):
        plan = partition_plan(_base(b"plan", shards=5, workers=2), None)
        assert plan is not None
        assert plan.workers == 2
        assert plan.owned == ((0, 2, 4), (1, 3))

    def test_workers_capped_at_shard_count(self):
        plan = partition_plan(_base(b"plan", shards=2, workers=8), None)
        assert plan is not None
        assert plan.workers == 2
        assert plan.owned == ((0,), (1,))

    @pytest.mark.parametrize(
        "overrides",
        [
            {"shards": 1},
            {"shard_policy": "round-robin"},
            {"shard_policy": "least-loaded"},
            {"v2v_fraction": 0.5},
            {"shard_fail_at_ms": 2_000.0},
            {"migrate_threshold": 1},
        ],
    )
    def test_coupled_configs_are_rejected(self, overrides):
        config = _base(b"plan", workers=2, **overrides)
        assert partition_plan(config, None) is None

    def test_roaming_scenario_is_rejected(self):
        scenario = get_scenario("roaming-rebalance")
        config = _base(b"plan", workers=2, n_vehicles=24)
        orch = FleetOrchestrator(config, scenario=scenario)
        assert orch._plan is None  # falls back to the serial loop

    def test_workers_must_be_positive_int(self):
        with pytest.raises(ConfigError):
            FleetConfig(workers=0)
        with pytest.raises(ConfigError):
            FleetConfig(workers=2.5)


# -- digest parity ------------------------------------------------------------


class TestDigestParity:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_plain_sharded_fleet(self, workers):
        serial = run_fleet(_base(b"parity-plain")).stats
        parallel = run_fleet(
            _base(b"parity-plain", workers=workers)
        ).stats
        assert parallel.digest() == serial.digest()
        assert parallel == serial

    def test_convoy_scenario(self):
        # Convoy pins exercise the pinned-shard branch of the static
        # assignment prediction.
        scenario = get_scenario("platoon-convoys")
        config = _base(b"parity-convoy", n_vehicles=24)
        serial = run_fleet(config, scenario=scenario).stats
        parallel = run_fleet(
            dataclasses.replace(config, workers=2), scenario=scenario
        ).stats
        assert parallel.digest() == serial.digest()

    def test_replay_storm_scenario(self):
        scenario = get_scenario("replay-storm")
        config = _base(b"parity-replay", shards=3, n_vehicles=24)
        serial = run_fleet(config, scenario=scenario).stats
        parallel = run_fleet(
            dataclasses.replace(config, workers=3), scenario=scenario
        ).stats
        assert parallel.digest() == serial.digest()
        assert parallel.injection_stats == serial.injection_stats
        assert parallel.attack_successes == 0

    def test_ca_flood_scenario(self):
        scenario = get_scenario("ca-flood")
        config = _base(
            b"parity-flood",
            shards=3,
            n_vehicles=24,
            authenticate_requests=True,
        )
        serial = run_fleet(config, scenario=scenario).stats
        parallel = run_fleet(
            dataclasses.replace(config, workers=2), scenario=scenario
        ).stats
        assert parallel.digest() == serial.digest()
        assert parallel.injection_stats == serial.injection_stats

    def test_streaming_mode_is_digest_neutral_across_workers(self):
        serial = run_fleet(_base(b"parity-stream")).stats
        streamed = run_fleet(
            _base(b"parity-stream", stream=True, workers=2)
        ).stats
        assert streamed.digest() == serial.digest()

    def test_churn_config_falls_back_and_still_matches(self):
        # Coupled config: workers>1 silently runs the serial loop.
        churn = dict(
            shards=3,
            records_per_vehicle=8,
            shard_fail_at_ms=1_500.0,
            fail_shard=1,
            shard_rejoin_at_ms=3_000.0,
            migrate_threshold=2,
        )
        serial = run_fleet(_base(b"parity-churn", **churn)).stats
        fallback = run_fleet(
            _base(b"parity-churn", workers=4, **churn)
        ).stats
        assert fallback.digest() == serial.digest()


# -- result surface -----------------------------------------------------------


class TestParallelResultSurface:
    def test_vehicles_stay_in_workers(self):
        result = run_fleet(_base(b"surface", workers=2))
        assert result.vehicles == []
        serial = run_fleet(_base(b"surface"))
        assert len(serial.vehicles) == 18

    def test_observer_gets_merged_metrics_and_meta(self):
        obs = Observer(wall_clock=True)
        result = run_fleet(_base(b"surface-obs", workers=2), obs=obs)
        snap = obs.metrics.snapshot()
        assert (
            snap.counter_total("fleet.records_sent")
            == result.stats.records_sent
        )
        assert (
            snap.counter_total("fleet.vehicles_done")
            == result.stats.vehicles
        )
        assert obs.meta["digest"] == result.stats.digest()
        assert obs.meta["workers"] == 2
        final = obs.heartbeats[-1]
        assert final["vehicles_done"] == result.stats.vehicles
        # The fleet-wide peak RSS (max over workers) rides the final
        # heartbeat — the bench's memory-ceiling signal.
        assert final["wall"]["peak_rss_kb"] > 0
        obs.validate()

    def test_snapshot_checksum_detects_tampering(self):
        orch = FleetOrchestrator(_base(b"tamper", workers=2))
        from repro.fleet.parallel import _worker_run

        worker_config = dataclasses.replace(
            orch.config, workers=1, backend="reference"
        )
        snap = _worker_run(
            (0, orch._plan.owned[0], worker_config, None, False, 5_000_000)
        )
        assert snap.checksum == _checksum(snap)
        snap.counters["records_sent"] += 1
        assert snap.checksum != _checksum(snap)

    def test_merge_rejects_corrupted_snapshot(self, monkeypatch):
        from repro.fleet import parallel as par

        real_worker_run = par._worker_run

        def corrupting_worker_run(payload):
            snap = real_worker_run(payload)
            if snap.worker == 0:
                snap.counters["rekeys"] += 7  # corrupt after checksum
            return snap

        monkeypatch.setattr(par, "_worker_run", corrupting_worker_run)

        class _InlinePool:
            # Runs the (monkeypatched) worker fn in-process so the
            # corruption survives; a real pool would pickle the real
            # module-level function.
            def __init__(self, processes):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def map(self, fn, payloads):
                return [par._worker_run(p) for p in payloads]

        monkeypatch.setattr(
            par.multiprocessing.get_context(par._start_method()).__class__,
            "Pool",
            lambda self, processes: _InlinePool(processes),
        )
        with pytest.raises(SimulationError, match="checksum"):
            run_fleet(_base(b"tamper2", workers=2))


# -- metrics absorb law -------------------------------------------------------


class TestMetricsAbsorb:
    def test_absorb_equals_snapshot_merge(self):
        from repro.obs.metrics import MetricsRegistry

        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("fleet.records_sent", shard=0).inc(3)
        a.gauge("fleet.ca_max_batch").record(4)
        a.histogram("fleet.enrollment_latency_ms").observe(12.5)
        b.counter("fleet.records_sent", shard=0).inc(5)
        b.counter("fleet.records_sent", shard=1).inc(2)
        b.gauge("fleet.ca_max_batch").record(9)
        b.histogram("fleet.enrollment_latency_ms").observe(0.75)
        expected = a.snapshot().merge(b.snapshot())
        a.absorb(b.snapshot())
        assert a.snapshot() == expected

    def test_absorb_into_empty_registry(self):
        from repro.obs.metrics import MetricsRegistry

        source = MetricsRegistry()
        source.histogram("fleet.v2v_latency_ms").observe(3.25)
        source.counter("fleet.arrivals").inc(11)
        target = MetricsRegistry()
        target.absorb(source.snapshot())
        assert target.snapshot() == source.snapshot()
