"""Bit-parity of the policy engine's ``default`` bundle.

The engine now sits at every decision point of every run, so the
strongest possible regression check is the historical golden-digest
matrix: each frozen digest of PRs 1–9 must be reproduced bit-for-bit
with the extracted ``default`` bundle — implicitly (``policy=None``)
and explicitly (``policy="default"``), serially, process-parallel
(``workers ∈ {2, 4}``) and in streaming mode.  Scenario runs without
frozen goldens are locked by self-parity: ``policy=None`` and
``policy="default"`` digests must agree on every named scenario.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.fleet import (
    FleetConfig,
    FleetOrchestrator,
    NAMED_SCENARIOS,
    get_scenario,
    run_fleet,
)

# -- the frozen golden matrix (captured before the policy engine existed) -----

_PR1_DIGEST = "5632228c71d42eadd416b2151a1c0be0a8fe6679e14fe78e66c889ac04314e17"
_PR2_TOPOLOGY_GOLDENS = {
    1: "a43e300427fe7035b2d2c1a68edaffe0d349313cf046a151c9f430aa153c6d4e",
    2: "6ed2a66e4325260712dd84192d06bab8cef9303a3b50768d51567ee46bc04a41",
    4: "3d0ba83a7e1369fa79147400588cf1bb013dc15809d89a6078f789992654df82",
}
_PR2_V2V_GOLDEN = (
    "b6d8c193008cf2c60d08616e1d44d24d3797227489a1a3b31ff143a7aec3d5e4"
)
_PR2_FAILOVER_GOLDEN = (
    "b5087aa40b037cd5709a3e735d9b7e41152aaef27908366bc84733415b38730d"
)


def _pr1_config(**overrides) -> FleetConfig:
    base = dict(
        n_vehicles=4,
        seed=b"fleet-test",
        records_per_vehicle=6,
        max_records=3,
        send_interval_ms=20.0,
        arrival_spread_ms=30.0,
    )
    base.update(overrides)
    return FleetConfig(**base)


def _topology_config(**overrides) -> FleetConfig:
    base = dict(
        n_vehicles=6,
        seed=b"topology-det",
        records_per_vehicle=2,
        max_records=4,
        send_interval_ms=20.0,
        arrival_spread_ms=15.0,
    )
    base.update(overrides)
    return FleetConfig(**base)


def _v2v_config(**overrides) -> FleetConfig:
    base = dict(
        n_vehicles=10,
        seed=b"topology-v2v",
        records_per_vehicle=2,
        max_records=4,
        send_interval_ms=20.0,
        arrival_spread_ms=15.0,
        shards=2,
        v2v_fraction=0.6,
        v2v_records=4,
    )
    base.update(overrides)
    return FleetConfig(**base)


def _failover_config(**overrides) -> FleetConfig:
    base = dict(
        n_vehicles=8,
        seed=b"topology-failover",
        records_per_vehicle=40,
        max_records=100,
        send_interval_ms=25.0,
        arrival_spread_ms=15.0,
        shards=2,
        shard_fail_at_ms=4_000.0,
        fail_shard=0,
    )
    base.update(overrides)
    return FleetConfig(**base)


def _churn_config(**overrides) -> FleetConfig:
    base = dict(
        n_vehicles=8,
        seed=b"churn-test",
        records_per_vehicle=40,
        max_records=100,
        send_interval_ms=25.0,
        arrival_spread_ms=15.0,
        shards=2,
        shard_fail_at_ms=4_000.0,
        fail_shard=0,
        shard_rejoin_at_ms=6_000.0,
        migrate_threshold=2,
    )
    base.update(overrides)
    return FleetConfig(**base)


# -- frozen goldens through the engine ----------------------------------------


class TestGoldenParity:
    """Every historical golden, with the bundle implicit and explicit."""

    @pytest.mark.parametrize("policy", [None, "default"])
    def test_pr1_single_gateway(self, policy):
        stats = run_fleet(_pr1_config(policy=policy)).stats
        assert stats.digest() == _PR1_DIGEST
        assert stats.policy == (policy or "")

    @pytest.mark.parametrize("policy", [None, "default"])
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_pr2_sharded_topology(self, shards, policy):
        stats = run_fleet(
            _topology_config(shards=shards, policy=policy)
        ).stats
        assert stats.digest() == _PR2_TOPOLOGY_GOLDENS[shards]

    @pytest.mark.parametrize("policy", [None, "default"])
    def test_pr2_v2v(self, policy):
        stats = run_fleet(_v2v_config(policy=policy)).stats
        assert stats.digest() == _PR2_V2V_GOLDEN

    @pytest.mark.parametrize("policy", [None, "default"])
    def test_pr2_failover(self, policy):
        stats = run_fleet(_failover_config(policy=policy)).stats
        assert stats.digest() == _PR2_FAILOVER_GOLDEN


class TestGoldenParityAcrossWorkers:
    """The frozen goldens hold with the engine under every worker count."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_pr2_topology_golden_with_workers(self, workers):
        config = _topology_config(shards=4, workers=workers, policy="default")
        assert run_fleet(config).stats.digest() == _PR2_TOPOLOGY_GOLDENS[4]

    def test_default_policy_stays_partitionable(self):
        # The explicit bundle must not force the serial fallback.
        orch = FleetOrchestrator(
            _topology_config(shards=4, workers=2, policy="default")
        )
        assert orch._plan is not None

    def test_alternative_bundle_falls_back_to_serial(self):
        orch = FleetOrchestrator(
            _topology_config(
                shards=4, workers=2, policy="failover-spread"
            )
        )
        assert orch._plan is None


class TestGoldenParityStreaming:
    """Streaming mode keeps the goldens with the engine active."""

    @pytest.mark.parametrize("policy", [None, "default"])
    def test_pr1_streaming(self, policy):
        stats = run_fleet(_pr1_config(stream=True, policy=policy)).stats
        assert stats.digest() == _PR1_DIGEST

    def test_pr2_topology_streaming(self):
        stats = run_fleet(
            _topology_config(shards=2, stream=True, policy="default")
        ).stats
        assert stats.digest() == _PR2_TOPOLOGY_GOLDENS[2]


# -- self-parity where no frozen golden exists --------------------------------


class TestSelfParity:
    """``policy=None`` and ``policy="default"`` agree bit-for-bit."""

    def test_churn_run(self):
        implicit = run_fleet(_churn_config()).stats
        explicit = run_fleet(_churn_config(policy="default")).stats
        assert implicit.digest() == explicit.digest()

    @pytest.mark.parametrize("name", sorted(NAMED_SCENARIOS))
    def test_named_scenarios(self, name):
        scenario = get_scenario(name)
        extras = {}
        if name == "ca-flood":
            extras["authenticate_requests"] = True
        if name == "stale-cert-flood":
            # The flood replays epoch-1 leaves after a rejoin rolls the
            # chain epoch, so it needs the churn knobs set.
            extras.update(
                shard_fail_at_ms=4_000.0,
                fail_shard=0,
                shard_rejoin_at_ms=6_000.0,
            )
        config = FleetConfig(
            n_vehicles=24,
            seed=b"policy-parity-scenarios",
            records_per_vehicle=3,
            max_records=4,
            send_interval_ms=20.0,
            arrival_spread_ms=300.0,
            shards=2,
            **extras,
        )
        implicit = run_fleet(config, scenario=scenario).stats
        explicit = run_fleet(
            dataclasses.replace(config, policy="default"),
            scenario=scenario,
        ).stats
        assert implicit.digest() == explicit.digest()
        assert implicit.scenario == name

    def test_parallel_scenario_run_keeps_parity(self):
        scenario = get_scenario("platoon-convoys")
        config = FleetConfig(
            n_vehicles=24,
            seed=b"policy-parity-parallel",
            records_per_vehicle=3,
            max_records=4,
            send_interval_ms=20.0,
            arrival_spread_ms=300.0,
            shards=4,
            policy="default",
        )
        serial = run_fleet(config, scenario=scenario).stats
        parallel = run_fleet(
            dataclasses.replace(config, workers=2), scenario=scenario
        ).stats
        assert parallel.digest() == serial.digest()
