"""Fleet golden digests are bit-identical under the accelerated backend.

The committed goldens below were captured from the PR 1 (single-gateway)
and PR 2 (topology) orchestrators running the from-scratch reference
primitives.  Re-running the exact same configurations with
``backend="accelerated"`` must reproduce every one of them bit-for-bit:
hardware pricing consumes trace *counts* and DRBG *bytes*, both of which
the backend contract fixes.  Churn and scenario runs (whose goldens are
seed-matrix properties rather than committed constants) are checked as
reference-vs-accelerated digest equality on the same config.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.backend import get_backend, use_backend
from repro.fleet import (
    FleetConfig,
    FleetOrchestrator,
    get_scenario,
    run_fleet,
)

# Goldens shared with tests/fleet/test_topology.py / test_churn.py —
# captured before the backend seam existed, so they also pin the
# refactored reference path.
_PR1_CONFIG = FleetConfig(
    n_vehicles=4,
    seed=b"fleet-test",
    records_per_vehicle=6,
    max_records=3,
    send_interval_ms=20.0,
    arrival_spread_ms=30.0,
)
_PR1_DIGEST = "5632228c71d42eadd416b2151a1c0be0a8fe6679e14fe78e66c889ac04314e17"

_PR2_TOPOLOGY_GOLDENS = {
    1: "a43e300427fe7035b2d2c1a68edaffe0d349313cf046a151c9f430aa153c6d4e",
    2: "6ed2a66e4325260712dd84192d06bab8cef9303a3b50768d51567ee46bc04a41",
    4: "3d0ba83a7e1369fa79147400588cf1bb013dc15809d89a6078f789992654df82",
}
_PR2_V2V_GOLDEN = (
    "b6d8c193008cf2c60d08616e1d44d24d3797227489a1a3b31ff143a7aec3d5e4"
)
_PR2_FAILOVER_GOLDEN = (
    "b5087aa40b037cd5709a3e735d9b7e41152aaef27908366bc84733415b38730d"
)


def _accelerated(config: FleetConfig) -> FleetConfig:
    return dataclasses.replace(config, backend="accelerated")


class TestCommittedGoldensUnderAccelerated:
    def test_pr1_single_gateway_digest(self):
        stats = run_fleet(_accelerated(_PR1_CONFIG)).stats
        assert stats.digest() == _PR1_DIGEST

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_pr2_sharded_topology_digests(self, shards):
        config = FleetConfig(
            n_vehicles=6,
            seed=b"topology-det",
            records_per_vehicle=2,
            max_records=4,
            send_interval_ms=20.0,
            arrival_spread_ms=15.0,
            shards=shards,
            backend="accelerated",
        )
        assert run_fleet(config).stats.digest() == _PR2_TOPOLOGY_GOLDENS[shards]

    def test_pr2_v2v_digest(self):
        config = FleetConfig(
            n_vehicles=10,
            seed=b"topology-v2v",
            records_per_vehicle=2,
            max_records=4,
            send_interval_ms=20.0,
            arrival_spread_ms=15.0,
            shards=2,
            v2v_fraction=0.6,
            v2v_records=4,
            backend="accelerated",
        )
        assert run_fleet(config).stats.digest() == _PR2_V2V_GOLDEN

    def test_pr2_failover_digest(self):
        config = FleetConfig(
            n_vehicles=8,
            seed=b"topology-failover",
            records_per_vehicle=40,
            max_records=100,
            send_interval_ms=25.0,
            arrival_spread_ms=15.0,
            shards=2,
            shard_fail_at_ms=4_000.0,
            fail_shard=0,
            backend="accelerated",
        )
        assert run_fleet(config).stats.digest() == _PR2_FAILOVER_GOLDEN


class TestCrossBackendEquality:
    """Configs without committed goldens: both backends, one digest."""

    def test_churn_lifecycle_digest_matches(self):
        config = FleetConfig(
            n_vehicles=8,
            seed=b"churn-test",
            records_per_vehicle=40,
            max_records=100,
            send_interval_ms=25.0,
            arrival_spread_ms=15.0,
            shards=2,
            shard_fail_at_ms=4_000.0,
            fail_shard=0,
            shard_rejoin_at_ms=6_000.0,
            migrate_threshold=2,
        )
        reference = run_fleet(config).stats
        accelerated = run_fleet(_accelerated(config)).stats
        assert reference.is_churn_run
        assert reference.digest() == accelerated.digest()

    def test_adversarial_scenario_digest_matches(self):
        config = FleetConfig(
            n_vehicles=8,
            seed=b"backend-scenario",
            records_per_vehicle=6,
            max_records=4,
            arrival_spread_ms=40.0,
            shards=2,
        )
        scenario = get_scenario("replay-storm")
        reference = FleetOrchestrator(config, scenario=scenario).run().stats
        accelerated = FleetOrchestrator(
            _accelerated(config), scenario=scenario
        ).run().stats
        assert reference.attack_attempts > 0
        assert reference.attack_successes == 0
        assert reference.digest() == accelerated.digest()

    def test_run_fleet_backend_kwarg_wins_over_config(self):
        result = run_fleet(_PR1_CONFIG, backend="accelerated")
        assert result.stats.digest() == _PR1_DIGEST

    def test_ambient_backend_scope_reproduces_goldens(self):
        # REPRO_BACKEND=accelerated CI lane equivalent: no config knob,
        # just the ambient backend.
        with use_backend("accelerated"):
            assert get_backend().name == "accelerated"
            stats = run_fleet(_PR1_CONFIG).stats
        assert stats.digest() == _PR1_DIGEST
