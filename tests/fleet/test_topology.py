"""Topology tests: degenerate parity, determinism, V2V, failover, policies.

The single most important contract here is **PR-1 parity**: the
refactored orchestrator with ``shards=1, v2v_fraction=0`` must reproduce
the single-gateway fleet bit-for-bit.  The golden digest below was
captured from the pre-topology orchestrator on the exact same
configuration; if it ever changes, the degenerate path regressed.
"""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.fleet import (
    FleetConfig,
    FleetOrchestrator,
    FleetTopology,
    POLICY_LEAST_LOADED,
    POLICY_ROUND_ROBIN,
    POLICY_STATIC_HASH,
    SHARD_POLICIES,
    plan_v2v_pairs,
    run_fleet,
)
from repro.protocols import SessionExpired

#: Digest captured from the PR 1 (pre-topology) orchestrator for this
#: exact configuration.  Bit-for-bit backwards compatibility contract.
_PR1_CONFIG = FleetConfig(
    n_vehicles=4,
    seed=b"fleet-test",
    records_per_vehicle=6,
    max_records=3,
    send_interval_ms=20.0,
    arrival_spread_ms=30.0,
)
_PR1_DIGEST = "5632228c71d42eadd416b2151a1c0be0a8fe6679e14fe78e66c889ac04314e17"


def _topology_config(**overrides) -> FleetConfig:
    base = dict(
        n_vehicles=6,
        seed=b"topology-det",
        records_per_vehicle=2,
        max_records=4,
        send_interval_ms=20.0,
        arrival_spread_ms=15.0,
    )
    base.update(overrides)
    return FleetConfig(**base)


class TestDegenerateParity:
    def test_single_gateway_digest_is_bit_identical_to_pr1(self):
        result = run_fleet(_PR1_CONFIG)
        assert result.stats.digest() == _PR1_DIGEST
        assert not result.stats.is_topology_run

    def test_degenerate_run_has_one_shard_breakdown(self):
        result = run_fleet(_PR1_CONFIG)
        assert len(result.stats.per_shard) == 1
        shard = result.stats.per_shard[0]
        assert shard.name == "central-ca"
        assert shard.vehicles_assigned == 4
        assert not shard.failed

    def test_degenerate_topology_has_no_root_or_trust_store(self):
        orchestrator = FleetOrchestrator(_PR1_CONFIG)
        assert orchestrator.topology.root_ca is None
        assert orchestrator.topology.trust_store is None
        assert orchestrator.ca_resource.name == "central-ca"
        assert orchestrator.gateway_manager is orchestrator.shards[0].manager


class TestShardedDeterminism:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_same_config_same_per_shard_digests(self, shards):
        config = _topology_config(shards=shards)
        first = run_fleet(config)
        second = run_fleet(config)
        assert first.stats.digest() == second.stats.digest()
        assert len(first.stats.per_shard) == shards
        for a, b in zip(first.stats.per_shard, second.stats.per_shard):
            assert a.digest() == b.digest()
            assert a == b

    def test_different_shard_counts_differ(self):
        digests = {
            shards: run_fleet(_topology_config(shards=shards)).stats.digest()
            for shards in (1, 2, 4)
        }
        assert len(set(digests.values())) == 3

    def test_shard_merge_consistent_with_fleet_totals(self):
        stats = run_fleet(_topology_config(shards=4)).stats
        assert sum(s.sessions_established for s in stats.per_shard) == (
            stats.sessions_established
        )
        assert sum(s.enrollments for s in stats.per_shard) == stats.enrollments
        assert sum(s.ca_batches for s in stats.per_shard) == stats.ca_batches
        assert stats.ca_busy_ms == pytest.approx(
            sum(s.ca_busy_ms for s in stats.per_shard)
        )


class TestShardPolicies:
    @pytest.mark.parametrize("policy", SHARD_POLICIES)
    def test_every_policy_completes_and_covers_the_fleet(self, policy):
        config = _topology_config(shards=3, shard_policy=policy)
        result = run_fleet(config)
        assert result.stats.enrollments == config.n_vehicles
        assert sum(
            s.vehicles_assigned for s in result.stats.per_shard
        ) == config.n_vehicles

    def test_round_robin_spreads_evenly(self):
        config = _topology_config(shards=3, shard_policy=POLICY_ROUND_ROBIN)
        result = run_fleet(config)
        assigned = [s.vehicles_assigned for s in result.stats.per_shard]
        assert max(assigned) - min(assigned) <= 1

    def test_least_loaded_spreads_evenly(self):
        config = _topology_config(
            n_vehicles=9, shards=3, shard_policy=POLICY_LEAST_LOADED
        )
        result = run_fleet(config)
        assigned = [s.vehicles_assigned for s in result.stats.per_shard]
        assert max(assigned) - min(assigned) <= 2

    def test_static_hash_is_stable_per_identity(self):
        config = _topology_config(shards=4, shard_policy=POLICY_STATIC_HASH)
        topo_a = FleetTopology(config)
        topo_b = FleetTopology(config)
        orchestrator = FleetOrchestrator(config)
        for vehicle in orchestrator.vehicles:
            assert topo_a.assign(vehicle).index == topo_b.assign(vehicle).index


class TestChainedTrust:
    def test_shard_cas_chain_to_one_root(self):
        topology = FleetTopology(_topology_config(shards=3))
        root_public = topology.root_ca.public_key
        assert topology.anchor_public == root_public
        for shard in topology.shards:
            cert = shard.ca_certificate
            assert cert is not None
            # Every shard CA's own key is reconstructable from the root.
            resolved = topology.trust_store.resolve_issuer(
                shard.gateway_credential.certificate, 1_700_000_000
            )
            assert resolved == shard.ca.public_key
            assert cert.authority_key_id == (
                topology.trust_store.root_key_id
            )


class TestProtocolMatrix:
    @pytest.mark.parametrize("protocol", ["poramb", "scianc", "s-ecdsa"])
    def test_non_sts_protocols_speak_chained_trust(self, protocol):
        # Every certificate-validating protocol resolves peer issuers
        # through SessionContext.issuer_public_for, so sharded fleets
        # (sub-CA-issued certificates) work beyond STS.
        config = FleetConfig(
            n_vehicles=4,
            seed=b"topology-protocols",
            protocol=protocol,
            records_per_vehicle=2,
            max_records=4,
            arrival_spread_ms=10.0,
            shards=2,
            v2v_fraction=0.5,
            v2v_records=2,
        )
        result = run_fleet(config)
        assert result.stats.enrollments == 4
        assert result.stats.v2v_sessions >= 1


class TestV2V:
    @pytest.fixture(scope="class")
    def mesh(self):
        config = _topology_config(
            n_vehicles=10,
            seed=b"topology-v2v",
            shards=2,
            v2v_fraction=0.6,
            v2v_records=4,
        )
        return config, run_fleet(config)

    def test_pair_plan_is_deterministic_and_disjoint(self, mesh):
        config, _ = mesh
        pairs = plan_v2v_pairs(config)
        assert pairs == plan_v2v_pairs(config)
        assert len(pairs) == 3  # 0.6 * 10 participants = 3 pairs
        flat = [index for pair in pairs for index in pair]
        assert len(flat) == len(set(flat))

    def test_all_pairs_complete_their_direct_traffic(self, mesh):
        config, result = mesh
        pairs = plan_v2v_pairs(config)
        assert result.stats.v2v_sessions >= len(pairs)
        assert result.stats.v2v_records_sent == len(pairs) * config.v2v_records
        for a, b in pairs:
            assert result.vehicles[a].v2v_done_at is not None
            assert result.vehicles[b].v2v_done_at is not None

    def test_cross_shard_pairs_validate_through_the_chain(self, mesh):
        config, result = mesh
        cross = [
            (result.vehicles[a], result.vehicles[b])
            for a, b in plan_v2v_pairs(config)
            if result.vehicles[a].shard != result.vehicles[b].shard
        ]
        assert cross, "expected at least one cross-shard pair"
        assert result.stats.v2v_cross_shard > 0
        for va, vb in cross:
            # The two endpoints hold certificates from *different* CAs...
            assert (
                va.credential.certificate.authority_key_id
                != vb.credential.certificate.authority_key_id
            )
            # ...and still completed direct sessions (chain validation).
            assert va.v2v_sessions > 0 and vb.v2v_sessions > 0

    def test_v2v_rekeys_under_record_budget(self):
        config = _topology_config(
            n_vehicles=4,
            seed=b"topology-v2v-rekey",
            shards=1,
            v2v_fraction=1.0,
            v2v_records=6,
            max_records=4,  # V2V sessions exhaust the budget mid-stream
        )
        result = run_fleet(config)
        assert result.stats.v2v_rekeys > 0
        assert result.stats.is_topology_run

    def test_determinism_with_v2v(self, mesh):
        config, result = mesh
        assert run_fleet(config).stats.digest() == result.stats.digest()


class TestFailover:
    @pytest.fixture(scope="class")
    def failover(self):
        # The failure hits *after* every vehicle established its first
        # session (~3.7 s in), while records are still being delivered —
        # the handover is a live re-key, not a fresh enrollment.
        config = FleetConfig(
            n_vehicles=8,
            seed=b"topology-failover",
            records_per_vehicle=40,
            max_records=100,
            send_interval_ms=25.0,
            arrival_spread_ms=15.0,
            shards=2,
            shard_fail_at_ms=4_000.0,
            fail_shard=0,
        )
        orchestrator = FleetOrchestrator(config)
        return config, orchestrator, orchestrator.run()

    def test_everyone_finishes_despite_the_dead_shard(self, failover):
        config, _, result = failover
        assert all(v.done_at is not None for v in result.vehicles)
        assert all(
            v.records_sent == config.records_per_vehicle
            for v in result.vehicles
        )

    def test_handover_semantics(self, failover):
        _, orchestrator, result = failover
        failed = orchestrator.shards[0]
        survivor = orchestrator.shards[1]
        assert result.stats.handovers > 0
        assert result.stats.per_shard[0].failed
        assert result.stats.per_shard[1].handovers_in > 0
        moved = [v for v in result.vehicles if v.handovers > 0]
        assert moved, "expected session-level handovers"
        for vehicle in moved:
            # The session with the dead gateway is gone...
            with pytest.raises(SessionExpired):
                vehicle.manager.session_for(failed.gateway_id)
            # ...and the re-key succeeded at the surviving shard.
            session = vehicle.manager.session_for(survivor.gateway_id)
            assert session.peer_id == survivor.gateway_id
            assert vehicle.shard == survivor.index
            assert vehicle.sessions >= 2

    def test_failed_shard_serves_nothing_after_failure(self, failover):
        config, orchestrator, result = failover
        failed_stats = result.stats.per_shard[0]
        # Establishments at the failed shard all predate the failure.
        intervals = orchestrator.shards[0].resource.intervals
        assert all(start < config.shard_fail_at_ms for start, _ in intervals)
        assert failed_stats.vehicles_assigned > 0

    def test_failover_is_deterministic(self, failover):
        config, _, result = failover
        assert run_fleet(config).stats.digest() == result.stats.digest()


class TestConfigValidation:
    def test_bad_topology_rejected(self):
        with pytest.raises(SimulationError):
            FleetConfig(shards=0)
        with pytest.raises(SimulationError):
            FleetConfig(shard_policy="no-such-policy")
        with pytest.raises(SimulationError):
            FleetConfig(v2v_fraction=1.5)
        with pytest.raises(SimulationError):
            FleetConfig(v2v_fraction=-0.1)
        with pytest.raises(SimulationError):
            FleetConfig(v2v_records=0)
        with pytest.raises(SimulationError):
            FleetConfig(shards=1, shard_fail_at_ms=100.0)
        with pytest.raises(SimulationError):
            FleetConfig(shards=2, shard_fail_at_ms=-5.0)
        with pytest.raises(SimulationError):
            FleetConfig(shards=2, fail_shard=2)

    def test_failing_the_only_survivor_is_rejected(self):
        config = _topology_config(shards=2, shard_fail_at_ms=10.0)
        orchestrator = FleetOrchestrator(config)
        orchestrator.shards[1].failed = True
        with pytest.raises(SimulationError):
            orchestrator.run()
