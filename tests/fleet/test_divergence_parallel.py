"""The digest-tree merge proof across worker counts.

The parallel orchestrator's ``_finalize_obs`` verifies, on every
observed parallel run, that (1) each worker's shipped metric-subtree
root re-hashes from its snapshot and (2) the fold of the worker
subtrees equals the tree recomputed from the absorbed registry —
merge ≡ recomputation.  These tests drive that proof for
``workers ∈ {1, 2, 4}`` and pin the metric plane bit-identical to the
serial run's.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import SimulationError
from repro.fleet import FleetConfig, FleetOrchestrator, run_fleet
from repro.fleet import parallel as parallel_mod
from repro.obs import Observer


def _config(workers: int) -> FleetConfig:
    """A partitionable shape: static shard homes, no V2V, no churn."""
    return FleetConfig(
        n_vehicles=24,
        seed=b"divergence-parallel",
        records_per_vehicle=3,
        max_records=4,
        send_interval_ms=20.0,
        arrival_spread_ms=300.0,
        shards=4,
        workers=workers,
    )


@pytest.fixture(scope="module")
def runs():
    """``{workers: (stats digest, observer)}`` for workers 1, 2 and 4."""
    out = {}
    for workers in (1, 2, 4):
        obs = Observer()
        result = FleetOrchestrator(_config(workers), obs=obs).run()
        out[workers] = (result.stats.digest(), obs)
    return out


class TestMergeProof:
    def test_stats_digest_identical_across_worker_counts(self, runs):
        digests = {digest for digest, _ in runs.values()}
        assert len(digests) == 1

    def test_metric_plane_bit_identical_across_worker_counts(self, runs):
        roots = {
            workers: obs.digest_tree(include=("metrics",)).root_digest
            for workers, (_, obs) in runs.items()
        }
        assert len(set(roots.values())) == 1, roots

    def test_parallel_runs_record_the_proven_root(self, runs):
        # The merge proof ran and stored the recomputed root, which
        # must equal the serial run's metric tree root.
        serial_root = runs[1][1].digest_tree(
            include=("metrics",)
        ).root_digest
        for workers in (2, 4):
            obs = runs[workers][1]
            assert obs.meta.get("tree_root") == serial_root, (
                f"workers={workers} merge proof root mismatch"
            )

    def test_really_ran_parallel(self):
        assert FleetOrchestrator(_config(2))._plan is not None


class TestTamperDetection:
    @pytest.fixture()
    def captured(self, monkeypatch):
        """Run workers=2 once, capturing ``_finalize_obs``'s arguments."""
        seen = {}
        real = parallel_mod._finalize_obs

        def recorder(obs, config, scenario, stats, snapshots):
            seen.update(
                obs=obs, config=config, scenario=scenario,
                stats=stats, snapshots=list(snapshots),
            )
            return real(obs, config, scenario, stats, snapshots)

        monkeypatch.setattr(parallel_mod, "_finalize_obs", recorder)
        FleetOrchestrator(_config(2), obs=Observer()).run()
        assert seen["snapshots"], "parallel path did not run"
        return seen

    def test_worker_snapshots_ship_subtree_roots(self, captured):
        from repro.obs import DigestTree

        for snap in captured["snapshots"]:
            assert snap.tree_root is not None
            assert (
                DigestTree.from_metrics(snap.metrics).root_digest
                == snap.tree_root
            )

    def test_tampered_snapshot_root_refused(self, captured):
        forged = [
            dataclasses.replace(snap, tree_root="0" * 64)
            for snap in captured["snapshots"]
        ]
        with pytest.raises(SimulationError, match="refusing to merge"):
            parallel_mod._finalize_obs(
                Observer(), captured["config"], captured["scenario"],
                captured["stats"], forged,
            )

    def test_honest_replay_passes_and_records_root(self, captured):
        fresh = Observer()
        parallel_mod._finalize_obs(
            fresh, captured["config"], captured["scenario"],
            captured["stats"], captured["snapshots"],
        )
        assert fresh.meta["tree_root"]


class TestSerialPath:
    def test_serial_run_fleet_has_no_proof_meta(self):
        # The proof is a parallel-only artifact; serial runs keep their
        # meta clean and get the same root via digest_tree() on demand.
        obs = Observer()
        run_fleet(_config(1), obs=obs)
        assert "tree_root" not in obs.meta
