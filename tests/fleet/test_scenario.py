"""The scenario engine: spec validation, compilation, live injections.

Three layers under test:

* **Spec layer** — nonsense scenarios raise typed, actionable
  :class:`~repro.errors.ScenarioError`\\ s at construction or compile
  time, and valid specs round-trip through JSON losslessly.
* **Compile layer** — arrival processes produce the declared shapes,
  profiles claim vehicles deterministically, convoys synchronize and pin.
* **Engine layer** — the orchestrator honors profiles (budgets, roaming,
  pinning), executes adversarial injections against the live fleet with
  full rejection and zero forgeries, and keeps the legacy path
  bit-identical to running without a scenario at all.
"""

from __future__ import annotations

import pytest

from repro.errors import ScenarioError, SimulationError
from repro.fleet import (
    BehaviorProfile,
    BurstArrivals,
    CaQueueFlood,
    DiurnalArrivals,
    FleetConfig,
    FleetOrchestrator,
    NAMED_SCENARIOS,
    PoissonArrivals,
    ReplayStorm,
    Scenario,
    StaleCertFlood,
    UniformArrivals,
    compile_scenario,
    get_scenario,
    load_scenario,
)

SEED = b"scenario-tests"


def small_config(**overrides) -> FleetConfig:
    """A fast fleet shape shared by the engine-layer tests."""
    defaults = dict(
        n_vehicles=8,
        seed=SEED,
        records_per_vehicle=4,
        max_records=4,
        send_interval_ms=25.0,
        arrival_spread_ms=40.0,
    )
    defaults.update(overrides)
    return FleetConfig(**defaults)


class TestSpecValidation:
    def test_arrival_spec_nonsense_rejected(self):
        with pytest.raises(ScenarioError, match="spread_ms"):
            UniformArrivals(spread_ms=-1.0)
        with pytest.raises(ScenarioError, match="rate_per_s"):
            PoissonArrivals(rate_per_s=0.0)
        with pytest.raises(ScenarioError, match="rate_per_s"):
            PoissonArrivals(rate_per_s=-3.0)
        with pytest.raises(ScenarioError, match="waves"):
            BurstArrivals(waves=0)
        with pytest.raises(ScenarioError, match="period_ms"):
            DiurnalArrivals(period_ms=0.0)
        with pytest.raises(ScenarioError, match="amplitude"):
            DiurnalArrivals(amplitude=1.5)

    def test_overlapping_burst_waves_rejected(self):
        with pytest.raises(ScenarioError, match="overlap"):
            BurstArrivals(
                waves=3, wave_interval_ms=100.0, wave_spread_ms=250.0
            )

    def test_profile_nonsense_rejected(self):
        with pytest.raises(ScenarioError, match="name"):
            BehaviorProfile(name="", count=1)
        with pytest.raises(ScenarioError, match="count"):
            BehaviorProfile(name="x", count=0)
        with pytest.raises(ScenarioError, match="records_per_vehicle"):
            BehaviorProfile(name="x", count=1, records_per_vehicle=0)
        with pytest.raises(ScenarioError, match="send_interval_ms"):
            BehaviorProfile(name="x", count=1, send_interval_ms=-1.0)
        with pytest.raises(ScenarioError, match="convoy_size"):
            BehaviorProfile(name="x", count=4, convoy_size=1)
        with pytest.raises(ScenarioError, match="roam"):
            BehaviorProfile(name="x", count=4, roam_every=2, convoy_size=2)

    def test_injection_nonsense_rejected(self):
        with pytest.raises(ScenarioError, match="at_ms"):
            ReplayStorm(at_ms=-1.0)
        with pytest.raises(ScenarioError, match="replays"):
            ReplayStorm(at_ms=0.0, replays=0)
        with pytest.raises(ScenarioError, match="attempts"):
            StaleCertFlood(at_ms=0.0, attempts=0)
        with pytest.raises(ScenarioError, match="requests"):
            CaQueueFlood(at_ms=0.0, requests=-1)

    def test_scenario_shape_rejected(self):
        with pytest.raises(ScenarioError, match="name"):
            Scenario(name="")
        with pytest.raises(ScenarioError, match="arrivals"):
            Scenario(name="x", arrivals="uniform")
        with pytest.raises(ScenarioError, match="injections"):
            Scenario(name="x", injections=("replay",))
        with pytest.raises(ScenarioError, match="duplicate"):
            Scenario(
                name="x",
                profiles=(
                    BehaviorProfile(name="p", count=1),
                    BehaviorProfile(name="p", count=1),
                ),
            )


class TestCompileValidation:
    def test_profiles_overclaiming_fleet_rejected(self):
        scenario = Scenario(
            name="x", profiles=(BehaviorProfile(name="p", count=9),)
        )
        with pytest.raises(ScenarioError, match="claim 9 vehicles"):
            compile_scenario(scenario, small_config())

    def test_partial_trailing_convoy_rejected(self):
        scenario = Scenario(
            name="x",
            profiles=(BehaviorProfile(name="pl", count=5, convoy_size=4),),
        )
        with pytest.raises(ScenarioError, match="multiple of convoy_size"):
            compile_scenario(scenario, small_config(shards=2))

    def test_roamer_needs_shards(self):
        scenario = Scenario(
            name="x", profiles=(BehaviorProfile(name="r", count=2, roam_every=1),)
        )
        with pytest.raises(ScenarioError, match="shard"):
            compile_scenario(scenario, small_config(shards=1))

    def test_replay_target_shard_range_checked(self):
        scenario = Scenario(
            name="x", injections=(ReplayStorm(at_ms=1.0, target_shard=3),)
        )
        with pytest.raises(ScenarioError, match="targets shard 3"):
            compile_scenario(scenario, small_config(shards=2))

    def test_stale_cert_flood_needs_rejoin(self):
        scenario = Scenario(
            name="x", injections=(StaleCertFlood(at_ms=100.0),)
        )
        with pytest.raises(ScenarioError, match="rejoin"):
            compile_scenario(scenario, small_config(shards=2))

    def test_stale_cert_flood_must_fire_after_rejoin(self):
        scenario = Scenario(
            name="x", injections=(StaleCertFlood(at_ms=500.0),)
        )
        config = small_config(
            shards=2, shard_fail_at_ms=100.0, shard_rejoin_at_ms=900.0
        )
        with pytest.raises(ScenarioError, match="before the rejoin"):
            compile_scenario(scenario, config)

    def test_ca_flood_needs_request_authentication(self):
        scenario = Scenario(
            name="x", injections=(CaQueueFlood(at_ms=1.0),)
        )
        with pytest.raises(ScenarioError, match="authenticate_requests"):
            compile_scenario(scenario, small_config())

    def test_scenario_error_is_a_simulation_error(self):
        assert issubclass(ScenarioError, SimulationError)


class TestCompilation:
    def test_uniform_matches_legacy_jitter(self):
        import random as _random

        from repro.primitives import sha256

        config = small_config()
        schedule = compile_scenario(Scenario(name="legacy"), config)
        rng = _random.Random(
            int.from_bytes(sha256(SEED + b"|arrivals"), "big")
        )
        expected = tuple(
            rng.uniform(0.0, config.arrival_spread_ms)
            for _ in range(config.n_vehicles)
        )
        assert schedule.arrival_ms == expected

    def test_burst_arrivals_land_in_their_waves(self):
        config = small_config(n_vehicles=12)
        scenario = Scenario(
            name="b",
            arrivals=BurstArrivals(
                waves=3, wave_interval_ms=200.0, wave_spread_ms=50.0
            ),
        )
        schedule = compile_scenario(scenario, config)
        for index, at in enumerate(schedule.arrival_ms):
            wave = index * 3 // 12
            assert wave * 200.0 <= at < wave * 200.0 + 50.0

    def test_poisson_arrivals_strictly_increase(self):
        config = small_config(n_vehicles=20)
        schedule = compile_scenario(
            Scenario(name="p", arrivals=PoissonArrivals(rate_per_s=50.0)),
            config,
        )
        times = schedule.arrival_ms
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_diurnal_arrivals_cluster_at_the_peak(self):
        config = small_config(n_vehicles=40)
        schedule = compile_scenario(
            Scenario(
                name="d",
                arrivals=DiurnalArrivals(period_ms=1_000.0, amplitude=1.0),
            ),
            config,
        )
        times = schedule.arrival_ms
        assert all(0.0 <= t <= 1_000.0 for t in times)
        # The middle half-period carries the intensity peak: it must
        # hold clearly more than half the fleet.
        mid = sum(1 for t in times if 250.0 <= t <= 750.0)
        assert mid > len(times) * 0.5

    def test_profiles_claim_contiguous_blocks(self):
        config = small_config(n_vehicles=8)
        scenario = Scenario(
            name="x",
            profiles=(
                BehaviorProfile(name="a", count=3),
                BehaviorProfile(name="b", count=2),
            ),
        )
        schedule = compile_scenario(scenario, config)
        assert schedule.profile_of == ("a",) * 3 + ("b",) * 2 + ("",) * 3
        assert schedule.profile_counts == (("a", 3), ("b", 2))

    def test_convoys_share_arrival_and_pin(self):
        config = small_config(n_vehicles=8, shards=2)
        scenario = Scenario(
            name="x",
            profiles=(BehaviorProfile(name="pl", count=6, convoy_size=3),),
        )
        schedule = compile_scenario(scenario, config)
        assert schedule.convoys == ((0, 1, 2), (3, 4, 5))
        for convoy in schedule.convoys:
            arrivals = {schedule.arrival_ms[i] for i in convoy}
            pins = {schedule.pinned_shard[i] for i in convoy}
            assert len(arrivals) == 1
            assert len(pins) == 1
            assert pins != {None}
        assert schedule.pinned_shard[6] is None

    def test_injections_sorted_by_time(self):
        config = small_config(shards=2, authenticate_requests=True)
        scenario = Scenario(
            name="x",
            injections=(
                ReplayStorm(at_ms=500.0),
                CaQueueFlood(at_ms=10.0),
            ),
        )
        schedule = compile_scenario(scenario, config)
        assert [inj.at_ms for inj in schedule.injections] == [10.0, 500.0]


class TestEngine:
    def test_scenario_none_and_legacy_uniform_bit_identical(self):
        config = small_config()
        plain = FleetOrchestrator(config).run().stats
        legacy = FleetOrchestrator(
            config, scenario=get_scenario("legacy-uniform")
        ).run().stats
        assert plain.digest() == legacy.digest()
        assert not legacy.is_scenario_run

    def test_commuter_profile_drives_tighter_rekeys(self):
        config = small_config(records_per_vehicle=6)
        scenario = Scenario(
            name="commute",
            profiles=(
                BehaviorProfile(name="commuter", count=4, max_records=2),
            ),
        )
        result = FleetOrchestrator(config, scenario=scenario).run()
        commuters = result.vehicles[:4]
        others = result.vehicles[4:]
        # 6 records at a 2-record budget: at least two re-keys each; the
        # default 4-record budget re-keys once.
        assert all(v.rekeys >= 2 for v in commuters)
        assert all(v.rekeys == 1 for v in others)
        assert result.stats.profile_counts == (("commuter", 4),)
        assert result.stats.is_scenario_run

    def test_profile_record_budget_changes_delivered_records(self):
        config = small_config()
        scenario = Scenario(
            name="chatty",
            profiles=(
                BehaviorProfile(
                    name="chatty", count=2, records_per_vehicle=9
                ),
            ),
        )
        result = FleetOrchestrator(config, scenario=scenario).run()
        assert [v.records_sent for v in result.vehicles[:2]] == [9, 9]
        assert all(v.records_sent == 4 for v in result.vehicles[2:])

    def test_roamers_migrate_between_shards(self):
        config = small_config(records_per_vehicle=6, shards=2)
        scenario = Scenario(
            name="roam",
            profiles=(
                BehaviorProfile(name="roamer", count=2, roam_every=3),
            ),
        )
        result = FleetOrchestrator(config, scenario=scenario).run()
        roamers = result.vehicles[:2]
        assert all(v.roams >= 1 for v in roamers)
        assert result.stats.migrations >= 2
        assert result.stats.re_enrollments >= 2

    def test_platoon_members_serve_on_their_pinned_shard(self):
        config = small_config(shards=2, shard_policy="round-robin")
        scenario = Scenario(
            name="convoy",
            profiles=(BehaviorProfile(name="pl", count=4, convoy_size=4),),
        )
        orchestrator = FleetOrchestrator(config, scenario=scenario)
        result = orchestrator.run()
        pin = orchestrator.schedule.pinned_shard[0]
        for vehicle in result.vehicles[:4]:
            assert vehicle.shard == pin

    def test_replay_storm_rejected_with_zero_forgeries(self):
        config = small_config(records_per_vehicle=6, shards=2)
        scenario = Scenario(
            name="storm",
            injections=(ReplayStorm(at_ms=4_500.0, replays=10),),
        )
        stats = FleetOrchestrator(config, scenario=scenario).run().stats
        assert stats.attack_attempts == 10
        assert stats.attack_rejections == 10
        assert stats.attack_successes == 0
        assert stats.is_scenario_run

    def test_ca_flood_rejected_and_costs_queue_time(self):
        config = small_config(authenticate_requests=True)
        # Fire mid enrollment storm (signed requests take ~600 ms of
        # vehicle compute before they queue), so the flood and the
        # legitimate requests contend the same CA service windows.
        flooded_scenario = Scenario(
            name="flood",
            injections=(CaQueueFlood(at_ms=620.0, requests=32),),
        )
        clean = FleetOrchestrator(config).run().stats
        flooded = FleetOrchestrator(
            config, scenario=flooded_scenario
        ).run().stats
        assert flooded.attack_attempts == 32
        assert flooded.attack_rejections == 32
        assert flooded.attack_successes == 0
        # The flood contends the CA: legitimate enrollments queue longer.
        assert (
            flooded.ca_queue_latency.mean_ms > clean.ca_queue_latency.mean_ms
        )
        # And every legitimate vehicle still completed its records.
        assert flooded.records_sent == clean.records_sent

    def test_stale_cert_flood_rejected_after_rejoin(self):
        config = small_config(
            records_per_vehicle=12,
            max_records=5,
            arrival_spread_ms=15.0,
            shards=2,
            shard_fail_at_ms=4_500.0,
            fail_shard=0,
            shard_rejoin_at_ms=6_000.0,
            migrate_threshold=1,
        )
        scenario = Scenario(
            name="stale",
            injections=(StaleCertFlood(at_ms=6_500.0, attempts=12),),
        )
        stats = FleetOrchestrator(config, scenario=scenario).run().stats
        assert stats.attack_attempts == 12
        assert stats.attack_rejections == 12
        assert stats.attack_successes == 0
        assert stats.rejoins == 1

    def test_replay_storm_before_any_traffic_fails_loudly(self):
        # A storm with nothing to replay must not report a vacuous 0/0
        # "defense success".
        config = small_config(shards=2)
        scenario = Scenario(
            name="too-early",
            injections=(ReplayStorm(at_ms=1.0, replays=4),),
        )
        with pytest.raises(ScenarioError, match="before any"):
            FleetOrchestrator(config, scenario=scenario).run()

    def test_stale_cert_flood_with_nothing_issued_fails_loudly(self):
        # The shard dies before it ever issued a leaf certificate: the
        # flood has nothing stale to present and must say so.
        config = small_config(
            shards=2,
            arrival_spread_ms=500.0,
            shard_fail_at_ms=1.0,
            fail_shard=0,
            shard_rejoin_at_ms=2.0,
        )
        scenario = Scenario(
            name="nothing-stale",
            injections=(StaleCertFlood(at_ms=10.0, attempts=4),),
        )
        with pytest.raises(ScenarioError, match="no retired"):
            FleetOrchestrator(config, scenario=scenario).run()

    def test_stats_round_trip_preserves_scenario_segments(self):
        from repro.fleet import FleetStats

        config = small_config(records_per_vehicle=6, shards=2)
        scenario = Scenario(
            name="storm",
            profiles=(BehaviorProfile(name="a", count=2),),
            injections=(ReplayStorm(at_ms=4_500.0, replays=6),),
        )
        stats = FleetOrchestrator(config, scenario=scenario).run().stats
        rebuilt = FleetStats.from_dict(stats.as_dict())
        assert rebuilt == stats
        assert rebuilt.digest() == stats.digest()

    def test_load_scenario_rejects_unknown_kinds(self):
        base = Scenario(name="x").as_dict()
        for field, bad in (
            ("arrivals", {"kind": "no-such-process"}),
            ("profiles", [{"kind": "replay-storm", "at_ms": 1.0}]),
            ("injections", [{"kind": "profile", "name": "a", "count": 1}]),
        ):
            payload = dict(base)
            payload[field] = bad
            with pytest.raises(ScenarioError, match="kind"):
                load_scenario(payload)

    def test_named_scenarios_all_load(self):
        for name in NAMED_SCENARIOS:
            scenario = get_scenario(name)
            assert scenario.name == name
            assert load_scenario(scenario.as_dict()) == scenario
        with pytest.raises(ScenarioError, match="unknown scenario"):
            get_scenario("no-such-scenario")
