"""Observability is digest-neutral: every historical golden survives it.

The tentpole contract of ``repro.obs``: hooks read orchestrator state
but never consume DRBG output, never schedule simulator events, and
never mutate fleet state.  These tests lock that down against **every**
committed golden from PR 1–6 (single gateway, sharded topology, V2V,
failover — all under the accelerated backend where the goldens demand
it), then check the telemetry itself is coherent: span trees validate,
metric counters reconcile with ``FleetStats``, heartbeats track
progress, and both export formats round-trip their schemas.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.fleet import (
    FleetConfig,
    FleetOrchestrator,
    get_scenario,
    run_fleet,
)
from repro.obs import (
    MetricsSnapshot,
    Observer,
    read_jsonl,
    validate_chrome_trace,
    validate_events,
)

# Goldens shared with tests/fleet/test_backend_parity.py — committed
# constants from PR 1 / PR 2, now additionally pinned *with telemetry
# attached*.
_PR1_CONFIG = FleetConfig(
    n_vehicles=4,
    seed=b"fleet-test",
    records_per_vehicle=6,
    max_records=3,
    send_interval_ms=20.0,
    arrival_spread_ms=30.0,
)
_PR1_DIGEST = "5632228c71d42eadd416b2151a1c0be0a8fe6679e14fe78e66c889ac04314e17"

_PR2_TOPOLOGY_GOLDENS = {
    1: "a43e300427fe7035b2d2c1a68edaffe0d349313cf046a151c9f430aa153c6d4e",
    2: "6ed2a66e4325260712dd84192d06bab8cef9303a3b50768d51567ee46bc04a41",
    4: "3d0ba83a7e1369fa79147400588cf1bb013dc15809d89a6078f789992654df82",
}
_PR2_V2V_GOLDEN = (
    "b6d8c193008cf2c60d08616e1d44d24d3797227489a1a3b31ff143a7aec3d5e4"
)
_PR2_FAILOVER_GOLDEN = (
    "b5087aa40b037cd5709a3e735d9b7e41152aaef27908366bc84733415b38730d"
)

_CHURN_CONFIG = FleetConfig(
    n_vehicles=8,
    seed=b"churn-test",
    records_per_vehicle=40,
    max_records=100,
    send_interval_ms=25.0,
    arrival_spread_ms=15.0,
    shards=2,
    shard_fail_at_ms=4_000.0,
    fail_shard=0,
    shard_rejoin_at_ms=6_000.0,
    migrate_threshold=2,
)


def _observed(config, scenario=None, **obs_kwargs):
    obs = Observer(**obs_kwargs)
    result = FleetOrchestrator(config, scenario=scenario, obs=obs).run()
    return result, obs


class TestGoldenDigestNeutrality:
    """All PR 1–6 goldens reproduce bit-identically with obs attached."""

    def test_pr1_golden_with_observer(self):
        result, obs = _observed(_PR1_CONFIG)
        assert result.stats.digest() == _PR1_DIGEST
        obs.validate()

    def test_pr1_golden_with_wall_clock_observer(self):
        # Wall-clock annotation must not leak into behaviour either.
        result, obs = _observed(
            _PR1_CONFIG, wall_clock=True, heartbeat_interval_ms=100.0
        )
        assert result.stats.digest() == _PR1_DIGEST
        obs.validate()

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_pr2_topology_goldens_with_observer(self, shards):
        config = FleetConfig(
            n_vehicles=6,
            seed=b"topology-det",
            records_per_vehicle=2,
            max_records=4,
            send_interval_ms=20.0,
            arrival_spread_ms=15.0,
            shards=shards,
            backend="accelerated",
        )
        result, obs = _observed(config)
        assert result.stats.digest() == _PR2_TOPOLOGY_GOLDENS[shards]
        obs.validate()

    def test_pr2_v2v_golden_with_observer(self):
        config = FleetConfig(
            n_vehicles=10,
            seed=b"topology-v2v",
            records_per_vehicle=2,
            max_records=4,
            send_interval_ms=20.0,
            arrival_spread_ms=15.0,
            shards=2,
            v2v_fraction=0.6,
            v2v_records=4,
            backend="accelerated",
        )
        result, obs = _observed(config)
        assert result.stats.digest() == _PR2_V2V_GOLDEN
        obs.validate()
        assert obs.spans.by_category("v2v")
        assert (
            obs.metrics.snapshot().counter_total("fleet.v2v_sessions")
            == result.stats.v2v_sessions
        )

    def test_pr2_failover_golden_with_observer(self):
        config = FleetConfig(
            n_vehicles=8,
            seed=b"topology-failover",
            records_per_vehicle=40,
            max_records=100,
            send_interval_ms=25.0,
            arrival_spread_ms=15.0,
            shards=2,
            shard_fail_at_ms=4_000.0,
            fail_shard=0,
            backend="accelerated",
        )
        result, obs = _observed(config)
        assert result.stats.digest() == _PR2_FAILOVER_GOLDEN
        obs.validate()
        assert obs.spans.by_category("failover")

    def test_churn_run_digest_unchanged_by_observer(self):
        plain = run_fleet(_CHURN_CONFIG).stats.digest()
        result, obs = _observed(_CHURN_CONFIG)
        assert result.stats.digest() == plain
        obs.validate()
        for category in ("migrate", "re-enroll", "rejoin"):
            assert obs.spans.by_category(category), category

    def test_scenario_run_digest_unchanged_by_observer(self):
        config = FleetConfig(
            n_vehicles=8,
            seed=b"backend-scenario",
            records_per_vehicle=6,
            max_records=4,
            arrival_spread_ms=40.0,
            shards=2,
        )
        scenario = get_scenario("replay-storm")
        plain = FleetOrchestrator(config, scenario=scenario).run()
        result, obs = _observed(config, scenario=scenario)
        assert result.stats.digest() == plain.stats.digest()
        obs.validate()
        assert obs.spans.by_category("injection")
        snap = obs.metrics.snapshot()
        assert (
            snap.counter_total("fleet.injection_attempts")
            == result.stats.attack_attempts
        )
        assert (
            snap.counter_total("fleet.injection_succeeded")
            == result.stats.attack_successes
        )


class TestStatsReconciliation:
    """Telemetry counters agree with the orchestrator's own statistics."""

    @pytest.fixture(scope="class")
    def observed_run(self):
        config = FleetConfig(
            n_vehicles=6,
            seed=b"obs-reconcile",
            records_per_vehicle=4,
            max_records=3,
            send_interval_ms=20.0,
            arrival_spread_ms=25.0,
            shards=2,
        )
        return _observed(config, heartbeat_interval_ms=100.0)

    def test_counters_match_fleet_stats(self, observed_run):
        result, obs = observed_run
        snap = obs.metrics.snapshot()
        stats = result.stats
        assert snap.counter_total("fleet.records_sent") == stats.records_sent
        assert snap.counter_total("fleet.enrollments") == stats.enrollments
        assert (
            snap.counter_total("fleet.sessions")
            == stats.sessions_established
        )
        assert snap.counter_total("fleet.rekeys") == stats.rekeys
        assert snap.counter_total("fleet.vehicles_done") == stats.vehicles
        assert snap.counter_total("fleet.arrivals") == stats.vehicles

    def test_latency_histograms_populated(self, observed_run):
        result, obs = observed_run
        snap = obs.metrics.snapshot()
        enroll_count = sum(
            hist.count
            for (name, _), hist in snap.histograms.items()
            if name == "fleet.enrollment_latency_ms"
        )
        assert enroll_count == result.stats.enrollments

    def test_span_counts_match_stats(self, observed_run):
        result, obs = observed_run
        assert len(obs.spans.by_category("vehicle")) == result.stats.vehicles
        assert (
            len(obs.spans.by_category("enroll")) == result.stats.enrollments
        )
        assert (
            len(obs.spans.by_category("establish"))
            == result.stats.sessions_established
        )
        (run_span,) = obs.spans.by_category("run")
        assert run_span.parent_id is None
        assert len(obs.spans.by_category("shard")) == 2

    def test_heartbeats_monotone_and_final(self, observed_run):
        result, obs = observed_run
        beats = obs.heartbeats
        assert beats, "at least the final heartbeat fires"
        done = [beat["vehicles_done"] for beat in beats]
        assert done == sorted(done)
        times = [beat["sim_ms"] for beat in beats]
        assert times == sorted(times)
        assert beats[-1]["vehicles_done"] == result.stats.vehicles
        assert beats[-1]["records_sent"] == result.stats.records_sent

    def test_meta_describes_run(self, observed_run):
        result, obs = observed_run
        assert obs.meta["digest"] == result.stats.digest()
        assert obs.meta["n_vehicles"] == 6
        assert obs.meta["shards"] == 2
        assert obs.meta["sim_end_ms"] > 0


class TestWiring:
    def test_config_observe_flag_builds_observer(self):
        config = dataclasses.replace(_PR1_CONFIG, observe=True)
        result = run_fleet(config)
        assert result.obs is not None
        assert result.stats.digest() == _PR1_DIGEST
        result.obs.validate()

    def test_default_run_has_no_observer(self):
        result = run_fleet(_PR1_CONFIG)
        assert result.obs is None

    def test_zero_overhead_path_has_no_hooks(self):
        orch = FleetOrchestrator(_PR1_CONFIG)
        assert orch._hooks is None and orch.obs is None

    def test_explicit_obs_kwarg_wins(self):
        obs = Observer()
        result = run_fleet(_PR1_CONFIG, obs=obs)
        assert result.obs is obs

    def test_on_heartbeat_callback_fires(self):
        seen = []
        obs = Observer(heartbeat_interval_ms=50.0, on_heartbeat=seen.append)
        run_fleet(_PR1_CONFIG, obs=obs)
        assert seen == obs.heartbeats


class TestExportRoundTrip:
    @pytest.fixture(scope="class")
    def observed_run(self):
        config = FleetConfig(
            n_vehicles=5,
            seed=b"obs-export",
            records_per_vehicle=3,
            max_records=2,
            send_interval_ms=20.0,
            arrival_spread_ms=20.0,
            shards=2,
            v2v_fraction=0.4,
        )
        return _observed(config, heartbeat_interval_ms=200.0)

    def test_jsonl_round_trip(self, observed_run, tmp_path):
        _, obs = observed_run
        path = tmp_path / "events.jsonl"
        count = obs.export_jsonl(path)
        events = read_jsonl(path)
        assert len(events) == count
        assert validate_events(events) == count
        # Metric events survive the round trip into an equal snapshot.
        assert MetricsSnapshot.from_events(events) == obs.metrics.snapshot()

    def test_chrome_trace_round_trip(self, observed_run, tmp_path):
        _, obs = observed_run
        path = tmp_path / "trace.json"
        trace = obs.export_chrome_trace(path)
        on_disk = json.loads(path.read_text())
        assert on_disk == trace
        assert validate_chrome_trace(on_disk) > 0
        names = {
            event["name"]
            for event in on_disk["traceEvents"]
            if event["ph"] == "X"
        }
        assert any(name.startswith("veh") for name in names)

    def test_markdown_rollup_renders(self, observed_run):
        result, obs = observed_run
        text = obs.markdown_rollup()
        assert "| span category |" in text
        assert "fleet.records_sent" in text
        assert f"{result.stats.vehicles}/{result.stats.vehicles} vehicles" in text

    def test_attach_observability_extends_report(self, observed_run):
        from repro.analysis.report import ReproductionReport, attach_observability

        _, obs = observed_run
        report = ReproductionReport(
            sections={"tab1": "body"}, verdicts={"tab1": True}
        )
        attach_observability(report, obs)
        assert report.verdicts["obs"] is True
        text = report.to_markdown()
        assert "## Observability — fleet telemetry rollup" in text
        assert "| span category |" in text
