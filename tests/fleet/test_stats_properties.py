"""Property-based invariants for fleet statistics (conservation laws).

Golden digests pin exact values; these tests pin *structure*: for random
shard breakdowns and random small fleet runs (sharding × V2V × churn),
the per-shard counters must sum to the fleet totals, cross-shard merges
must not depend on shard order, and ``as_dict()`` must round-trip — laws
that hold for every configuration, not just the ones we hand-picked.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.fleet import (
    FleetConfig,
    FleetStats,
    LatencySummary,
    ShardStats,
    merge_shard_stats,
    run_fleet,
)

# -- strategies ---------------------------------------------------------------

_counts = st.integers(min_value=0, max_value=10_000)
_millis = st.floats(
    min_value=0.0, max_value=1e7, allow_nan=False, allow_infinity=False
)


@st.composite
def latency_summaries(draw):
    samples = draw(
        st.lists(_millis, min_size=0, max_size=40)
    )
    return LatencySummary.from_samples(samples)


@st.composite
def shard_stats(draw, index=None):
    return ShardStats(
        index=draw(st.integers(0, 15)) if index is None else index,
        name=draw(st.sampled_from(["central-ca", "central-ca-1", "edge"])),
        vehicles_assigned=draw(_counts),
        enrollments=draw(_counts),
        sessions_established=draw(_counts),
        rekeys=draw(_counts),
        handovers_in=draw(_counts),
        failed=draw(st.booleans()),
        ca_busy_ms=draw(_millis),
        ca_utilisation=draw(st.floats(0.0, 1.0, allow_nan=False)),
        ca_batches=draw(_counts),
        ca_max_batch=draw(_counts),
        queue_latency=draw(latency_summaries()),
        ca_energy_mj=draw(_millis),
        epoch=draw(st.integers(1, 5)),
        migrations_in=draw(_counts),
        migrations_out=draw(_counts),
    )


@st.composite
def fleet_stats(draw):
    shards = tuple(
        draw(shard_stats(index=i)) for i in range(draw(st.integers(1, 4)))
    )
    return FleetStats(
        vehicles=draw(_counts),
        enrollments=draw(_counts),
        sessions_established=draw(_counts),
        rekeys=draw(_counts),
        records_sent=draw(_counts),
        duration_ms=draw(_millis),
        ca_busy_ms=draw(_millis),
        ca_utilisation=draw(st.floats(0.0, 1.0, allow_nan=False)),
        ca_batches=draw(_counts),
        ca_max_batch=draw(_counts),
        enrollment_latency=draw(latency_summaries()),
        establishment_latency=draw(latency_summaries()),
        vehicle_energy_mj=draw(_millis),
        ca_energy_mj=draw(_millis),
        per_shard=shards,
        ca_queue_latency=draw(latency_summaries()),
        v2v_sessions=draw(_counts),
        v2v_rekeys=draw(_counts),
        v2v_cross_shard=draw(_counts),
        v2v_records_sent=draw(_counts),
        v2v_latency=draw(latency_summaries()),
        handovers=draw(_counts),
        migrations=draw(_counts),
        rejoins=draw(_counts),
        re_enrollments=draw(_counts),
        migration_latency=draw(latency_summaries()),
    )


# -- latency summary invariants ----------------------------------------------


class TestLatencySummaryProperties:
    @given(st.lists(_millis, min_size=1, max_size=60))
    def test_percentiles_are_ordered(self, samples):
        summary = LatencySummary.from_samples(samples)
        assert summary.count == len(samples)
        assert (
            summary.min_ms
            <= summary.p50_ms
            <= summary.p95_ms
            <= summary.p99_ms
            <= summary.max_ms
        )
        # The mean is sum/len over floats, which can land one ulp
        # outside [min, max] (e.g. three identical samples); allow that
        # representation noise, nothing more.
        tolerance = 1e-9 * max(1.0, summary.max_ms)
        assert summary.min_ms - tolerance <= summary.mean_ms
        assert summary.mean_ms <= summary.max_ms + tolerance

    @given(st.lists(_millis, min_size=1, max_size=30), st.randoms())
    def test_summary_is_permutation_invariant(self, samples, rng):
        shuffled = list(samples)
        rng.shuffle(shuffled)
        assert LatencySummary.from_samples(
            shuffled
        ) == LatencySummary.from_samples(samples)

    @given(latency_summaries())
    def test_as_dict_round_trips(self, summary):
        assert LatencySummary.from_dict(summary.as_dict()) == summary
        # ...and survives an actual JSON encode/decode.
        assert (
            LatencySummary.from_dict(json.loads(json.dumps(summary.as_dict())))
            == summary
        )


# -- merge invariants ---------------------------------------------------------


class TestMergeProperties:
    @given(st.lists(shard_stats(), min_size=1, max_size=6), st.randoms())
    def test_merge_is_order_independent(self, shards, rng):
        # Bit-exact, not approx: float sums go through math.fsum over
        # the canonical (index-sorted) shard ordering, so any input
        # permutation must produce the *same bits* — the law the
        # process-parallel barrier merge relies on.
        merged = merge_shard_stats(shards)
        shuffled = list(shards)
        rng.shuffle(shuffled)
        assert merge_shard_stats(shuffled) == merged

    @given(st.lists(shard_stats(), min_size=1, max_size=6))
    def test_merge_conserves_counters(self, shards):
        merged = merge_shard_stats(shards)
        assert merged["enrollments"] == sum(s.enrollments for s in shards)
        assert merged["sessions_established"] == sum(
            s.sessions_established for s in shards
        )
        assert merged["migrations_in"] == sum(
            s.migrations_in for s in shards
        )
        assert merged["migrations_out"] == sum(
            s.migrations_out for s in shards
        )
        assert merged["max_epoch"] == max(s.epoch for s in shards)
        assert merged["ca_max_batch"] == max(s.ca_max_batch for s in shards)

    def test_merge_of_one_shard_is_identity(self):
        shard = ShardStats(
            index=0,
            name="central-ca",
            vehicles_assigned=5,
            enrollments=5,
            sessions_established=9,
            rekeys=4,
            handovers_in=0,
            failed=False,
            ca_busy_ms=123.456,
            ca_utilisation=0.5,
            ca_batches=3,
            ca_max_batch=2,
            queue_latency=LatencySummary.from_samples([1.0, 2.0]),
            ca_energy_mj=10.0,
        )
        merged = merge_shard_stats([shard])
        assert merged["ca_busy_ms"] == shard.ca_busy_ms
        assert merged["enrollments"] == shard.enrollments
        assert merged["max_epoch"] == 1


# -- round-trip invariants ----------------------------------------------------


class TestRoundTripProperties:
    @given(shard_stats())
    def test_shard_stats_round_trip(self, shard):
        assert ShardStats.from_dict(shard.as_dict()) == shard
        assert (
            ShardStats.from_dict(shard.as_dict()).digest() == shard.digest()
        )

    @given(fleet_stats())
    def test_fleet_stats_round_trip(self, stats):
        rebuilt = FleetStats.from_dict(stats.as_dict())
        assert rebuilt == stats
        assert rebuilt.digest() == stats.digest()

    @given(fleet_stats())
    def test_fleet_stats_round_trip_through_json(self, stats):
        payload = json.loads(json.dumps(stats.as_dict(), sort_keys=True))
        rebuilt = FleetStats.from_dict(payload)
        assert rebuilt == stats
        assert payload["digest"] == rebuilt.digest()

    @given(shard_stats())
    def test_churn_fields_only_render_when_churned(self, shard):
        row = shard.row()
        if shard.churned:
            assert "epoch" in row
        else:
            assert "epoch" not in row and "migrations" not in row


# -- real-run conservation laws ----------------------------------------------


@st.composite
def fleet_configs(draw):
    """Random *small* fleet configs across shards × V2V × churn."""
    shards = draw(st.integers(1, 3))
    churn = shards >= 2 and draw(st.booleans())
    v2v = draw(st.sampled_from([0.0, 0.5]))
    seed = b"stats-prop-%d" % draw(st.integers(0, 7))
    kwargs = dict(
        n_vehicles=draw(st.integers(3, 6)),
        seed=seed,
        records_per_vehicle=draw(st.integers(2, 4)),
        max_records=4,
        send_interval_ms=20.0,
        arrival_spread_ms=15.0,
        shards=shards,
        shard_policy=draw(
            st.sampled_from(["static-hash", "least-loaded", "round-robin"])
        ),
        v2v_fraction=v2v,
        v2v_records=2,
    )
    if churn:
        kwargs.update(
            shard_fail_at_ms=3_000.0,
            fail_shard=draw(st.integers(0, shards - 1)),
            shard_rejoin_at_ms=4_500.0,
            migrate_threshold=draw(st.sampled_from([1, 2])),
            records_per_vehicle=12,
            max_records=draw(st.sampled_from([5, 100])),
        )
    return FleetConfig(**kwargs)


class TestRunConservation:
    @settings(max_examples=6, deadline=None, derandomize=True)
    @given(fleet_configs())
    def test_per_shard_counters_sum_to_fleet_totals(self, config):
        stats = run_fleet(config).stats
        per_shard = stats.per_shard
        assert len(per_shard) == config.shards
        # Conservation laws — structure, not golden values.
        assert sum(s.sessions_established for s in per_shard) == (
            stats.sessions_established
        )
        assert sum(s.rekeys for s in per_shard) == stats.rekeys
        assert sum(s.enrollments for s in per_shard) == (
            stats.enrollments + stats.re_enrollments
        )
        assert sum(s.handovers_in for s in per_shard) == stats.handovers
        assert sum(s.migrations_in for s in per_shard) == stats.migrations
        assert sum(s.migrations_out for s in per_shard) == stats.migrations
        assert stats.ca_batches == sum(s.ca_batches for s in per_shard)
        assert stats.ca_busy_ms == pytest.approx(
            sum(s.ca_busy_ms for s in per_shard)
        )
        assert stats.ca_energy_mj == pytest.approx(
            sum(s.ca_energy_mj for s in per_shard)
        )
        assert stats.enrollments == config.n_vehicles
        assert stats.records_sent == (
            config.n_vehicles * config.records_per_vehicle
        )
        assert stats.migration_latency.count == stats.migrations
        # The whole aggregate still round-trips after a real run.
        assert FleetStats.from_dict(stats.as_dict()) == stats
