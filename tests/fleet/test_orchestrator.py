"""End-to-end tests for the fleet orchestrator.

Small fleets keep the real-crypto cost low; the assertions cover the
lifecycle invariants (everyone enrolls, establishes, re-keys under
policy, finishes), determinism, CA contention accounting and the
batched/non-batched ablation.
"""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.fleet import FleetConfig, FleetOrchestrator, run_fleet

#: One small storm shared by the read-only assertions (runs real crypto
#: once for the whole module).
_CONFIG = FleetConfig(
    n_vehicles=4,
    seed=b"fleet-test",
    records_per_vehicle=6,
    max_records=3,  # forces exactly one re-key per vehicle
    send_interval_ms=20.0,
    arrival_spread_ms=30.0,
)


@pytest.fixture(scope="module")
def result():
    return run_fleet(_CONFIG)


class TestLifecycle:
    def test_everyone_finishes(self, result):
        assert result.stats.vehicles == 4
        assert result.stats.enrollments == 4
        assert all(v.done_at is not None for v in result.vehicles)
        assert all(v.records_sent == 6 for v in result.vehicles)

    def test_rekey_per_vehicle_under_record_budget(self, result):
        # 6 records under a 3-record budget: 2 sessions per vehicle.
        assert result.stats.sessions_established == 8
        assert result.stats.rekeys == 4
        assert all(v.generation == 2 for v in result.vehicles)
        assert all(v.sessions == 2 for v in result.vehicles)

    def test_timeline_events_ordered_and_complete(self, result):
        for vehicle in result.vehicles:
            times = [event.time_ms for event in vehicle.events]
            assert times == sorted(times)
            kinds = [event.kind for event in vehicle.events]
            assert kinds[0] == "arrive"
            assert kinds[-1] == "done"
            assert kinds.count("established") == 2
            assert kinds.count("rekey") == 1

    def test_latency_samples_counted(self, result):
        assert result.stats.enrollment_latency.count == 4
        assert result.stats.establishment_latency.count == 8
        assert result.stats.enrollment_latency.min_ms > 0

    def test_ca_accounting(self, result):
        stats = result.stats
        assert stats.ca_batches >= 1
        assert 1 <= stats.ca_max_batch <= 4
        assert stats.ca_busy_ms > 0
        assert 0.0 < stats.ca_utilisation <= 1.0

    def test_energy_split(self, result):
        # Four STM32 vehicles must out-consume the single RPi gateway.
        assert result.stats.vehicle_energy_mj > result.stats.ca_energy_mj > 0


class TestDeterminism:
    def test_same_seed_identical_digest(self, result):
        rerun = run_fleet(_CONFIG)
        assert rerun.stats.digest() == result.stats.digest()
        assert rerun.stats == result.stats

    def test_different_seed_different_digest(self, result):
        other = run_fleet(
            FleetConfig(
                n_vehicles=4,
                seed=b"fleet-test-other",
                records_per_vehicle=6,
                max_records=3,
                send_interval_ms=20.0,
                arrival_spread_ms=30.0,
            )
        )
        assert other.stats.digest() != result.stats.digest()


class TestAblationAndPolicy:
    def test_non_batched_path_same_logical_outcome(self, result):
        plain = run_fleet(
            FleetConfig(
                n_vehicles=4,
                seed=b"fleet-test",
                records_per_vehicle=6,
                max_records=3,
                send_interval_ms=20.0,
                arrival_spread_ms=30.0,
                use_batch_ec=False,
            )
        )
        assert plain.stats.sessions_established == 8
        assert plain.stats.records_sent == result.stats.records_sent
        assert all(v.pool is None for v in plain.vehicles)

    def test_age_based_rekey(self):
        aged = run_fleet(
            FleetConfig(
                n_vehicles=2,
                seed=b"fleet-age",
                records_per_vehicle=4,
                max_records=100,  # records never bind
                max_age_ms=60.0,  # but keys age out between sends
                send_interval_ms=50.0,
                arrival_spread_ms=5.0,
            )
        )
        assert aged.stats.rekeys > 0
        assert all(v.records_sent == 4 for v in aged.vehicles)

    def test_batching_kicks_in_under_burst_arrivals(self):
        burst = run_fleet(
            FleetConfig(
                n_vehicles=6,
                seed=b"fleet-burst",
                records_per_vehicle=1,
                max_records=5,
                arrival_spread_ms=0.001,  # everyone at once
            )
        )
        assert burst.stats.ca_max_batch > 1


class TestConfigValidation:
    def test_bad_sizes_rejected(self):
        with pytest.raises(SimulationError):
            FleetConfig(n_vehicles=0)
        with pytest.raises(SimulationError):
            FleetConfig(records_per_vehicle=0)
        with pytest.raises(SimulationError):
            FleetConfig(send_interval_ms=0.0)
        with pytest.raises(SimulationError):
            FleetConfig(ca_batch_limit=0)

    def test_unknown_protocol_rejected(self):
        from repro.errors import ProtocolError

        with pytest.raises(ProtocolError):
            FleetConfig(protocol="no-such-protocol")

    def test_bad_values_raise_typed_config_errors(self):
        from repro.errors import ConfigError

        # ConfigError subclasses SimulationError, so both catches work.
        assert issubclass(ConfigError, SimulationError)
        for kwargs in (
            {"arrival_spread_ms": -1.0},
            {"record_bytes": 0},
            {"bus_ms_per_byte": -0.001},
            {"pool_size": -1},
            {"cert_validity_seconds": 0},
            {"max_age_ms": -5.0},
            {"v2v_fraction": 1.5},
            {"v2v_fraction": -0.1},
            {"shards": 2, "fail_shard": 2, "shard_fail_at_ms": 10.0},
            {"shard_rejoin_at_ms": 10.0},  # rejoin without failure
        ):
            with pytest.raises(ConfigError):
                FleetConfig(**kwargs)

    def test_config_errors_are_actionable(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="arrival_spread_ms"):
            FleetConfig(arrival_spread_ms=-2.0)
        with pytest.raises(ConfigError, match="v2v_fraction"):
            FleetConfig(v2v_fraction=2.0)
        with pytest.raises(ConfigError, match="shard_fail_at_ms"):
            FleetConfig(
                shards=2, shard_fail_at_ms=20.0, shard_rejoin_at_ms=10.0
            )

    def test_orchestrator_exposes_resources(self):
        orchestrator = FleetOrchestrator(
            FleetConfig(n_vehicles=1, seed=b"expose")
        )
        assert orchestrator.ca_resource.name == "central-ca"
        assert orchestrator.gateway_manager.role == "B"
