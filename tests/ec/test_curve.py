"""Tests for curve domain parameters and the named-curve registry."""

from __future__ import annotations

import pytest

from repro.ec import (
    BRAINPOOLP256R1,
    BRAINPOOLP384R1,
    CURVES,
    Curve,
    SECP192R1,
    SECP224R1,
    SECP256K1,
    SECP256R1,
    SECP384R1,
    curve_by_id,
    curve_id,
    get_curve,
)
from repro.errors import CurveError

ALL_CURVES = [
    SECP192R1,
    SECP224R1,
    SECP256R1,
    SECP256K1,
    SECP384R1,
    BRAINPOOLP256R1,
    BRAINPOOLP384R1,
]


class TestNamedCurves:
    @pytest.mark.parametrize("curve", ALL_CURVES, ids=lambda c: c.name)
    def test_parameters_validate(self, curve):
        curve.validate()

    @pytest.mark.parametrize("curve", ALL_CURVES, ids=lambda c: c.name)
    def test_generator_on_curve(self, curve):
        assert curve.contains(curve.gx, curve.gy)

    def test_field_bytes(self):
        assert SECP192R1.field_bytes == 24
        assert SECP224R1.field_bytes == 28
        assert SECP256R1.field_bytes == 32
        assert SECP384R1.field_bytes == 48

    def test_scalar_bytes_secp256r1(self):
        assert SECP256R1.scalar_bytes == 32

    def test_bits(self):
        assert SECP256R1.bits == 256
        assert SECP192R1.bits == 192

    def test_rhs_matches_generator(self):
        rhs = SECP256R1.rhs(SECP256R1.gx)
        assert rhs == SECP256R1.gy * SECP256R1.gy % SECP256R1.p


class TestRegistry:
    def test_lookup_by_name(self):
        assert get_curve("secp256r1") is SECP256R1

    def test_unknown_name(self):
        with pytest.raises(CurveError, match="unknown curve"):
            get_curve("secp512r1")

    def test_ids_roundtrip(self):
        for curve in ALL_CURVES:
            assert curve_by_id(curve_id(curve)) is curve

    def test_unknown_id(self):
        with pytest.raises(CurveError):
            curve_by_id(200)

    def test_registry_complete(self):
        assert set(CURVES) == {c.name for c in ALL_CURVES}


class TestValidation:
    def test_singular_curve_rejected(self):
        # y^2 = x^3 (a=0, b=0) has discriminant 0.
        bad = Curve("bad", 23, 0, 0, 1, 1, 19)
        with pytest.raises(CurveError, match="singular"):
            bad.validate()

    def test_off_curve_generator_rejected(self):
        bad = Curve(
            "bad-gen",
            SECP256R1.p,
            SECP256R1.a,
            SECP256R1.b,
            SECP256R1.gx,
            SECP256R1.gy ^ 1,
            SECP256R1.n,
        )
        with pytest.raises(CurveError, match="base point"):
            bad.validate()

    def test_composite_field_rejected(self):
        bad = Curve("bad-p", 15, 1, 1, 2, 3, 7)
        with pytest.raises(CurveError):
            bad.validate()

    def test_contains_rejects_out_of_range(self):
        assert not SECP256R1.contains(-1, 0)
        assert not SECP256R1.contains(SECP256R1.p, 0)
