"""Tests for affine points and the Jacobian helpers: group laws, edge cases."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.ec import SECP192R1, SECP256K1, SECP256R1, Point, mul_point
from repro.ec.point import (
    JAC_INFINITY,
    from_jacobian,
    jac_add,
    jac_add_affine,
    jac_add_mixed,
    jac_double,
    jac_negate,
    to_jacobian,
)
from repro.errors import CurveError
from repro import trace

C = SECP192R1  # smaller curve keeps property tests quick
G = C.generator

scalars = st.integers(1, C.n - 1)


def pt(k: int) -> Point:
    return mul_point(k, G)


class TestPointBasics:
    def test_infinity_identity(self):
        inf = Point.infinity(C)
        assert inf.is_infinity
        assert (G + inf) == G
        assert (inf + G) == G
        assert (inf + inf).is_infinity

    def test_inverse_sums_to_infinity(self):
        assert (G + (-G)).is_infinity

    def test_double_matches_add(self):
        assert G.double() == G + G

    def test_negation_involution(self):
        assert -(-G) == G

    def test_subtraction(self):
        assert (G + G) - G == G

    def test_cross_curve_addition_rejected(self):
        with pytest.raises(CurveError):
            G + SECP256R1.generator

    def test_off_curve_construction_rejected(self):
        with pytest.raises(CurveError):
            Point(C, C.gx, (C.gy + 1) % C.p)

    def test_half_infinity_rejected(self):
        with pytest.raises(CurveError):
            Point(C, C.gx, None)

    def test_immutability(self):
        with pytest.raises(AttributeError):
            G.x = 1

    def test_equality_and_hash(self):
        g2 = Point(C, C.gx, C.gy)
        assert g2 == G
        assert hash(g2) == hash(G)
        assert G != SECP256R1.generator
        assert G != "not a point"

    def test_repr(self):
        assert "secp192r1" in repr(G)
        assert "infinity" in repr(Point.infinity(C))


class TestGroupLaws:
    @given(scalars, scalars)
    @settings(max_examples=25, deadline=None)
    def test_commutativity(self, a, b):
        assert pt(a) + pt(b) == pt(b) + pt(a)

    @given(scalars, scalars, scalars)
    @settings(max_examples=20, deadline=None)
    def test_associativity(self, a, b, c):
        p, q, r = pt(a), pt(b), pt(c)
        assert (p + q) + r == p + (q + r)

    @given(scalars)
    @settings(max_examples=25, deadline=None)
    def test_inverse_law(self, a):
        assert (pt(a) + (-pt(a))).is_infinity

    @given(scalars)
    @settings(max_examples=25, deadline=None)
    def test_result_on_curve(self, a):
        p = pt(a) + G
        assert p.is_infinity or C.contains(p.x, p.y)


class TestJacobian:
    def test_roundtrip(self):
        assert from_jacobian(C, to_jacobian(G)) == G

    def test_infinity_roundtrip(self):
        assert from_jacobian(C, JAC_INFINITY).is_infinity
        assert to_jacobian(Point.infinity(C)) == JAC_INFINITY

    def test_double_matches_affine(self):
        assert from_jacobian(C, jac_double(C, to_jacobian(G))) == G.double()

    def test_add_matches_affine(self):
        p = pt(7)
        got = from_jacobian(C, jac_add(C, to_jacobian(G), to_jacobian(p)))
        assert got == G + p

    def test_add_mixed_matches_affine(self):
        p = pt(9)
        got = from_jacobian(C, jac_add_mixed(C, to_jacobian(p), G))
        assert got == p + G

    def test_add_equal_points_doubles(self):
        got = from_jacobian(C, jac_add(C, to_jacobian(G), to_jacobian(G)))
        assert got == G.double()

    def test_add_opposite_points_is_infinity(self):
        got = jac_add(C, to_jacobian(G), to_jacobian(-G))
        assert from_jacobian(C, got).is_infinity

    def test_negate(self):
        got = from_jacobian(C, jac_negate(C, to_jacobian(G)))
        assert got == -G

    def test_nonunit_z_representations(self):
        # The same point in a different Jacobian representation must
        # normalize identically.
        x, y, _ = to_jacobian(G)
        z = 12345
        scaled = (x * z * z % C.p, y * z * z * z % C.p, z)
        assert from_jacobian(C, scaled) == G

    def test_add_affine_reduces_raw_coordinates(self):
        # The wNAF loops pass (x, p - y) for negative digits without
        # building a Point, so a y == 0 table entry would arrive as
        # y2 == p.  Unreduced coordinates must behave exactly like
        # their residues in every branch of the mixed addition.
        p_mod = C.p
        unreduced = jac_add_affine(C, to_jacobian(pt(5)), G.x + p_mod, G.y + p_mod)
        assert from_jacobian(C, unreduced) == pt(5) + G

    def test_add_affine_unreduced_infinity_branch(self):
        # z1 == 0 used to leak the raw coordinates straight into the
        # output triple; the result must still normalize to the point.
        got = jac_add_affine(C, JAC_INFINITY, G.x + C.p, G.y + C.p)
        assert from_jacobian(C, got) == G

    def test_add_affine_unreduced_opposite_is_infinity(self):
        # P + (-P) with the negation supplied as p - y (and even p + p - y)
        # must hit the inverse-degeneracy branch, not the generic formula.
        jac = to_jacobian(G)
        assert jac_add_affine(C, jac, G.x, C.p - G.y) == JAC_INFINITY
        assert jac_add_affine(C, jac, G.x + C.p, 2 * C.p - G.y) == JAC_INFINITY

    def test_add_affine_unreduced_doubling_degeneracy(self):
        # Same point with unreduced coordinates must take the doubling
        # branch and agree with an honest double.
        got = jac_add_affine(C, to_jacobian(G), G.x + C.p, G.y + C.p)
        assert from_jacobian(C, got) == G.double()

    @given(scalars)
    @settings(max_examples=20, deadline=None)
    def test_secp256k1_a_zero_doubling(self, a):
        # a == 0 exercises a different branch weight in the doubling math.
        g = SECP256K1.generator
        p = mul_point(a, g)
        if p.is_infinity:
            return
        jac = jac_double(SECP256K1, to_jacobian(p))
        assert from_jacobian(SECP256K1, jac) == p.double()


class TestTracing:
    def test_public_add_records_event(self):
        with trace.trace() as t:
            G + G
        assert t["ec.add"] == 1

    def test_internal_jacobian_silent(self):
        with trace.trace() as t:
            jac_add(C, to_jacobian(G), to_jacobian(pt(3)))
            jac_double(C, to_jacobian(G))
        assert t["ec.add"] == 0
