"""Regression: base-point tables must key on curve *parameters*, not name.

The original cache keyed ``_BASE_TABLES`` on ``curve.name`` alone, so two
distinct :class:`~repro.ec.curve.Curve` objects sharing a name silently
shared precomputation — ``mul_base`` on the second curve returned points
computed from the first curve's generator.
"""

from __future__ import annotations

from dataclasses import replace

from repro.ec import SECP192R1, SECP224R1, mul_base, mul_point
from repro.ec.scalarmult import _BASE_TABLES, _base_table


def _same_name_different_generator(curve):
    """A curve identical to ``curve`` except its base point is 2G."""
    g2 = mul_point(2, curve.generator)
    return replace(curve, gx=g2.x, gy=g2.y)


class TestBaseTableCacheKey:
    def test_same_name_distinct_params_get_distinct_tables(self):
        original = SECP192R1
        twisted = _same_name_different_generator(original)
        assert twisted.name == original.name
        k = 0x1234567890ABCDEF
        expected_original = mul_point(k, original.generator)
        expected_twisted = mul_point(k, twisted.generator)
        # Regression order matters: populate the cache for the original
        # curve first, then ask for the same-name variant.
        assert mul_base(k, original) == expected_original
        assert mul_base(k, twisted) == expected_twisted
        assert expected_original != expected_twisted

    def test_reverse_population_order(self):
        original = SECP224R1
        twisted = _same_name_different_generator(original)
        k = 0xDEADBEEF
        assert mul_base(k, twisted) == mul_point(k, twisted.generator)
        assert mul_base(k, original) == mul_point(k, original.generator)

    def test_cache_entries_are_per_curve_value(self):
        original = SECP192R1
        twisted = _same_name_different_generator(original)
        _base_table(original)
        _base_table(twisted)
        assert original in _BASE_TABLES
        assert twisted in _BASE_TABLES
        assert _BASE_TABLES[original] is not _BASE_TABLES[twisted]

    def test_equal_curve_values_share_one_entry(self):
        # A structurally identical Curve object must hit the same cache
        # slot (frozen dataclass equality), not grow the cache.
        clone = replace(SECP192R1)
        _base_table(SECP192R1)
        before = len(_BASE_TABLES)
        _base_table(clone)
        assert len(_BASE_TABLES) == before
