"""Tests for the Brainpool (RFC 5639) curves and their use in the stack."""

from __future__ import annotations

import pytest

from repro.ec import (
    BRAINPOOLP256R1,
    BRAINPOOLP384R1,
    curve_by_id,
    curve_id,
    decode_point,
    encode_point,
    mul_base,
    mul_point,
)
from repro.ecqv import minimal_cert_size

CURVES = [BRAINPOOLP256R1, BRAINPOOLP384R1]


class TestParameters:
    @pytest.mark.parametrize("curve", CURVES, ids=lambda c: c.name)
    def test_validate(self, curve):
        curve.validate()

    def test_sizes(self):
        assert BRAINPOOLP256R1.field_bytes == 32
        assert BRAINPOOLP384R1.field_bytes == 48
        assert BRAINPOOLP256R1.bits == 256

    def test_registry_ids(self):
        for curve in CURVES:
            assert curve_by_id(curve_id(curve)) is curve

    @pytest.mark.parametrize("curve", CURVES, ids=lambda c: c.name)
    def test_nonzero_a_unlike_nist(self, curve):
        # Brainpool curves have "random" a (not p-3): exercises the
        # general doubling formula path.
        assert curve.a not in (0, curve.p - 3)


class TestArithmetic:
    @pytest.mark.parametrize("curve", CURVES, ids=lambda c: c.name)
    def test_scalar_mult_consistency(self, curve):
        k = 0xC0FFEE1234567890
        assert mul_base(k, curve) == mul_point(k, curve.generator)

    @pytest.mark.parametrize("curve", CURVES, ids=lambda c: c.name)
    def test_point_compression_roundtrip(self, curve):
        point = mul_base(987654321, curve)
        assert decode_point(curve, encode_point(point, True)) == point

    def test_order_annihilates(self):
        assert mul_point(BRAINPOOLP256R1.n, BRAINPOOLP256R1.generator).is_infinity


class TestFullStack:
    def test_certificate_size(self):
        # Same 101-byte minimal certificate as secp256r1 (32-byte field).
        assert minimal_cert_size(BRAINPOOLP256R1) == 101

    def test_sts_session_on_brainpool(self):
        from repro.protocols import run_protocol
        from repro.testbed import make_testbed

        testbed = make_testbed(
            ("alice", "bob"), curve=BRAINPOOLP256R1, seed=b"bp-sts"
        )
        party_a, party_b = testbed.party_pair("sts", "alice", "bob")
        transcript = run_protocol(party_a, party_b)
        # Identical wire overhead to the paper's secp256r1 configuration.
        assert transcript.total_bytes == 491
        assert party_a.session_key == party_b.session_key

    def test_ecqv_issuance_on_brainpool(self):
        from repro.ecqv import CertificateAuthority, issue_credential, reconstruct_public_key
        from repro.primitives import HmacDrbg
        from repro.testbed import device_id

        ca = CertificateAuthority(
            BRAINPOOLP256R1, device_id("bp-ca"), HmacDrbg(b"bp-ca")
        )
        credential = issue_credential(ca, device_id("dev"), HmacDrbg(b"dev"))
        assert (
            reconstruct_public_key(credential.certificate, ca.public_key)
            == credential.public_key
        )
