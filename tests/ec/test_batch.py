"""Tests for the batched EC hot path: batch inversion + normalization."""

from __future__ import annotations

import random

import pytest

from repro import trace
from repro.ec import (
    SECP192R1,
    SECP256R1,
    batch_inverse,
    mul_base,
    mul_base_batch,
    normalize_batch,
)
from repro.ec.point import JAC_INFINITY, from_jacobian, to_jacobian
from repro.ec.scalarmult import _mul_base_jac
from repro.errors import MathError, NotInvertibleError

C = SECP256R1


class TestBatchInverse:
    def test_matches_single_inversions(self):
        rng = random.Random(2024)
        values = [rng.randrange(1, C.p) for _ in range(64)]
        inverses = batch_inverse(values, C.p)
        assert all(v * i % C.p == 1 for v, i in zip(values, inverses))

    def test_unreduced_and_negative_inputs(self):
        values = [C.p + 3, -5, 2 * C.p + 7]
        inverses = batch_inverse(values, C.p)
        assert all(v * i % C.p == 1 for v, i in zip(values, inverses))

    def test_empty_batch(self):
        assert batch_inverse([], C.p) == []

    def test_single_element(self):
        (inv,) = batch_inverse([12345], C.p)
        assert 12345 * inv % C.p == 1

    def test_zero_element_identified(self):
        with pytest.raises(NotInvertibleError, match="element 2"):
            batch_inverse([3, 5, 0, 7], C.p)

    def test_non_coprime_element_identified(self):
        # Composite modulus: index 1 shares a factor with 91 = 7 * 13.
        with pytest.raises(NotInvertibleError, match="element 1"):
            batch_inverse([2, 7, 3], 91)

    def test_bad_modulus(self):
        with pytest.raises(MathError):
            batch_inverse([1], 1)

    def test_records_single_inv_event(self):
        with trace.trace() as t:
            batch_inverse(list(range(1, 50)), C.p)
        assert t["mod.inv"] == 1


class TestNormalizeBatch:
    def _jacobians(self, count):
        return [_mul_base_jac(k, C) for k in range(2, count + 2)]

    def test_matches_per_point_normalization(self):
        jacs = self._jacobians(32)
        assert normalize_batch(C, jacs) == [
            from_jacobian(C, jac) for jac in jacs
        ]

    def test_infinities_pass_through(self):
        jacs = [JAC_INFINITY, _mul_base_jac(9, C), JAC_INFINITY]
        points = normalize_batch(C, jacs)
        assert points[0].is_infinity and points[2].is_infinity
        assert points[1] == mul_base(9, C)

    def test_all_infinity(self):
        points = normalize_batch(C, [JAC_INFINITY] * 3)
        assert all(p.is_infinity for p in points)

    def test_empty(self):
        assert normalize_batch(C, []) == []

    def test_does_not_trace(self):
        jacs = self._jacobians(8)
        with trace.trace() as t:
            normalize_batch(C, jacs)
        assert t.total() == 0

    def test_unnormalized_z_coordinates(self):
        # A genuinely projective representative (z != 1) must normalise
        # to the same affine point.
        doubled = to_jacobian(mul_base(7, C))
        from repro.ec.point import jac_double

        jac = jac_double(C, doubled)  # z becomes 2*y != 1
        (point,) = normalize_batch(C, [jac])
        assert point == mul_base(14, C)


class TestMulBaseBatch:
    def test_matches_scalar_at_a_time(self):
        rng = random.Random(99)
        scalars = [rng.randrange(1, C.n) for _ in range(16)]
        assert mul_base_batch(scalars, C) == [
            mul_base(k, C) for k in scalars
        ]

    def test_zero_scalars_yield_infinity(self):
        points = mul_base_batch([0, 5, C.n], C)
        assert points[0].is_infinity and points[2].is_infinity
        assert points[1] == mul_base(5, C)

    def test_traces_one_event_per_nonzero_scalar(self):
        with trace.trace() as t:
            mul_base_batch([0, 3, 5, SECP192R1.n, 7], SECP192R1)
        assert t["ec.mul_base"] == 3

    def test_empty(self):
        assert mul_base_batch([], C) == []
