"""Round-trip and malformed-input fuzzing for SEC 1 point encoding.

Seeded ``random`` generates valid encodings (round-trip identity must
hold bit-exactly) and adversarial mutations (decoding must either
succeed or raise the *typed* :class:`~repro.errors.PointDecodingError` —
never an ``AssertionError``/``IndexError``/``ValueError`` leaking from
the arithmetic internals).
"""

from __future__ import annotations

import random

import pytest

from repro.ec import (
    SECP192R1,
    SECP256R1,
    Point,
    decode_point,
    encode_point,
    mul_base,
    point_size,
)
from repro.errors import PointDecodingError, ReproError

CURVES_UNDER_TEST = (SECP192R1, SECP256R1)
_SEED = 0x5EC1


def _random_points(curve, rng, count):
    return [mul_base(rng.randrange(1, curve.n), curve) for _ in range(count)]


@pytest.mark.parametrize("curve", CURVES_UNDER_TEST, ids=lambda c: c.name)
@pytest.mark.parametrize("compressed", (True, False))
def test_round_trip_identity(curve, compressed):
    rng = random.Random(_SEED)
    for point in _random_points(curve, rng, 8):
        blob = encode_point(point, compressed=compressed)
        assert len(blob) == point_size(curve, compressed=compressed)
        decoded = decode_point(curve, blob)
        assert decoded == point
        # Re-encoding is byte-identical (canonical form).
        assert encode_point(decoded, compressed=compressed) == blob


def test_infinity_round_trip():
    for curve in CURVES_UNDER_TEST:
        blob = encode_point(Point.infinity(curve))
        assert blob == b"\x00"
        assert decode_point(curve, blob).is_infinity


@pytest.mark.parametrize("curve", CURVES_UNDER_TEST, ids=lambda c: c.name)
def test_mutated_encodings_raise_typed_errors(curve):
    rng = random.Random(_SEED + 1)
    points = _random_points(curve, rng, 4)
    for point in points:
        for compressed in (True, False):
            blob = bytearray(encode_point(point, compressed=compressed))
            for _ in range(40):
                mutated = bytearray(blob)
                op = rng.randrange(3)
                if op == 0:  # flip a random byte
                    index = rng.randrange(len(mutated))
                    mutated[index] ^= rng.randrange(1, 256)
                elif op == 1:  # truncate
                    mutated = mutated[: rng.randrange(len(mutated))]
                else:  # extend with junk
                    mutated += bytes(
                        rng.randrange(256)
                        for _ in range(rng.randrange(1, 8))
                    )
                try:
                    decoded = decode_point(curve, bytes(mutated))
                except PointDecodingError:
                    continue  # typed rejection: exactly what we want
                except ReproError as exc:  # pragma: no cover - regression
                    raise AssertionError(
                        f"wrong error type {type(exc).__name__}"
                    ) from exc
                # If it decoded, the mutation must still be a valid
                # encoding of *some* on-curve point.
                assert decoded.is_infinity or curve.contains(
                    decoded.x, decoded.y
                )


def test_random_garbage_never_crashes():
    rng = random.Random(_SEED + 2)
    for curve in CURVES_UNDER_TEST:
        for _ in range(200):
            blob = bytes(
                rng.randrange(256) for _ in range(rng.randrange(0, 80))
            )
            try:
                decode_point(curve, blob)
            except PointDecodingError:
                pass  # the only acceptable failure mode


def test_specific_malformations():
    curve = SECP256R1
    g_blob = encode_point(curve.generator, compressed=False)
    cases = [
        b"",  # empty
        b"\x05" + g_blob[1:],  # unknown prefix
        b"\x00\x00",  # infinity with trailing byte
        b"\x04" + g_blob[1:-1],  # truncated uncompressed
        b"\x02" + b"\xff" * curve.field_bytes,  # x >= p
    ]
    for blob in cases:
        with pytest.raises(PointDecodingError):
            decode_point(curve, blob)


def test_compressed_non_residue_rejected():
    curve = SECP256R1
    rng = random.Random(_SEED + 3)
    rejected = 0
    for _ in range(32):
        x = rng.randrange(curve.p)
        blob = b"\x02" + x.to_bytes(curve.field_bytes, "big")
        try:
            point = decode_point(curve, blob)
            assert curve.contains(point.x, point.y)
        except PointDecodingError:
            rejected += 1
    assert rejected > 0  # about half of random x have no curve point
