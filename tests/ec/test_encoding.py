"""Tests for SEC 1 point encoding/decoding."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.ec import (
    SECP192R1,
    SECP256R1,
    Point,
    decode_point,
    encode_point,
    mul_point,
    point_size,
)
from repro.errors import PointDecodingError

C = SECP256R1
G = C.generator

#: SEC 1 encoding of the P-256 base point (well-known constant).
G_UNCOMPRESSED = bytes.fromhex(
    "046b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296"
    "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5"
)
G_COMPRESSED = bytes.fromhex(
    "036b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296"
)


class TestKnownVectors:
    def test_generator_uncompressed(self):
        assert encode_point(G, compressed=False) == G_UNCOMPRESSED

    def test_generator_compressed(self):
        assert encode_point(G, compressed=True) == G_COMPRESSED

    def test_decode_known(self):
        assert decode_point(C, G_UNCOMPRESSED) == G
        assert decode_point(C, G_COMPRESSED) == G


class TestRoundTrips:
    @given(st.integers(1, SECP192R1.n - 1))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_both_forms(self, k):
        p = mul_point(k, SECP192R1.generator)
        for compressed in (True, False):
            assert decode_point(SECP192R1, encode_point(p, compressed)) == p

    def test_infinity_roundtrip(self):
        inf = Point.infinity(C)
        assert encode_point(inf) == b"\x00"
        assert decode_point(C, b"\x00").is_infinity

    def test_even_and_odd_y_parities(self):
        # Find points of both parities and check the prefix drives parity.
        for k in range(1, 12):
            p = mul_point(k, G)
            enc = encode_point(p, compressed=True)
            assert enc[0] == (0x03 if p.y & 1 else 0x02)
            assert decode_point(C, enc) == p


class TestSizes:
    def test_point_size(self):
        assert point_size(C, compressed=True) == 33
        assert point_size(C, compressed=False) == 65
        assert point_size(SECP192R1, compressed=True) == 25

    def test_encoded_lengths(self):
        assert len(encode_point(G, True)) == 33
        assert len(encode_point(G, False)) == 65


class TestDecodingErrors:
    def test_empty(self):
        with pytest.raises(PointDecodingError):
            decode_point(C, b"")

    def test_unknown_prefix(self):
        with pytest.raises(PointDecodingError, match="prefix"):
            decode_point(C, b"\x05" + b"\x00" * 32)

    def test_bad_infinity_length(self):
        with pytest.raises(PointDecodingError):
            decode_point(C, b"\x00\x00")

    def test_wrong_uncompressed_length(self):
        with pytest.raises(PointDecodingError, match="uncompressed"):
            decode_point(C, G_UNCOMPRESSED[:-1])

    def test_wrong_compressed_length(self):
        with pytest.raises(PointDecodingError, match="compressed"):
            decode_point(C, G_COMPRESSED + b"\x00")

    def test_off_curve_uncompressed(self):
        bad = bytearray(G_UNCOMPRESSED)
        bad[-1] ^= 1
        with pytest.raises(PointDecodingError, match="not on curve"):
            decode_point(C, bytes(bad))

    def test_compressed_x_not_on_curve(self):
        # x = 5 has no point on P-256 (rhs is a non-residue).
        candidate = b"\x02" + (5).to_bytes(32, "big")
        try:
            decode_point(C, candidate)
        except PointDecodingError:
            pass  # expected for non-residue x
        # Whichever x we chose, an x >= p must always fail:
        with pytest.raises(PointDecodingError):
            decode_point(C, b"\x02" + C.p.to_bytes(32, "big"))
