"""Tests for the scalar multiplication strategies: agreement + identities."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.ec import (
    SECP192R1,
    SECP256R1,
    Point,
    mul_base,
    mul_double,
    mul_ladder,
    mul_point,
)
from repro.ec.scalarmult import _wnaf
from repro.errors import CurveError
from repro import trace

C = SECP192R1
G = C.generator
scalars = st.integers(1, C.n - 1)


class TestStrategyAgreement:
    @given(scalars)
    @settings(max_examples=25, deadline=None)
    def test_all_strategies_agree(self, k):
        expected = mul_point(k, G)
        assert mul_base(k, C) == expected
        assert mul_ladder(k, G) == expected

    def test_small_scalars_match_repeated_addition(self):
        acc = Point.infinity(C)
        for k in range(1, 20):
            acc = acc + G
            assert mul_point(k, G) == acc
            assert mul_base(k, C) == acc


class TestEdgeScalars:
    def test_zero(self):
        assert mul_point(0, G).is_infinity
        assert mul_base(0, C).is_infinity
        assert mul_ladder(0, G).is_infinity

    def test_one(self):
        assert mul_point(1, G) == G

    def test_order_is_infinity(self):
        assert mul_point(C.n, G).is_infinity
        assert mul_base(C.n, C).is_infinity

    def test_order_minus_one_is_negation(self):
        assert mul_point(C.n - 1, G) == -G

    def test_reduction_mod_order(self):
        assert mul_point(C.n + 5, G) == mul_point(5, G)

    def test_infinity_input(self):
        assert mul_point(7, Point.infinity(C)).is_infinity


class TestAlgebra:
    @given(scalars, scalars)
    @settings(max_examples=20, deadline=None)
    def test_distributivity(self, a, b):
        assert mul_point(a, G) + mul_point(b, G) == mul_point(a + b, G)

    @given(scalars, scalars)
    @settings(max_examples=15, deadline=None)
    def test_composition(self, a, b):
        assert mul_point(a, mul_point(b, G)) == mul_point(a * b % C.n, G)


class TestMulDouble:
    @given(scalars, scalars)
    @settings(max_examples=20, deadline=None)
    def test_matches_separate_mults(self, u, v):
        q = mul_point(7, G)
        expected = mul_point(u, G) + mul_point(v, q)
        assert mul_double(u, G, v, q) == expected

    def test_zero_scalars(self):
        q = mul_point(3, G)
        assert mul_double(0, G, 0, q).is_infinity
        assert mul_double(5, G, 0, q) == mul_point(5, G)
        assert mul_double(0, G, 5, q) == mul_point(5, q)

    def test_cancellation(self):
        # u*G + v*Q with Q = -G and u == v cancels to infinity.
        assert mul_double(9, G, 9, -G).is_infinity

    def test_cross_curve_rejected(self):
        with pytest.raises(CurveError):
            mul_double(1, G, 1, SECP256R1.generator)


class TestWnaf:
    @given(st.integers(1, 2**192))
    @settings(max_examples=50)
    def test_wnaf_reconstructs_scalar(self, k):
        digits = _wnaf(k, 4)
        assert sum(d << i for i, d in enumerate(digits)) == k

    @given(st.integers(1, 2**64))
    @settings(max_examples=50)
    def test_wnaf_digits_odd_or_zero(self, k):
        for d in _wnaf(k, 4):
            assert d == 0 or d % 2 == 1
            assert abs(d) < 8  # < 2^(w-1)

    @given(st.integers(1, 2**64))
    @settings(max_examples=50)
    def test_wnaf_nonadjacency(self, k):
        digits = _wnaf(k, 4)
        for i, d in enumerate(digits):
            if d != 0:
                # width-4 NAF: at least 3 zeros follow a non-zero digit
                assert all(x == 0 for x in digits[i + 1 : i + 4])


class TestTraceEvents:
    def test_event_per_strategy(self):
        with trace.trace() as t:
            mul_point(5, G)
            mul_base(5, C)
            mul_ladder(5, G)
            mul_double(5, G, 3, mul_point(11, G))
        assert t["ec.mul_point"] == 3  # mul_point + ladder + inner mul_point
        assert t["ec.mul_base"] == 1
        assert t["ec.mul_double"] == 1

    def test_zero_scalar_records_nothing(self):
        with trace.trace() as t:
            mul_point(0, G)
        assert t.total("ec.") == 0
