"""Shared wNAF point-table cache: correctness, keying and boundedness.

Mirrors the discipline of ``test_base_table_cache.py``: precomputation
must key on the full curve *parameters* plus the point coordinates, never
on the curve name alone, and must never grow implicitly from ephemeral
call-site points.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.ec import (
    SECP192R1,
    SECP256R1,
    Point,
    clear_point_tables,
    mul_double,
    mul_double_batch,
    mul_point,
    precompute_point,
)
from repro.ec.scalarmult import _POINT_TABLES
from repro.errors import CurveError


@pytest.fixture(autouse=True)
def _isolated_cache():
    clear_point_tables()
    yield
    clear_point_tables()


def _hot_point(curve=SECP256R1):
    return mul_point(0xA5A5A5A5, curve.generator)


class TestCorrectness:
    def test_precomputed_mul_matches_fresh(self):
        point = _hot_point()
        k = 0x1234_5678_9ABC_DEF0
        fresh = mul_point(k, point)
        precompute_point(point)
        assert mul_point(k, point) == fresh

    def test_precomputed_mul_double_matches_fresh(self):
        q = _hot_point()
        expected = mul_double(0xDEAD, SECP256R1.generator, 0xBEEF, q)
        precompute_point(q)
        assert mul_double(0xDEAD, SECP256R1.generator, 0xBEEF, q) == expected

    def test_mul_double_batch_matches_sequential(self):
        q = _hot_point()
        precompute_point(q)
        terms = [
            (3 + i, SECP256R1.generator, 1000 + i, q) for i in range(12)
        ]
        batched = mul_double_batch(terms, SECP256R1)
        sequential = [mul_double(u, p, v, qq) for u, p, v, qq in terms]
        assert batched == sequential

    def test_degenerate_terms_pass_through(self):
        q = _hot_point()
        inf = Point.infinity(SECP256R1)
        results = mul_double_batch(
            [(0, inf, 0, q), (1, q, 0, inf)], SECP256R1
        )
        assert results[0].is_infinity
        assert results[1] == q


class TestCacheKeying:
    def test_cache_keys_on_full_curve_not_name(self):
        original = SECP192R1
        g2 = mul_point(2, original.generator)
        twisted = replace(original, gx=g2.x, gy=g2.y)
        point = mul_point(5, original.generator)
        precompute_point(point)
        clone = Point(twisted, point.x, point.y)
        assert (original, point.x, point.y) in _POINT_TABLES
        assert (twisted, clone.x, clone.y) not in _POINT_TABLES
        # Using the clone must not silently reuse the original's slot.
        mul_point(7, clone)
        assert (twisted, clone.x, clone.y) not in _POINT_TABLES

    def test_generators_cache_automatically(self):
        mul_point(3, SECP256R1.generator)
        key = (SECP256R1, SECP256R1.gx, SECP256R1.gy)
        assert key in _POINT_TABLES

    def test_arbitrary_points_do_not_grow_the_cache(self):
        baseline = len(_POINT_TABLES)
        for i in range(2, 12):
            mul_point(i * 17, _hot_point())
        # Only the generator (used to derive the hot point) may appear.
        assert len(_POINT_TABLES) <= baseline + 1

    def test_precompute_is_idempotent(self):
        point = _hot_point()
        precompute_point(point)
        table = _POINT_TABLES[(SECP256R1, point.x, point.y)]
        precompute_point(point)
        assert _POINT_TABLES[(SECP256R1, point.x, point.y)] is table

    def test_infinity_rejected(self):
        with pytest.raises(CurveError):
            precompute_point(Point.infinity(SECP256R1))

    def test_cache_is_bounded_with_fifo_eviction(self):
        from repro.ec.scalarmult import _POINT_TABLE_LIMIT

        points = [
            mul_point(1000 + i, SECP192R1.generator)
            for i in range(_POINT_TABLE_LIMIT + 5)
        ]
        for point in points:
            precompute_point(point)
        assert len(_POINT_TABLES) <= _POINT_TABLE_LIMIT
        # The oldest registrations were evicted, the newest survive.
        newest = points[-1]
        assert (SECP192R1, newest.x, newest.y) in _POINT_TABLES
        oldest = points[0]
        assert (SECP192R1, oldest.x, oldest.y) not in _POINT_TABLES
        # An evicted point still multiplies correctly (table rebuilt).
        from repro.ec import mul_ladder

        assert mul_point(7, oldest) == mul_ladder(7, oldest)
