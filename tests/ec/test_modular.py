"""Tests for modular arithmetic: egcd, inversion, square roots, primality."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.ec.modular import (
    crt_pair,
    egcd,
    inverse_mod,
    is_probable_prime,
    legendre_symbol,
    sqrt_mod,
)
from repro.errors import MathError, NonResidueError, NotInvertibleError

P256 = 0xFFFFFFFF00000001000000000000000000000000FFFFFFFFFFFFFFFFFFFFFFFF
P192 = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFFFFFFFFFFFF
SMALL_PRIMES = [3, 5, 7, 11, 13, 17, 101, 257, 65537]


class TestEgcd:
    def test_coprime(self):
        g, x, y = egcd(240, 46)
        assert g == 2
        assert 240 * x + 46 * y == 2

    def test_identity_with_zero(self):
        assert egcd(7, 0)[0] == 7
        assert egcd(0, 7)[0] == 7

    @given(st.integers(1, 10**12), st.integers(1, 10**12))
    def test_bezout_identity(self, a, b):
        g, x, y = egcd(a, b)
        assert a * x + b * y == g
        assert a % g == 0 and b % g == 0


class TestInverseMod:
    def test_known_inverse(self):
        assert inverse_mod(3, 7) == 5

    def test_inverse_of_one(self):
        assert inverse_mod(1, P256) == 1

    def test_zero_not_invertible(self):
        with pytest.raises(NotInvertibleError):
            inverse_mod(0, 17)

    def test_noncoprime_not_invertible(self):
        with pytest.raises(NotInvertibleError):
            inverse_mod(6, 9)

    def test_bad_modulus(self):
        with pytest.raises(MathError):
            inverse_mod(1, 1)

    @given(st.integers(1, P256 - 1))
    @settings(max_examples=50)
    def test_inverse_roundtrip_p256(self, a):
        assert (a * inverse_mod(a, P256)) % P256 == 1

    def test_matches_builtin_pow(self):
        for a in (2, 3, 12345, P256 - 2):
            assert inverse_mod(a, P256) == pow(a, -1, P256)


class TestLegendreSymbol:
    def test_zero(self):
        assert legendre_symbol(0, 7) == 0
        assert legendre_symbol(14, 7) == 0

    def test_residues_mod_7(self):
        # squares mod 7: 1, 2, 4
        assert legendre_symbol(1, 7) == 1
        assert legendre_symbol(2, 7) == 1
        assert legendre_symbol(4, 7) == 1
        assert legendre_symbol(3, 7) == -1
        assert legendre_symbol(5, 7) == -1

    @given(st.integers(1, P256 - 1))
    @settings(max_examples=30)
    def test_squares_are_residues(self, a):
        assert legendre_symbol(a * a % P256, P256) == 1


class TestSqrtMod:
    def test_sqrt_of_zero(self):
        assert sqrt_mod(0, 7) == 0

    @pytest.mark.parametrize("p", SMALL_PRIMES)
    def test_all_squares_small_primes(self, p):
        for a in range(1, p):
            square = a * a % p
            root = sqrt_mod(square, p)
            assert root * root % p == square

    def test_non_residue_raises(self):
        with pytest.raises(NonResidueError):
            sqrt_mod(3, 7)

    @given(st.integers(1, P256 - 1))
    @settings(max_examples=30)
    def test_p256_shortcut_path(self, a):
        # p ≡ 3 (mod 4): fast exponent path
        square = a * a % P256
        root = sqrt_mod(square, P256)
        assert root * root % P256 == square

    def test_tonelli_shanks_path(self):
        # p ≡ 1 (mod 4) exercises the general algorithm.
        p = 13  # 13 % 4 == 1
        for a in range(1, p):
            square = a * a % p
            root = sqrt_mod(square, p)
            assert root * root % p == square

    def test_tonelli_shanks_large(self):
        p = 2**255 - 19  # ≡ 5 (mod 8), forces the general path
        a = 123456789
        square = a * a % p
        root = sqrt_mod(square, p)
        assert root * root % p == square


class TestCrt:
    def test_simple(self):
        r, m = crt_pair(2, 3, 3, 5)
        assert m == 15
        assert r % 3 == 2 and r % 5 == 3

    def test_non_coprime_raises(self):
        with pytest.raises(MathError):
            crt_pair(1, 6, 2, 9)

    @given(st.integers(0, 10**6), st.integers(0, 10**6))
    @settings(max_examples=30)
    def test_reconstruction(self, r1, r2):
        m1, m2 = 10007, 10009  # coprime primes
        r, m = crt_pair(r1 % m1, m1, r2 % m2, m2)
        assert r % m1 == r1 % m1
        assert r % m2 == r2 % m2
        assert 0 <= r < m


class TestPrimality:
    @pytest.mark.parametrize("p", SMALL_PRIMES + [P192, P256])
    def test_primes(self, p):
        assert is_probable_prime(p)

    @pytest.mark.parametrize(
        "n", [0, 1, 4, 9, 100, 561, 41041, P256 - 1, P256 + 1]
    )
    def test_composites(self, n):
        assert not is_probable_prime(n)

    def test_carmichael_numbers_rejected(self):
        # Classic Fermat pseudoprimes must not fool Miller-Rabin.
        for carmichael in (561, 1105, 1729, 2465, 2821, 6601):
            assert not is_probable_prime(carmichael)
