"""Property-based agreement tests for every scalar-multiplication strategy.

Seeded ``random`` (no extra dependencies) drives all registered curves
through random scalars, edge scalars and a naive affine double-and-add
oracle that shares no code with the Jacobian strategies.  Any perturbation
of the comb table, the wNAF loop, the ladder or batch normalization breaks
the cross-checks here.
"""

from __future__ import annotations

import random

import pytest

from repro.ec import (
    CURVES,
    Point,
    mul_base,
    mul_base_batch,
    mul_double,
    mul_double_batch,
    mul_ladder,
    mul_point,
)

#: Deterministic scalar source: the whole module draws from one stream.
_SEED = 0xC0FFEE


def naive_double_and_add(k: int, point: Point) -> Point:
    """Affine right-to-left double-and-add: the independent oracle.

    Uses only the affine addition formulas (``Point._add_raw``), none of
    the Jacobian machinery the real strategies run on.
    """
    k %= point.curve.n
    acc = Point.infinity(point.curve)
    addend = point
    while k:
        if k & 1:
            acc = acc._add_raw(addend)
        addend = addend._add_raw(addend)
        k >>= 1
    return acc


def _scalars_for(curve, rng: random.Random, n_random: int) -> list[int]:
    edges = [0, 1, 2, curve.n - 1, curve.n, curve.n + 1]
    return edges + [rng.randrange(1, curve.n) for _ in range(n_random)]


@pytest.mark.parametrize("curve_name", sorted(CURVES))
def test_all_strategies_match_oracle(curve_name):
    curve = CURVES[curve_name]
    g = curve.generator
    rng = random.Random(_SEED ^ int.from_bytes(curve_name.encode(), "big"))
    for k in _scalars_for(curve, rng, n_random=3):
        expected = naive_double_and_add(k, g)
        assert mul_point(k, g) == expected, (curve_name, k)
        assert mul_base(k, curve) == expected, (curve_name, k)
        assert mul_ladder(k, g) == expected, (curve_name, k)


@pytest.mark.parametrize("curve_name", sorted(CURVES))
def test_mul_base_batch_matches_oracle(curve_name):
    curve = CURVES[curve_name]
    g = curve.generator
    rng = random.Random(_SEED ^ int.from_bytes(curve_name.encode(), "big") ^ 1)
    scalars = _scalars_for(curve, rng, n_random=2)
    batch = mul_base_batch(scalars, curve)
    assert len(batch) == len(scalars)
    for k, result in zip(scalars, batch):
        assert result == naive_double_and_add(k, g), (curve_name, k)


@pytest.mark.parametrize("curve_name", sorted(CURVES))
def test_mul_double_matches_oracle(curve_name):
    curve = CURVES[curve_name]
    g = curve.generator
    rng = random.Random(_SEED ^ int.from_bytes(curve_name.encode(), "big") ^ 2)
    q = mul_point(rng.randrange(2, curve.n), g)
    for _ in range(2):
        u = rng.randrange(0, curve.n)
        v = rng.randrange(0, curve.n)
        expected = naive_double_and_add(u, g)._add_raw(
            naive_double_and_add(v, q)
        )
        assert mul_double(u, g, v, q) == expected, (curve_name, u, v)


def test_strategies_agree_on_arbitrary_points():
    # Not just the base point: wNAF and the ladder must agree on random
    # points of every curve (mul_base is base-point-only by design).
    for curve_name in sorted(CURVES):
        curve = CURVES[curve_name]
        rng = random.Random(_SEED ^ int.from_bytes(curve_name.encode(), "big") ^ 3)
        point = mul_base(rng.randrange(2, curve.n), curve)
        k = rng.randrange(1, curve.n)
        assert mul_point(k, point) == mul_ladder(k, point), curve_name


def test_edge_scalars_collapse_consistently():
    for curve in CURVES.values():
        g = curve.generator
        assert mul_point(0, g).is_infinity
        assert mul_base(curve.n, curve).is_infinity
        assert mul_ladder(0, g).is_infinity
        assert mul_point(curve.n + 1, g) == g
        assert mul_base(curve.n - 1, curve) == -g


class TestDegenerateAdditionPaths:
    """P + (−P), doubling degeneracy and infinity chains through the
    public strategies — the branches a formula bug in the mixed-addition
    helpers (unreduced coordinates, wrong degeneracy test) would corrupt
    silently."""

    def test_sum_with_own_negation_is_infinity(self):
        # u*P + v*(−P) with u == v walks both wNAF digit streams into
        # exact cancellation — the P + (−P) branch of the shared chain.
        for curve in CURVES.values():
            g = curve.generator
            assert mul_double(5, g, 5, -g).is_infinity
            assert mul_double(1, g, curve.n - 1, g).is_infinity

    def test_doubling_degeneracy_through_mul_double(self):
        # u*P + v*P must equal (u+v)*P even when the interleaved chain
        # lands on the add-equal-points (doubling) degeneracy.
        for curve in CURVES.values():
            g = curve.generator
            q = mul_base(3, curve)
            expected = naive_double_and_add(7, g)
            assert mul_double(4, g, 1, q) == expected
            assert mul_double(2, q, 1, g) == expected

    def test_infinity_chains(self):
        # Infinity inputs and zero scalars must thread through every
        # strategy (and the batch forms) without touching the formulas.
        for curve in CURVES.values():
            g = curve.generator
            inf = Point.infinity(curve)
            assert mul_point(12345, inf).is_infinity
            assert mul_ladder(777, inf).is_infinity
            assert mul_double(0, g, 0, g).is_infinity
            assert mul_double(9, inf, 0, g).is_infinity
            assert mul_double(3, inf, 4, g) == naive_double_and_add(4, g)
            batch = mul_base_batch([0, curve.n, 1, 0], curve)
            assert [r.is_infinity for r in batch] == [True, True, False, True]
            assert batch[2] == g
            # A sum collapsing to infinity inside a batch must normalize
            # cleanly next to non-degenerate neighbours.
            terms = [(2, g, curve.n - 2, g), (0, inf, 0, inf), (1, g, 1, g)]
            results = mul_double_batch(terms, curve)
            assert results[0].is_infinity
            assert results[1].is_infinity
            assert results[2] == naive_double_and_add(2, g)
