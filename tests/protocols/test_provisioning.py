"""Tests for on-wire certificate provisioning (Fig. 1 stages 1-2)."""

from __future__ import annotations

import pytest

from repro.ec import SECP256R1, mul_base
from repro.ecqv import CertificateAuthority, reconstruct_public_key
from repro.errors import AuthenticationError, ProtocolError
from repro.network import NetworkStack
from repro.primitives import HmacDrbg
from repro.protocols import (
    Message,
    ProvisioningDevice,
    ProvisioningGateway,
    provision_over_network,
)
from repro.protocols.provisioning import REQUEST_SIZE, RESPONSE_SIZE
from repro.testbed import device_id

ENROL_KEY = b"factory-enrolment-key-32-bytes!!"


@pytest.fixture()
def gateway():
    ca = CertificateAuthority(
        SECP256R1, device_id("gateway-ca"), HmacDrbg(b"gw-seed")
    )
    return ProvisioningGateway(
        ca, {bytes(device_id("ecu1")): ENROL_KEY}
    )


@pytest.fixture()
def device():
    return ProvisioningDevice(
        SECP256R1, device_id("ecu1"), ENROL_KEY, HmacDrbg(b"ecu1-seed")
    )


class TestHappyPath:
    def test_in_memory_provisioning(self, device, gateway):
        credential, bus_ms = provision_over_network(device, gateway)
        assert bus_ms == 0.0
        assert mul_base(credential.private_key, SECP256R1) == credential.public_key
        assert (
            reconstruct_public_key(
                credential.certificate, gateway.ca.public_key
            )
            == credential.public_key
        )

    def test_over_can_fd(self, device, gateway):
        credential, bus_ms = provision_over_network(
            device, gateway, NetworkStack()
        )
        assert credential.subject_id == device_id("ecu1")
        assert 0.0 < bus_ms < 5.0  # two small ISO-TP transfers

    def test_wire_sizes(self, device, gateway):
        request = device.make_request()
        assert request.size == REQUEST_SIZE == 81
        response = gateway.handle_request(request)
        assert response.size == RESPONSE_SIZE == 165

    def test_validity_override(self, device, gateway):
        request = device.make_request()
        response = gateway.handle_request(request, validity_seconds=60)
        credential = device.process_response(response, gateway.ca.public_key)
        cert = credential.certificate
        assert cert.valid_to - cert.valid_from == 60


class TestAuthentication:
    def test_unknown_device_rejected(self, gateway):
        stranger = ProvisioningDevice(
            SECP256R1, device_id("mallory"), ENROL_KEY, HmacDrbg(b"m")
        )
        with pytest.raises(AuthenticationError, match="unknown device"):
            gateway.handle_request(stranger.make_request())

    def test_wrong_enrolment_key_rejected(self, gateway):
        impostor = ProvisioningDevice(
            SECP256R1, device_id("ecu1"), b"wrong-key" * 4, HmacDrbg(b"i")
        )
        with pytest.raises(AuthenticationError, match="MAC"):
            gateway.handle_request(impostor.make_request())

    def test_tampered_request_point_rejected(self, device, gateway):
        request = device.make_request()
        fields = tuple(
            (
                name,
                value if name != "ReqPoint" else b"\x02" + b"\x11" * 32,
            )
            for name, value in request.fields
        )
        with pytest.raises(AuthenticationError):
            gateway.handle_request(Message("D", "P1", fields))

    def test_forged_gateway_response_rejected(self, device, gateway):
        request = device.make_request()
        response = gateway.handle_request(request)
        fields = tuple(
            (name, bytes(32) if name == "CaAuthMAC" else value)
            for name, value in response.fields
        )
        with pytest.raises(AuthenticationError, match="CA response"):
            device.process_response(
                Message("CA", "P2", fields), gateway.ca.public_key
            )

    def test_swapped_certificate_caught_by_key_confirmation(
        self, device, gateway
    ):
        # Even with a valid MAC (insider CA bug), a certificate that does
        # not match the device's request fails SEC 4 key confirmation.
        request = device.make_request()
        response = gateway.handle_request(request)
        other_dev = ProvisioningDevice(
            SECP256R1, device_id("ecu1"), ENROL_KEY, HmacDrbg(b"other")
        )
        other_req = other_dev.make_request()
        other_resp = gateway.handle_request(other_req)
        # Device processes the response meant for the other request.
        with pytest.raises(Exception):
            device.process_response(other_resp, gateway.ca.public_key)

    def test_wrong_label_rejected(self, gateway):
        with pytest.raises(ProtocolError, match="expected P1"):
            gateway.handle_request(Message("D", "XX", (("ID", b"x" * 16),)))


class TestEndToEnd:
    def test_provisioned_credential_runs_sts(self, device, gateway):
        """The full paper pipeline: enrol on the wire, then establish."""
        from repro.protocols import SessionContext, make_sts_pair, run_protocol
        from repro.ecqv import issue_credential

        credential, _ = provision_over_network(device, gateway, NetworkStack())
        peer_credential = issue_credential(
            gateway.ca, device_id("ecu2"), HmacDrbg(b"ecu2")
        )
        ctx_a = SessionContext(
            credential=credential,
            ca_public=gateway.ca.public_key,
            rng=HmacDrbg(b"sess-a"),
        )
        ctx_b = SessionContext(
            credential=peer_credential,
            ca_public=gateway.ca.public_key,
            rng=HmacDrbg(b"sess-b"),
        )
        party_a, party_b = make_sts_pair(ctx_a, ctx_b)
        transcript = run_protocol(party_a, party_b)
        assert transcript.party_a.session_key == transcript.party_b.session_key
