"""Tests for the shared wire-format helpers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.ec import SECP192R1, SECP256R1, mul_base, mul_point
from repro.errors import ProtocolError
from repro.protocols.wire import (
    SESSION_KEY_SIZE,
    decode_point_raw,
    decrypt_response,
    derive_session_key,
    enc_key,
    encode_point_raw,
    encrypt_response,
    mac_key,
    point_raw_size,
    response_iv,
)


class TestRawPoints:
    def test_sizes(self):
        assert point_raw_size(SECP256R1) == 64
        assert point_raw_size(SECP192R1) == 48
        assert len(encode_point_raw(SECP256R1.generator)) == 64

    @given(st.integers(1, SECP192R1.n - 1))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip(self, k):
        p = mul_point(k, SECP192R1.generator)
        assert decode_point_raw(SECP192R1, encode_point_raw(p)) == p

    def test_wrong_length_rejected(self):
        with pytest.raises(ProtocolError):
            decode_point_raw(SECP256R1, b"\x00" * 63)

    def test_off_curve_rejected(self):
        raw = bytearray(encode_point_raw(SECP256R1.generator))
        raw[-1] ^= 1
        with pytest.raises(ProtocolError, match="not on the curve"):
            decode_point_raw(SECP256R1, bytes(raw))

    def test_infinity_rejected(self):
        from repro.ec import Point

        with pytest.raises(ProtocolError):
            encode_point_raw(Point.infinity(SECP256R1))


class TestSessionKeyDerivation:
    def test_size_and_split(self):
        ks = derive_session_key(b"premaster", b"salt")
        assert len(ks) == SESSION_KEY_SIZE == 48
        assert enc_key(ks) == ks[:16]
        assert mac_key(ks) == ks[16:]

    def test_salt_separation(self):
        assert derive_session_key(b"pm", b"s1") != derive_session_key(b"pm", b"s2")

    def test_premaster_separation(self):
        assert derive_session_key(b"p1", b"s") != derive_session_key(b"p2", b"s")

    def test_key_split_requires_full_size(self):
        with pytest.raises(ProtocolError):
            enc_key(b"short")
        with pytest.raises(ProtocolError):
            mac_key(b"x" * 47)


class TestResponseEncryption:
    KS = derive_session_key(b"pm", b"salt")

    def test_roundtrip_both_directions(self):
        dsign = bytes(range(64))
        for direction in ("A", "B"):
            resp = encrypt_response(self.KS, direction, dsign)
            assert len(resp) == 64
            assert decrypt_response(self.KS, direction, resp) == dsign

    def test_directions_differ(self):
        dsign = bytes(64)
        assert encrypt_response(self.KS, "A", dsign) != encrypt_response(
            self.KS, "B", dsign
        )

    def test_iv_is_per_direction_and_key(self):
        assert response_iv(self.KS, "A") != response_iv(self.KS, "B")
        other = derive_session_key(b"pm2", b"salt")
        assert response_iv(self.KS, "A") != response_iv(other, "A")

    def test_non_block_sizes_supported(self):
        # secp224r1 signatures are 56 bytes - CTR must preserve length.
        for n in (56, 63, 96):
            resp = encrypt_response(self.KS, "A", b"\x01" * n)
            assert len(resp) == n
            assert decrypt_response(self.KS, "A", resp) == b"\x01" * n

    def test_empty_rejected(self):
        with pytest.raises(ProtocolError):
            encrypt_response(self.KS, "A", b"")

    def test_bad_direction_rejected(self):
        with pytest.raises(ProtocolError):
            response_iv(self.KS, "C")

    def test_wrong_key_garbles(self):
        dsign = bytes(range(64))
        resp = encrypt_response(self.KS, "A", dsign)
        other = derive_session_key(b"wrong", b"salt")
        assert decrypt_response(other, "A", resp) != dsign
