"""Tests for the S-ECDSA static-KD baseline (base and extended)."""

from __future__ import annotations

import pytest

from repro.errors import AuthenticationError, ProtocolError
from repro.protocols import (
    Message,
    ROLE_A,
    SESSION_KEY_SIZE,
    make_s_ecdsa_pair,
    run_protocol,
)


class TestBaseVariant:
    def test_key_agreement(self, transcripts):
        tr = transcripts["s-ecdsa"]
        assert tr.party_a.session_key == tr.party_b.session_key
        assert len(tr.party_a.session_key) == SESSION_KEY_SIZE

    def test_wire_layout(self, transcripts):
        tr = transcripts["s-ecdsa"]
        assert tr.layout() == [
            "A1: ID(16), Nonce(32)",
            "B1: ID(16), Cert(101), Sign(64), Nonce(32)",
            "A2: Cert(101), Sign(64)",
            "B2: ACK(1)",
        ]
        assert tr.total_bytes == 427

    def test_mutual_authentication(self, transcripts):
        tr = transcripts["s-ecdsa"]
        assert tr.party_a.peer_authenticated
        assert tr.party_b.peer_authenticated


class TestStaticKeyProperty:
    def test_underlying_secret_is_static(self, testbed):
        """Session keys differ only through public nonces (SKD, §II-A)."""
        from repro.ecdsa import static_shared_secret
        from repro.protocols.wire import derive_session_key

        keys = []
        for _ in range(2):
            a, b = testbed.party_pair("s-ecdsa", "alice", "bob")
            tr = run_protocol(a, b)
            nonce_a = tr.messages[0].field_value("Nonce")
            nonce_b = tr.messages[1].field_value("Nonce")
            secret = static_shared_secret(
                a.ctx.credential.private_key, b.ctx.credential.public_key
            )
            # The session key is fully determined by static secret + wire
            # nonces - the forward-secrecy gap in one line:
            assert a.session_key == derive_session_key(
                secret, nonce_a + nonce_b
            )
            keys.append(a.session_key)
        assert keys[0] != keys[1]  # nonces still vary per session


class TestExtendedVariant:
    def test_key_agreement_and_layout(self, transcripts):
        tr = transcripts["s-ecdsa-ext"]
        assert tr.party_a.session_key == tr.party_b.session_key
        assert tr.n_steps == 5
        assert tr.total_bytes == 427 + 192
        assert tr.layout()[3] == "B2: ACK(1), Fin(96)"
        assert tr.layout()[4] == "A3: Fin(96)"

    def test_tampered_finished_rejected(self, testbed):
        ctx_a, ctx_b = testbed.context_pair("alice", "bob")
        a, b = make_s_ecdsa_pair(ctx_a, ctx_b, extended=True)
        a1 = a.advance(None)
        b1 = b.advance(a1)
        a2 = a.advance(b1)
        b2 = b.advance(a2)
        fin = bytearray(b2.field_value("Fin"))
        fin[20] ^= 1
        tampered = Message(
            b2.sender, b2.label, (("ACK", b"\x06"), ("Fin", bytes(fin)))
        )
        with pytest.raises(Exception):
            a.advance(tampered)


class TestTampering:
    def test_tampered_signature_rejected(self, testbed):
        a, b = testbed.party_pair("s-ecdsa", "alice", "bob")
        a1 = a.advance(None)
        b1 = b.advance(a1)
        sign = bytearray(b1.field_value("Sign"))
        sign[0] ^= 1
        fields = tuple(
            (n, bytes(sign) if n == "Sign" else v) for n, v in b1.fields
        )
        with pytest.raises(AuthenticationError):
            a.advance(Message(b1.sender, b1.label, fields))

    def test_replayed_nonce_changes_key(self, testbed):
        # Two runs where the adversary replays A's nonce still produce
        # different keys only because B's nonce differs - documenting the
        # limited role of nonces in SKD.
        a1_runs = []
        for _ in range(2):
            a, b = testbed.party_pair("s-ecdsa", "alice", "bob")
            tr = run_protocol(a, b)
            a1_runs.append(tr)
        assert (
            a1_runs[0].party_a.session_key != a1_runs[1].party_a.session_key
        )

    def test_responder_cannot_initiate(self, testbed):
        ctx_a, ctx_b = testbed.context_pair("alice", "bob")
        _, b = make_s_ecdsa_pair(ctx_a, ctx_b)
        with pytest.raises(ProtocolError):
            b.advance(None)

    def test_unexpected_message_rejected(self, testbed):
        a, _ = testbed.party_pair("s-ecdsa", "alice", "bob")
        a.advance(None)
        with pytest.raises(ProtocolError):
            a.advance(Message(ROLE_A, "Z9", (("X", b"x"),)))
