"""Tests for the group-key extension over pairwise STS sessions."""

from __future__ import annotations

import pytest

from repro.errors import AuthenticationError, ProtocolError
from repro.protocols import Message
from repro.protocols.group import (
    GROUP_MSG_SIZE,
    GroupLeader,
    GroupMember,
    form_group,
)
from repro.testbed import make_testbed

NAMES = ("bms", "evcc", "inverter")


@pytest.fixture()
def group():
    testbed = make_testbed(("gateway",) + NAMES, seed=b"group-test")
    leader_ctx = testbed.context("gateway")
    member_ctxs = {
        testbed.credentials[name].subject_id: testbed.context(name)
        for name in NAMES
    }
    leader, members = form_group(leader_ctx, member_ctxs, group_id=7)
    return leader, members


class TestFormation:
    def test_everyone_holds_the_same_key(self, group):
        leader, members = group
        assert leader.group_key is not None
        for member in members.values():
            assert member.group_key == leader.group_key

    def test_member_list(self, group):
        leader, members = group
        assert leader.members == sorted(members)

    def test_message_size(self, group):
        leader, _ = group
        for message in leader.distribute().values():
            assert message.size == GROUP_MSG_SIZE == 88

    def test_epoch_starts_at_one(self, group):
        leader, members = group
        assert leader.epoch == 1
        # distribute() in test_message_size bumped nothing: epoch stable.
        assert all(m.epoch == 1 for m in members.values())


class TestRekeyAndRevocation:
    def test_rekey_changes_key(self, group):
        leader, members = group
        old_key = leader.group_key
        leader.rekey()
        for member_id, message in leader.distribute().items():
            members[member_id].accept(message)
        assert leader.group_key != old_key
        for member in members.values():
            assert member.group_key == leader.group_key

    def test_revoked_member_excluded(self, group):
        leader, members = group
        revoked_id = leader.members[0]
        revoked = members[revoked_id]
        messages = leader.revoke(revoked_id)
        assert revoked_id not in messages
        for member_id, message in messages.items():
            members[member_id].accept(message)
        # The revoked member cannot unwrap the new epoch: it never gets a
        # message, and replaying another member's message fails its MAC.
        other_id = leader.members[0]
        with pytest.raises(AuthenticationError):
            revoked.accept(messages[other_id])
        assert revoked.group_key != leader.group_key

    def test_revoking_unknown_member(self, group):
        leader, _ = group
        with pytest.raises(ProtocolError, match="unknown group member"):
            leader.revoke(b"\x00" * 16)


class TestMemberChecks:
    def test_stale_epoch_rejected(self, group):
        leader, members = group
        member_id = leader.members[0]
        stale = leader.distribute()[member_id]  # epoch 1 again
        with pytest.raises(AuthenticationError, match="stale"):
            members[member_id].accept(stale)

    def test_tampered_wrapped_key_rejected(self, group):
        leader, members = group
        leader.rekey()
        member_id = leader.members[0]
        message = leader.distribute()[member_id]
        fields = tuple(
            (n, bytes(48) if n == "WrappedKey" else v)
            for n, v in message.fields
        )
        with pytest.raises(AuthenticationError, match="MAC"):
            members[member_id].accept(Message("L", "GK1", fields))

    def test_wrong_group_id_rejected(self, group):
        _, members = group
        member = next(iter(members.values()))
        bogus = Message(
            "L",
            "GK1",
            (
                ("GroupId", (99).to_bytes(4, "big")),
                ("Epoch", (2).to_bytes(4, "big")),
                ("WrappedKey", bytes(48)),
                ("Tag", bytes(32)),
            ),
        )
        with pytest.raises(ProtocolError, match="group id"):
            member.accept(bogus)

    def test_wrong_label_rejected(self, group):
        _, members = group
        member = next(iter(members.values()))
        with pytest.raises(ProtocolError, match="GK1"):
            member.accept(Message("L", "XX", (("GroupId", bytes(4)),)))

    def test_cross_member_message_rejected(self, group):
        leader, members = group
        leader.rekey()
        messages = leader.distribute()
        ids = leader.members
        # Message wrapped for member 0 fails member 1's pairwise MAC.
        with pytest.raises(AuthenticationError):
            members[ids[1]].accept(messages[ids[0]])


class TestEmptyGroup:
    def test_distribute_without_members(self):
        testbed = make_testbed(("gateway",), seed=b"empty-group")
        leader = GroupLeader(ctx=testbed.context("gateway"), group_id=1)
        with pytest.raises(ProtocolError, match="no members"):
            leader.distribute()

    def test_adopt_rejects_bad_key(self):
        testbed = make_testbed(("gateway",), seed=b"bad-key")
        leader = GroupLeader(ctx=testbed.context("gateway"), group_id=1)
        with pytest.raises(ProtocolError):
            leader.adopt_pairwise_key(b"m" * 16, b"short")
