"""Expiry semantics of the session-lifetime policy manager.

Pins down the contract the fleet orchestrator builds on: the max-age vs
max-records race, boundary behaviour, generation monotonicity across
re-keys, and that expired key material is really gone from the manager.
"""

from __future__ import annotations

import gc
import weakref

import pytest

from repro.protocols import (
    SessionExpired,
    SessionManager,
    SessionPolicy,
    connect_managers,
)
from repro.testbed import make_testbed


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def make_pair(policy):
    testbed = make_testbed(("alice", "bob"), seed=b"expiry-test")
    clock = FakeClock()
    manager_a = SessionManager(
        lambda: testbed.context("alice"), "A", policy=policy, clock=clock
    )
    manager_b = SessionManager(
        lambda: testbed.context("bob"), "B", policy=policy, clock=clock
    )
    return manager_a, manager_b, clock


class TestAgeVsRecordsRace:
    def test_age_at_boundary_still_valid(self):
        manager_a, manager_b, clock = make_pair(
            SessionPolicy(max_age_seconds=10.0, max_records=1000)
        )
        peer, _ = connect_managers(manager_a, manager_b)
        clock.now = 10.0  # age == max_age: not yet expired (strict >)
        assert manager_a.send(peer, b"x")

    def test_age_past_boundary_expires(self):
        manager_a, manager_b, clock = make_pair(
            SessionPolicy(max_age_seconds=10.0, max_records=1000)
        )
        peer, _ = connect_managers(manager_a, manager_b)
        clock.now = 10.0001
        with pytest.raises(SessionExpired, match="exceeded"):
            manager_a.send(peer, b"x")

    def test_record_budget_boundary(self):
        manager_a, manager_b, _ = make_pair(
            SessionPolicy(max_age_seconds=1e9, max_records=3)
        )
        peer, _ = connect_managers(manager_a, manager_b)
        for _ in range(3):
            manager_a.send(peer, b"x")  # exactly the budget
        with pytest.raises(SessionExpired, match="record budget"):
            manager_a.send(peer, b"x")

    def test_both_exceeded_age_wins_the_race(self):
        # When age and records are simultaneously over budget the age
        # check runs first — pin that so error handling is predictable.
        manager_a, manager_b, clock = make_pair(
            SessionPolicy(max_age_seconds=10.0, max_records=2)
        )
        peer, _ = connect_managers(manager_a, manager_b)
        manager_a.send(peer, b"x")
        manager_a.send(peer, b"x")  # record budget now exhausted
        clock.now = 11.0  # and the key is over-age
        with pytest.raises(SessionExpired, match="exceeded"):
            manager_a.send(peer, b"x")

    def test_receive_counts_against_budget_too(self):
        manager_a, manager_b, _ = make_pair(
            SessionPolicy(max_age_seconds=1e9, max_records=2)
        )
        peer_of_a, peer_of_b = connect_managers(manager_a, manager_b)
        record_1 = manager_a.send(peer_of_a, b"one")
        record_2 = manager_a.send(peer_of_a, b"two")
        assert manager_b.receive(peer_of_b, record_1) == b"one"
        assert manager_b.receive(peer_of_b, record_2) == b"two"
        with pytest.raises(SessionExpired):
            manager_b.receive(peer_of_b, b"\x00" * 21)


class TestGenerationMonotonicity:
    def test_generation_increments_across_rekeys(self):
        manager_a, manager_b, clock = make_pair(
            SessionPolicy(max_age_seconds=5.0, max_records=1000)
        )
        generations = []
        for round_number in range(4):
            peer, _ = connect_managers(manager_a, manager_b)
            generations.append(manager_a.session_for(peer).generation)
            clock.now += 6.0  # expire the current key
            assert manager_a.needs_rekey(peer)
        assert generations == [1, 2, 3, 4]

    def test_generation_survives_drop(self):
        # Even though the expired session object is dropped entirely, the
        # per-peer generation counter must keep increasing — a fresh
        # session must never reuse a generation number.
        manager_a, manager_b, clock = make_pair(
            SessionPolicy(max_age_seconds=5.0, max_records=1000)
        )
        peer, _ = connect_managers(manager_a, manager_b)
        clock.now = 100.0
        with pytest.raises(SessionExpired):
            manager_a.session_for(peer)
        assert peer not in manager_a.sessions  # dropped
        clock.now = 100.5
        connect_managers(manager_a, manager_b)
        assert manager_a.session_for(peer).generation == 2

    def test_established_count_tracks_installs(self):
        manager_a, manager_b, clock = make_pair(
            SessionPolicy(max_age_seconds=5.0, max_records=1000)
        )
        for _ in range(3):
            connect_managers(manager_a, manager_b)
            clock.now += 6.0
        assert manager_a.established_count == 3
        assert manager_b.established_count == 3


class TestKeyMaterialDropped:
    def test_expired_session_removed_from_manager(self):
        manager_a, manager_b, clock = make_pair(
            SessionPolicy(max_age_seconds=5.0, max_records=1000)
        )
        peer, _ = connect_managers(manager_a, manager_b)
        assert peer in manager_a.sessions
        clock.now = 6.0
        with pytest.raises(SessionExpired):
            manager_a.send(peer, b"x")
        assert peer not in manager_a.sessions

    def test_needs_rekey_also_drops(self):
        manager_a, manager_b, clock = make_pair(
            SessionPolicy(max_age_seconds=5.0, max_records=1000)
        )
        peer, _ = connect_managers(manager_a, manager_b)
        clock.now = 6.0
        assert manager_a.needs_rekey(peer)
        assert peer not in manager_a.sessions

    def test_channel_object_becomes_collectable(self):
        # The manager must not keep the expired SecureSession (and its
        # key material) alive through any hidden reference.
        manager_a, manager_b, clock = make_pair(
            SessionPolicy(max_age_seconds=5.0, max_records=1000)
        )
        peer, _ = connect_managers(manager_a, manager_b)
        channel_ref = weakref.ref(manager_a.session_for(peer).channel)
        clock.now = 6.0
        assert manager_a.needs_rekey(peer)
        gc.collect()
        assert channel_ref() is None

    def test_unknown_peer_raises_session_expired(self):
        manager_a, _, _ = make_pair(SessionPolicy())
        with pytest.raises(SessionExpired, match="no session"):
            manager_a.session_for(b"\x00" * 16)
