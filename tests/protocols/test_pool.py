"""Tests for precomputed ephemeral pools and their STS integration."""

from __future__ import annotations

import pytest

from repro.ec import SECP192R1, SECP256R1, mul_base
from repro.errors import ProtocolError
from repro.primitives import HmacDrbg
from repro.protocols import EphemeralPool, make_sts_pair, run_protocol
from repro.protocols.wire import decode_point_raw
from repro.testbed import make_testbed


def make_pool(size=4, curve=SECP256R1, tag=b"pool-test"):
    return EphemeralPool(curve, HmacDrbg(tag, personalization=b"p"), size)


class TestEphemeralPool:
    def test_entries_are_valid_ephemeral_pairs(self):
        pool = make_pool(6)
        assert len(pool) == 6
        for _ in range(6):
            scalar, xg_bytes = pool.take(SECP256R1)
            point = decode_point_raw(SECP256R1, xg_bytes)
            assert point == mul_base(scalar, SECP256R1)
        assert len(pool) == 0

    def test_fifo_order_matches_drbg_stream(self):
        pool = make_pool(3, tag=b"fifo")
        rng = HmacDrbg(b"fifo", personalization=b"p")
        expected = [rng.random_scalar(SECP256R1.n) for _ in range(3)]
        drawn = [pool.take(SECP256R1)[0] for _ in range(3)]
        assert drawn == expected

    def test_exhausted_pool_raises_typed(self):
        pool = make_pool(1)
        pool.take(SECP256R1)
        with pytest.raises(ProtocolError, match="exhausted"):
            pool.take(SECP256R1)

    def test_curve_mismatch_rejected(self):
        pool = make_pool(1)
        with pytest.raises(ProtocolError, match="built for"):
            pool.take(SECP192R1)

    def test_same_name_different_params_rejected(self):
        # A curve that merely shares secp256r1's name must not receive
        # the pool's ephemerals (full-parameter comparison).
        from dataclasses import replace

        from repro.ec import mul_point

        g2 = mul_point(2, SECP256R1.generator)
        alias = replace(SECP256R1, gx=g2.x, gy=g2.y)
        pool = make_pool(1)
        with pytest.raises(ProtocolError, match="incompatible"):
            pool.take(alias)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ProtocolError):
            make_pool(0)
        pool = make_pool(1)
        with pytest.raises(ProtocolError):
            pool.refill(HmacDrbg(b"x"), -1)

    def test_refill_extends(self):
        pool = make_pool(2)
        pool.refill(HmacDrbg(b"more"), 3)
        assert len(pool) == 5
        assert pool.built == 5


class TestPooledSts:
    def test_pooled_session_establishes_and_authenticates(self):
        testbed = make_testbed(("alice", "bob"), seed=b"pool-sts")
        ctx_a = testbed.context("alice")
        ctx_b = testbed.context("bob")
        ctx_a.ephemeral_pool = make_pool(2, tag=b"a-pool")
        ctx_b.ephemeral_pool = make_pool(2, tag=b"b-pool")
        party_a, party_b = make_sts_pair(ctx_a, ctx_b)
        run_protocol(party_a, party_b)
        assert party_a.session_key == party_b.session_key
        assert party_a.peer_authenticated and party_b.peer_authenticated
        assert len(ctx_a.ephemeral_pool) == 1
        assert len(ctx_b.ephemeral_pool) == 1

    def test_pooled_op1_has_no_mul_base_cost(self):
        testbed = make_testbed(("alice", "bob"), seed=b"pool-cost")
        ctx_a = testbed.context("alice")
        ctx_b = testbed.context("bob")
        ctx_a.ephemeral_pool = make_pool(1, tag=b"cost-pool")
        party_a, party_b = make_sts_pair(ctx_a, ctx_b)
        run_protocol(party_a, party_b)
        op1 = party_a.records[0].operations[0]
        assert op1.name == "xg_generation"
        assert op1.cost["ec.mul_base"] == 0  # amortized at pool build
        # The unpooled side still pays for its Op1.
        op1_b = party_b.records[0].operations[0]
        assert op1_b.cost["ec.mul_base"] == 1

    def test_exhausted_pool_falls_back_to_on_demand(self):
        testbed = make_testbed(("alice", "bob"), seed=b"pool-fallback")
        ctx_a = testbed.context("alice")
        ctx_b = testbed.context("bob")
        pool = make_pool(1, tag=b"tiny-pool")
        pool.take(SECP256R1)  # drain it before the run
        ctx_a.ephemeral_pool = pool
        party_a, party_b = make_sts_pair(ctx_a, ctx_b)
        run_protocol(party_a, party_b)
        assert party_a.session_key == party_b.session_key
        op1 = party_a.records[0].operations[0]
        assert op1.cost["ec.mul_base"] == 1  # computed on demand

    def test_pooled_and_unpooled_runs_both_complete(self):
        # Pooling must not change the wire protocol: both flavours run
        # the exact same message flow to completion.
        testbed = make_testbed(("alice", "bob"), seed=b"pool-wire")
        ctx_a = testbed.context("alice")
        ctx_b = testbed.context("bob")
        ctx_a.ephemeral_pool = make_pool(1, tag=b"wire-pool")
        pooled = run_protocol(*make_sts_pair(ctx_a, ctx_b))
        plain = run_protocol(
            *make_sts_pair(
                testbed.context("alice"), testbed.context("bob")
            )
        )
        assert [m.summary() for m in pooled.messages] == [
            m.summary() for m in plain.messages
        ]
