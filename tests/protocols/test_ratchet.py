"""Tests for the in-session key ratchet extension."""

from __future__ import annotations

import pytest

from repro.errors import AuthenticationError, ProtocolError
from repro.protocols import RatchetingSession, next_epoch_key, ratcheting_pair
from repro.protocols.wire import derive_session_key

KS = derive_session_key(b"ratchet-premaster", b"salt")


class TestKeyDerivation:
    def test_epoch_keys_chain_deterministically(self):
        k1 = next_epoch_key(KS, 0)
        k2 = next_epoch_key(k1, 1)
        assert k1 != KS and k2 != k1
        assert next_epoch_key(KS, 0) == k1

    def test_epoch_input_separates(self):
        assert next_epoch_key(KS, 0) != next_epoch_key(KS, 1)

    def test_bad_inputs(self):
        with pytest.raises(ProtocolError):
            next_epoch_key(b"short", 0)
        with pytest.raises(ProtocolError):
            next_epoch_key(KS, -1)


class TestRatchetingSession:
    def test_roundtrip_across_epochs(self):
        a, b = ratcheting_pair(KS, records_per_epoch=3)
        for i in range(10):
            msg = f"record {i}".encode()
            assert b.decrypt(a.encrypt(msg)) == msg
        assert a.epoch == b.epoch == 3  # 10 records / 3 per epoch

    def test_bidirectional_stays_in_sync(self):
        a, b = ratcheting_pair(KS, records_per_epoch=4)
        for i in range(6):
            assert b.decrypt(a.encrypt(b"ping")) == b"ping"
            assert a.decrypt(b.encrypt(b"pong")) == b"pong"
        # Ratcheting is lazy (happens on the operation *after* the quota),
        # so after 12 records both sit at the end of epoch 2.
        assert a.epoch == b.epoch == 2

    def test_keys_rotate(self):
        a, b = ratcheting_pair(KS, records_per_epoch=1)
        keys = {a.current_key}
        for _ in range(4):
            b.decrypt(a.encrypt(b"x"))
            keys.add(a.current_key)
        assert len(keys) >= 4

    def test_replayed_old_epoch_record_rejected(self):
        a, b = ratcheting_pair(KS, records_per_epoch=2)
        stale = a.encrypt(b"early")  # epoch 0
        b.decrypt(stale)
        b.decrypt(a.encrypt(b"second"))  # epoch 0 full on both sides
        b.decrypt(a.encrypt(b"third"))  # both ratchet to epoch 1
        with pytest.raises(AuthenticationError, match="epoch"):
            b.decrypt(stale)  # replay from the discarded epoch

    def test_manual_ratchet_desync_detected(self):
        a, b = ratcheting_pair(KS)
        a.ratchet()
        with pytest.raises(AuthenticationError, match="epoch"):
            b.decrypt(a.encrypt(b"from the future"))

    def test_forward_secrecy_within_session(self):
        # Epoch-0 records cannot be opened with the epoch-2 key: the
        # ratchet is one-way (HKDF), so later-key compromise does not
        # expose earlier records.
        from repro.protocols import open_record_with_key
        from repro.protocols.wire import enc_key, mac_key

        a, _ = ratcheting_pair(KS, records_per_epoch=1)
        epoch0_record = a.encrypt(b"old secret")[RatchetingSession.EPOCH_PREFIX:]
        a.encrypt(b"advance")  # epoch 1
        a.encrypt(b"advance")  # epoch 2
        later_key = a.current_key
        with pytest.raises(AuthenticationError):
            open_record_with_key(
                enc_key(later_key), mac_key(later_key), epoch0_record
            )

    def test_short_record_rejected(self):
        _, b = ratcheting_pair(KS)
        with pytest.raises(AuthenticationError):
            b.decrypt(b"\x00")

    def test_bad_epoch_interval(self):
        with pytest.raises(ProtocolError):
            RatchetingSession(KS, "A", records_per_epoch=0)
