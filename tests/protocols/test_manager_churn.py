"""Interleaving stress: migration / handover / re-key overlap.

The fleet churn paths (live migration, gateway failover, rejoin) all
retire session keys *early* — before the policy budget would.  The
contract the orchestrator builds on, pinned here under deterministic
random interleavings:

* the dead half of a drained session can only ever see
  :class:`SessionExpired` — never a wrong-key MAC failure
  (:class:`AuthenticationError`) and never a silent decrypt;
* generations are strictly monotonic per peer across any churn order, so
  a stale-generation send is structurally impossible through the manager
  (the manager only ever encrypts on the newest installed channel);
* a rejoined gateway's *fresh* manager (it knows no pre-failure keys)
  misses cleanly, forcing a re-key instead of MAC-failing.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import AuthenticationError
from repro.protocols import (
    SessionExpired,
    SessionManager,
    SessionPolicy,
    connect_managers,
)
from repro.testbed import make_testbed


def _manager(testbed, name, role, policy=None):
    return SessionManager(
        lambda: testbed.context(name),
        role,
        policy=policy if policy is not None else SessionPolicy(),
    )


@pytest.fixture()
def mesh():
    """One vehicle, two gateways (the minimal migration topology)."""
    testbed = make_testbed(
        ("veh", "gw0", "gw1"), seed=b"manager-churn"
    )
    vehicle = _manager(testbed, "veh", "A")
    gateways = [_manager(testbed, "gw0", "B"), _manager(testbed, "gw1", "B")]
    return testbed, vehicle, gateways


class TestDrainSemantics:
    def test_drop_then_use_raises_session_expired_not_mac(self, mesh):
        _, vehicle, (gw0, _) = mesh
        gw_id, veh_id = connect_managers(vehicle, gw0)
        record = vehicle.send(gw_id, b"alive")
        assert gw0.receive(veh_id, record) == b"alive"
        # Migration drains both halves through the manager API.
        assert vehicle.drop(gw_id)
        assert gw0.drop(veh_id)
        with pytest.raises(SessionExpired):
            vehicle.send(gw_id, b"stale")
        with pytest.raises(SessionExpired):
            gw0.receive(veh_id, record)

    def test_drop_is_idempotent(self, mesh):
        _, vehicle, (gw0, _) = mesh
        gw_id, _ = connect_managers(vehicle, gw0)
        assert vehicle.drop(gw_id)
        assert not vehicle.drop(gw_id)
        assert not vehicle.drop(b"\x00" * 16)

    def test_migration_pattern_never_mac_fails(self, mesh):
        _, vehicle, (gw0, gw1) = mesh
        gw0_id, veh_id = connect_managers(vehicle, gw0)
        # Live migration: drain at gw0, re-establish at gw1.
        vehicle.drop(gw0_id)
        gw0.drop(veh_id)
        gw1_id, _ = connect_managers(vehicle, gw1)
        record = vehicle.send(gw1_id, b"post-migration")
        assert gw1.receive(veh_id, record) == b"post-migration"
        # The drained gateway half can only miss — it holds no key at
        # all, so a wrong-key MAC failure cannot happen.
        with pytest.raises(SessionExpired):
            gw0.receive(veh_id, record)

    def test_rejoined_gateway_fresh_manager_misses_cleanly(self, mesh):
        testbed, vehicle, (gw0, _) = mesh
        gw0_id, veh_id = connect_managers(vehicle, gw0)
        # The gateway dies and rejoins: a *fresh* manager, same identity.
        rejoined = _manager(testbed, "gw0", "B")
        assert rejoined.needs_rekey(veh_id)
        # The vehicle still holds the pre-failure session and sends on
        # it; the rejoined gateway has no key, so the orchestrator's
        # needs_rekey check fires — and even a raw receive misses with
        # SessionExpired, never a MAC failure on a wrong key.
        stale_record = vehicle.send(gw0_id, b"into the void")
        with pytest.raises(SessionExpired):
            rejoined.receive(veh_id, stale_record)
        # Re-key: both sides drop and re-establish — traffic resumes at
        # the next generation.
        vehicle.drop(gw0_id)
        connect_managers(vehicle, rejoined)
        assert vehicle.session_for(gw0_id).generation == 2
        record = vehicle.send(gw0_id, b"re-keyed")
        assert rejoined.receive(veh_id, record) == b"re-keyed"

    def test_generations_monotonic_across_churn(self, mesh):
        _, vehicle, (gw0, _) = mesh
        gw0_id, veh_id = connect_managers(vehicle, gw0)
        seen = [vehicle.session_for(gw0_id).generation]
        for _ in range(4):
            vehicle.drop(gw0_id)
            gw0.drop(veh_id)
            connect_managers(vehicle, gw0)
            seen.append(vehicle.session_for(gw0_id).generation)
        assert seen == [1, 2, 3, 4, 5]
        assert vehicle.generation_of(gw0_id) == 5
        assert gw0.generation_of(veh_id) == 5


class TestInterleavingStress:
    """Seeded random walks over migrate/handover/re-key/send overlap."""

    @pytest.mark.parametrize("walk_seed", [1, 2, 3])
    def test_random_churn_interleaving_upholds_invariants(
        self, mesh, walk_seed
    ):
        testbed, vehicle, gateways = mesh
        # A tight record budget makes policy expiry overlap the forced
        # churn: re-keys, migrations and handovers interleave.
        policy = SessionPolicy(max_age_seconds=3600.0, max_records=3)
        vehicle = _manager(testbed, "veh", "A", policy)
        gateways = [
            _manager(testbed, "gw0", "B", policy),
            _manager(testbed, "gw1", "B", policy),
        ]
        rng = random.Random(walk_seed)
        live = 0  # index of the currently serving gateway
        gw_ids = {}
        veh_id = None

        def establish(index):
            nonlocal veh_id
            gw_id, veh_id = connect_managers(vehicle, gateways[index])
            gw_ids[index] = gw_id
            return gw_id

        establish(live)
        generations = {0: vehicle.generation_of(gw_ids[0]), 1: 0}
        delivered = 0
        for step in range(60):
            op = rng.choice(
                ["send", "send", "send", "rekey", "migrate", "handover"]
            )
            gw = gateways[live]
            gw_id = gw_ids[live]
            if op == "send":
                # The orchestrator pattern: check the budget on both
                # halves first, re-keying if either side expired.
                if vehicle.needs_rekey(gw_id) or gw.needs_rekey(veh_id):
                    vehicle.drop(gw_id)
                    gw.drop(veh_id)
                    establish(live)
                payload = b"record-%02d" % step
                record = vehicle.send(gw_ids[live], payload)
                assert gw.receive(veh_id, record) == payload
                delivered += 1
            elif op == "rekey":
                vehicle.drop(gw_id)
                gw.drop(veh_id)
                establish(live)
            elif op == "migrate":
                vehicle.drop(gw_id)
                gw.drop(veh_id)
                with pytest.raises(SessionExpired):
                    vehicle.send(gw_id, b"drained")
                live = 1 - live
                establish(live)
            else:  # handover: the gateway loses its half unilaterally
                gw.drop(veh_id)
                if vehicle.needs_rekey(gw_id):
                    # The vehicle's own half was already at budget: the
                    # overlap resolves as a plain expiry (still only ever
                    # SessionExpired).
                    with pytest.raises(SessionExpired):
                        vehicle.send(gw_id, b"orphan")
                else:
                    record = vehicle.send(gw_id, b"orphan")
                    with pytest.raises(SessionExpired):
                        gw.receive(veh_id, record)
                vehicle.drop(gw_id)
                live = 1 - live
                establish(live)
            # Invariant: generations only ever move forward, on every
            # manager, regardless of interleaving.
            for index in (0, 1):
                if index in gw_ids:
                    current = vehicle.generation_of(gw_ids[index])
                    assert current >= generations[index]
                    generations[index] = current
            # Invariant: the live pairing always works end to end.
            if vehicle.needs_rekey(gw_ids[live]) or gateways[
                live
            ].needs_rekey(veh_id):
                vehicle.drop(gw_ids[live])
                gateways[live].drop(veh_id)
                establish(live)
            probe = vehicle.send(gw_ids[live], b"probe")
            assert gateways[live].receive(veh_id, probe) == b"probe"
        assert delivered > 0

    def test_cross_generation_records_cannot_mix(self, mesh):
        """A record from generation N MAC-fails under generation N+1 keys
        — which is exactly why the manager must *drop before re-keying*:
        going through ``drop`` turns that MAC failure into a clean
        :class:`SessionExpired` miss instead."""
        _, vehicle, (gw0, _) = mesh
        gw0_id, veh_id = connect_managers(vehicle, gw0)
        old_record = vehicle.send(gw0_id, b"generation-1")
        # Re-key both sides (drop + fresh establishment).
        vehicle.drop(gw0_id)
        gw0.drop(veh_id)
        connect_managers(vehicle, gw0)
        # Replaying the old-generation record against the new channel is
        # a wrong-key MAC failure...
        with pytest.raises(AuthenticationError):
            gw0.receive(veh_id, old_record)
        # ...which the churn paths never produce, because they drain the
        # dead half entirely: a dropped manager misses instead.
        gw0.drop(veh_id)
        with pytest.raises(SessionExpired):
            gw0.receive(veh_id, old_record)
