"""Round-trip and malformed-input fuzzing for the protocol wire helpers.

Raw point encodings, session-key splitting and the STS response
encryption must round-trip exactly and reject malformed input with the
typed :class:`~repro.errors.ProtocolError` — never ``AssertionError`` or
``IndexError`` escaping from slicing internals.
"""

from __future__ import annotations

import random

import pytest

from repro.ec import SECP192R1, SECP256R1, mul_base
from repro.errors import ProtocolError, ReproError
from repro.protocols.wire import (
    SESSION_KEY_SIZE,
    decode_point_raw,
    decrypt_response,
    derive_session_key,
    enc_key,
    encode_point_raw,
    encrypt_response,
    mac_key,
    point_raw_size,
    response_iv,
)

_SEED = 0x31BE


@pytest.mark.parametrize("curve", (SECP192R1, SECP256R1), ids=lambda c: c.name)
def test_raw_point_round_trip(curve):
    rng = random.Random(_SEED)
    for _ in range(8):
        point = mul_base(rng.randrange(1, curve.n), curve)
        blob = encode_point_raw(point)
        assert len(blob) == point_raw_size(curve)
        assert decode_point_raw(curve, blob) == point


@pytest.mark.parametrize("curve", (SECP192R1, SECP256R1), ids=lambda c: c.name)
def test_raw_point_mutations_rejected_typed(curve):
    rng = random.Random(_SEED + 1)
    point = mul_base(0xABCDEF, curve)
    blob = encode_point_raw(point)
    for _ in range(60):
        mutated = bytearray(blob)
        op = rng.randrange(3)
        if op == 0:
            mutated[rng.randrange(len(mutated))] ^= rng.randrange(1, 256)
        elif op == 1:
            mutated = mutated[: rng.randrange(len(mutated))]
        else:
            mutated += bytes([rng.randrange(256)])
        try:
            decoded = decode_point_raw(curve, bytes(mutated))
        except ProtocolError:
            continue
        except ReproError as exc:  # pragma: no cover - regression guard
            raise AssertionError(
                f"wrong error type {type(exc).__name__}"
            ) from exc
        # Byte-flips that survive decoding must still be on-curve.
        assert curve.contains(decoded.x, decoded.y)


def test_raw_point_garbage_never_crashes():
    rng = random.Random(_SEED + 2)
    for _ in range(200):
        blob = bytes(rng.randrange(256) for _ in range(rng.randrange(0, 80)))
        try:
            decode_point_raw(SECP256R1, blob)
        except ProtocolError:
            pass


def test_infinity_not_encodable():
    from repro.ec import Point

    with pytest.raises(ProtocolError):
        encode_point_raw(Point.infinity(SECP256R1))


class TestSessionKeyMaterial:
    def test_split_round_trip(self):
        session_key = bytes(range(SESSION_KEY_SIZE))
        assert enc_key(session_key) + mac_key(session_key) == session_key

    @pytest.mark.parametrize("length", (0, 1, SESSION_KEY_SIZE - 1, SESSION_KEY_SIZE + 1))
    def test_wrong_length_rejected(self, length):
        with pytest.raises(ProtocolError):
            enc_key(bytes(length))
        with pytest.raises(ProtocolError):
            mac_key(bytes(length))

    def test_derive_session_key_deterministic(self):
        key_a = derive_session_key(b"premaster", b"salt")
        key_b = derive_session_key(b"premaster", b"salt")
        assert key_a == key_b and len(key_a) == SESSION_KEY_SIZE
        assert derive_session_key(b"premaster", b"other") != key_a


class TestResponseEncryption:
    def _key(self, rng):
        return bytes(rng.randrange(256) for _ in range(SESSION_KEY_SIZE))

    def test_round_trip_both_directions(self):
        rng = random.Random(_SEED + 3)
        for direction in ("A", "B"):
            for _ in range(8):
                key = self._key(rng)
                dsign = bytes(
                    rng.randrange(256)
                    for _ in range(rng.randrange(1, 128))
                )
                resp = encrypt_response(key, direction, dsign)
                assert len(resp) == len(dsign)  # CTR is length-preserving
                assert decrypt_response(key, direction, resp) == dsign

    def test_directions_use_distinct_keystreams(self):
        key = bytes(SESSION_KEY_SIZE)
        dsign = b"\x00" * 64
        assert encrypt_response(key, "A", dsign) != encrypt_response(
            key, "B", dsign
        )

    def test_invalid_direction_typed(self):
        key = bytes(SESSION_KEY_SIZE)
        for bad in ("C", "", "AB"):
            with pytest.raises(ProtocolError):
                response_iv(key, bad)

    def test_empty_payloads_rejected(self):
        key = bytes(SESSION_KEY_SIZE)
        with pytest.raises(ProtocolError):
            encrypt_response(key, "A", b"")
        with pytest.raises(ProtocolError):
            decrypt_response(key, "A", b"")
