"""Tests for the STS-ECQV protocol: key agreement, freshness, tampering."""

from __future__ import annotations

import pytest

from repro.errors import AuthenticationError, ProtocolError
from repro.protocols import (
    Message,
    ROLE_A,
    ROLE_B,
    SESSION_KEY_SIZE,
    StsParty,
    make_sts_pair,
    run_protocol,
)
from repro.protocols.sts import SCHEDULE_OPT1, SCHEDULE_OPT2


class TestHappyPath:
    def test_key_agreement(self, transcripts):
        tr = transcripts["sts"]
        assert tr.party_a.session_key == tr.party_b.session_key
        assert len(tr.party_a.session_key) == SESSION_KEY_SIZE

    def test_mutual_authentication(self, transcripts):
        tr = transcripts["sts"]
        assert tr.party_a.peer_authenticated
        assert tr.party_b.peer_authenticated
        assert tr.party_a.peer_id == tr.party_b.ctx.device_id
        assert tr.party_b.peer_id == tr.party_a.ctx.device_id

    def test_wire_layout_matches_table2(self, transcripts):
        tr = transcripts["sts"]
        assert tr.layout() == [
            "A1: ID(16), XG(64)",
            "B1: ID(16), Cert(101), XG(64), Resp(64)",
            "A2: Cert(101), Resp(64)",
            "B2: ACK(1)",
        ]
        assert tr.total_bytes == 491
        assert tr.n_steps == 4

    def test_operation_classes_per_station(self, transcripts):
        tr = transcripts["sts"]
        a_classes = [
            op.op_class for s in tr.party_a.records for op in s.operations
        ]
        b_classes = [
            op.op_class for s in tr.party_b.records for op in s.operations
        ]
        # Initiator: Op1, then Op2 (recon+premaster), Op4, Op3.
        assert a_classes == ["op1", "op2", "op4", "op3"]
        # Responder: Op1, Op2 (premaster), Op3, then Op2 (recon), Op4.
        assert b_classes == ["op1", "op2", "op3", "op2", "op4"]


class TestDynamicKeyDerivation:
    def test_fresh_keys_per_session(self, testbed):
        keys = set()
        for _ in range(4):
            a, b = testbed.party_pair("sts", "alice", "bob")
            run_protocol(a, b)
            keys.add(a.session_key)
        assert len(keys) == 4  # DKD: never the same key (paper §II-A)

    def test_fresh_ephemeral_points_per_session(self, testbed):
        xgs = set()
        for _ in range(3):
            a, b = testbed.party_pair("sts", "alice", "bob")
            tr = run_protocol(a, b)
            xgs.add(tr.messages[0].field_value("XG"))
            xgs.add(tr.messages[1].field_value("XG"))
        assert len(xgs) == 6


class TestSchedules:
    def test_schedule_tags(self, testbed):
        for schedule in (SCHEDULE_OPT1, SCHEDULE_OPT2):
            ctx_a, ctx_b = testbed.context_pair("alice", "bob")
            a, b = make_sts_pair(ctx_a, ctx_b, schedule)
            assert a.schedule == b.schedule == schedule

    def test_wire_identical_across_schedules(self, transcripts):
        # Paper §IV-C: "The sent data is identical to the original protocol".
        layouts = {
            name: transcripts[name].layout()
            for name in ("sts", "sts-opt1", "sts-opt2")
        }
        assert layouts["sts"] == layouts["sts-opt1"] == layouts["sts-opt2"]

    def test_unknown_schedule_rejected(self, testbed):
        ctx = testbed.context("alice")
        with pytest.raises(ProtocolError):
            StsParty(ctx, ROLE_A, schedule="opt3")


def _tamper(message: Message, fieldname: str, flip: int = 0) -> Message:
    fields = []
    for name, value in message.fields:
        if name == fieldname:
            mutated = bytearray(value)
            mutated[flip] ^= 0x01
            value = bytes(mutated)
        fields.append((name, value))
    return Message(message.sender, message.label, tuple(fields))


class TestTampering:
    def _run_with_tamper(self, testbed, label, fieldname):
        a, b = testbed.party_pair("sts", "alice", "bob")
        msg = a.advance(None)
        while msg is not None:
            receiver = b if msg.sender == ROLE_A else a
            if msg.label == label:
                msg = _tamper(msg, fieldname)
            msg = receiver.advance(msg)

    def test_tampered_resp_b_rejected(self, testbed):
        with pytest.raises(AuthenticationError):
            self._run_with_tamper(testbed, "B1", "Resp")

    def test_tampered_resp_a_rejected(self, testbed):
        with pytest.raises(AuthenticationError):
            self._run_with_tamper(testbed, "A2", "Resp")

    def test_tampered_cert_rejected(self, testbed):
        # Flipping any certificate byte moves the reconstructed key,
        # so the signature check must fail (implicit authentication).
        with pytest.raises(Exception):
            self._run_with_tamper(testbed, "B1", "Cert")

    def test_substituted_xg_rejected(self, testbed):
        # Replace Bob's XG with the generator: the signature covers the
        # ephemerals, so A must reject.
        from repro.protocols.wire import encode_point_raw

        a, b = testbed.party_pair("sts", "alice", "bob")
        a1 = a.advance(None)
        b1 = b.advance(a1)
        fields = tuple(
            (n, encode_point_raw(testbed.curve.generator) if n == "XG" else v)
            for n, v in b1.fields
        )
        with pytest.raises((AuthenticationError, ProtocolError)):
            a.advance(Message(b1.sender, b1.label, fields))

    def test_malformed_ack_rejected(self, testbed):
        a, b = testbed.party_pair("sts", "alice", "bob")
        a1 = a.advance(None)
        b1 = b.advance(a1)
        a2 = a.advance(b1)
        b2 = b.advance(a2)
        with pytest.raises(ProtocolError, match="ACK"):
            a.advance(Message(b2.sender, b2.label, (("ACK", b"\x00"),)))


class TestStateMachine:
    def test_responder_cannot_initiate(self, testbed):
        ctx_a, ctx_b = testbed.context_pair("alice", "bob")
        _, responder = make_sts_pair(ctx_a, ctx_b)
        with pytest.raises(ProtocolError):
            responder.advance(None)

    def test_unexpected_label_rejected(self, testbed):
        a, _ = testbed.party_pair("sts", "alice", "bob")
        a.advance(None)
        with pytest.raises(ProtocolError, match="unexpected"):
            a.advance(Message(ROLE_B, "B9", (("X", b"x"),)))

    def test_expired_certificate_rejected(self, testbed):
        ctx_a, ctx_b = testbed.context_pair("alice", "bob")
        ctx_a.now = ctx_b.now = 10**10  # far beyond validity
        a, b = make_sts_pair(ctx_a, ctx_b)
        with pytest.raises(Exception, match="validity"):
            run_protocol(a, b)
