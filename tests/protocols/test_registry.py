"""Tests for the protocol registry and cross-protocol invariants."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.protocols import (
    PROTOCOLS,
    SECURITY_ORDER,
    SESSION_KEY_SIZE,
    TABLE_ORDER,
    get_protocol,
    run_named_protocol,
)


class TestRegistry:
    def test_all_variants_present(self):
        assert set(TABLE_ORDER) == set(PROTOCOLS)
        assert set(SECURITY_ORDER) <= set(PROTOCOLS)

    def test_dynamic_flags(self):
        assert get_protocol("sts").dynamic
        assert get_protocol("sts-opt1").dynamic
        assert not get_protocol("s-ecdsa").dynamic
        assert not get_protocol("scianc").dynamic
        assert not get_protocol("poramb").dynamic

    def test_psk_requirement(self):
        assert get_protocol("poramb").needs_pairwise_psk
        assert not get_protocol("sts").needs_pairwise_psk

    def test_unknown_protocol(self):
        with pytest.raises(ProtocolError, match="unknown protocol"):
            get_protocol("tls13")

    def test_display_names(self):
        assert get_protocol("s-ecdsa-ext").display_name == "S-ECDSA (ext.)"
        assert get_protocol("sts-opt2").display_name == "STS (opt. II)"


class TestCrossProtocolInvariants:
    @pytest.mark.parametrize("name", TABLE_ORDER)
    def test_every_protocol_completes(self, testbed, name):
        ctx_a, ctx_b = testbed.context_pair("alice", "bob", name)
        transcript = run_named_protocol(name, ctx_a, ctx_b)
        assert transcript.party_a.complete
        assert transcript.party_b.complete
        assert len(transcript.party_a.session_key) == SESSION_KEY_SIZE

    @pytest.mark.parametrize("name", TABLE_ORDER)
    def test_session_keys_differ_across_protocols(self, testbed, name):
        ctx_a, ctx_b = testbed.context_pair("alice", "bob", name)
        transcript = run_named_protocol(name, ctx_a, ctx_b)
        other_ctx = testbed.context_pair("alice", "bob", name)
        other = run_named_protocol(name, *other_ctx)
        assert transcript.party_a.session_key != other.party_a.session_key

    def test_only_sts_has_op1_class(self, transcripts):
        for name, transcript in transcripts.items():
            classes = {
                op.op_class
                for s in transcript.all_steps()
                for op in s.operations
            }
            if name.startswith("sts"):
                assert "op1" in classes
            else:
                assert "op1" not in classes
