"""Fault-injection property tests over all protocols.

The robustness invariant every KD protocol must satisfy on a hostile bus:

    For ANY single-byte corruption of ANY message, the run either aborts
    with a library error (never an unhandled crash), or both parties
    complete with EQUAL session keys.

Completing with *different* keys would be a silent key-agreement failure
— the worst possible outcome — and leaking an ``IndexError``/``KeyError``
from malformed input would be a parsing robustness bug.  Hypothesis
drives the corruption position, value and target message.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import ReproError
from repro.protocols import Message, TABLE_ORDER, get_protocol
from repro.testbed import make_testbed

TESTBED = make_testbed(("alice", "bob"), seed=b"fault-injection")


def _corrupt(message: Message, byte_index: int, xor_value: int) -> Message:
    """Flip one byte somewhere in the message payload."""
    flat = bytearray(message.payload)
    flat[byte_index % len(flat)] ^= xor_value
    # Re-split the flat payload into the original field widths.
    fields = []
    offset = 0
    for name, value in message.fields:
        fields.append((name, bytes(flat[offset : offset + len(value)])))
        offset += len(value)
    return Message(message.sender, message.label, tuple(fields))


def _run_with_corruption(
    protocol: str, target_step: int, byte_index: int, xor_value: int
) -> tuple[str, bool]:
    """Run a session corrupting the ``target_step``-th message.

    Returns ``(outcome, keys_equal)`` where outcome is ``"completed"`` or
    ``"aborted"``.
    """
    ctx_a, ctx_b = TESTBED.context_pair("alice", "bob", protocol)
    party_a, party_b = get_protocol(protocol).factory(ctx_a, ctx_b)
    try:
        outgoing = party_a.advance(None)
        step = 0
        current, other = party_b, party_a
        while outgoing is not None:
            if step == target_step:
                outgoing = _corrupt(outgoing, byte_index, xor_value)
            outgoing = current.advance(outgoing)
            current, other = other, current
            step += 1
            if step > 16:
                raise AssertionError("runaway protocol")
    except ReproError:
        return "aborted", False
    if not (party_a.complete and party_b.complete):
        return "aborted", False
    return "completed", party_a.session_key == party_b.session_key


@pytest.mark.parametrize("protocol", TABLE_ORDER)
@given(
    target_step=st.integers(0, 5),
    byte_index=st.integers(0, 500),
    xor_value=st.integers(1, 255),
)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_single_byte_corruption_never_splits_keys(
    protocol, target_step, byte_index, xor_value
):
    outcome, keys_equal = _run_with_corruption(
        protocol, target_step, byte_index, xor_value
    )
    if outcome == "completed":
        assert keys_equal, (
            f"{protocol}: corrupted run completed with mismatched keys"
        )


class TestTargetedCorruption:
    """Deterministic spot checks of security-critical fields."""

    def _outcome(self, protocol, step, index):
        return _run_with_corruption(protocol, step, index, 0x01)

    def test_sts_corrupted_resp_always_aborts(self):
        # B1 = ID(16) Cert(101) XG(64) Resp(64): Resp starts at 181.
        for index in (181, 200, 244):
            outcome, _ = self._outcome("sts", 1, index)
            assert outcome == "aborted"

    def test_sts_corrupted_xg_always_aborts(self):
        # The signature covers the ephemerals, so XG flips must die.
        for index in (117, 150, 180):  # inside B1's XG field
            outcome, _ = self._outcome("sts", 1, index)
            assert outcome == "aborted"

    def test_s_ecdsa_corrupted_signature_aborts(self):
        # B1 = ID(16) Cert(101) Sign(64) Nonce(32): Sign at 117..180.
        for index in (117, 150, 180):
            outcome, _ = self._outcome("s-ecdsa", 1, index)
            assert outcome == "aborted"

    def test_scianc_corrupted_cert_aborts(self):
        # A1 = ID(16) Nonce(32) Cert(101): cert at 48..148.  A flipped
        # cert changes the reconstructed key, so the MACs diverge.
        for index in (48, 100, 148):
            outcome, _ = self._outcome("scianc", 0, index)
            assert outcome == "aborted"

    def test_poramb_corrupted_hello_aborts(self):
        # Hellos feed the phase-1 MACs.
        for index in (0, 16, 31):
            outcome, _ = self._outcome("poramb", 0, index)
            assert outcome == "aborted"
