"""Tests for the authenticated secure-session channel."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AuthenticationError, ProtocolError
from repro.protocols import (
    SecureSession,
    open_record_with_key,
    record_overhead,
    session_pair,
)
from repro.protocols.wire import derive_session_key, enc_key, mac_key

KS = derive_session_key(b"premaster", b"salt")


class TestRoundTrip:
    @given(st.binary(max_size=200))
    @settings(max_examples=30)
    def test_encrypt_decrypt(self, plaintext):
        a, b = session_pair(KS)
        assert b.decrypt(a.encrypt(plaintext)) == plaintext

    def test_bidirectional(self):
        a, b = session_pair(KS)
        assert b.decrypt(a.encrypt(b"ping")) == b"ping"
        assert a.decrypt(b.encrypt(b"pong")) == b"pong"

    def test_many_records_in_order(self):
        a, b = session_pair(KS)
        for i in range(20):
            msg = f"message {i}".encode()
            assert b.decrypt(a.encrypt(msg)) == msg

    def test_record_overhead(self):
        a, _ = session_pair(KS)
        record = a.encrypt(b"x" * 10)
        assert len(record) == 10 + record_overhead()

    def test_distinct_ciphertexts_for_same_plaintext(self):
        a, _ = session_pair(KS)
        r1, r2 = a.encrypt(b"same"), a.encrypt(b"same")
        assert r1 != r2  # sequence number feeds the nonce


class TestRejections:
    def test_tampered_ciphertext(self):
        a, b = session_pair(KS)
        record = bytearray(a.encrypt(b"secret"))
        record[7] ^= 1
        with pytest.raises(AuthenticationError, match="MAC"):
            b.decrypt(bytes(record))

    def test_tampered_tag(self):
        a, b = session_pair(KS)
        record = bytearray(a.encrypt(b"secret"))
        record[-1] ^= 1
        with pytest.raises(AuthenticationError):
            b.decrypt(bytes(record))

    def test_truncated_record(self):
        _, b = session_pair(KS)
        with pytest.raises(AuthenticationError, match="short"):
            b.decrypt(b"tiny")

    def test_replay_rejected(self):
        a, b = session_pair(KS)
        record = a.encrypt(b"once")
        b.decrypt(record)
        with pytest.raises(AuthenticationError, match="out-of-order"):
            b.decrypt(record)

    def test_reordered_rejected(self):
        a, b = session_pair(KS)
        r0, r1 = a.encrypt(b"first"), a.encrypt(b"second")
        with pytest.raises(AuthenticationError, match="out-of-order"):
            b.decrypt(r1)
        b.decrypt(r0)

    def test_reflection_rejected(self):
        a, _ = session_pair(KS)
        record = a.encrypt(b"to-bob")
        with pytest.raises(AuthenticationError, match="reflected"):
            a.decrypt(record)

    def test_wrong_key_rejected(self):
        a, _ = session_pair(KS)
        record = a.encrypt(b"secret")
        other = SecureSession(derive_session_key(b"other", b"salt"), "B")
        with pytest.raises(AuthenticationError):
            other.decrypt(record)

    def test_bad_construction_args(self):
        with pytest.raises(ProtocolError):
            SecureSession(b"short", "A")
        with pytest.raises(ProtocolError):
            SecureSession(KS, "X")


class TestRawOpen:
    def test_open_with_raw_keys(self):
        a, _ = session_pair(KS)
        record = a.encrypt(b"payload")
        plaintext, seq, direction = open_record_with_key(
            enc_key(KS), mac_key(KS), record
        )
        assert plaintext == b"payload"
        assert seq == 0
        assert direction == "A"

    def test_open_rejects_garbage(self):
        with pytest.raises(AuthenticationError):
            open_record_with_key(enc_key(KS), mac_key(KS), b"\x00" * 40)
