"""Tests for the session lifecycle manager (key-lifetime policy)."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.protocols import (
    SessionExpired,
    SessionManager,
    SessionPolicy,
    connect_managers,
)
from repro.testbed import make_testbed


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture()
def managers():
    testbed = make_testbed(("alice", "bob"), seed=b"manager-test")
    clock = FakeClock()
    policy = SessionPolicy(max_age_seconds=100.0, max_records=5)
    manager_a = SessionManager(
        lambda: testbed.context("alice"), "A", policy=policy, clock=clock
    )
    manager_b = SessionManager(
        lambda: testbed.context("bob"), "B", policy=policy, clock=clock
    )
    return manager_a, manager_b, clock


class TestEstablishment:
    def test_connect_installs_both_sides(self, managers):
        manager_a, manager_b, _ = managers
        peer_of_a, peer_of_b = connect_managers(manager_a, manager_b)
        assert manager_a.session_for(peer_of_a).generation == 1
        assert manager_b.session_for(peer_of_b).generation == 1

    def test_traffic_flows(self, managers):
        manager_a, manager_b, _ = managers
        peer_of_a, peer_of_b = connect_managers(manager_a, manager_b)
        record = manager_a.send(peer_of_a, b"hello")
        assert manager_b.receive(peer_of_b, record) == b"hello"

    def test_unknown_peer(self, managers):
        manager_a, _, _ = managers
        with pytest.raises(SessionExpired, match="no session"):
            manager_a.send(b"\x01" * 16, b"data")

    def test_mismatched_configs_rejected(self, managers):
        manager_a, _, clock = managers
        testbed = make_testbed(("bob",), seed=b"other")
        other = SessionManager(
            lambda: testbed.context("bob"), "B", protocol="scianc", clock=clock
        )
        with pytest.raises(ProtocolError, match="different protocols"):
            connect_managers(manager_a, other)

    def test_same_role_rejected(self, managers):
        manager_a, _, clock = managers
        testbed = make_testbed(("bob",), seed=b"same-role")
        other = SessionManager(lambda: testbed.context("bob"), "A", clock=clock)
        with pytest.raises(ProtocolError, match="opposite roles"):
            connect_managers(manager_a, other)

    def test_unknown_protocol_rejected(self, managers):
        _, _, clock = managers
        with pytest.raises(ProtocolError):
            SessionManager(lambda: None, "A", protocol="tls13", clock=clock)


class TestExpiry:
    def test_age_budget(self, managers):
        manager_a, manager_b, clock = managers
        peer_of_a, _ = connect_managers(manager_a, manager_b)
        manager_a.send(peer_of_a, b"fresh")
        clock.now = 101.0
        with pytest.raises(SessionExpired, match="exceeded"):
            manager_a.send(peer_of_a, b"stale")
        # Key material is dropped, not just flagged.
        assert peer_of_a not in manager_a.sessions

    def test_record_budget(self, managers):
        manager_a, manager_b, _ = managers
        peer_of_a, peer_of_b = connect_managers(manager_a, manager_b)
        for i in range(5):
            manager_b.receive(peer_of_b, manager_a.send(peer_of_a, b"x"))
        with pytest.raises(SessionExpired, match="record budget"):
            manager_a.send(peer_of_a, b"one too many")

    def test_needs_rekey(self, managers):
        manager_a, manager_b, clock = managers
        peer_of_a, _ = connect_managers(manager_a, manager_b)
        assert not manager_a.needs_rekey(peer_of_a)
        clock.now = 200.0
        assert manager_a.needs_rekey(peer_of_a)

    def test_reestablishment_bumps_generation(self, managers):
        manager_a, manager_b, clock = managers
        peer_of_a, _ = connect_managers(manager_a, manager_b)
        clock.now = 150.0
        assert manager_a.needs_rekey(peer_of_a)
        connect_managers(manager_a, manager_b)
        session = manager_a.session_for(peer_of_a)
        assert session.generation == 2
        assert manager_a.established_count == 2

    def test_fresh_keys_per_generation(self, managers):
        manager_a, manager_b, _ = managers
        peer_of_a, peer_of_b = connect_managers(manager_a, manager_b)
        first_record = manager_a.send(peer_of_a, b"gen1")
        manager_b.receive(peer_of_b, first_record)
        connect_managers(manager_a, manager_b)
        second_record = manager_a.send(peer_of_a, b"gen1")
        # Same plaintext, fresh session key: records must differ even at
        # identical sequence numbers.
        assert first_record != second_record

    def test_policy_validation(self):
        with pytest.raises(ProtocolError):
            SessionPolicy(max_age_seconds=0)
        with pytest.raises(ProtocolError):
            SessionPolicy(max_records=0)
