"""Tests for the protocol framework: messages, transcripts, driver."""

from __future__ import annotations

import pytest

from repro.protocols import (
    Message,
    ROLE_A,
    ROLE_B,
    run_protocol,
)
from repro.protocols.base import Party, SessionContext
from repro.errors import ProtocolError


class TestMessage:
    def test_field_access(self):
        msg = Message("A", "A1", (("ID", b"x" * 16), ("Nonce", b"n" * 32)))
        assert msg.field_value("ID") == b"x" * 16
        assert msg.has_field("Nonce")
        assert not msg.has_field("Cert")

    def test_missing_field_raises(self):
        msg = Message("A", "A1", (("ID", b"x" * 16),))
        with pytest.raises(ProtocolError, match="no field"):
            msg.field_value("Nope")

    def test_payload_and_size(self):
        msg = Message("A", "A1", (("a", b"123"), ("b", b"45")))
        assert msg.payload == b"12345"
        assert msg.size == 5

    def test_summary(self):
        msg = Message("A", "A1", (("ID", b"x" * 16), ("XG", b"y" * 64)))
        assert msg.summary() == "A1: ID(16), XG(64)"


class _EchoParty(Party):
    """Minimal two-step protocol used to exercise the driver."""

    protocol_name = "echo"

    def _advance(self, incoming):
        if self.role == ROLE_A:
            if incoming is None:
                return Message(self.role, "A1", (("X", b"ping"),))
            self._finish(b"k" * 48, b"peer")
            return None
        self._finish(b"k" * 48, b"peer")
        return Message(self.role, "B1", (("X", incoming.field_value("X")),))


class _NeverFinishes(_EchoParty):
    def _advance(self, incoming):
        return Message(self.role, "loop", (("X", b"x"),))


def _ctx(testbed, name):
    return testbed.context(name)


class TestDriver:
    def test_simple_run(self, testbed):
        a = _EchoParty(_ctx(testbed, "alice"), ROLE_A)
        b = _EchoParty(_ctx(testbed, "bob"), ROLE_B)
        transcript = run_protocol(a, b)
        assert transcript.n_steps == 2
        assert transcript.total_bytes == 8
        assert a.complete and b.complete

    def test_mismatched_protocols_rejected(self, testbed):
        a = _EchoParty(_ctx(testbed, "alice"), ROLE_A)

        class Other(_EchoParty):
            protocol_name = "other"

        b = Other(_ctx(testbed, "bob"), ROLE_B)
        with pytest.raises(ProtocolError, match="different protocols"):
            run_protocol(a, b)

    def test_runaway_protocol_detected(self, testbed):
        a = _NeverFinishes(_ctx(testbed, "alice"), ROLE_A)
        b = _NeverFinishes(_ctx(testbed, "bob"), ROLE_B)
        with pytest.raises(ProtocolError, match="convergence"):
            run_protocol(a, b)

    def test_invalid_role_rejected(self, testbed):
        with pytest.raises(ProtocolError):
            _EchoParty(_ctx(testbed, "alice"), "C")

    def test_advance_after_completion_rejected(self, testbed):
        a = _EchoParty(_ctx(testbed, "alice"), ROLE_A)
        b = _EchoParty(_ctx(testbed, "bob"), ROLE_B)
        run_protocol(a, b)
        with pytest.raises(ProtocolError, match="complete"):
            a.advance(None)


class TestTranscriptViews:
    def test_layout(self, transcripts):
        layout = transcripts["sts"].layout()
        assert layout[0] == "A1: ID(16), XG(64)"
        assert layout[-1] == "B2: ACK(1)"

    def test_all_steps_ordering(self, transcripts):
        steps = transcripts["sts"].all_steps()
        roles = [s.role for s in steps]
        assert roles[0] == ROLE_A
        # Strict alternation for the sequential protocols.
        assert all(r1 != r2 for r1, r2 in zip(roles, roles[1:]))

    def test_operations_carry_traces(self, transcripts):
        for step in transcripts["sts"].all_steps():
            for op in step.operations:
                assert op.cost.total() >= 0
                assert op.op_class in ("op1", "op2", "op3", "op4", "sym")
