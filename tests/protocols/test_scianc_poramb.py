"""Tests for the SCIANC and PORAMB baselines."""

from __future__ import annotations

import pytest

from repro.errors import AuthenticationError, ProtocolError
from repro.protocols import (
    Message,
    SESSION_KEY_SIZE,
    install_pairwise_key,
    make_poramb_pair,
    make_scianc_pair,
    run_protocol,
)


class TestScianc:
    def test_key_agreement(self, transcripts):
        tr = transcripts["scianc"]
        assert tr.party_a.session_key == tr.party_b.session_key
        assert len(tr.party_a.session_key) == SESSION_KEY_SIZE

    def test_wire_layout(self, transcripts):
        tr = transcripts["scianc"]
        assert tr.layout() == [
            "A1: ID(16), Nonce(32), Cert(101)",
            "B1: ID(16), Nonce(32), Cert(101)",
            "A2: AuthMAC(32)",
            "B2: AuthMAC(32)",
        ]
        assert tr.total_bytes == 362

    def test_single_fused_ec_operation_per_device(self, transcripts):
        tr = transcripts["scianc"]
        for party in (tr.party_a, tr.party_b):
            cost = party.total_cost()
            assert cost["ec.mul_double"] == 1
            assert cost["ec.mul_point"] == 0
            assert cost["ec.mul_base"] == 0

    def test_fused_equals_unfused_derivation(self, testbed):
        # The Shamir fusion must compute exactly d * Q_peer.
        from repro.ec import mul_point
        from repro.ecqv import reconstruct_public_key
        from repro.protocols.wire import derive_session_key
        from repro.utils import int_to_bytes

        a, b = testbed.party_pair("scianc", "alice", "bob")
        tr = run_protocol(a, b)
        q_b = reconstruct_public_key(
            b.ctx.credential.certificate, b.ctx.ca_public
        )
        shared = mul_point(a.ctx.credential.private_key, q_b)
        secret = int_to_bytes(shared.x, testbed.curve.field_bytes)
        nonces = tr.messages[0].field_value("Nonce") + tr.messages[
            1
        ].field_value("Nonce")
        assert a.session_key == derive_session_key(secret, nonces)

    def test_tampered_mac_rejected(self, testbed):
        a, b = testbed.party_pair("scianc", "alice", "bob")
        a1 = a.advance(None)
        b1 = b.advance(a1)
        a2 = a.advance(b1)
        bad = Message(a2.sender, a2.label, (("AuthMAC", bytes(32)),))
        with pytest.raises(AuthenticationError):
            b.advance(bad)

    def test_responder_cannot_initiate(self, testbed):
        ctx_a, ctx_b = testbed.context_pair("alice", "bob")
        _, b = make_scianc_pair(ctx_a, ctx_b)
        with pytest.raises(ProtocolError):
            b.advance(None)


class TestPoramb:
    def test_key_agreement(self, transcripts):
        tr = transcripts["poramb"]
        assert tr.party_a.session_key == tr.party_b.session_key

    def test_wire_layout(self, transcripts):
        tr = transcripts["poramb"]
        assert tr.n_steps == 6
        assert tr.total_bytes == 820
        assert tr.layout()[0] == "A1: Hello(32), ID(16)"
        assert tr.layout()[2] == "A2: Cert(101), Nonce(32), MAC(32)"
        assert (
            tr.layout()[4]
            == "A3: Cert(101), ConfNonce(32), AuthTag(32), KeyConfTag(32)"
        )

    def test_two_fused_ec_operations_per_device(self, transcripts):
        tr = transcripts["poramb"]
        for party in (tr.party_a, tr.party_b):
            assert party.total_cost()["ec.mul_double"] == 2

    def test_missing_psk_aborts(self, testbed):
        ctx_a, ctx_b = testbed.context_pair("alice", "bob")
        ctx_a.pre_shared_keys.clear()
        ctx_b.pre_shared_keys.clear()
        a, b = make_poramb_pair(ctx_a, ctx_b)
        with pytest.raises(AuthenticationError, match="pre-shared"):
            run_protocol(a, b)

    def test_wrong_psk_aborts(self, testbed):
        ctx_a, ctx_b = testbed.context_pair("alice", "bob")
        # Overwrite with mismatched keys.
        ctx_a.pre_shared_keys[bytes(ctx_b.device_id)] = b"k1" * 16
        ctx_b.pre_shared_keys[bytes(ctx_a.device_id)] = b"k2" * 16
        a, b = make_poramb_pair(ctx_a, ctx_b)
        with pytest.raises(AuthenticationError, match="MAC"):
            run_protocol(a, b)

    def test_tampered_phase1_mac_rejected(self, testbed):
        a, b = testbed.party_pair("poramb", "alice", "bob")
        a1 = a.advance(None)
        b1 = b.advance(a1)
        a2 = a.advance(b1)
        fields = tuple(
            (n, bytes(32) if n == "MAC" else v) for n, v in a2.fields
        )
        with pytest.raises(AuthenticationError):
            b.advance(Message(a2.sender, a2.label, fields))

    def test_tampered_finish_rejected(self, testbed):
        a, b = testbed.party_pair("poramb", "alice", "bob")
        msgs = [a.advance(None)]
        msgs.append(b.advance(msgs[-1]))  # B1
        msgs.append(a.advance(msgs[-1]))  # A2
        msgs.append(b.advance(msgs[-1]))  # B2
        a3 = a.advance(msgs[-1])
        fields = tuple(
            (n, bytes(32) if n == "KeyConfTag" else v) for n, v in a3.fields
        )
        with pytest.raises(AuthenticationError):
            b.advance(Message(a3.sender, a3.label, fields))

    def test_cert_identity_binding(self, testbed):
        # Hello identity and certificate subject must agree.
        ctx_a, ctx_b = testbed.context_pair("alice", "bob", "poramb")
        ctx_c = testbed.context("carol")
        # Give carol's credential to a party claiming to be alice: B has a
        # PSK for alice, so phase-1 MAC keys match, but the cert subject
        # is carol -> must be rejected.
        ctx_c_psk = dict(ctx_a.pre_shared_keys)
        ctx_c.pre_shared_keys.update(ctx_c_psk)
        mixed_a, b = make_poramb_pair(ctx_a, ctx_b)
        mixed_a.ctx.credential = ctx_c.credential
        with pytest.raises(AuthenticationError):
            run_protocol(mixed_a, b)

    def test_pairwise_key_install_helper(self, testbed):
        ctx_a, ctx_b = testbed.context_pair("alice", "bob")
        install_pairwise_key(ctx_a, ctx_b, b"secret-psk-32-bytes-of-material!")
        assert (
            ctx_a.pre_shared_keys[bytes(ctx_b.device_id)]
            == ctx_b.pre_shared_keys[bytes(ctx_a.device_id)]
        )
