"""Cross-curve protocol matrix: every protocol on every supported curve.

The paper evaluates secp256r1 only; the library must stay correct on the
whole curve registry (including Brainpool).  secp224r1 is the regression
curve for non-block-multiple signature sizes (56 bytes).
"""

from __future__ import annotations

import pytest

from repro.ec import CURVES, get_curve
from repro.protocols import SECURITY_ORDER, run_protocol
from repro.testbed import make_testbed

#: One representative per size/family; secp256k1 covers a=0,
#: brainpool covers random-a, secp224r1 covers odd signature sizes.
CURVE_SAMPLE = ("secp224r1", "secp256k1", "brainpoolP256r1", "secp384r1")


@pytest.mark.parametrize("curve_name", CURVE_SAMPLE)
@pytest.mark.parametrize("protocol", SECURITY_ORDER)
def test_protocol_on_curve(protocol, curve_name):
    testbed = make_testbed(
        ("alice", "bob"),
        curve=get_curve(curve_name),
        seed=b"xcurve|" + curve_name.encode() + b"|" + protocol.encode(),
    )
    party_a, party_b = testbed.party_pair(protocol, "alice", "bob")
    transcript = run_protocol(party_a, party_b)
    assert party_a.session_key == party_b.session_key
    assert party_a.peer_authenticated and party_b.peer_authenticated
    # Certificates on the wire have the curve-appropriate size.
    from repro.ecqv import minimal_cert_size

    curve = get_curve(curve_name)
    for message in transcript.messages:
        if message.has_field("Cert"):
            assert len(message.field_value("Cert")) == minimal_cert_size(curve)


def test_registry_is_fully_covered_by_sample_or_direct():
    """Every registered curve either is in the sample or runs STS here."""
    remaining = set(CURVES) - set(CURVE_SAMPLE)
    for curve_name in sorted(remaining):
        testbed = make_testbed(
            ("alice", "bob"),
            curve=get_curve(curve_name),
            seed=b"xcurve-rest|" + curve_name.encode(),
        )
        party_a, party_b = testbed.party_pair("sts", "alice", "bob")
        run_protocol(party_a, party_b)
        assert party_a.session_key == party_b.session_key
