"""API-quality guards: docstrings and import hygiene across the library.

These are meta-tests keeping the public surface documented and the module
graph clean as the library evolves.
"""

from __future__ import annotations

import ast
import importlib
import pathlib
import pkgutil

import repro

SRC_ROOT = pathlib.Path(repro.__file__).parent


def _public_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if "__main__" in info.name:
            continue
        yield info.name


class TestDocstrings:
    def test_every_module_has_a_docstring(self):
        for name in _public_modules():
            module = importlib.import_module(name)
            assert module.__doc__, f"{name} lacks a module docstring"

    def test_every_public_function_and_class_documented(self):
        # Module-level and class-level definitions only; local closures
        # inside functions are implementation detail.
        undocumented = []

        def check(defs, path):
            for node in defs:
                if not isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue
                if node.name.startswith("_"):
                    continue
                if not ast.get_docstring(node):
                    undocumented.append(f"{path.name}:{node.name}")
                if isinstance(node, ast.ClassDef):
                    check(node.body, path)

        for path in SRC_ROOT.rglob("*.py"):
            check(ast.parse(path.read_text()).body, path)
        assert not undocumented, undocumented

    def test_all_exports_resolve(self):
        for name in _public_modules():
            module = importlib.import_module(name)
            for symbol in getattr(module, "__all__", []):
                assert hasattr(module, symbol), f"{name}.{symbol} missing"


class TestLayering:
    """The substrate layers must not import upwards."""

    FORBIDDEN = {
        "repro.ec": ("repro.protocols", "repro.hardware", "repro.sim",
                     "repro.security", "repro.network", "repro.ecqv"),
        "repro.primitives": ("repro.ec", "repro.protocols", "repro.hardware"),
        "repro.ecqv": ("repro.protocols", "repro.hardware", "repro.sim"),
        "repro.protocols": ("repro.hardware", "repro.sim", "repro.security"),
    }

    def test_no_upward_imports(self):
        violations = []
        for package, banned in self.FORBIDDEN.items():
            pkg_dir = SRC_ROOT / package.split(".")[-1]
            for path in pkg_dir.rglob("*.py"):
                tree = ast.parse(path.read_text())
                for node in ast.walk(tree):
                    if isinstance(node, ast.ImportFrom) and node.module:
                        module = node.module
                        # Resolve relative imports to absolute-ish names.
                        if node.level:
                            module = "repro." + module
                        for target in banned:
                            if module.startswith(target.replace("repro.", "repro.")) and target.split(".")[-1] in module:
                                violations.append(f"{path}: {module}")
        assert not violations, violations


class TestVersioning:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2
