"""Cross-module integration tests: the full paper story in code.

Each test walks a complete scenario through several subsystems —
provisioning → session establishment → encrypted traffic → network
transfer → timing → attack — the way a downstream user of the library
would compose them.
"""

from __future__ import annotations

import pytest

from repro.hardware import DEVICES, S32K144, pair_time_ms
from repro.network import NetworkStack, data_message, decode_kd_payload, kd_message
from repro.protocols import (
    SecureSession,
    TABLE_ORDER,
    run_protocol,
)
from repro.security import record_then_compromise
from repro.sim import simulate_session_timeline
from repro.testbed import make_testbed


class TestFullSessionLifecycle:
    def test_provision_establish_chat(self):
        testbed = make_testbed(("bms", "evcc"), seed=b"lifecycle")
        a, b = testbed.party_pair("sts", "bms", "evcc")
        transcript = run_protocol(a, b)
        chan_a = SecureSession(a.session_key, "A")
        chan_b = SecureSession(b.session_key, "B")
        for i in range(5):
            request = f"cell voltage {i}?".encode()
            record = chan_a.encrypt(request)
            assert chan_b.decrypt(record) == request
            reply = f"3.9{i} V".encode()
            assert chan_a.decrypt(chan_b.encrypt(reply)) == reply
        assert transcript.total_bytes == 491

    def test_kd_messages_survive_the_network_stack(self):
        # Every KD message of every protocol segments and reassembles
        # byte-exactly through the CAN-FD/ISO-TP stack.
        testbed = make_testbed(("alice", "bob"), seed=b"network")
        stack = NetworkStack()
        for name in TABLE_ORDER:
            a, b = testbed.party_pair(name, "alice", "bob")
            transcript = run_protocol(a, b)
            for message in transcript.messages:
                framed = kd_message(1, message.label, message.payload)
                back = decode_kd_payload(stack.loopback(framed.encode()))
                assert back.data == message.payload
                assert back.label == message.label

    def test_encrypted_records_over_the_stack(self):
        testbed = make_testbed(("alice", "bob"), seed=b"records")
        a, b = testbed.party_pair("sts", "alice", "bob")
        run_protocol(a, b)
        chan_a = SecureSession(a.session_key, "A")
        chan_b = SecureSession(b.session_key, "B")
        stack = NetworkStack()
        record = chan_a.encrypt(b"status readout: everything nominal")
        framed = data_message(2, record)
        arrived = decode_kd_payload(stack.loopback(framed.encode()))
        assert chan_b.decrypt(arrived.data) == b"status readout: everything nominal"


class TestPaperHeadlines:
    """The four claims the paper's abstract makes, end to end."""

    @pytest.fixture(scope="class")
    def testbed(self):
        return make_testbed(("alice", "bob"), seed=b"headlines")

    def test_sts_costs_about_20_percent_more(self, testbed):
        a, b = testbed.party_pair("sts", "alice", "bob")
        sts = run_protocol(a, b)
        a, b = testbed.party_pair("s-ecdsa", "alice", "bob")
        base = run_protocol(a, b)
        for device in DEVICES.values():
            ratio = pair_time_ms(sts, device) / pair_time_ms(base, device)
            assert 1.15 < ratio < 1.30

    def test_sts_has_no_additional_communication_overhead(self, testbed):
        a, b = testbed.party_pair("sts", "alice", "bob")
        sts = run_protocol(a, b)
        a, b = testbed.party_pair("s-ecdsa", "alice", "bob")
        base = run_protocol(a, b)
        assert sts.n_steps == base.n_steps
        # "similar transmission sizes": within one signature of each other.
        assert abs(sts.total_bytes - base.total_bytes) <= 64

    def test_only_sts_mitigates_past_data_exposure(self, testbed):
        outcomes = {
            name: record_then_compromise(testbed, name).success
            for name in ("s-ecdsa", "sts", "scianc", "poramb")
        }
        assert outcomes == {
            "s-ecdsa": True,
            "sts": False,
            "scianc": True,
            "poramb": True,
        }

    def test_prototype_timeline_matches_reported_shape(self, testbed):
        a, b = testbed.party_pair("sts", "alice", "bob")
        timeline = simulate_session_timeline(run_protocol(a, b), S32K144)
        assert 3.0 < timeline.total_ms / 1000.0 < 4.0
        assert timeline.transfer_ms < 10.0


class TestDeterminism:
    def test_identical_seeds_identical_sessions(self):
        runs = []
        for _ in range(2):
            testbed = make_testbed(("alice", "bob"), seed=b"determinism")
            a, b = testbed.party_pair("sts", "alice", "bob")
            transcript = run_protocol(a, b)
            runs.append(
                (
                    a.session_key,
                    tuple(m.payload for m in transcript.messages),
                )
            )
        assert runs[0] == runs[1]

    def test_different_seeds_differ(self):
        keys = []
        for seed in (b"seed-one", b"seed-two"):
            testbed = make_testbed(("alice", "bob"), seed=seed)
            a, b = testbed.party_pair("sts", "alice", "bob")
            run_protocol(a, b)
            keys.append(a.session_key)
        assert keys[0] != keys[1]
