"""Benchmark ``fig3``: per-operation STS times on the STM32F767.

Also wall-clock-benchmarks the four §IV-C operations of our *actual*
pure-Python implementation, giving a second, independent view of the
Op1..Op4 cost ordering.
"""

from __future__ import annotations

from repro.ec import SECP256R1, mul_base, mul_point
from repro.ecqv import reconstruct_public_key
from repro.experiments import run_fig3
from repro.primitives import HmacDrbg


def test_fig3_reproduction(benchmark):
    """Regenerate the Fig. 3 series and check its shape."""
    result = benchmark(run_fig3)
    assert result.ordering_holds()
    # Op2 ≈ 2 scalar mults, Op1 ≈ 1.
    assert 1.8 < result.mean_ms("op2") / result.mean_ms("op1") < 2.2
    print("\n" + result.render())


def test_op1_xg_generation(benchmark, testbed):
    """Op1 wall-clock: ephemeral scalar + base-point multiplication."""
    rng = HmacDrbg(b"bench-op1")

    def op1():
        return mul_base(rng.random_scalar(SECP256R1.n), SECP256R1)

    point = benchmark(op1)
    assert not point.is_infinity


def test_op2_pubkey_and_premaster(benchmark, testbed):
    """Op2 wall-clock: implicit reconstruction + premaster derivation."""
    cert = testbed.credentials["bob"].certificate
    ephemeral = 0x1234567890ABCDEF1234567890ABCDEF

    def op2():
        q_b = reconstruct_public_key(cert, testbed.ca.public_key)
        return mul_point(ephemeral, q_b)

    premaster = benchmark(op2)
    assert not premaster.is_infinity
