"""Benchmark ``fig4``: total KD processing time comparison (STM32F767)."""

from __future__ import annotations

from repro.experiments import run_fig4, run_table1


def test_fig4_reproduction(benchmark):
    """Regenerate the Fig. 4 bar series and check the ordering."""
    result = benchmark(lambda: run_fig4(table1=run_table1()))
    assert result.orderings_agree()
    assert result.ordering()[0] == "scianc"
    assert result.ordering()[-1] == "sts"
    print("\n" + result.render())


def test_fig4_crossover_opt2_beats_static(benchmark):
    """The paper's crossover: STS opt. II undercuts static S-ECDSA."""
    result = benchmark(lambda: run_fig4(table1=run_table1()))
    assert result.modelled_ms["sts-opt2"] < result.modelled_ms["s-ecdsa"]
    assert result.modelled_ms["sts"] > result.modelled_ms["s-ecdsa"]
