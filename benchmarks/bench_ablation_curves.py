"""Ablation: curve choice (the paper fixes secp256r1; what does it cost?).

All of the paper's experiments use the 256-bit SEC curve.  This ablation
re-runs the STS protocol on the neighbouring SEC curves and reports how
the security level trades against certificate size (Table II analog) and
run time (operation counts are curve-independent; per-operation cost
scales with field size, wall-clocked here on the actual implementation).
"""

from __future__ import annotations

import pytest

from repro.ec import get_curve
from repro.ecqv import minimal_cert_size
from repro.protocols import run_protocol
from repro.testbed import make_testbed

CURVES = ("secp192r1", "secp224r1", "secp256r1", "secp384r1")


@pytest.mark.parametrize("curve_name", CURVES)
def test_sts_across_curves(benchmark, curve_name):
    """Wall-clock one STS run per curve; checks cert-size scaling."""
    curve = get_curve(curve_name)
    testbed = make_testbed(
        ("alice", "bob"), curve=curve, seed=b"ablation-" + curve_name.encode()
    )

    def run():
        party_a, party_b = testbed.party_pair("sts", "alice", "bob")
        return run_protocol(party_a, party_b)

    transcript = benchmark(run)
    # Certificate field tracks the curve: 68 + field_bytes + 1.
    assert minimal_cert_size(curve) == 69 + curve.field_bytes
    cert_field = transcript.messages[1].field_value("Cert")
    assert len(cert_field) == minimal_cert_size(curve)
    # XG field is the raw point: 2 * field_bytes.
    assert len(transcript.messages[0].field_value("XG")) == 2 * curve.field_bytes


def test_total_bytes_scale_with_curve(benchmark):
    """Table II totals across curves: 491 B at 256 bits, less below."""

    def totals():
        result = {}
        for curve_name in CURVES:
            testbed = make_testbed(
                ("alice", "bob"),
                curve=get_curve(curve_name),
                seed=b"bytes-" + curve_name.encode(),
            )
            party_a, party_b = testbed.party_pair("sts", "alice", "bob")
            result[curve_name] = run_protocol(party_a, party_b).total_bytes
        return result

    sizes = benchmark(totals)
    assert sizes["secp256r1"] == 491  # the paper's configuration
    assert (
        sizes["secp192r1"] < sizes["secp224r1"]
        < sizes["secp256r1"] < sizes["secp384r1"]
    )
