"""Benches for the derived analyses: energy estimates and the capability sweep."""

from __future__ import annotations

from repro.experiments import run_energy, run_sweep


def test_energy_estimates(benchmark):
    """Per-session energy for every protocol × device (PPK2 substitute)."""
    result = benchmark(run_energy)
    assert result.orderings_match_time()
    for device in ("atmega2560", "s32k144", "stm32f767", "rpi4"):
        assert result.sts_premium_mj(device) > 0
    print("\n" + result.render())


def test_capability_sweep(benchmark):
    """STS premium across a continuum of device capabilities."""
    result = benchmark(run_sweep)
    assert result.ratio_is_structural()
    assert result.crossover_ms(100.0) is not None
    print("\n" + result.render())
