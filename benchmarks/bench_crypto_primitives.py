"""Microbenchmarks of the from-scratch crypto substrate.

Not a paper artifact — these give the wall-clock cost of our pure-Python
primitives so readers can relate the cost-model milliseconds (embedded C)
to what actually runs here (laptop Python).  They also guard against
accidental performance regressions in the inner loops every experiment
depends on.
"""

from __future__ import annotations

from repro.ec import SECP256R1, mul_base, mul_double, mul_point
from repro.ecdsa import keypair_from_private, sign, verify
from repro.primitives import Aes, cbc_encrypt, cmac, hkdf, hmac, sha256

K = 0x1234567890ABCDEF1234567890ABCDEF1234567890ABCDEF
KEYPAIR = keypair_from_private(SECP256R1, K)
SIG = sign(SECP256R1, K, b"benchmark message")


def test_scalar_mult_general(benchmark):
    point = mul_base(7, SECP256R1)
    result = benchmark(mul_point, K, point)
    assert not result.is_infinity


def test_scalar_mult_base(benchmark):
    result = benchmark(mul_base, K, SECP256R1)
    assert not result.is_infinity


def test_scalar_mult_double(benchmark):
    q = mul_base(7, SECP256R1)
    result = benchmark(mul_double, K, SECP256R1.generator, K // 2, q)
    assert not result.is_infinity


def test_ecdsa_sign(benchmark):
    sig = benchmark(sign, SECP256R1, K, b"benchmark message")
    assert sig.r > 0


def test_ecdsa_verify(benchmark):
    ok = benchmark(verify, KEYPAIR.public, b"benchmark message", SIG)
    assert ok


def test_sha256_1kib(benchmark):
    data = b"\xab" * 1024
    digest = benchmark(sha256, data)
    assert len(digest) == 32


def test_hmac_sha256(benchmark):
    tag = benchmark(hmac, b"key", b"message" * 16)
    assert len(tag) == 32


def test_aes128_block(benchmark):
    cipher = Aes(b"0123456789abcdef")
    block = benchmark(cipher.encrypt_block, b"\x00" * 16)
    assert len(block) == 16


def test_aes_cbc_64_bytes(benchmark):
    ct = benchmark(cbc_encrypt, b"0123456789abcdef", b"\x00" * 16, b"x" * 64)
    assert len(ct) == 80  # + padding block


def test_cmac_64_bytes(benchmark):
    tag = benchmark(cmac, b"0123456789abcdef", b"y" * 64)
    assert len(tag) == 16


def test_hkdf_48_bytes(benchmark):
    okm = benchmark(hkdf, b"ikm", b"salt", b"info", 48)
    assert len(okm) == 48
