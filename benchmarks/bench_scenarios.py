"""Scenario benchmark: the named workload sweep, adversary included.

Runs every named scenario of :mod:`repro.fleet.scenario` against a fixed
fleet shape and asserts the scenario engine's three contracts:

1. **Determinism** — every scenario cell is run twice in-process and must
   produce bit-identical :class:`~repro.fleet.FleetStats` digests.
2. **Legacy bit-parity** — the ``legacy-uniform`` scenario runs the exact
   ``bench_topology`` single-shard workload through the scenario engine
   and must reproduce the committed PR 2/PR 3 golden digest bit for bit;
   any drift in the degenerate path fails the benchmark before the
   regression gate even runs.
3. **Attacks fail loudly** — every adversarial scenario must report
   nonzero attack attempts, all of them rejected, with **zero**
   successful forgeries.
4. **Backend parity** — a representative subset of the sweep (the legacy
   cell plus every adversarial scenario) is re-run under the
   ``accelerated`` crypto backend (:mod:`repro.backend`) and must
   reproduce the reference digests bit-for-bit while cutting host
   wall-clock.

Run standalone (used by the acceptance check)::

    PYTHONPATH=src python benchmarks/bench_scenarios.py          # full
    PYTHONPATH=src python benchmarks/bench_scenarios.py --quick  # CI smoke

Either mode writes a machine-readable ``BENCH_scenarios.json`` (one
record per scenario: throughput, latency percentiles, per-shard
breakdown, profile counters, injection accounting, digest); ``--json``
overrides the path.  Under pytest the module contributes fast,
small-fleet versions of the same assertions.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_topology import PR2_GOLDEN_DIGESTS, topology_config  # noqa: E402

from repro.fleet import (  # noqa: E402
    FleetConfig,
    FleetOrchestrator,
    NAMED_SCENARIOS,
    get_scenario,
)
from repro.obs import Observer, lint_archive, write_jsonl  # noqa: E402

#: Scenarios whose schedules carry injections (gated by the forgery
#: assertions below); everything else is a pure workload shape.
ADVERSARIAL = ("replay-storm", "stale-cert-flood", "ca-flood")

#: Scenarios re-run under the accelerated backend for the parity cell:
#: the golden-anchored legacy workload plus every adversarial shape
#: (injections exercise the record channel, chain epochs and the CA
#: queue — the full crypto surface).
PARITY_SCENARIOS = ("legacy-uniform",) + ADVERSARIAL


def scenario_config(name: str, quick: bool) -> FleetConfig:
    """The fleet shape one named scenario runs against.

    ``legacy-uniform`` reuses the exact ``bench_topology`` single-shard
    cell (same seed, same budgets) so its digest is comparable against
    the committed golden; every other scenario runs a common
    ``bench-scenarios`` shape with the topology features it needs.
    """
    if name == "legacy-uniform":
        return topology_config(
            50 if quick else 250, 1, 0.0, 50.0 if quick else 200.0
        )
    n_vehicles = 24 if quick else 96
    base = dict(
        n_vehicles=n_vehicles,
        seed=b"bench-scenarios",
        records_per_vehicle=8,
        max_records=4,
        send_interval_ms=25.0,
        arrival_spread_ms=300.0,
        shards=2,
    )
    if name == "diurnal-commute":
        base["shards"] = 1
    elif name == "platoon-convoys":
        base["shards"] = 4
    elif name == "stale-cert-flood":
        base.update(
            records_per_vehicle=12,
            max_records=5,
            arrival_spread_ms=50.0,
            shard_fail_at_ms=4_500.0,
            fail_shard=0,
            shard_rejoin_at_ms=6_000.0,
            migrate_threshold=1,
        )
    elif name == "ca-flood":
        base.update(shards=1, authenticate_requests=True)
    return FleetConfig(**base)


def run_scenario_cell(name: str, quick: bool) -> tuple[dict, float]:
    """Run one named scenario twice; assert determinism and defenses.

    The second run is observed (digest-neutral by contract — the
    determinism assert would catch a violation), its event stream is
    exported to a JSONL archive and run through tracelint: every
    scenario cell must lint clean, and the cell records its digest-tree
    root next to the stats digest.
    """
    scenario = get_scenario(name)
    config = scenario_config(name, quick)
    wall = 0.0
    digests = []
    stats = None
    obs = None
    for attempt in range(2):
        obs = Observer() if attempt == 1 else None
        t0 = time.perf_counter()
        stats = FleetOrchestrator(
            config, scenario=scenario, obs=obs
        ).run().stats
        wall += time.perf_counter() - t0
        digests.append(stats.digest())
    if digests[0] != digests[1]:
        raise AssertionError(
            f"non-deterministic scenario {name!r}:"
            f" {digests[0]} != {digests[1]}"
        )
    with tempfile.TemporaryDirectory() as tmp:
        archive = os.path.join(tmp, f"{name}.jsonl")
        write_jsonl(archive, obs.deterministic_events())
        findings = lint_archive(archive)
    if findings:
        raise AssertionError(
            f"tracelint findings on scenario {name!r}: "
            + "; ".join(f.render() for f in findings)
        )
    tree_root = obs.digest_tree().root_digest
    if name in ADVERSARIAL:
        if stats.attack_attempts <= 0:
            raise AssertionError(
                f"adversarial scenario {name!r} never attacked"
            )
        if stats.attack_rejections <= 0:
            raise AssertionError(
                f"adversarial scenario {name!r} reports no rejections"
            )
        if stats.attack_successes != 0:
            raise AssertionError(
                f"SECURITY: scenario {name!r} saw"
                f" {stats.attack_successes} successful forgeries"
            )
        if stats.attack_rejections != stats.attack_attempts:
            raise AssertionError(
                f"scenario {name!r} lost attempts:"
                f" {stats.attack_rejections} rejected"
                f" != {stats.attack_attempts} attempted"
            )
    record = {
        "scenario": name,
        "shards": config.shards,
        "v2v_fraction": config.v2v_fraction,
        "n_vehicles": config.n_vehicles,
        "churn": config.shard_rejoin_at_ms is not None,
        "host_wall_s": wall,
        "tree_root": tree_root,
        "fleet": stats.as_dict(),
    }
    return record, wall


def run_backend_parity(cells: list[dict], quick: bool) -> dict:
    """Cross-backend parity cell over :data:`PARITY_SCENARIOS`.

    Each selected scenario is re-run once on whichever backend the
    sweep did *not* use (normally ``accelerated``; the opposite in the
    ``REPRO_BACKEND=accelerated`` CI lane) and must reproduce the
    digest its sweep cell recorded; the sweep's own double run prices
    its side of the comparison.  Returns a JSON-ready summary
    (per-scenario walls + aggregate speedup); raises on any digest
    mismatch or on a speedup below 1.5x (the scenario mix is EC-heavier
    than the plain storm, so the bar sits below the
    ``bench_fleet_scale`` one).
    """
    from repro.backend import get_backend

    reference_by_name = {cell["scenario"]: cell for cell in cells}
    sweep_was_reference = get_backend().name == "reference"
    summary = {"scenarios": {}, "speedup": None}
    reference_wall = accelerated_wall = 0.0
    for name in PARITY_SCENARIOS:
        cell = reference_by_name[name]
        # The sweep ran each cell twice (determinism check), so one run
        # on the sweep's own backend costs half the recorded wall.  The
        # cross-backend side — whichever backend the sweep did *not*
        # run — is timed explicitly and digest-checked against the cell.
        other = "accelerated" if sweep_was_reference else "reference"
        other_config = dataclasses.replace(
            scenario_config(name, quick), backend=other
        )
        t0 = time.perf_counter()
        other_stats = FleetOrchestrator(
            other_config, scenario=get_scenario(name)
        ).run().stats
        other_wall = time.perf_counter() - t0
        if other_stats.digest() != cell["fleet"]["digest"]:
            raise AssertionError(
                f"backend parity violated for {name!r} ({other}):"
                f" {other_stats.digest()} != {cell['fleet']['digest']}"
            )
        if sweep_was_reference:
            ref_wall, accel_wall = cell["host_wall_s"] / 2.0, other_wall
        else:
            ref_wall, accel_wall = other_wall, cell["host_wall_s"] / 2.0
        reference_wall += ref_wall
        accelerated_wall += accel_wall
        summary["scenarios"][name] = {
            "reference_wall_s": ref_wall,
            "accelerated_wall_s": accel_wall,
        }
    summary["speedup"] = reference_wall / accelerated_wall
    if summary["speedup"] < 1.5:
        raise AssertionError(
            "accelerated backend failed to beat the reference sweep:"
            f" {summary['speedup']:.2f}x < 1.5x"
        )
    return summary


def main() -> None:
    """Drive the full named-scenario sweep and write the JSON record."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: 24-vehicle fleets (50 for the legacy cell)",
    )
    parser.add_argument(
        "--json",
        default="BENCH_scenarios.json",
        metavar="PATH",
        help="machine-readable output path",
    )
    args = parser.parse_args()
    mode = "quick" if args.quick else "full"
    golden = PR2_GOLDEN_DIGESTS[mode][(1, 0.0)]

    cells = []
    for name in NAMED_SCENARIOS:
        record, wall = run_scenario_cell(name, args.quick)
        fleet = record["fleet"]
        detail = ""
        if name in ADVERSARIAL:
            injections = fleet["scenario"]["injections"]
            detail = "  " + " ".join(
                f"{inj['kind']}:{inj['rejected']}/{inj['attempts']} rejected"
                for inj in injections
            )
        elif fleet["scenario"]["profiles"]:
            detail = "  profiles " + ",".join(
                f"{profile}={count}"
                for profile, count in fleet["scenario"]["profiles"]
            )
        print(
            f"{name:<20s} vehicles={record['n_vehicles']:<4d}"
            f" shards={record['shards']}"
            f" sessions={fleet['sessions_established']:<5d}"
            f" throughput={fleet['throughput_records_per_s']:8.2f} rec/s"
            f" wall={wall:5.1f} s (x2, digest identical){detail}"
        )
        if name == "legacy-uniform" and fleet["digest"] != golden:
            raise AssertionError(
                "legacy-uniform drifted off the PR 3 golden digest:"
                f" {fleet['digest']} != {golden}"
            )
        cells.append(record)

    adversarial_cells = [c for c in cells if c["scenario"] in ADVERSARIAL]
    if len(cells) < 6 or len(adversarial_cells) < 2:
        raise AssertionError(
            f"sweep shrank: {len(cells)} scenarios"
            f" ({len(adversarial_cells)} adversarial)"
        )

    backend_parity = run_backend_parity(cells, args.quick)
    print(
        f"{'accelerated-backend':<20s}"
        f" {len(backend_parity['scenarios'])} scenarios re-run,"
        f" digests bit-identical,"
        f" speedup={backend_parity['speedup']:.2f}x"
    )

    payload = {
        "benchmark": "scenarios",
        "mode": mode,
        "cells": cells,
        "backend_parity": backend_parity,
    }
    with open(args.json, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.json}")
    print("OK")


# -- fast pytest-facing versions of the same assertions ------------------------


def test_small_adversarial_scenario_is_deterministic_and_rejects():
    """Replay storm at pytest scale: identical digests, zero forgeries."""
    from repro.fleet import ReplayStorm, Scenario

    config = FleetConfig(
        n_vehicles=8,
        seed=b"bench-scenarios-pytest",
        records_per_vehicle=6,
        max_records=4,
        arrival_spread_ms=40.0,
        shards=2,
    )
    scenario = Scenario(
        name="pytest-replay",
        injections=(ReplayStorm(at_ms=4_500.0, replays=12),),
    )
    first = FleetOrchestrator(config, scenario=scenario).run().stats
    second = FleetOrchestrator(config, scenario=scenario).run().stats
    assert first.digest() == second.digest()
    assert first.attack_attempts == 12
    assert first.attack_rejections == 12
    assert first.attack_successes == 0


def test_scenario_cell_lints_clean_at_pytest_scale():
    """An adversarial cell runs, lints clean, and records its root.

    ``run_scenario_cell`` raises on any tracelint finding, so this
    covers the observe → export → lint path end to end; the full
    every-scenario sweep lives in the standalone bench.
    """
    record, _ = run_scenario_cell("replay-storm", quick=True)
    assert record["tree_root"]


def test_small_legacy_scenario_matches_plain_run():
    """The legacy scenario is bit-identical to running with no scenario."""
    config = FleetConfig(
        n_vehicles=8,
        seed=b"bench-scenarios-pytest",
        records_per_vehicle=4,
        max_records=4,
        arrival_spread_ms=40.0,
    )
    plain = FleetOrchestrator(config).run().stats
    scenario = FleetOrchestrator(
        config, scenario=get_scenario("legacy-uniform")
    ).run().stats
    assert plain.digest() == scenario.digest()


if __name__ == "__main__":
    main()
