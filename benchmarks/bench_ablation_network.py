"""Ablation: CAN configuration effects on the session transfer share.

The paper fixes CAN-FD at 0.5/2 Mbit/s and reports transfer time as
negligible.  This ablation varies the network: classic-CAN-like rates,
slower/faster data phases, and ISO-TP pacing (STmin), quantifying when
the "transfer is negligible" conclusion starts to erode.
"""

from __future__ import annotations

import pytest

from repro.hardware import S32K144
from repro.network import CanFdBus, CanFdBusConfig, IsoTpChannel, NetworkStack
from repro.protocols import run_protocol
from repro.sim import simulate_session_timeline
from repro.testbed import make_testbed

CONFIGS = {
    "paper (0.5/2M)": CanFdBusConfig(500_000, 2_000_000),
    "classic-ish (125k/125k)": CanFdBusConfig(125_000, 125_000),
    "fast (1M/8M)": CanFdBusConfig(1_000_000, 8_000_000),
}


def _stack(config: CanFdBusConfig, st_min: int = 0) -> NetworkStack:
    bus = CanFdBus(config)
    return NetworkStack(bus=bus, channel=IsoTpChannel(bus=bus, st_min_ms=st_min))


@pytest.mark.parametrize("label", list(CONFIGS))
def test_sts_transfer_share(benchmark, label):
    """Transfer share of an STS session under each bus configuration."""
    testbed = make_testbed(("bms", "evcc"), seed=b"ablation-net")
    party_a, party_b = testbed.party_pair("sts", "bms", "evcc")
    transcript = run_protocol(party_a, party_b)

    def simulate():
        return simulate_session_timeline(
            transcript, S32K144, stack=_stack(CONFIGS[label])
        )

    timeline = benchmark(simulate)
    share = timeline.transfer_ms / timeline.total_ms
    # Even at classic-CAN rates the crypto dominates on an S32K144.
    assert share < 0.02, (label, share)


def test_st_min_pacing_dominates_wire_time(benchmark):
    """ISO-TP STmin (receiver pacing), not the bit rate, is what can make
    transfers non-negligible — a deployment pitfall the paper's setup
    (STmin=0) avoids."""
    testbed = make_testbed(("bms", "evcc"), seed=b"ablation-stmin")
    party_a, party_b = testbed.party_pair("sts", "bms", "evcc")
    transcript = run_protocol(party_a, party_b)

    def simulate():
        return simulate_session_timeline(
            transcript,
            S32K144,
            stack=_stack(CONFIGS["paper (0.5/2M)"], st_min=20),
        )

    paced = benchmark(simulate)
    unpaced = simulate_session_timeline(
        transcript, S32K144, stack=_stack(CONFIGS["paper (0.5/2M)"])
    )
    assert paced.transfer_ms > 10 * unpaced.transfer_ms


def test_fd_vs_classic_rate_frame_counts(benchmark):
    """Frame counts are rate-independent; only durations change."""
    testbed = make_testbed(("bms", "evcc"), seed=b"ablation-frames")
    party_a, party_b = testbed.party_pair("sts", "bms", "evcc")
    transcript = run_protocol(party_a, party_b)

    def frames(config):
        stack = _stack(config)
        for message in transcript.messages:
            stack.kd_transfer(1, message.label, message.payload)
        return stack.bus.frames_sent, stack.bus.busy_ms

    result = benchmark(lambda: {k: frames(c) for k, c in CONFIGS.items()})
    counts = {k: v[0] for k, v in result.items()}
    assert len(set(counts.values())) == 1
    assert result["classic-ish (125k/125k)"][1] > result["fast (1M/8M)"][1]
