"""Benchmark regression gate: diff fresh ``BENCH_*.json`` against baselines.

The fleet/topology benchmarks are deterministic *simulations*: every
latency percentile and throughput figure is a pure function of the seed,
so between code changes the numbers move only when behaviour moves.  The
gate turns the committed artifacts into a contract — instead of absolute
asserts, it diffs a freshly produced ``BENCH_fleet.json`` /
``BENCH_topology.json`` against the committed baselines under
``benchmarks/baselines/`` and **fails on any >25 % regression** of a
simulated p50/p99 latency or throughput metric.  Host wall-clock fields
are ignored (they measure the build machine, not the code).

Cells are matched structurally — ``(benchmark, scenario, policy,
shards, v2v_fraction, n_vehicles, churn)`` — so a quick-mode candidate
is only ever compared
against the quick-mode baseline (the ``mode`` field selects the baseline
file), and unmatched cells are reported, never silently dropped.

Usage::

    # gate the artifacts in the repo root against the committed baselines
    PYTHONPATH=src python benchmarks/regression_gate.py

    # gate freshly produced artifacts (CI: after the smoke jobs)
    PYTHONPATH=src python benchmarks/regression_gate.py --candidate-dir out/

    # explicit one-file comparison
    PYTHONPATH=src python benchmarks/regression_gate.py \
        --baseline old/BENCH_topology.json --candidate new/BENCH_topology.json

Exit status 0 = every matched metric within threshold; 1 = regression,
a baseline cell the candidate stopped producing (lost coverage), or
nothing comparable at all (which would otherwise pass vacuously).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

#: Simulated, deterministic metrics under the gate, as dotted paths into
#: a cell's ``fleet`` mapping, with the direction that counts as better.
GATED_METRICS = (
    ("throughput_records_per_s", "higher"),
    ("sessions_per_s", "higher"),
    ("enrollment_latency.p50_ms", "lower"),
    ("enrollment_latency.p99_ms", "lower"),
    ("establishment_latency.p50_ms", "lower"),
    ("establishment_latency.p99_ms", "lower"),
    ("ca_queue_latency.p50_ms", "lower"),
    ("ca_queue_latency.p99_ms", "lower"),
)

DEFAULT_THRESHOLD = 0.25

#: A lower-is-better metric whose baseline is 0.0 (e.g. no CA queueing
#: at all at 4 shards) has no meaningful ratio; anything past this
#: absolute floor (milliseconds) is flagged as a regression instead of
#: being permanently exempt.
ZERO_BASELINE_FLOOR_MS = 1.0

#: Artifact names the directory mode gates (candidate-dir relative).
#: ``BENCH_topology_churn.json`` is the CI churn-smoke artifact; it only
#: exists in quick mode, so the default (repo-root) invocation reports
#: it as skipped rather than silently ignoring it.
ARTIFACTS = (
    "BENCH_fleet.json",
    "BENCH_topology.json",
    "BENCH_topology_churn.json",
    "BENCH_scenarios.json",
    "BENCH_policies.json",
)


def load_bench(path: str) -> dict:
    """Load one ``BENCH_*.json`` payload."""
    with open(path) as handle:
        return json.load(handle)


def _metric(fleet: dict, dotted: str) -> float:
    value = fleet
    for part in dotted.split("."):
        value = value[part]
    return float(value)


def extract_cells(payload: dict) -> dict:
    """Map a BENCH payload to ``{cell_key: fleet_stats_dict}``.

    Topology payloads contribute one cell per sweep entry; fleet-scale
    payloads contribute a single cell keyed by their workload shape
    plus one cell per scale-sweep point (keyed by worker count in the
    scenario slot — the sweep's deterministic metrics are digest-pinned
    identical across worker counts, so gating each point also re-checks
    that law against the baseline); scenario payloads key each cell by
    its scenario name on top of the structural fields (the pre-scenario
    artifacts carry no ``scenario`` field and key with an empty name,
    so historical baselines keep matching); policy-ablation payloads
    additionally key each cell by its policy bundle (pre-policy
    artifacts carry no ``policy`` field and key with an empty bundle
    the same way).
    """
    benchmark = payload.get("benchmark", "unknown")
    if "cells" in payload:
        cells = {}
        for cell in payload["cells"]:
            key = (
                benchmark,
                cell.get("scenario", ""),
                cell.get("policy", ""),
                cell["shards"],
                cell["v2v_fraction"],
                cell["n_vehicles"],
                bool(cell.get("churn", False)),
            )
            cells[key] = cell["fleet"]
        return cells
    config = payload.get("config", {})
    key = (benchmark, "", "", 1, 0.0, config.get("n_vehicles", 0), False)
    cells = {key: payload["fleet"]}
    for cell in payload.get("scale", {}).get("cells", []):
        if "fleet" not in cell:
            continue  # pre-gate scale cells carried no stats payload
        cells[
            (
                benchmark,
                f"scale-w{cell['workers']}",
                "",
                cell.get("shards", 0),
                0.0,
                cell["vehicles"],
                False,
            )
        ] = cell["fleet"]
    return cells


def extract_tree_roots(payload: dict) -> dict:
    """Map a BENCH payload to ``{cell_key: digest_tree_root}``.

    Uses the same structural keys as :func:`extract_cells`, so the gate
    report records each cell's telemetry digest-tree root next to its
    gated metrics — when a future candidate's stats digest matches but
    its telemetry drifts, ``python -m repro.obs diff`` can start from
    exactly the cell the roots name.  Cells from pre-tree artifacts
    (no ``tree_root`` field) are simply absent.
    """
    benchmark = payload.get("benchmark", "unknown")
    roots = {}
    for cell in payload.get("cells", []):
        if cell.get("tree_root"):
            key = (
                benchmark,
                cell.get("scenario", ""),
                cell.get("policy", ""),
                cell["shards"],
                cell["v2v_fraction"],
                cell["n_vehicles"],
                bool(cell.get("churn", False)),
            )
            roots[key] = cell["tree_root"]
    for cell in payload.get("scale", {}).get("cells", []):
        if cell.get("tree_root"):
            roots[
                (
                    benchmark,
                    f"scale-w{cell['workers']}",
                    "",
                    cell.get("shards", 0),
                    0.0,
                    cell["vehicles"],
                    False,
                )
            ] = cell["tree_root"]
    return roots


def compare_cells(
    baseline: dict,
    candidate: dict,
    threshold: float = DEFAULT_THRESHOLD,
) -> dict:
    """Diff two ``extract_cells`` mappings.

    Returns a report dict with ``matched`` cell count, ``regressions``
    (list of dicts), ``improvements`` (informational), and the keys each
    side had that the other did not (never silently dropped).
    """
    regressions = []
    improvements = []
    matched = 0
    shared = sorted(set(baseline) & set(candidate), key=repr)
    for key in shared:
        matched += 1
        base_fleet = baseline[key]
        cand_fleet = candidate[key]
        for dotted, direction in GATED_METRICS:
            base = _metric(base_fleet, dotted)
            cand = _metric(cand_fleet, dotted)
            if base <= 0.0:
                # No ratio to gate on — but a zero-latency baseline must
                # not become a permanent exemption: appearing latency
                # past the absolute floor is a regression.
                if direction == "lower" and cand > ZERO_BASELINE_FLOOR_MS:
                    regressions.append(
                        {
                            "cell": key,
                            "metric": dotted,
                            "direction": direction,
                            "baseline": base,
                            "candidate": cand,
                            "change": float("inf"),
                        }
                    )
                continue
            change = (cand - base) / base
            regressed = (
                change > threshold
                if direction == "lower"
                else change < -threshold
            )
            entry = {
                "cell": key,
                "metric": dotted,
                "direction": direction,
                "baseline": base,
                "candidate": cand,
                "change": change,
            }
            if regressed:
                regressions.append(entry)
            elif (direction == "lower" and change < -threshold) or (
                direction == "higher" and change > threshold
            ):
                improvements.append(entry)
    return {
        "matched": matched,
        "regressions": regressions,
        "improvements": improvements,
        "only_in_baseline": sorted(set(baseline) - set(candidate), key=repr),
        "only_in_candidate": sorted(set(candidate) - set(baseline), key=repr),
    }


def baseline_path_for(candidate_payload: dict, baseline_dir: str, name: str) -> str:
    """The baseline file a candidate artifact is gated against.

    Quick-mode candidates compare against the ``*_quick`` baselines —
    quick and full cells never share a key (different ``n_vehicles``),
    so cross-mode comparison would only ever produce zero matches.
    """
    stem, ext = os.path.splitext(name)
    if candidate_payload.get("mode") == "quick":
        return os.path.join(baseline_dir, f"{stem}_quick{ext}")
    return os.path.join(baseline_dir, name)


def gate_file(
    baseline_path: str,
    candidate_path: str,
    threshold: float = DEFAULT_THRESHOLD,
) -> dict:
    """Gate one candidate artifact against one baseline artifact."""
    baseline = load_bench(baseline_path)
    candidate = load_bench(candidate_path)
    report = compare_cells(
        extract_cells(baseline), extract_cells(candidate), threshold
    )
    report["baseline_path"] = baseline_path
    report["candidate_path"] = candidate_path
    report["threshold"] = threshold
    report["tree_roots"] = extract_tree_roots(candidate)
    return report


def _print_report(report: dict) -> None:
    print(
        f"{report['candidate_path']} vs {report['baseline_path']}:"
        f" {report['matched']} cells matched"
    )
    for key in report["only_in_candidate"]:
        print(f"  new cell (no baseline yet): {key}")
    for key in report["only_in_baseline"]:
        print(
            f"  LOST CELL: baseline cell missing from candidate: {key}"
            " (a benchmark that stopped producing coverage fails the"
            " gate; regenerate the baselines if the sweep shrank on"
            " purpose)"
        )
    for entry in report["improvements"]:
        print(
            f"  improvement: {entry['cell']} {entry['metric']}"
            f" {entry['baseline']:.3f} -> {entry['candidate']:.3f}"
            f" ({entry['change']:+.1%})"
        )
    threshold = report.get("threshold", DEFAULT_THRESHOLD)
    for entry in report["regressions"]:
        print(
            f"  REGRESSION: {entry['cell']} {entry['metric']}"
            f" {entry['baseline']:.3f} -> {entry['candidate']:.3f}"
            f" ({entry['change']:+.1%}, threshold ±{threshold:.0%})"
        )


def _jsonable_report(report: dict) -> dict:
    """A JSON-serialisable copy of one gate report.

    Cell keys are tuples (structural match keys) and zero-baseline
    regressions carry ``inf`` — both are converted: keys become lists,
    ``inf`` becomes ``None``.
    """
    out = dict(report)
    for field in ("regressions", "improvements"):
        out[field] = [
            {
                **entry,
                "cell": list(entry["cell"]),
                "change": (
                    None
                    if entry["change"] in (float("inf"), float("-inf"))
                    else entry["change"]
                ),
            }
            for entry in report[field]
        ]
    for field in ("only_in_baseline", "only_in_candidate"):
        out[field] = [list(key) for key in report[field]]
    out["tree_roots"] = [
        {"cell": list(key), "tree_root": root}
        for key, root in sorted(
            report.get("tree_roots", {}).items(), key=repr
        )
    ]
    return out


def write_json_report(path: str, reports: list, verdict: str) -> dict:
    """Write the gate's machine-readable verdict + per-file reports."""
    payload = {
        "verdict": verdict,
        "matched": sum(report["matched"] for report in reports),
        "regressions": sum(
            len(report["regressions"]) for report in reports
        ),
        "reports": [_jsonable_report(report) for report in reports],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    here = os.path.dirname(os.path.abspath(__file__))
    parser.add_argument(
        "--baseline",
        help="explicit baseline BENCH json (pairs with --candidate)",
    )
    parser.add_argument(
        "--candidate",
        help="explicit candidate BENCH json (pairs with --baseline)",
    )
    parser.add_argument(
        "--baseline-dir",
        default=os.path.join(here, "baselines"),
        help="directory of committed baseline artifacts",
    )
    parser.add_argument(
        "--candidate-dir",
        default=os.path.dirname(here),
        help="directory of freshly produced artifacts (default: repo root)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="relative regression tolerance (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--json-report",
        help="write the verdict and per-cell deltas as JSON to this path",
    )
    args = parser.parse_args(argv)

    if (args.baseline is None) != (args.candidate is None):
        parser.error("--baseline and --candidate must be given together")

    reports = []
    if args.baseline is not None:
        reports.append(gate_file(args.baseline, args.candidate, args.threshold))
    else:
        for name in ARTIFACTS:
            candidate_path = os.path.join(args.candidate_dir, name)
            if not os.path.exists(candidate_path):
                print(f"skipping {name}: no candidate at {candidate_path}")
                continue
            baseline_path = baseline_path_for(
                load_bench(candidate_path), args.baseline_dir, name
            )
            if not os.path.exists(baseline_path):
                print(f"skipping {name}: no baseline at {baseline_path}")
                continue
            reports.append(
                gate_file(baseline_path, candidate_path, args.threshold)
            )

    failed = False
    matched_total = 0
    for report in reports:
        _print_report(report)
        matched_total += report["matched"]
        if report["regressions"] or report["only_in_baseline"]:
            failed = True
    if not reports:
        print("regression gate: nothing to compare — failing closed")
        verdict = "nothing-to-compare"
        code = 1
    elif matched_total == 0:
        print("regression gate: no comparable cells — failing closed")
        verdict = "no-comparable-cells"
        code = 1
    elif failed:
        print("regression gate: FAILED")
        verdict = "fail"
        code = 1
    else:
        print(f"regression gate: OK ({matched_total} cells within threshold)")
        verdict = "ok"
        code = 0
    if args.json_report:
        write_json_report(args.json_report, reports, verdict)
        print(f"json report -> {args.json_report}")
    return code


if __name__ == "__main__":
    sys.exit(main())
