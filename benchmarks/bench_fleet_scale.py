"""Fleet-scale benchmark: ≥500 concurrent sessions + batch-EC speedup.

Three claims are exercised:

1. **Determinism at scale** — a 250-vehicle storm (2 sessions per vehicle
   through forced re-keys = 500 session establishments) run twice from
   the same seed produces bit-identical aggregate stats digests.
2. **Batched normalization wins** — converting the same number of
   Jacobian points to affine through one Montgomery-trick inversion
   (:func:`repro.ec.normalize_batch`) measurably beats the per-point
   inversion path (:func:`repro.ec.point.from_jacobian`), and batched CA
   issuance (:meth:`~repro.ecqv.ca.CertificateAuthority.issue_batch`)
   beats scalar-at-a-time issuance on the same request burst.
3. **Backend parity + speedup** — the same storm under the
   ``accelerated`` crypto backend (:mod:`repro.backend`) produces the
   bit-identical stats digest while cutting host wall-clock.  Since the
   EC extension of the backend seam, quick mode asserts a ≥10x
   end-to-end speedup when OpenSSL EC point math is active (the
   ``cryptography`` package importable), ≥8x for the full storm; with
   ``cryptography`` absent the assert drops back to the primitive-era
   tiers (≥3x with OpenSSL AES, ≥2x on the pure-Python fallback).

Run standalone for the full workload (used by the acceptance check)::

    PYTHONPATH=src python benchmarks/bench_fleet_scale.py          # 500 sessions
    PYTHONPATH=src python benchmarks/bench_fleet_scale.py --quick  # CI smoke

``--backend accelerated`` runs the main storm itself on the accelerated
backend (the parity cell then re-times the reference side).  Either mode
writes a machine-readable ``BENCH_fleet.json`` (throughput, p50/p99
latencies, energy, digest, backend cell) so the performance trajectory
can be tracked across PRs; ``--json`` overrides the output path.

Under pytest the module contributes fast, small-fleet versions of the
same assertions so regressions surface in the tier-1 run.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import time

from repro.backend import available_backends, get_backend, use_backend
from repro.ec import SECP256R1, normalize_batch
from repro.ec.point import from_jacobian
from repro.ec.scalarmult import _mul_base_jac
from repro.ecqv import CertificateAuthority, CertificateRequest
from repro.ecdsa import generate_keypair
from repro.fleet import FleetConfig, FleetOrchestrator
from repro.obs import (
    Observer,
    lint_archive,
    profile_fleet_run,
    render_speedup_table,
    speedup_table,
    validate_chrome_trace,
    validate_events,
)
from repro.primitives import HmacDrbg
from repro.testbed import device_id

#: Full workload: 250 vehicles x (1 session + 1 forced re-key) = 500
#: session establishments, enrollment storm arriving inside 200 ms.
FULL_CONFIG = FleetConfig(
    n_vehicles=250,
    seed=b"bench-fleet-full",
    records_per_vehicle=8,
    max_records=4,
    send_interval_ms=25.0,
    arrival_spread_ms=200.0,
)

#: CI smoke / pytest workload: 25 vehicles, 50 sessions, same shape.
QUICK_CONFIG = FleetConfig(
    n_vehicles=25,
    seed=b"bench-fleet-quick",
    records_per_vehicle=8,
    max_records=4,
    send_interval_ms=25.0,
    arrival_spread_ms=50.0,
)


def run_fleet_deterministically(config: FleetConfig):
    """Run the storm twice from one seed; assert identical aggregates.

    Returns the *best* of the two walls: the first run pays one-time
    process costs (shared wNAF/generator table precompute), and the
    backend-speedup cell compares this wall against best-of-N
    accelerated runs — both sides must be measured warm.
    """
    t0 = time.perf_counter()
    first = FleetOrchestrator(config).run()
    first_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    second = FleetOrchestrator(config).run()
    second_wall = time.perf_counter() - t0
    digest_a, digest_b = first.stats.digest(), second.stats.digest()
    if digest_a != digest_b:
        raise AssertionError(
            f"non-deterministic fleet run: {digest_a} != {digest_b}"
        )
    return first, min(first_wall, second_wall), digest_a


def bench_normalization(n_points: int) -> tuple[float, float]:
    """Time batched vs per-point normalization of ``n_points`` Jacobians.

    Returns ``(batch_seconds, per_point_seconds)``; results are asserted
    equal point-for-point before timings are trusted.
    """
    curve = SECP256R1
    jacs = [_mul_base_jac(k, curve) for k in range(2, n_points + 2)]
    t0 = time.perf_counter()
    batched = normalize_batch(curve, jacs)
    batch_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    per_point = [from_jacobian(curve, jac) for jac in jacs]
    per_point_s = time.perf_counter() - t0
    if batched != per_point:
        raise AssertionError("batched normalization disagrees with per-point")
    return batch_s, per_point_s


def bench_backend_speedup(
    config: FleetConfig,
    reference_wall: float | None = None,
    reference_digest: str | None = None,
    repeats: int = 2,
) -> dict:
    """Time the same storm under both backends; assert digest parity.

    ``reference_wall``/``reference_digest`` let the caller reuse a
    reference-backend measurement it already paid for (the main storm);
    when absent the reference side is run once here.  The accelerated
    side runs ``repeats`` times and reports the best wall (the digest is
    asserted on every run).

    Returns a JSON-ready cell with per-backend walls, implementation
    descriptions and the measured speedup.
    """
    if reference_wall is None or reference_digest is None:
        t0 = time.perf_counter()
        result = FleetOrchestrator(
            dataclasses.replace(config, backend="reference")
        ).run()
        reference_wall = time.perf_counter() - t0
        reference_digest = result.stats.digest()
    accel_config = dataclasses.replace(config, backend="accelerated")
    accel_wall = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = FleetOrchestrator(accel_config).run()
        accel_wall = min(accel_wall, time.perf_counter() - t0)
        digest = result.stats.digest()
        if digest != reference_digest:
            raise AssertionError(
                "backend parity violated: accelerated digest"
                f" {digest} != reference {reference_digest}"
            )
    with use_backend("accelerated") as accelerated:
        accel_describe = accelerated.describe()
        aes_accelerated = getattr(accelerated, "aes_accelerated", False)
        ec_accelerated = getattr(accelerated, "ec_accelerated", False)
    with use_backend("reference") as reference:
        ref_describe = reference.describe()
    return {
        "reference": {"wall_s": reference_wall, **ref_describe},
        "accelerated": {"wall_s": accel_wall, **accel_describe},
        "speedup": reference_wall / accel_wall,
        "digest": reference_digest,
        "aes_accelerated": aes_accelerated,
        "ec_accelerated": ec_accelerated,
    }


def bench_primitive_speedup(config: FleetConfig) -> dict:
    """Per-primitive reference-vs-accelerated wall-time attribution.

    Runs the same storm once per backend under a
    :class:`repro.obs.ProfilingBackend` and reconciles the measured wall
    time per event class against the run's ``CostTrace`` counts —
    :func:`repro.obs.speedup_table` asserts both digests and trace
    counts match exactly (the bit-parity contract), so the table always
    compares identical work.
    """
    reference = profile_fleet_run(config, backend="reference")
    accelerated = profile_fleet_run(config, backend="accelerated")
    return speedup_table(reference, accelerated)


def export_trace(config: FleetConfig, path: str) -> dict:
    """Run one traced storm and export it for Perfetto.

    Asserts the traced run digests identically to an untraced one
    (observability is digest-neutral), validates both export formats,
    runs tracelint over the exported JSONL archive (zero findings
    required), and writes the Chrome trace to ``path`` plus the JSONL
    event stream to ``path + "l"`` (``.json`` → ``.jsonl``).

    Returns a summary dict for the BENCH record.
    """
    obs = Observer(wall_clock=True)
    traced = FleetOrchestrator(config, obs=obs).run()
    untraced = FleetOrchestrator(config).run()
    if traced.stats.digest() != untraced.stats.digest():
        raise AssertionError(
            "observability changed the digest:"
            f" {traced.stats.digest()} != {untraced.stats.digest()}"
        )
    obs.spans.validate()
    n_events = validate_events(obs.events())
    trace_doc = obs.export_chrome_trace(path)
    n_chrome = validate_chrome_trace(trace_doc)
    jsonl_path = path + "l" if path.endswith(".json") else path + ".jsonl"
    obs.export_jsonl(jsonl_path)
    findings = lint_archive(jsonl_path)
    if findings:
        raise AssertionError(
            "tracelint findings on the exported archive: "
            + "; ".join(f.render() for f in findings)
        )
    return {
        "trace_path": path,
        "jsonl_path": jsonl_path,
        "spans": len(obs.spans.finished()),
        "events": n_events,
        "chrome_events": n_chrome,
        "heartbeats": len(obs.heartbeats),
        "digest": traced.stats.digest(),
        "tree_root": obs.digest_tree().root_digest,
    }


def _request_burst(count: int, tag: bytes) -> list[CertificateRequest]:
    requests = []
    for i in range(count):
        rng = HmacDrbg(tag, personalization=b"req|%d" % i)
        keypair = generate_keypair(SECP256R1, rng)
        requests.append(
            CertificateRequest(device_id(f"bench{i:04d}"), keypair.public)
        )
    return requests


def bench_ca_issuance(count: int, repeats: int = 3) -> tuple[float, float]:
    """Time batched vs sequential ECQV issuance of one request burst.

    The normalization saving is a few percent of total issuance cost
    (one ``k*G`` dominates each certificate), so each mode runs
    ``repeats`` times and the fastest run is reported.
    """
    requests = _request_burst(count, b"bench-ca")
    batch_s = seq_s = float("inf")
    for _ in range(repeats):
        ca_batch = CertificateAuthority(
            SECP256R1,
            device_id("bench-ca"),
            HmacDrbg(b"ca", personalization=b"b"),
        )
        ca_seq = CertificateAuthority(
            SECP256R1,
            device_id("bench-ca"),
            HmacDrbg(b"ca", personalization=b"b"),
        )
        t0 = time.perf_counter()
        batched = ca_batch.issue_batch(requests)
        batch_s = min(batch_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        sequential = [ca_seq.issue(request) for request in requests]
        seq_s = min(seq_s, time.perf_counter() - t0)
        if [b.certificate.encode() for b in batched] != [
            s.certificate.encode() for s in sequential
        ]:
            raise AssertionError(
                "batched issuance disagrees with sequential"
            )
    return batch_s, seq_s


# -- streaming / process-parallel scale sweep ---------------------------------

#: Full-mode scale grid: (vehicles, worker counts).  The 10k tier runs
#: every worker count (the digest-parity sweep); the 100k tier is the
#: constant-memory headline (streaming mode must complete it with
#: sub-linear RSS) and runs the serial + widest-parallel points to keep
#: the full bench's wall-clock bounded.
SCALE_GRID_FULL = ((10_000, (1, 2, 4)), (100_000, (1, 4)))

#: The million-vehicle tier; hours of single-host wall-clock, so gated
#: behind ``REPRO_BENCH_XL=1`` instead of silently shrunk.
SCALE_GRID_XL = ((1_000_000, (1, 4)),)

#: CI-smoke grid: same shape, toy sizes.
SCALE_GRID_QUICK = ((300, (1, 2)), (1_200, (1, 2)))


def scale_config(n_vehicles: int, workers: int = 1) -> FleetConfig:
    """The scale-sweep storm shape: sharded, streaming, accelerated.

    Two records per vehicle and no forced re-keys — the sweep measures
    orchestration scale (arrival storm + enrollment + establishment +
    delivery), not re-key churn; ``stream=True`` releases per-vehicle
    event timelines/pools and resource interval traces so memory stays
    bounded by live state, and the arrival window grows with the fleet
    so the CA queue shape stays comparable across tiers.
    """
    return FleetConfig(
        n_vehicles=n_vehicles,
        seed=b"bench-fleet-scale",
        records_per_vehicle=2,
        max_records=4,
        send_interval_ms=20.0,
        arrival_spread_ms=max(200.0, n_vehicles / 10.0),
        shards=4,
        workers=workers,
        stream=True,
        backend="accelerated",
    )


def bench_scale_cell(n_vehicles: int, workers: int) -> dict:
    """One sweep point: run the storm, record throughput + peak RSS.

    Peak RSS comes from the observer's final heartbeat (``wall``
    annotation): the max over worker processes for parallel runs, the
    parent process watermark for serial ones — which is why the sweep
    runs tiers in ascending size (``ru_maxrss`` only ratchets up).
    """
    config = scale_config(n_vehicles, workers=workers)
    obs = Observer(wall_clock=True)
    t0 = time.perf_counter()
    result = FleetOrchestrator(config, obs=obs).run()
    wall_s = time.perf_counter() - t0
    stats = result.stats
    if stats.records_sent != n_vehicles * config.records_per_vehicle:
        raise AssertionError(
            f"scale cell dropped records: {stats.records_sent} !="
            f" {n_vehicles * config.records_per_vehicle}"
        )
    peak_rss_kb = obs.heartbeats[-1].get("wall", {}).get("peak_rss_kb")
    return {
        "vehicles": n_vehicles,
        "workers": workers,
        "shards": config.shards,
        "wall_s": wall_s,
        "host_records_per_s": stats.records_sent / wall_s,
        "sim_records_per_s": stats.throughput_records_per_s,
        "sessions_established": stats.sessions_established,
        "peak_rss_kb": peak_rss_kb,
        "digest": stats.digest(),
        # Metric-plane digest-tree root: bit-identical across worker
        # counts (the merge laws), so the regression gate can localize
        # a telemetry divergence per cell, not just per digest.
        "tree_root": obs.digest_tree(include=("metrics",)).root_digest,
        # Full simulated stats so the regression gate can diff the
        # deterministic latency/throughput metrics cell-by-cell.
        "fleet": stats.as_dict(),
    }


def bench_scale_sweep(quick: bool) -> dict:
    """Sweep fleet size × worker count; assert parity and memory shape.

    Asserts, per tier: every worker count reproduces the ``workers=1``
    digest bit-for-bit.  Across tiers (serial points): peak RSS grows
    **sub-linearly** in fleet size — the streaming-accumulator claim.
    Worker counts above the host's core count still run (digest parity
    is scale-independent) but their walls measure overhead, not
    speedup; the cell records ``host_cores`` so readers can tell.
    """
    grid = list(SCALE_GRID_QUICK if quick else SCALE_GRID_FULL)
    xl = os.environ.get("REPRO_BENCH_XL") == "1"
    if not quick:
        if xl:
            grid += list(SCALE_GRID_XL)
        else:
            print(
                "  (1M-vehicle tier skipped: set REPRO_BENCH_XL=1 to"
                " run it)"
            )
    cells = []
    serial_peaks: dict[int, int] = {}
    for n_vehicles, worker_counts in grid:
        tier_digest = None
        tier_tree_root = None
        for workers in worker_counts:
            cell = bench_scale_cell(n_vehicles, workers)
            cells.append(cell)
            print(
                f"  {cell['vehicles']:>9,} vehicles x {workers} worker(s):"
                f" {cell['wall_s']:8.1f} s,"
                f" {cell['host_records_per_s']:10.0f} rec/s host,"
                f" peak RSS {cell['peak_rss_kb'] or 0:>9,} kB,"
                f" digest {cell['digest'][:12]}..."
            )
            if tier_digest is None:
                tier_digest = cell["digest"]
                tier_tree_root = cell["tree_root"]
            elif cell["digest"] != tier_digest:
                raise AssertionError(
                    f"multi-worker digest diverged at {n_vehicles}"
                    f" vehicles x {workers} workers:"
                    f" {cell['digest']} != {tier_digest}"
                )
            elif cell["tree_root"] != tier_tree_root:
                # Stats digest matched but the metric plane did not:
                # the digest tree localizes exactly this situation.
                raise AssertionError(
                    "metric-plane digest-tree root diverged at"
                    f" {n_vehicles} vehicles x {workers} workers:"
                    f" {cell['tree_root']} != {tier_tree_root}"
                )
            if workers == 1 and cell["peak_rss_kb"] is not None:
                serial_peaks[n_vehicles] = cell["peak_rss_kb"]
    if len(serial_peaks) >= 2:
        small, large = min(serial_peaks), max(serial_peaks)
        rss_ratio = serial_peaks[large] / serial_peaks[small]
        scale_ratio = large / small
        print(
            f"  RSS scaling         : {scale_ratio:.0f}x vehicles ->"
            f" {rss_ratio:.2f}x peak RSS (sub-linear bound:"
            f" {0.8 * scale_ratio:.1f}x)"
        )
        # Streaming mode's memory claim: growth is the per-vehicle
        # residue (Vehicle objects + credentials) on top of a fixed
        # interpreter baseline — never per-event or per-sample.  The
        # 0.8 factor leaves headroom for the residue while still
        # failing hard if any per-event accumulation (latency lists,
        # resource interval traces) sneaks back in; calibration on the
        # reference host measured ~0.48x at the 10k->100k step
        # (120,376 kB -> 571,828 kB).
        if rss_ratio >= 0.8 * scale_ratio:
            raise AssertionError(
                f"peak RSS grew {rss_ratio:.2f}x over a"
                f" {scale_ratio:.0f}x fleet — streaming mode is no"
                " longer sub-linear"
            )
    return {
        "host_cores": os.cpu_count(),
        "xl_tier_ran": xl and not quick,
        "cells": cells,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: 25 vehicles / 50 sessions instead of 500",
    )
    parser.add_argument(
        "--json",
        default="BENCH_fleet.json",
        metavar="PATH",
        help="machine-readable output path (default: BENCH_fleet.json)",
    )
    parser.add_argument(
        "--backend",
        choices=available_backends(),
        default=None,
        help="crypto backend for the main storm (default: ambient,"
        " i.e. REPRO_BACKEND or reference); the parity cell always"
        " measures both",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="export a Chrome trace-event file (Perfetto/chrome://tracing)"
        " of one traced storm to PATH, plus the JSONL event stream next"
        " to it; digest parity with the untraced run is asserted",
    )
    args = parser.parse_args()
    config = QUICK_CONFIG if args.quick else FULL_CONFIG
    if args.backend is not None:
        config = dataclasses.replace(config, backend=args.backend)
    main_backend = (
        args.backend if args.backend is not None else get_backend().name
    )

    result, wall_s, digest = run_fleet_deterministically(config)
    stats = result.stats
    print(f"== fleet storm ({config.n_vehicles} vehicles) ==")
    print(stats.render())
    print(f"  host wall-clock     : {wall_s:.2f} s (best of 2 runs)")
    print(f"  stats digest        : {digest} (identical across 2 runs)")
    required = 500 if not args.quick else 50
    if stats.sessions_established < required:
        raise AssertionError(
            f"expected >= {required} sessions,"
            f" got {stats.sessions_established}"
        )

    n_points = max(500, stats.sessions_established)
    batch_s, per_point_s = bench_normalization(n_points)
    speedup = per_point_s / batch_s
    print(f"\n== Jacobian normalization ({n_points} points) ==")
    print(f"  batched (Montgomery): {batch_s * 1000:.2f} ms")
    print(f"  per-point inversion : {per_point_s * 1000:.2f} ms")
    print(f"  speedup             : {speedup:.2f}x")
    if speedup <= 1.0:
        raise AssertionError(
            "batched normalization failed to beat per-point inversion"
        )

    burst = 50 if args.quick else 250
    ca_batch_s, ca_seq_s = bench_ca_issuance(burst)
    print(f"\n== ECQV issuance burst ({burst} certificates) ==")
    print(f"  issue_batch         : {ca_batch_s * 1000:.2f} ms")
    print(f"  sequential issue    : {ca_seq_s * 1000:.2f} ms")
    print(f"  speedup             : {ca_seq_s / ca_batch_s:.2f}x"
          " (one k*G dominates each certificate, so expect ~1x here;"
          " the batch win is the normalization share above)")

    # Reuse the main storm's wall/digest when it already ran on the
    # reference backend; otherwise the cell re-times the reference side.
    backend_repeats = 3 if args.quick else 2
    if main_backend == "reference":
        backend_cell = bench_backend_speedup(
            config, wall_s, digest, repeats=backend_repeats
        )
    else:
        backend_cell = bench_backend_speedup(config, repeats=backend_repeats)
    backend_speedup = backend_cell["speedup"]
    print(f"\n== crypto backend ({config.n_vehicles}-vehicle storm) ==")
    print(f"  reference           : {backend_cell['reference']['wall_s']:.2f} s")
    print(f"  accelerated         : {backend_cell['accelerated']['wall_s']:.2f} s"
          f"  ({backend_cell['accelerated']['sha2']};"
          f" {backend_cell['accelerated']['aes']};"
          f" ec: {backend_cell['accelerated']['ec']})")
    print(f"  speedup             : {backend_speedup:.2f}x"
          f"  (stats digest bit-identical: {backend_cell['digest'][:16]}...)")
    # The quick workload is the acceptance gate.  With OpenSSL EC active
    # (~90 % of accelerated wall-clock was EC before the seam) the
    # end-to-end bar is >=10x, a notch softer (>=8x) for the full storm
    # against host noise at the longer wall.  Without OpenSSL EC the
    # primitive-era tiers apply: >=3x with OpenSSL AES, >=2x on the
    # graceful from-scratch-AES fallback (full storm: one notch softer).
    if backend_cell["ec_accelerated"]:
        required_speedup = 10.0 if args.quick else 8.0
    else:
        required_speedup = 3.0 if backend_cell["aes_accelerated"] else 2.0
        if not args.quick:
            required_speedup = max(2.0, required_speedup - 0.5)
    if backend_speedup < required_speedup:
        raise AssertionError(
            f"accelerated backend too slow: {backend_speedup:.2f}x <"
            f" {required_speedup:.1f}x required"
        )

    # Per-primitive wall-time attribution: always measured on the quick
    # workload (the table is about per-event-class ratios, not totals, so
    # the small storm is representative and keeps the full bench's
    # runtime bounded).  Changes nothing gated: the regression gate only
    # reads the `fleet` mapping.
    primitive_table = bench_primitive_speedup(QUICK_CONFIG)
    print(f"\n== per-primitive backend speedup"
          f" ({QUICK_CONFIG.n_vehicles}-vehicle storm) ==")
    print(render_speedup_table(primitive_table))

    print("\n== streaming scale sweep (vehicles x workers) ==")
    scale_cell = bench_scale_sweep(args.quick)

    trace_cell = None
    if args.trace_out is not None:
        trace_cell = export_trace(QUICK_CONFIG, args.trace_out)
        print(f"\n== observability trace ==")
        print(f"  chrome trace        : {trace_cell['trace_path']}"
              f" ({trace_cell['chrome_events']} events; open in"
              " https://ui.perfetto.dev)")
        print(f"  jsonl events        : {trace_cell['jsonl_path']}"
              f" ({trace_cell['events']} events, schema-validated)")
        print(f"  digest (traced)     : {trace_cell['digest'][:16]}..."
              " (bit-identical to untraced)")

    record = {
        "benchmark": "fleet_scale",
        "mode": "quick" if args.quick else "full",
        "backend": main_backend,
        "backends": backend_cell,
        "config": {
            "n_vehicles": config.n_vehicles,
            "records_per_vehicle": config.records_per_vehicle,
            "max_records": config.max_records,
            "arrival_spread_ms": config.arrival_spread_ms,
        },
        "host_wall_s": wall_s,
        "fleet": stats.as_dict(),
        "normalization": {
            "points": n_points,
            "batch_ms": batch_s * 1000.0,
            "per_point_ms": per_point_s * 1000.0,
            "speedup": speedup,
        },
        "ca_issuance": {
            "burst": burst,
            "batch_ms": ca_batch_s * 1000.0,
            "sequential_ms": ca_seq_s * 1000.0,
        },
        "primitive_speedup": primitive_table,
        "scale": scale_cell,
    }
    if trace_cell is not None:
        record["trace"] = trace_cell
    with open(args.json, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nwrote {args.json}")
    print("OK")


# -- fast pytest-facing versions of the same assertions -----------------------


def test_small_fleet_deterministic():
    config = FleetConfig(
        n_vehicles=4,
        seed=b"bench-fleet-pytest",
        records_per_vehicle=4,
        max_records=2,
        arrival_spread_ms=10.0,
    )
    result, _, _ = run_fleet_deterministically(config)
    assert result.stats.sessions_established == 8  # one re-key per vehicle
    assert result.stats.records_sent == 16


def test_batched_normalization_beats_per_point():
    # Median-of-3 to keep the timing assertion robust on noisy hosts.
    ratios = []
    for _ in range(3):
        batch_s, per_point_s = bench_normalization(400)
        ratios.append(per_point_s / batch_s)
    assert sorted(ratios)[1] > 1.0


def test_backend_cell_parity_at_pytest_scale():
    # The full speedup assertion lives in the standalone bench; at
    # pytest scale only the parity contract is cheap enough to check.
    config = FleetConfig(
        n_vehicles=4,
        seed=b"bench-fleet-pytest",
        records_per_vehicle=4,
        max_records=2,
        arrival_spread_ms=10.0,
    )
    cell = bench_backend_speedup(config, repeats=1)
    assert cell["digest"]
    assert cell["speedup"] > 0
    # The cell must report both acceleration flags and name the EC tier
    # so BENCH_fleet.json records which speedup bar applied.
    assert "aes_accelerated" in cell and "ec_accelerated" in cell
    assert "ec" in cell["accelerated"] and "ec" in cell["reference"]


def test_scale_cell_parity_at_pytest_scale():
    # The real sweep (10k/100k/1M vehicles) lives in the standalone
    # bench; at pytest scale only the contracts are checked — digest
    # parity across worker counts and a recorded peak-RSS reading.
    serial = bench_scale_cell(60, workers=1)
    parallel = bench_scale_cell(60, workers=2)
    assert parallel["digest"] == serial["digest"]
    # The metric plane is bit-identical across worker counts too —
    # the digest-tree merge law, checked cell-by-cell by the gate.
    assert parallel["tree_root"] == serial["tree_root"]
    assert serial["sessions_established"] == 60
    for cell in (serial, parallel):
        assert cell["host_records_per_s"] > 0
        assert cell["peak_rss_kb"] is None or cell["peak_rss_kb"] > 0


def test_primitive_speedup_table_at_pytest_scale():
    config = FleetConfig(
        n_vehicles=4,
        seed=b"bench-fleet-pytest",
        records_per_vehicle=4,
        max_records=2,
        arrival_spread_ms=10.0,
    )
    table = bench_primitive_speedup(config)
    events = {row["event"] for row in table["rows"]}
    assert {"ec.mul_base", "ec.mul_point", "sha2", "hmac", "aes"} <= events
    by_event = {row["event"]: row for row in table["rows"]}
    # The storm exercises every reconciled primitive class.
    for event in ("ec.mul_base", "ec.mul_point", "sha2", "hmac", "aes"):
        assert by_event[event]["trace_count"] > 0
        assert by_event[event]["reference_ms"] > 0
    assert table["digest"]
    assert render_speedup_table(table)


if __name__ == "__main__":
    main()
