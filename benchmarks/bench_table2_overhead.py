"""Benchmark ``tab2``: communication steps and transmission overhead."""

from __future__ import annotations

from repro.analysis import PAPER_TABLE2, verify_against_paper
from repro.experiments import run_table2


def test_table2_reproduction(benchmark):
    """Regenerate Table II from serialized messages; must match exactly."""
    result = benchmark(run_table2)
    assert result.all_match_paper()
    verify_against_paper(result.rows)
    print("\n" + result.render())


def test_table2_byte_totals(benchmark):
    """Per-protocol byte totals equal the paper's numbers exactly."""
    result = benchmark(run_table2)
    for name, (steps, total) in PAPER_TABLE2.items():
        assert result.rows[name].n_steps == steps
        assert result.rows[name].total_bytes == total
