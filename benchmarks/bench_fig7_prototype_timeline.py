"""Benchmark ``fig7``: the BMS↔EVCC prototype timeline over CAN-FD."""

from __future__ import annotations

from repro.experiments import run_fig7
from repro.experiments.fig7 import (
    PAPER_OVERHEAD_PERCENT,
    PAPER_S_ECDSA_TOTAL_S,
    PAPER_STS_TOTAL_S,
)


def test_fig7_reproduction(benchmark):
    """Regenerate both prototype timelines; check the headline numbers."""
    result = benchmark(run_fig7)
    # Paper: 3.257 s vs 2.677 s (+21.67 %); our model stays within ~15 %.
    assert abs(result.sts_total_s / PAPER_STS_TOTAL_S - 1) < 0.15
    assert abs(result.s_ecdsa_total_s / PAPER_S_ECDSA_TOTAL_S - 1) < 0.15
    assert abs(result.overhead_percent - PAPER_OVERHEAD_PERCENT) < 8.0
    print("\n" + result.render())


def test_fig7_transfer_time_negligible(benchmark):
    """Paper §V-C: physical CAN-FD transfer < 1 ms per message."""
    result = benchmark(run_fig7)
    assert result.max_transfer_ms < 2.0
    assert result.sts_timeline.transfer_ms < 0.01 * result.sts_timeline.compute_ms
