"""Ablation: security modules and hardware accelerators (paper future work).

The paper's conclusion announces a study of "the influence of security
modules and hardware accelerators ... especially those related to session
establishment".  This benchmark runs it: Table I regenerated under an
AUTOSAR-SHE-style AES module, a dedicated ECC coprocessor, and an
EVITA-full HSM.

Finding (asserted below): offload shrinks the *absolute* cost of every
EC-based protocol by ~10×, but the *relative* STS overhead (~20-25 % over
S-ECDSA) is structural — it is one extra ephemeral key generation and one
extra premaster multiplication, and accelerators scale both sides alike.
The security-for-time trade the paper proposes therefore gets strictly
cheaper in absolute terms on HSM-equipped ECUs.
"""

from __future__ import annotations

from repro.hardware import (
    STM32F767,
    accelerator_study,
    render_accelerator_study,
)


def test_accelerator_study(benchmark):
    """Regenerate the offload study on the STM32F767."""
    study = benchmark(lambda: accelerator_study(STM32F767))
    for row in study.values():
        # Ordering survives every offload configuration.
        assert row["scianc"] < row["poramb"] < row["s-ecdsa"] < row["sts"]
        assert row["sts-opt2"] < row["s-ecdsa"]
        # Relative STS overhead is structural.
        assert 1.15 < row["sts"] / row["s-ecdsa"] < 1.30
    # Absolute costs collapse by ~10x under EC offload.
    assert study["ecc-accel"]["sts"] < study["none"]["sts"] / 8
    print("\n" + render_accelerator_study(study, "STM32F767"))


def test_she_only_helps_symmetric_baselines(benchmark):
    """An AES-only SHE moves SCIANC/PORAMB by well under 1 % - their cost
    is EC-dominated too; the paper's speed gap is not about AES."""
    study = benchmark(lambda: accelerator_study(STM32F767))
    for protocol in ("scianc", "poramb", "sts"):
        delta = study["she-aes"][protocol] / study["none"][protocol] - 1
        assert abs(delta) < 0.01
