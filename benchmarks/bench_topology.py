"""Topology benchmark: shards × V2V sweep + the sharding latency claim.

The claim under test: splitting the fleet's CA/gateway role across ``M``
shards cuts the CA-queue wait — the time an enrollment request spends
queued before its issuance batch starts service — because each shard
serves ``~N/M`` vehicles instead of all ``N``.  The sweep runs the *same*
500-session workload (250 vehicles × 2 sessions through forced re-keys)
at 1, 2 and 4 shards and **asserts** that the mean CA-queue latency at 4
shards beats 1 shard.  A V2V cell (direct vehicle↔vehicle sessions, no
gateway in the data path, cross-shard pairs chain-validating to the fleet
root) rides along to show the non-hub topology at scale.

Run standalone (used by the acceptance check)::

    PYTHONPATH=src python benchmarks/bench_topology.py          # 250 vehicles
    PYTHONPATH=src python benchmarks/bench_topology.py --quick  # CI smoke

Either mode writes a machine-readable ``BENCH_topology.json`` (one record
per sweep cell: throughput, p50/p99 latencies, energy, per-shard
breakdown, digest); ``--json`` overrides the path.  Under pytest the
module contributes a fast, small-fleet version of the same assertion.
"""

from __future__ import annotations

import argparse
import json
import time

from repro.fleet import FleetConfig, FleetOrchestrator

#: Sharding sweep of the full workload (same seed and record budgets as
#: ``bench_fleet_scale.FULL_CONFIG``'s 500-session storm).
SHARD_SWEEP = (1, 2, 4)


def topology_config(
    n_vehicles: int,
    shards: int,
    v2v_fraction: float,
    arrival_spread_ms: float,
) -> FleetConfig:
    """One sweep cell: a fixed workload at a given topology shape."""
    return FleetConfig(
        n_vehicles=n_vehicles,
        seed=b"bench-topology",
        records_per_vehicle=8,
        max_records=4,
        send_interval_ms=25.0,
        arrival_spread_ms=arrival_spread_ms,
        shards=shards,
        v2v_fraction=v2v_fraction,
        v2v_records=6,
    )


def run_cell(config: FleetConfig) -> tuple[dict, float]:
    """Run one sweep cell; returns its JSON record and the wall time."""
    t0 = time.perf_counter()
    result = FleetOrchestrator(config).run()
    wall_s = time.perf_counter() - t0
    stats = result.stats
    record = {
        "shards": config.shards,
        "v2v_fraction": config.v2v_fraction,
        "n_vehicles": config.n_vehicles,
        "host_wall_s": wall_s,
        "fleet": stats.as_dict(),
    }
    return record, wall_s


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: 50 vehicles instead of 250",
    )
    parser.add_argument(
        "--json",
        default="BENCH_topology.json",
        metavar="PATH",
        help="machine-readable output path (default: BENCH_topology.json)",
    )
    args = parser.parse_args()
    n_vehicles = 50 if args.quick else 250
    spread = 50.0 if args.quick else 200.0

    cells = []
    queue_means: dict[int, float] = {}
    for shards in SHARD_SWEEP:
        config = topology_config(n_vehicles, shards, 0.0, spread)
        record, wall_s = run_cell(config)
        cells.append(record)
        fleet = record["fleet"]
        queue_means[shards] = fleet["ca_queue_latency"]["mean_ms"]
        print(
            f"shards={shards}  v2v=0.0  sessions={fleet['sessions_established']}"
            f"  queue mean={fleet['ca_queue_latency']['mean_ms']:.3f} ms"
            f"  p99={fleet['ca_queue_latency']['p99_ms']:.3f} ms"
            f"  enroll p50={fleet['enrollment_latency']['p50_ms']:.3f} ms"
            f"  wall={wall_s:.1f} s"
        )

    # The V2V cell: the CI smoke shape (2 shards, fraction 0.3).
    v2v_config = topology_config(n_vehicles, 2, 0.3, spread)
    v2v_record, wall_s = run_cell(v2v_config)
    cells.append(v2v_record)
    v2v = v2v_record["fleet"]["v2v"]
    print(
        f"shards=2  v2v=0.3  v2v_sessions={v2v['sessions']}"
        f" ({v2v['cross_shard']} cross-shard, {v2v['rekeys']} re-keys),"
        f" {v2v['records_sent']} direct records  wall={wall_s:.1f} s"
    )

    required = 100 if args.quick else 500
    for record in cells[: len(SHARD_SWEEP)]:
        sessions = record["fleet"]["sessions_established"]
        if sessions < required:
            raise AssertionError(
                f"expected >= {required} sessions at shards="
                f"{record['shards']}, got {sessions}"
            )

    ratio = (
        f" ({queue_means[1] / queue_means[4]:.2f}x better)"
        if queue_means[4] > 0.0
        else " (no queueing at all with 4 shards)"
    )
    print(
        f"\nCA-queue mean latency: 1 shard = {queue_means[1]:.3f} ms,"
        f" 4 shards = {queue_means[4]:.3f} ms{ratio}"
    )
    if queue_means[4] >= queue_means[1]:
        raise AssertionError(
            "sharding failed to cut CA-queue latency:"
            f" 4 shards {queue_means[4]:.3f} ms >="
            f" 1 shard {queue_means[1]:.3f} ms"
        )

    payload = {
        "benchmark": "topology",
        "mode": "quick" if args.quick else "full",
        "cells": cells,
    }
    with open(args.json, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.json}")
    print("OK")


# -- fast pytest-facing version of the same assertion -------------------------


def test_small_fleet_sharding_cuts_queue_latency():
    """4 shards beat 1 shard on mean CA-queue wait for one burst workload."""
    means = {}
    for shards in (1, 4):
        config = FleetConfig(
            n_vehicles=16,
            seed=b"bench-topology-pytest",
            records_per_vehicle=2,
            max_records=4,
            arrival_spread_ms=5.0,  # burst arrivals force a queue
            shards=shards,
        )
        result = FleetOrchestrator(config).run()
        means[shards] = result.stats.ca_queue_latency.mean_ms
    assert means[4] < means[1]


if __name__ == "__main__":
    main()
