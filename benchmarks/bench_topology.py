"""Topology benchmark: shards × V2V × churn sweep + the sharding claim.

Three claims are under test:

1. **Sharding cuts queue latency** — splitting the fleet's CA/gateway
   role across ``M`` shards cuts the CA-queue wait (the time an
   enrollment request spends queued before its issuance batch starts
   service), because each shard serves ``~N/M`` vehicles instead of all
   ``N``.  The sweep runs the *same* 500-session workload (250 vehicles
   × 2 sessions through forced re-keys) at 1, 2 and 4 shards and
   **asserts** that the mean CA-queue latency at 4 shards beats 1 shard.
2. **Bit-stable history** — every churn-disabled sweep cell must
   reproduce the digest the PR 2 orchestrator produced for it
   (:data:`PR2_GOLDEN_DIGESTS`), bit for bit.  Any drift in the
   degenerate paths fails the benchmark before the regression gate even
   runs.
3. **Deterministic churn** — the migration+rejoin scenario (gateway
   failure, scheduled rejoin at the next chain epoch, threshold-driven
   live migration) is run twice in-process and **asserted** to produce
   identical digests.

Run standalone (used by the acceptance check)::

    PYTHONPATH=src python benchmarks/bench_topology.py          # 250 vehicles
    PYTHONPATH=src python benchmarks/bench_topology.py --quick  # CI smoke
    PYTHONPATH=src python benchmarks/bench_topology.py --quick --churn-only

Either mode writes a machine-readable ``BENCH_topology.json`` (one record
per sweep cell: throughput, p50/p99 latencies, energy, per-shard
breakdown, digest); ``--json`` overrides the path.  ``--churn-only``
runs just the churn cell (the CI churn smoke job).  Under pytest the
module contributes fast, small-fleet versions of the same assertions.
"""

from __future__ import annotations

import argparse
import json
import time

from repro.fleet import FleetConfig, FleetOrchestrator

#: Sharding sweep of the full workload (same seed and record budgets as
#: ``bench_fleet_scale.FULL_CONFIG``'s 500-session storm).
SHARD_SWEEP = (1, 2, 4)

#: Digests captured from the PR 2 (pre-churn) orchestrator, keyed by
#: ``(shards, v2v_fraction)``.  Churn-disabled cells must reproduce them
#: bit-for-bit; the churn cell is new and covered by determinism +
#: the regression gate instead.
PR2_GOLDEN_DIGESTS = {
    "full": {
        (1, 0.0): "9cf4287c6de92988e037135dae1470e2eb3ce01d7c9e3c585805a8b74fa1a366",
        (2, 0.0): "ddd5dd09a3d660b6e44d6138365650c894954c64b975c365c5fcaf0aa89e5cdf",
        (4, 0.0): "ff494a59d2563eb1f185c309db9b3bc5e976ad180cf05aa4595dc2cb00fed3b6",
        (2, 0.3): "f4dcec0467873b621aeaca50642699a109cb0e6ac72eb189a4b696a3c3de7d1e",
    },
    "quick": {
        (1, 0.0): "7d19f80ec42a345d7050a71f3d7a176696dd24682be216642024fb3d789c6436",
        (2, 0.0): "76c920d77d295458fb028f03d5eb7957c60ec1472b0d3fc4c5916fe47f5e9ed8",
        (4, 0.0): "c3913b05da3d122b59ef8735a80b3a9ccffae325b1ba415bd46808fba522e5b3",
        (2, 0.3): "d3db50ea9aa5e893043ed95f7e860f422ab4021b78d50ad269dc8f0f792dc0ac",
    },
}


def topology_config(
    n_vehicles: int,
    shards: int,
    v2v_fraction: float,
    arrival_spread_ms: float,
) -> FleetConfig:
    """One sweep cell: a fixed workload at a given topology shape."""
    return FleetConfig(
        n_vehicles=n_vehicles,
        seed=b"bench-topology",
        records_per_vehicle=8,
        max_records=4,
        send_interval_ms=25.0,
        arrival_spread_ms=arrival_spread_ms,
        shards=shards,
        v2v_fraction=v2v_fraction,
        v2v_records=6,
    )


def churn_config(n_vehicles: int, arrival_spread_ms: float) -> FleetConfig:
    """The churn cell: failure at 4.5 s, rejoin at 6 s, threshold-1
    re-balancing, record budget sized so re-keys land after the rejoin
    (exercising the chain-epoch re-enrollment path at scale)."""
    return FleetConfig(
        n_vehicles=n_vehicles,
        seed=b"bench-topology",
        records_per_vehicle=12,
        max_records=5,
        send_interval_ms=25.0,
        arrival_spread_ms=arrival_spread_ms,
        shards=2,
        shard_fail_at_ms=4_500.0,
        fail_shard=0,
        shard_rejoin_at_ms=6_000.0,
        migrate_threshold=1,
    )


def run_cell(config: FleetConfig, churn: bool = False) -> tuple[dict, float]:
    """Run one sweep cell; returns its JSON record and the wall time."""
    t0 = time.perf_counter()
    result = FleetOrchestrator(config).run()
    wall_s = time.perf_counter() - t0
    stats = result.stats
    record = {
        "shards": config.shards,
        "v2v_fraction": config.v2v_fraction,
        "n_vehicles": config.n_vehicles,
        "churn": churn,
        "host_wall_s": wall_s,
        "fleet": stats.as_dict(),
    }
    return record, wall_s


def _check_golden(record: dict, goldens: dict) -> None:
    key = (record["shards"], record["v2v_fraction"])
    expected = goldens.get(key)
    digest = record["fleet"]["digest"]
    if expected is not None and digest != expected:
        raise AssertionError(
            f"churn-disabled cell {key} drifted off the PR 2 golden"
            f" digest: {digest} != {expected}"
        )


def run_churn_cell(n_vehicles: int, spread: float) -> tuple[dict, float]:
    """Run the migration+rejoin scenario twice; assert determinism."""
    config = churn_config(n_vehicles, spread)
    record, wall_s = run_cell(config, churn=True)
    second, second_wall = run_cell(config, churn=True)
    if record["fleet"]["digest"] != second["fleet"]["digest"]:
        raise AssertionError(
            "non-deterministic churn cell:"
            f" {record['fleet']['digest']} != {second['fleet']['digest']}"
        )
    fleet = record["fleet"]
    churn = fleet["churn"]
    epochs = [shard["epoch"] for shard in fleet["per_shard"]]
    print(
        f"churn: shards=2 fail@4.5s rejoin@6s threshold=1"
        f"  migrations={churn['migrations']}"
        f" re-enrollments={churn['re_enrollments']}"
        f" rejoins={churn['rejoins']}"
        f" handovers={fleet['handovers']}"
        f" epochs={epochs}"
        f"  wall={wall_s:.1f}+{second_wall:.1f} s (digest identical)"
    )
    if churn["rejoins"] != 1:
        raise AssertionError("churn cell must see exactly one rejoin")
    if churn["migrations"] < 1 or churn["re_enrollments"] < 1:
        raise AssertionError("churn cell saw no migration/re-enrollment")
    if max(epochs) != 2:
        raise AssertionError("rejoined shard must be at chain epoch 2")
    return record, wall_s + second_wall


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: 50 vehicles instead of 250",
    )
    parser.add_argument(
        "--churn-only",
        action="store_true",
        help="run only the migration+rejoin churn cell",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="machine-readable output path (default: BENCH_topology.json,"
        " or BENCH_topology_churn.json with --churn-only so the"
        " single-cell payload never clobbers the committed sweep)",
    )
    args = parser.parse_args()
    json_path = args.json or (
        "BENCH_topology_churn.json"
        if args.churn_only
        else "BENCH_topology.json"
    )
    n_vehicles = 50 if args.quick else 250
    spread = 50.0 if args.quick else 200.0
    mode = "quick" if args.quick else "full"
    goldens = PR2_GOLDEN_DIGESTS[mode]

    cells = []
    if not args.churn_only:
        queue_means: dict[int, float] = {}
        for shards in SHARD_SWEEP:
            config = topology_config(n_vehicles, shards, 0.0, spread)
            record, wall_s = run_cell(config)
            _check_golden(record, goldens)
            cells.append(record)
            fleet = record["fleet"]
            queue_means[shards] = fleet["ca_queue_latency"]["mean_ms"]
            print(
                f"shards={shards}  v2v=0.0  sessions={fleet['sessions_established']}"
                f"  queue mean={fleet['ca_queue_latency']['mean_ms']:.3f} ms"
                f"  p99={fleet['ca_queue_latency']['p99_ms']:.3f} ms"
                f"  enroll p50={fleet['enrollment_latency']['p50_ms']:.3f} ms"
                f"  wall={wall_s:.1f} s"
            )

        # The V2V cell: the CI smoke shape (2 shards, fraction 0.3).
        v2v_config = topology_config(n_vehicles, 2, 0.3, spread)
        v2v_record, wall_s = run_cell(v2v_config)
        _check_golden(v2v_record, goldens)
        cells.append(v2v_record)
        v2v = v2v_record["fleet"]["v2v"]
        print(
            f"shards=2  v2v=0.3  v2v_sessions={v2v['sessions']}"
            f" ({v2v['cross_shard']} cross-shard, {v2v['rekeys']} re-keys),"
            f" {v2v['records_sent']} direct records  wall={wall_s:.1f} s"
        )

        required = 100 if args.quick else 500
        for record in cells[: len(SHARD_SWEEP)]:
            sessions = record["fleet"]["sessions_established"]
            if sessions < required:
                raise AssertionError(
                    f"expected >= {required} sessions at shards="
                    f"{record['shards']}, got {sessions}"
                )

        ratio = (
            f" ({queue_means[1] / queue_means[4]:.2f}x better)"
            if queue_means[4] > 0.0
            else " (no queueing at all with 4 shards)"
        )
        print(
            f"\nCA-queue mean latency: 1 shard = {queue_means[1]:.3f} ms,"
            f" 4 shards = {queue_means[4]:.3f} ms{ratio}"
        )
        if queue_means[4] >= queue_means[1]:
            raise AssertionError(
                "sharding failed to cut CA-queue latency:"
                f" 4 shards {queue_means[4]:.3f} ms >="
                f" 1 shard {queue_means[1]:.3f} ms"
            )

    # The churn cell: gateway failure -> rejoin at the next chain epoch,
    # with threshold-driven live migration (run twice: determinism).
    churn_record, _ = run_churn_cell(n_vehicles, spread)
    cells.append(churn_record)

    payload = {
        "benchmark": "topology",
        "mode": mode,
        "cells": cells,
    }
    with open(json_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {json_path}")
    print("OK")


# -- fast pytest-facing versions of the same assertions ------------------------


def test_small_fleet_sharding_cuts_queue_latency():
    """4 shards beat 1 shard on mean CA-queue wait for one burst workload."""
    means = {}
    for shards in (1, 4):
        config = FleetConfig(
            n_vehicles=16,
            seed=b"bench-topology-pytest",
            records_per_vehicle=2,
            max_records=4,
            arrival_spread_ms=5.0,  # burst arrivals force a queue
            shards=shards,
        )
        result = FleetOrchestrator(config).run()
        means[shards] = result.stats.ca_queue_latency.mean_ms
    assert means[4] < means[1]


def test_small_churn_cell_is_deterministic():
    """Migration+rejoin at pytest scale: identical digests, epoch 2."""
    config = FleetConfig(
        n_vehicles=8,
        seed=b"bench-topology-churn-pytest",
        records_per_vehicle=12,
        max_records=5,
        send_interval_ms=25.0,
        arrival_spread_ms=15.0,
        shards=2,
        shard_fail_at_ms=4_500.0,
        fail_shard=0,
        shard_rejoin_at_ms=6_000.0,
        migrate_threshold=1,
    )
    first = FleetOrchestrator(config).run().stats
    second = FleetOrchestrator(config).run().stats
    assert first.digest() == second.digest()
    assert first.rejoins == 1
    assert first.per_shard[0].epoch == 2
    assert first.migrations >= 1


if __name__ == "__main__":
    main()
