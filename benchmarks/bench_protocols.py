"""Wall-clock benchmarks of complete protocol runs (our Python stack).

Complements Table I: the *relative* cost ordering of the protocols should
hold even in pure Python, since it is dominated by the same EC operation
counts the device models price.
"""

from __future__ import annotations

import pytest

from repro.protocols import TABLE_ORDER, run_protocol


@pytest.mark.parametrize("protocol", TABLE_ORDER)
def test_protocol_run(benchmark, testbed, protocol):
    """Time one full session establishment (both parties, in memory)."""

    def run():
        party_a, party_b = testbed.party_pair(protocol, "alice", "bob")
        return run_protocol(party_a, party_b)

    transcript = benchmark(run)
    assert transcript.party_a.session_key == transcript.party_b.session_key


def test_ecqv_issuance(benchmark, testbed):
    """Time one certificate issuance round-trip."""
    from repro.ecqv import issue_credential
    from repro.primitives import HmacDrbg

    counter = iter(range(10**9))

    def issue():
        rng = HmacDrbg(b"bench-issue", personalization=str(next(counter)).encode())
        return issue_credential(testbed.ca, b"bench-device----", rng)

    credential = benchmark(issue)
    assert credential.private_key > 0
