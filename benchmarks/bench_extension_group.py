"""Extension bench: group-key establishment scaling.

Group formation over pairwise STS costs N full STS runs plus N cheap
wrapped-key distributions; a revocation costs only the symmetric
redistribution.  This bench quantifies both — the argument for composing
group keys on top of STS rather than re-running the KD per membership
change.
"""

from __future__ import annotations

import pytest

from repro.hardware import S32K144, party_time_ms
from repro.protocols import run_protocol
from repro.protocols.group import form_group
from repro.testbed import make_testbed

SIZES = (2, 4, 8)


def _member_names(n: int) -> tuple[str, ...]:
    return tuple(f"ecu{i}" for i in range(n))


@pytest.mark.parametrize("n_members", SIZES)
def test_group_formation(benchmark, n_members):
    """Form a group of N members (N pairwise STS runs + distribution)."""
    names = _member_names(n_members)
    testbed = make_testbed(
        ("gateway",) + names, seed=b"bench-group-%d" % n_members
    )

    def form():
        member_ctxs = {
            testbed.credentials[name].subject_id: testbed.context(name)
            for name in names
        }
        return form_group(testbed.context("gateway"), member_ctxs)

    leader, members = benchmark(form)
    assert len(members) == n_members
    assert all(m.group_key == leader.group_key for m in members.values())


def test_revocation_is_symmetric_only(benchmark):
    """Revocation redistributes without any new EC operations."""
    names = _member_names(6)
    testbed = make_testbed(("gateway",) + names, seed=b"bench-revoke")
    member_ctxs = {
        testbed.credentials[name].subject_id: testbed.context(name)
        for name in names
    }
    leader, members = form_group(testbed.context("gateway"), member_ctxs)
    revocation_order = list(leader.members)

    state = {"index": 0}

    def revoke_one():
        # Re-form when we run out of members to revoke.
        if len(leader.members) <= 1:
            for member_id, ctx in member_ctxs.items():
                if member_id not in leader.members:
                    leader.establish_member(ctx)
        target = leader.members[state["index"] % len(leader.members)]
        return leader.revoke(target)

    messages = benchmark(revoke_one)
    assert messages  # remaining members got fresh keys


def test_group_vs_pairwise_session_cost(benchmark):
    """Modelled S32K144 cost: group distribution ≪ one more STS run."""
    testbed = make_testbed(("gateway", "ecu0"), seed=b"bench-cmp")

    def one_sts():
        party_a, party_b = testbed.party_pair("sts", "gateway", "ecu0")
        return run_protocol(party_a, party_b)

    transcript = benchmark(one_sts)
    sts_ms = party_time_ms(transcript.party_a, S32K144)
    # A wrapped-key distribution is a handful of hash/AES blocks: model it
    # as < 1 ms on the same device vs ~1.8 s for the STS run.
    assert sts_ms > 1000.0
