"""Policy-ablation benchmark: one workload, every fleet-policy bundle.

Runs a fixed churn-plus-storm workload (two shards, a mid-run shard
failure and rejoin, a replay storm against the surviving shard) under
each registered policy bundle of :mod:`repro.fleet.policy` and asserts
the policy engine's contracts:

1. **Determinism** — every bundle cell is run twice in-process and must
   produce bit-identical :class:`~repro.fleet.FleetStats` digests.
2. **Default bit-parity** — the ``default`` bundle's cell must be
   bit-identical to the same workload run with no policy selected at
   all (``policy=None``), and both must match the committed golden
   digest below; any drift in the extracted legacy strategies fails
   the benchmark before the regression gate even runs.
3. **Attacks fail loudly under every bundle** — the replay storm must
   report nonzero attempts, all rejected, zero successful forgeries,
   no matter which strategies are steering the fleet.
4. **Decisions are accounted** — each cell records the engine's
   per-``(point, rule)`` decision tallies, and the observed run must
   lint clean (the ``policy-balance`` tracelint rule cross-checks the
   decision counters against the actions they triggered).

Run standalone (used by the acceptance check)::

    PYTHONPATH=src python benchmarks/bench_policies.py          # full
    PYTHONPATH=src python benchmarks/bench_policies.py --quick  # CI smoke

Either mode writes a machine-readable ``BENCH_policies.json`` (one
record per bundle: throughput, latency percentiles, decision tallies,
injection accounting, digest, digest-tree root); ``--json`` overrides
the path.  Under pytest the module contributes fast, small-fleet
versions of the same assertions.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.fleet import (  # noqa: E402
    POLICY_BUNDLES,
    FleetConfig,
    FleetOrchestrator,
    ReplayStorm,
    Scenario,
)
from repro.obs import Observer, lint_archive, write_jsonl  # noqa: E402

#: Every registered bundle, the extracted legacy strategies first.  The
#: sweep iterates this tuple (not the registry dict) so the cell order
#: in ``BENCH_policies.json`` is stable.
BUNDLES = ("default",) + tuple(
    sorted(name for name in POLICY_BUNDLES if name != "default")
)

#: Frozen digests of the ``default`` cell per mode, captured when the
#: bundle was extracted from the hard-coded strategies.  The ablation
#: workload predates no PR, so these anchor the *extraction*: the
#: default bundle steering this workload must keep producing exactly
#: what the legacy inline logic produced.
DEFAULT_GOLDENS = {
    "quick": (
        "e49c2cee41b2eaad1f3ce4466fcb2e87c6dab28d78f07162123f2c035a9f853f"
    ),
    "full": (
        "23c139e353d6e2b19feb6cdc19e83d6a734419d13fc521ce3453a65fdbb8b290"
    ),
}


def policy_workload(quick: bool) -> tuple[FleetConfig, Scenario]:
    """The fixed workload every bundle is measured against.

    Round-robin assignment populates both shards deterministically, the
    replay storm fires mid-traffic against shard 1 (application records
    start flowing ~3.7 s in, once enrollment and the CA batch drain),
    then shard 0 fails and rejoins — so every decision point (assign,
    migrate, rekey, failover) is live.  ``migrate_threshold`` stays
    unset: it would conflict with the ``utilisation-rebalance`` bundle
    (see :func:`repro.fleet.bundle_conflict`), and the sweep needs one
    config valid under every bundle.
    """
    config = FleetConfig(
        n_vehicles=12 if quick else 32,
        seed=b"bench-policies",
        records_per_vehicle=12,
        # Strictly above the storm-rekey budget (4): the storm-hardened
        # bundle must have room to re-key *earlier* than the managers'
        # own session cap while the storm window is open.
        max_records=6,
        send_interval_ms=20.0,
        arrival_spread_ms=50.0,
        shards=2,
        shard_policy="round-robin",
        shard_fail_at_ms=5_200.0,
        fail_shard=0,
        shard_rejoin_at_ms=6_800.0,
    )
    scenario = Scenario(
        name="policy-ablation",
        injections=(
            ReplayStorm(at_ms=4_500.0, replays=16, target_shard=1),
        ),
    )
    return config, scenario


def run_policy_cell(bundle: str, quick: bool) -> tuple[dict, float]:
    """Run one bundle twice; assert determinism, defenses and linting.

    The second run is observed (digest-neutral by contract — the
    determinism assert would catch a violation), its event stream is
    exported to a JSONL archive and run through tracelint: every cell
    must lint clean — which exercises the ``policy-balance`` rule
    against live decision counters — and the cell records its
    digest-tree root and decision tallies next to the stats digest.
    """
    base_config, scenario = policy_workload(quick)
    config = dataclasses.replace(base_config, policy=bundle)
    wall = 0.0
    digests = []
    orch = None
    obs = None
    for attempt in range(2):
        obs = Observer() if attempt == 1 else None
        orch = FleetOrchestrator(config, scenario=scenario, obs=obs)
        t0 = time.perf_counter()
        stats = orch.run().stats
        wall += time.perf_counter() - t0
        digests.append(stats.digest())
    if digests[0] != digests[1]:
        raise AssertionError(
            f"non-deterministic bundle {bundle!r}:"
            f" {digests[0]} != {digests[1]}"
        )
    if stats.attack_attempts <= 0:
        raise AssertionError(f"bundle {bundle!r}: the storm never attacked")
    if stats.attack_successes != 0:
        raise AssertionError(
            f"SECURITY: bundle {bundle!r} saw"
            f" {stats.attack_successes} successful forgeries"
        )
    if stats.attack_rejections != stats.attack_attempts:
        raise AssertionError(
            f"bundle {bundle!r} lost attempts:"
            f" {stats.attack_rejections} rejected"
            f" != {stats.attack_attempts} attempted"
        )
    with tempfile.TemporaryDirectory() as tmp:
        archive = os.path.join(tmp, f"{bundle}.jsonl")
        write_jsonl(archive, obs.deterministic_events())
        findings = lint_archive(archive)
    if findings:
        raise AssertionError(
            f"tracelint findings on bundle {bundle!r}: "
            + "; ".join(f.render() for f in findings)
        )
    decisions = {
        f"{point}:{rule}": count
        for (point, rule), count in sorted(
            orch.policy.decision_counts.items()
        )
    }
    if not decisions:
        raise AssertionError(
            f"bundle {bundle!r} recorded no policy decisions at all"
        )
    record = {
        "scenario": scenario.name,
        "policy": bundle,
        "shards": config.shards,
        "v2v_fraction": config.v2v_fraction,
        "n_vehicles": config.n_vehicles,
        "churn": config.shard_rejoin_at_ms is not None,
        "host_wall_s": wall,
        "tree_root": obs.digest_tree().root_digest,
        "decisions": decisions,
        "fleet": stats.as_dict(),
    }
    return record, wall


def run_default_parity(cells: list[dict], quick: bool) -> str:
    """Anchor the ``default`` cell: implicit == explicit == golden.

    The same workload with ``policy=None`` (the engine assembling the
    implicit default bundle exactly as the pre-policy code paths did)
    must reproduce the ``default`` cell's digest bit for bit, and both
    must match the frozen :data:`DEFAULT_GOLDENS` entry when one is
    committed for the mode.  Returns the anchored digest.
    """
    default_cell = next(c for c in cells if c["policy"] == "default")
    config, scenario = policy_workload(quick)
    implicit = FleetOrchestrator(config, scenario=scenario).run().stats
    if implicit.digest() != default_cell["fleet"]["digest"]:
        raise AssertionError(
            "default-bundle parity violated: policy=None produced"
            f" {implicit.digest()} but the 'default' cell recorded"
            f" {default_cell['fleet']['digest']}"
        )
    golden = DEFAULT_GOLDENS["quick" if quick else "full"]
    if golden is not None and implicit.digest() != golden:
        raise AssertionError(
            "default bundle drifted off the frozen ablation golden:"
            f" {implicit.digest()} != {golden}"
        )
    return implicit.digest()


def main() -> None:
    """Drive the bundle ablation sweep and write the JSON record."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: 12-vehicle fleets",
    )
    parser.add_argument(
        "--json",
        default="BENCH_policies.json",
        metavar="PATH",
        help="machine-readable output path",
    )
    args = parser.parse_args()
    mode = "quick" if args.quick else "full"

    cells = []
    for bundle in BUNDLES:
        record, wall = run_policy_cell(bundle, args.quick)
        fleet = record["fleet"]
        tallies = " ".join(
            f"{key}={count}" for key, count in record["decisions"].items()
        )
        print(
            f"{bundle:<22s} vehicles={record['n_vehicles']:<3d}"
            f" sessions={fleet['sessions_established']:<4d}"
            f" migrations={fleet['churn']['migrations']:<3d}"
            f" rekeys={fleet['rekeys']:<3d}"
            f" wall={wall:5.1f} s (x2, digest identical)\n"
            f"{'':<22s} decisions: {tallies}"
        )
        cells.append(record)

    if len(cells) < 3:
        raise AssertionError(
            f"ablation shrank: only {len(cells)} bundles swept"
        )
    anchored = run_default_parity(cells, args.quick)
    print(
        f"{'default-parity':<22s} policy=None reproduces the 'default'"
        f" cell bit-for-bit ({anchored[:16]}…)"
    )

    payload = {"benchmark": "policies", "mode": mode, "cells": cells}
    with open(args.json, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.json}")
    print("OK")


# -- fast pytest-facing versions of the same assertions ------------------------


def test_policy_cell_is_deterministic_and_lints_clean():
    """One full cell at quick scale: double-run digest, lint, tallies.

    ``run_policy_cell`` raises on any digest drift, forgery, missing
    decision tally or tracelint finding, so this covers the observe →
    export → lint path (including ``policy-balance``) end to end; the
    every-bundle sweep lives in the standalone bench.
    """
    record, _ = run_policy_cell("storm-hardened", quick=True)
    assert record["tree_root"]
    assert record["policy"] == "storm-hardened"
    assert any(key.startswith("rekey:") for key in record["decisions"])


def test_default_bundle_matches_implicit_run_at_pytest_scale():
    """policy=None and policy='default' agree on the ablation workload."""
    config, scenario = policy_workload(quick=True)
    implicit = FleetOrchestrator(config, scenario=scenario).run().stats
    explicit = FleetOrchestrator(
        dataclasses.replace(config, policy="default"), scenario=scenario
    ).run().stats
    assert implicit.digest() == explicit.digest()


def test_sweep_covers_at_least_three_strategies():
    """The registry keeps the ablation honest: >= 3 bundles, default first."""
    assert len(BUNDLES) >= 3
    assert BUNDLES[0] == "default"
    assert set(BUNDLES) == set(POLICY_BUNDLES)


if __name__ == "__main__":
    main()
