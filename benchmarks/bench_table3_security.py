"""Benchmark ``tab3``: the security matrix, built from executed attacks."""

from __future__ import annotations

from repro.experiments import run_table3
from repro.security import record_then_compromise
from repro.testbed import make_testbed


def test_table3_reproduction(benchmark):
    """Evaluate the full matrix (runs the attack suite); must match paper."""
    result = benchmark(run_table3)
    assert result.matches_paper()
    print("\n" + result.render())


def test_forward_secrecy_attack_cost(benchmark):
    """Time the record-then-compromise attack against S-ECDSA.

    The attack itself is cheap (one fused recomputation + decryptions) —
    which is exactly why static KD is dangerous.
    """
    testbed = make_testbed(("alice", "bob"), seed=b"bench-attack")
    result = benchmark(lambda: record_then_compromise(testbed, "s-ecdsa"))
    assert result.success


def test_sts_resists_same_attack(benchmark):
    testbed = make_testbed(("alice", "bob"), seed=b"bench-attack-sts")
    result = benchmark(lambda: record_then_compromise(testbed, "sts"))
    assert not result.success
