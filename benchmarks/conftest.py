"""Shared fixtures for the benchmark harness.

Every ``bench_*`` module regenerates one table or figure of the paper.
``pytest benchmarks/ --benchmark-only`` runs them all; each benchmark
both *times* the reproduction (pytest-benchmark statistics) and *prints*
the regenerated artifact so the numbers can be compared against the paper
side by side (run with ``-s`` to see the reports).
"""

from __future__ import annotations

import pytest

from repro.protocols import TABLE_ORDER, run_protocol
from repro.testbed import make_testbed


@pytest.fixture(scope="session")
def testbed():
    """Provisioned CA + devices shared across the benchmark session."""
    return make_testbed(("alice", "bob"), seed=b"bench-testbed")


@pytest.fixture(scope="session")
def transcripts(testbed):
    """One completed transcript per protocol (for pricing benchmarks)."""
    result = {}
    for name in TABLE_ORDER:
        party_a, party_b = testbed.party_pair(name, "alice", "bob")
        result[name] = run_protocol(party_a, party_b)
    return result
