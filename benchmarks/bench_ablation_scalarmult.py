"""Ablation: scalar-multiplication strategy choices behind the cost model.

Two modelling decisions in ``repro.hardware.cost`` are checked against
the actual implementation's wall clock:

* the Strauss–Shamir double multiplication is priced at 1.08 × a single
  multiplication (it is what makes ECDSA verification and the SCIANC
  fusion cheap) — measured here to confirm it is far below 2×;
* the uniform ladder (side-channel-hardened style) costs measurably more
  than wNAF, quantifying what constant-time hardening would add to every
  Table I cell.
"""

from __future__ import annotations

import time

from repro.ec import SECP256R1, mul_base, mul_double, mul_ladder, mul_point

K1 = 0xA1B2C3D4E5F60718293A4B5C6D7E8F90A1B2C3D4E5F60718293A4B5C6D7E8F90 % SECP256R1.n
K2 = 0x1122334455667788991122334455667788991122334455667788991122334455 % SECP256R1.n
P = mul_base(7, SECP256R1)
Q = mul_base(11, SECP256R1)


def test_wnaf_single_mult(benchmark):
    result = benchmark(mul_point, K1, P)
    assert not result.is_infinity


def test_double_mult(benchmark):
    result = benchmark(mul_double, K1, P, K2, Q)
    assert not result.is_infinity


def test_ladder_mult(benchmark):
    result = benchmark(mul_ladder, K1, P)
    assert not result.is_infinity


def test_double_mult_is_fused_not_two(benchmark):
    """The modelling claim: u*P + v*Q costs ~1.1-1.5 single mults, not 2.

    (Wall-clock in Python is noisier than cycle counts; the assertion
    brackets the ratio far from the 2.0 an unfused implementation shows.)
    """

    def measure():
        n = 8
        t0 = time.perf_counter()
        for _ in range(n):
            mul_point(K1, P)
        single = (time.perf_counter() - t0) / n
        t0 = time.perf_counter()
        for _ in range(n):
            mul_double(K1, P, K2, Q)
        double = (time.perf_counter() - t0) / n
        return double / single

    ratio = benchmark(measure)
    assert 0.9 < ratio < 1.8, ratio


def test_ladder_overhead_vs_wnaf(benchmark):
    """Uniform-schedule hardening costs extra; quantify it."""

    def measure():
        n = 8
        t0 = time.perf_counter()
        for _ in range(n):
            mul_point(K1, P)
        wnaf = (time.perf_counter() - t0) / n
        t0 = time.perf_counter()
        for _ in range(n):
            mul_ladder(K1, P)
        ladder = (time.perf_counter() - t0) / n
        return ladder / wnaf

    ratio = benchmark(measure)
    assert ratio > 1.1, ratio  # the ladder must be measurably slower
