"""Benchmark ``fig8``: the STS-ECQV threat-model block diagram."""

from __future__ import annotations

from repro.experiments import run_fig8


def test_fig8_reproduction(benchmark):
    """Build the threat-model graph; every threat must be covered."""
    result = benchmark(run_fig8)
    assert result.fully_covered
    assert result.coverage["T3"] == ["R"]  # node capture: partial only
    print("\n" + result.render())
