"""Benchmark ``tab1``: regenerate Table I (execution time × devices).

The benchmark times the full Table I reproduction (7 protocol variants
run with real cryptography, priced on 4 calibrated device models) and
asserts the reproduced cells stay within tolerance of the paper.
"""

from __future__ import annotations

from repro.experiments import run_table1
from repro.hardware import DEVICES, PAPER_TABLE1, pair_time_ms
from repro.protocols import TABLE_ORDER
from repro.sim.schedule import protocol_total_ms


def test_table1_full_reproduction(benchmark):
    """Regenerate the whole table; check deltas and orderings."""
    result = benchmark(run_table1)
    assert result.max_abs_delta() < 0.15
    assert result.orderings_hold()
    print("\n" + result.render())


def test_table1_single_protocol_pricing(benchmark, transcripts):
    """Pricing one completed transcript on all devices is trace-cheap."""

    def price_all():
        return {
            (name, device.name): protocol_total_ms(transcripts[name], device)
            for name in TABLE_ORDER
            for device in DEVICES.values()
        }

    cells = benchmark(price_all)
    for (name, device_name), modelled in cells.items():
        paper = PAPER_TABLE1[name][device_name]
        assert abs(modelled / paper - 1) < 0.15


def test_table1_sts_vs_s_ecdsa_headline(benchmark, transcripts):
    """The ~20 % STS overhead claim, on every device."""

    def headline():
        return {
            device.name: pair_time_ms(transcripts["sts"], device)
            / pair_time_ms(transcripts["s-ecdsa"], device)
            for device in DEVICES.values()
        }

    ratios = benchmark(headline)
    for device_name, ratio in ratios.items():
        assert 1.15 < ratio < 1.30, (device_name, ratio)
