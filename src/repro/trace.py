"""Primitive-operation cost tracing.

The paper measures protocol execution time on four embedded boards.  We run
the *real* cryptography (pure Python) and, instead of wall-clock time, count
how often each costly primitive is invoked.  A device model
(:mod:`repro.hardware`) then prices each event class to reconstruct the
embedded execution time.  This mirrors how embedded engineers budget
cycle counts before measuring on silicon.

Every traced primitive calls :func:`record` with a stable event name, e.g.::

    ec.mul_base      scalar multiplication of the curve base point
    ec.mul_point     scalar multiplication of an arbitrary point
    ec.mul_double    Shamir/Strauss double multiplication (u*P + v*Q)
    ec.add           stand-alone affine point addition
    mod.inv          stand-alone modular inversion
    sha2.block       one 64-byte (SHA-256) / 128-byte (SHA-512) compression
    aes.block        one AES block encryption/decryption
    hmac.call        one HMAC computation (excl. its hash blocks)
    kdf.call         one KDF invocation (excl. its hash blocks)
    drbg.generate    one DRBG generate call
    rng.bytes        random byte generation request

Tracing is nestable: multiple :class:`CostTrace` objects may be active at
once (e.g. a per-operation trace inside a per-protocol trace) and each
records every event.  When no trace is active, :func:`record` is a cheap
no-op, so the primitives stay usable as an ordinary crypto library.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

_ACTIVE: ContextVar[tuple["CostTrace", ...]] = ContextVar(
    "repro_active_traces", default=()
)


class CostTrace:
    """A counter of primitive-operation events.

    Attributes:
        counts: mapping of event name to number of occurrences.
        label: optional human-readable label (used in reports).
    """

    __slots__ = ("counts", "label")

    def __init__(self, label: str = "") -> None:
        self.counts: Counter[str] = Counter()
        self.label = label

    def record(self, event: str, n: int = 1) -> None:
        """Add ``n`` occurrences of ``event`` to this trace."""
        self.counts[event] += n

    def merge(self, other: "CostTrace") -> None:
        """Fold another trace's counts into this one."""
        self.counts.update(other.counts)

    def copy(self) -> "CostTrace":
        """Return an independent copy of this trace."""
        dup = CostTrace(self.label)
        dup.counts = Counter(self.counts)
        return dup

    def __getitem__(self, event: str) -> int:
        return self.counts.get(event, 0)

    def total(self, prefix: str = "") -> int:
        """Total event count, optionally restricted to a name prefix."""
        return sum(
            n for name, n in self.counts.items() if name.startswith(prefix)
        )

    def as_dict(self) -> dict[str, int]:
        """Snapshot the counts as a plain dict (sorted by event name)."""
        return dict(sorted(self.counts.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.counts.items()))
        label = f" {self.label!r}" if self.label else ""
        return f"<CostTrace{label} {inner}>"


def record(event: str, n: int = 1) -> None:
    """Record ``n`` occurrences of ``event`` on every active trace."""
    traces = _ACTIVE.get()
    if traces:
        for t in traces:
            t.record(event, n)


def tracing_active() -> bool:
    """Return True if at least one :class:`CostTrace` is active."""
    return bool(_ACTIVE.get())


@contextmanager
def trace(label: str = "") -> Iterator[CostTrace]:
    """Context manager that activates a fresh :class:`CostTrace`.

    Example::

        with trace("sts-op1") as t:
            curve.mul_base(secret)
        assert t["ec.mul_base"] == 1
    """
    t = CostTrace(label)
    token = _ACTIVE.set(_ACTIVE.get() + (t,))
    try:
        yield t
    finally:
        _ACTIVE.reset(token)
