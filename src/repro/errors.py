"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError` so callers
can catch everything from this package with a single ``except`` clause while
still being able to discriminate between the cryptographic, protocol and
simulation layers.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class MathError(ReproError):
    """Errors from the modular/elliptic-curve arithmetic layer."""


class NonResidueError(MathError):
    """A modular square root was requested for a quadratic non-residue."""


class NotInvertibleError(MathError):
    """A modular inverse was requested for a non-invertible element."""


class CurveError(MathError):
    """A point or parameter is inconsistent with its elliptic curve."""


class PointDecodingError(CurveError):
    """An octet string could not be decoded into a valid curve point."""


class CryptoError(ReproError):
    """Errors from the symmetric/hash primitive layer."""


class SignatureError(CryptoError):
    """An ECDSA signature failed to verify or could not be produced."""


class BackendError(CryptoError):
    """A crypto backend is unknown or could not be activated.

    Subclasses :class:`CryptoError` because backend selection is part of
    the primitive layer's contract; raised with actionable messages
    naming the offending backend and the registered alternatives.
    """


class CertificateError(ReproError):
    """An ECQV certificate is malformed, expired or fails validation."""


class ProtocolError(ReproError):
    """A key-derivation protocol run violated its state machine."""


class AuthenticationError(ProtocolError):
    """A peer failed authentication during session establishment."""


class NetworkError(ReproError):
    """Errors from the CAN-FD / ISO-TP network simulation layer."""


class FrameError(NetworkError):
    """A CAN/CAN-FD frame is malformed or exceeds protocol limits."""


class SegmentationError(NetworkError):
    """ISO-TP segmentation or reassembly failed."""


class SimulationError(ReproError):
    """Errors from the discrete-event simulator."""


class ConfigError(SimulationError):
    """A simulation/fleet configuration carries nonsense values.

    Subclasses :class:`SimulationError` so callers catching simulation
    errors keep working; raised with actionable messages naming the bad
    field and the accepted range.
    """


class StatsError(SimulationError):
    """A statistics aggregate received or produced nonsense values.

    Raised when non-finite samples (NaN/inf) reach a latency summary or
    a streaming accumulator: rendered into digest material they would
    poison the reproducibility contract as ``nan``/``inf`` strings, so
    they are rejected eagerly with the offending value named.
    """


class ScenarioError(SimulationError):
    """A fleet scenario spec is invalid or inconsistent with its config.

    Covers both spec-level nonsense (negative rates, overlapping burst
    waves, empty names) and compile-time mismatches (profiles claiming
    more vehicles than the fleet has, injections that need topology
    features the :class:`~repro.fleet.FleetConfig` did not enable).
    """


class PolicyError(SimulationError):
    """A fleet policy rule or bundle is invalid or misbehaved.

    Covers spec-level nonsense (unknown rule kinds, out-of-range
    parameters, duplicate registry entries), load-time payload errors
    and runtime violations (a rule returning a decision that targets a
    dead or out-of-range shard).  Subclasses :class:`SimulationError`
    so callers catching simulation errors keep working.
    """


class HardwareModelError(ReproError):
    """A device model is missing a cost entry or got invalid parameters."""


class AnalysisError(ReproError):
    """Errors from the security/overhead analysis layer."""


class ObsError(ReproError):
    """Errors from the observability layer (spans, metrics, exporters)."""
