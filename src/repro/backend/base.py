"""Backend contract: the seam between *what* is computed and *how*.

Every symmetric/hash primitive in :mod:`repro.primitives` — and, since
the EC extension of the seam, every scalar multiplication in
:mod:`repro.ec.scalarmult` — dispatches its heavy lifting through a
:class:`CryptoBackend`.  Two things are fixed by this module and
therefore identical across backends:

1. **Bytes.**  Both backends implement the same FIPS functions, so every
   digest, tag, keystream and ciphertext is bit-identical.  The
   hypothesis fuzz suite (``tests/backend/test_parity_fuzz.py``) locks
   this down over random inputs.
2. **Trace events.**  The hardware cost model prices *counted primitive
   events* (``sha2.block``, ``aes.block``, ``hmac.call``, ...), not host
   wall-clock.  The reference backend emits one event per actual
   compression; an accelerated backend cannot observe individual
   compressions inside ``hashlib``/OpenSSL, so it computes the exact
   same counts **analytically** from message lengths using the helpers
   below.  Because :class:`repro.trace.CostTrace` is a pure counter and
   no trace scope can open or close in the middle of a primitive call,
   emitting ``n`` events in one :func:`repro.trace.record` call is
   indistinguishable from ``n`` single-event calls — which is what makes
   every fleet digest bit-identical under both backends.

The analytic accounting mirrors FIPS 180-4 padding: a message of ``L``
bytes is padded with ``0x80``, zero bytes and a ``length_bytes``-byte
bit-length field up to a whole number of ``block_size``-byte blocks.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HashInfo:
    """Backend-independent metadata of one SHA-2 family member.

    Attributes:
        name: canonical lowercase name (``sha256`` ...).
        block_size: compression-function input size in bytes (64/128).
        digest_size: output size in bytes after truncation.
        length_bytes: size of the FIPS 180-4 message-length field
            appended by the padding (8 for 64-byte blocks, 16 for
            128-byte blocks).
    """

    name: str
    block_size: int
    digest_size: int
    length_bytes: int


#: The four supported hashes.  This table is the single source of truth
#: for block/digest geometry; both backends and every primitive that
#: only needs metadata (HKDF, DRBG, RFC 6979) read it instead of
#: touching a concrete implementation.
HASH_INFO: dict[str, HashInfo] = {
    "sha224": HashInfo("sha224", 64, 28, 8),
    "sha256": HashInfo("sha256", 64, 32, 8),
    "sha384": HashInfo("sha384", 128, 48, 16),
    "sha512": HashInfo("sha512", 128, 64, 16),
}


def compression_blocks(message_len: int, info: HashInfo) -> int:
    """Compressions needed to hash an ``message_len``-byte message.

    FIPS 180-4 padding appends ``0x80``, zeros and the bit-length field,
    so the padded message spans ``(message_len + length_bytes) //
    block_size + 1`` blocks.  This is exactly how many ``sha2.block``
    events the reference implementation records for a one-shot hash.
    """
    return (message_len + info.length_bytes) // info.block_size + 1


def final_blocks(buffered_len: int, info: HashInfo) -> int:
    """Compressions a streaming hash performs at finalization.

    ``buffered_len`` is the number of not-yet-compressed message bytes
    (``total_length % block_size``); padding always fits in one or two
    more blocks.
    """
    return (buffered_len + info.length_bytes) // info.block_size + 1


def hmac_sha2_blocks(key_len: int, message_len: int, info: HashInfo) -> int:
    """Total ``sha2.block`` events of one HMAC computation.

    Mirrors RFC 2104 over the reference implementation: an over-long key
    is hashed down first, then the inner hash absorbs one key block plus
    the message and the outer hash absorbs one key block plus the inner
    digest.
    """
    blocks = 0
    if key_len > info.block_size:
        blocks += compression_blocks(key_len, info)
    blocks += compression_blocks(info.block_size + message_len, info)
    blocks += compression_blocks(info.block_size + info.digest_size, info)
    return blocks


class CryptoBackend:
    """Abstract provider of the symmetric/hash primitives.

    Implementations must preserve the two invariants documented in the
    module docstring (byte parity and trace parity).  The primitive
    layer (:mod:`repro.primitives`) is the only caller; user code keeps
    importing ``repro.primitives`` and never sees the backend directly
    unless it wants to switch it via :func:`repro.backend.set_backend`.
    """

    #: Registry name of the backend (``reference`` / ``accelerated``).
    name: str = "abstract"

    def create_hash(self, name: str, data: bytes = b""):
        """Return a streaming hash object for ``name``.

        The object must offer the reference surface: ``update(data)``
        (chainable), ``digest()``/``hexdigest()`` (non-destructive,
        repeatable), ``copy()``, plus ``name``, ``block_size`` and
        ``digest_size`` attributes.
        """
        raise NotImplementedError

    def hash_digest(self, name: str, data: bytes) -> bytes:
        """One-shot digest of ``data`` (same events as a streamed hash)."""
        raise NotImplementedError

    def hmac_digest(self, key: bytes, message: bytes, hash_name: str) -> bytes:
        """One-shot HMAC tag, emitting ``hmac.call`` + its hash blocks."""
        raise NotImplementedError

    def create_cipher(self, key: bytes):
        """Return an AES cipher for ``key`` (16/24/32 bytes).

        The object must offer ``encrypt_block``/``decrypt_block`` (one
        ``aes.block`` event each) and the bulk helpers
        ``encrypt_ecb``/``decrypt_ecb``, ``encrypt_cbc``/``decrypt_cbc``
        (IV + whole blocks, no padding) and ``ctr_keystream`` — each
        emitting one ``aes.block`` event per 16-byte block processed.
        """
        raise NotImplementedError

    # -- elliptic-curve operations -----------------------------------------
    #
    # The EC seam mirrors the primitive seam one layer up: the *callers*
    # (:mod:`repro.ec.scalarmult`) keep ownership of scalar reduction,
    # degenerate-case collapsing (``k == 0``/infinity inputs) and trace
    # events (``ec.mul_base``/``ec.mul_point``/``ec.mul_double``), so a
    # backend only ever sees the non-degenerate core computation and
    # must not record anything.  Because affine coordinates of a group
    # element are unique, byte parity is automatic for any *correct*
    # implementation — which is what makes this seam safe to accelerate.
    #
    # The default implementations below ARE the reference path: they
    # delegate to the unchanged from-scratch Jacobian/wNAF/comb code in
    # :mod:`repro.ec.scalarmult` (imported lazily to avoid cycles), so
    # the reference backend and any registered custom backend inherit
    # bit-exact behaviour without writing a line of EC code.

    def ec_mul_base(self, curve, k: int):
        """``k*G`` for ``1 <= k < n`` (fixed-base path); returns a Point."""
        from ..ec.point import from_jacobian
        from ..ec.scalarmult import _mul_base_jac

        return from_jacobian(curve, _mul_base_jac(k, curve))

    def ec_mul(self, curve, k: int, point):
        """``k*P`` for ``1 <= k < n`` and non-infinity ``P`` on ``curve``."""
        from ..ec.scalarmult import _mul_wnaf_untraced

        return _mul_wnaf_untraced(k, point)

    def ec_mul_double(self, curve, u: int, p_point, v: int, q_point):
        """``u*P + v*Q`` with ``0 <= u, v < n``, not both terms degenerate."""
        from ..ec.point import from_jacobian
        from ..ec.scalarmult import _mul_double_jac

        return from_jacobian(curve, _mul_double_jac(u, p_point, v, q_point))

    def ec_mul_base_batch(self, curve, ks: list) -> list:
        """``[k*G for k in ks]`` with scalars already reduced mod ``n``.

        Zero scalars map to the point at infinity.  The reference path
        leaves every result in Jacobian coordinates and converts the
        whole batch through one shared :meth:`ec_normalize_batch`
        inversion — the Montgomery-trick win batched CA issuance rides
        on.
        """
        from ..ec.point import JAC_INFINITY
        from ..ec.scalarmult import _mul_base_jac

        jacs = [
            JAC_INFINITY if k == 0 else _mul_base_jac(k, curve) for k in ks
        ]
        return self.ec_normalize_batch(curve, jacs)

    def ec_mul_double_batch(self, curve, terms: list) -> list:
        """Many ``u*P + v*Q`` terms; ``None`` entries mark degenerate terms.

        ``terms`` holds ``(u, p_point, v, q_point)`` tuples already
        reduced and validated by the caller, or ``None`` where the
        caller collapsed a term to infinity.
        """
        from ..ec.point import JAC_INFINITY
        from ..ec.scalarmult import _mul_double_jac

        jacs = [
            JAC_INFINITY if term is None else _mul_double_jac(*term)
            for term in terms
        ]
        return self.ec_normalize_batch(curve, jacs)

    def ec_normalize_batch(self, curve, jacs: list) -> list:
        """Jacobian→affine conversion of a whole batch (shared inversion)."""
        from ..ec.point import normalize_batch

        return normalize_batch(curve, jacs)

    def describe(self) -> dict:
        """Introspection for benchmarks and docs (JSON-serialisable)."""
        return {"name": self.name}
