"""Accelerated elliptic-curve arithmetic for the ``accelerated`` backend.

Two speed tiers, selected per curve with graceful fallback:

1. **OpenSSL point math** (optional ``cryptography`` package), for the
   named curves whose parameters match a curve OpenSSL also ships:

   * ``k*G`` comes straight from ``ec.derive_private_key(k).public_key()``
     — both affine coordinates, one C call;
   * ``k*P`` for an arbitrary point uses two ECDH evaluations.  ECDH
     only exposes the *x* coordinate of the shared point, so the *y*
     coordinate of ``R = k*P`` is recovered algebraically from
     ``x(k*P)``, ``x((k+1)*P)`` and ``P`` with the Okeya–Sakurai
     y-recovery identity for short-Weierstrass curves::

         y_R = (2b + (a + x_P*x_R)(x_P + x_R) - x_S (x_P - x_R)^2) / (2 y_P)

     where ``S = (k+1)*P = R + P``.  One modular inversion, no square
     root, no sign ambiguity.  ``k in {1, n-1}`` (where ``S`` would
     degenerate or ``x_R == x_P``) short-circuits to ``±P``.
   * ``u*P + v*Q`` decomposes into the two single multiplications above
     plus one untraced affine addition.

   Every result is rebuilt as a :class:`~repro.ec.point.Point`, whose
   constructor re-validates the curve equation — an incorrect C result
   or recovery step fails loudly instead of corrupting a protocol run.

2. **Pure-Python affine-window fallback** for unknown/custom curves or
   when ``cryptography`` is not importable: fixed-base multiplication
   uses a *wider* comb (8 teeth instead of the reference 4 — an eighth
   of the doublings per multiplication, with the 255-entry affine table
   normalized through one shared-Z batch inversion), while arbitrary-
   point and double multiplications fall back to the reference
   wNAF code, which is already the fastest pure-Python schedule here.

Nothing in this module records trace events: the scalar-multiplication
wrappers in :mod:`repro.ec.scalarmult` own the ``ec.mul_*`` accounting,
so trace streams are bit-identical across backends by construction.
Byte parity is automatic because affine coordinates of a group element
are unique; ``tests/backend/test_parity_fuzz.py`` locks both down over
edge scalars (``1, 2, n-2, n-1, n, n+1``) and random scalars on every
registered curve.
"""

from __future__ import annotations

try:  # EC offload is optional; the pure-Python fallback covers its absence.
    from cryptography.hazmat.primitives.asymmetric import ec as _x_ec

    OPENSSL_EC = True
except ImportError:  # pragma: no cover - exercised via the fallback tests
    _x_ec = None
    OPENSSL_EC = False

#: Our SEC/Brainpool curve names -> ``cryptography`` curve class names.
#: Only curves whose *full* parameters match the canonical registry entry
#: are ever offloaded (see :meth:`AcceleratedEc._curve_impl`).
_OPENSSL_CURVE_CLASSES = {
    "secp192r1": "SECP192R1",
    "secp224r1": "SECP224R1",
    "secp256r1": "SECP256R1",
    "secp256k1": "SECP256K1",
    "secp384r1": "SECP384R1",
    "brainpoolP256r1": "BrainpoolP256R1",
    "brainpoolP384r1": "BrainpoolP384R1",
}

#: Comb teeth of the pure-Python fallback (reference uses 4): twice the
#: teeth means half the doublings and half the window additions per
#: multiplication, paid for by a 2^8 - 1 = 255-entry per-curve table.
_FALLBACK_TEETH = 8

#: Bound on cached OpenSSL public-key objects / fallback comb tables, so
#: a long-lived process multiplying many distinct points cannot grow
#: either cache without bound (FIFO eviction, like the wNAF table cache
#: in :mod:`repro.ec.scalarmult`).
_PUB_CACHE_LIMIT = 256
_COMB_CACHE_LIMIT = 16


def _bounded_insert(cache: dict, limit: int, key, value) -> None:
    """Insert into a FIFO-bounded cache (dict insertion order)."""
    while len(cache) >= limit:
        cache.pop(next(iter(cache)))
    cache[key] = value


class AcceleratedEc:
    """Per-backend EC engine: OpenSSL when it matches, fast comb otherwise."""

    def __init__(self) -> None:
        # Curve -> cryptography curve instance, or None (= fall back).
        self._impls: dict = {}
        # (Curve, x, y) -> cached OpenSSL public-key object.
        self._pub_keys: dict = {}
        # Curve -> (columns, affine table) for the wide fallback comb.
        self._comb_tables: dict = {}

    # -- OpenSSL plumbing ---------------------------------------------------

    def _curve_impl(self, curve):
        """The OpenSSL curve for ``curve``, or ``None`` to fall back.

        A curve is offloaded only when its **full parameters** equal the
        canonical registry entry of the same name (the aliasing
        discipline every EC cache in this codebase follows) *and* a
        probe multiplication reproduces the generator — so an OpenSSL
        build without (say) Brainpool support degrades per curve instead
        of failing.
        """
        try:
            return self._impls[curve]
        except KeyError:
            pass
        impl = None
        if OPENSSL_EC:
            from ..ec.curve import CURVES

            class_name = _OPENSSL_CURVE_CLASSES.get(curve.name)
            if class_name is not None and CURVES.get(curve.name) == curve:
                candidate = getattr(_x_ec, class_name, None)
                if candidate is not None:
                    try:
                        numbers = (
                            _x_ec.derive_private_key(1, candidate())
                            .public_key()
                            .public_numbers()
                        )
                        if (numbers.x, numbers.y) == (curve.gx, curve.gy):
                            impl = candidate()
                    except Exception:
                        impl = None
        self._impls[curve] = impl
        return impl

    def _public_key(self, impl, curve, point):
        """OpenSSL public-key object for an affine point (cached)."""
        key = (curve, point.x, point.y)
        cached = self._pub_keys.get(key)
        if cached is None:
            cached = _x_ec.EllipticCurvePublicNumbers(
                point.x, point.y, impl
            ).public_key()
            _bounded_insert(self._pub_keys, _PUB_CACHE_LIMIT, key, cached)
        return cached

    def _shared_x(self, impl, curve, k: int, point) -> int:
        """x coordinate of ``k*point`` via one ECDH evaluation."""
        private = _x_ec.derive_private_key(k, impl)
        shared = private.exchange(_x_ec.ECDH(), self._public_key(impl, curve, point))
        return int.from_bytes(shared, "big")

    # -- backend-facing operations ------------------------------------------

    def mul_base(self, curve, k: int):
        """``k*G`` for ``1 <= k < n``."""
        from ..ec.point import Point, from_jacobian

        impl = self._curve_impl(curve)
        if impl is None:
            return from_jacobian(curve, self._comb_mul_base_jac(curve, k))
        numbers = (
            _x_ec.derive_private_key(k, impl).public_key().public_numbers()
        )
        return Point(curve, numbers.x, numbers.y)

    def mul(self, curve, k: int, point):
        """``k*P`` for ``1 <= k < n`` and non-infinity ``P``."""
        from ..ec.point import Point
        from ..ec.scalarmult import _mul_wnaf_untraced

        impl = self._curve_impl(curve)
        # point.y == 0 would make the recovery denominator vanish; such
        # points cannot exist on the h=1 prime-order curves OpenSSL
        # handles, but the guard keeps the dispatch total.
        if impl is None or point.y == 0:
            return _mul_wnaf_untraced(k, point)
        if k == 1:
            return point
        if k == curve.n - 1:
            return -point
        x_r = self._shared_x(impl, curve, k, point)
        x_s = self._shared_x(impl, curve, k + 1, point)
        p = curve.p
        diff = point.x - x_r
        numerator = (
            2 * curve.b
            + (curve.a + point.x * x_r) * (point.x + x_r)
            - x_s * diff * diff
        ) % p
        y_r = numerator * pow(2 * point.y, -1, p) % p
        return Point(curve, x_r, y_r)

    def mul_double(self, curve, u: int, p_point, v: int, q_point):
        """``u*P + v*Q``, not both terms degenerate."""
        from ..ec.point import from_jacobian
        from ..ec.scalarmult import _mul_double_jac

        impl = self._curve_impl(curve)
        if impl is None:
            return from_jacobian(curve, _mul_double_jac(u, p_point, v, q_point))
        left = self._term(curve, u, p_point)
        right = self._term(curve, v, q_point)
        return left._add_raw(right)

    def _term(self, curve, k: int, point):
        """One side of a double multiplication (may be degenerate)."""
        from ..ec.point import Point

        if k == 0 or point.is_infinity:
            return Point.infinity(curve)
        if point.x == curve.gx and point.y == curve.gy:
            return self.mul_base(curve, k)
        return self.mul(curve, k, point)

    def mul_base_batch(self, curve, ks: list) -> list:
        """``[k*G for k in ks]``; zeros map to infinity."""
        from ..ec.point import JAC_INFINITY, Point, normalize_batch

        impl = self._curve_impl(curve)
        if impl is not None:
            # OpenSSL results are already affine — no normalization pass.
            return [
                Point.infinity(curve) if k == 0 else self.mul_base(curve, k)
                for k in ks
            ]
        jacs = [
            JAC_INFINITY if k == 0 else self._comb_mul_base_jac(curve, k)
            for k in ks
        ]
        return normalize_batch(curve, jacs)

    def mul_double_batch(self, curve, terms: list) -> list:
        """Many ``u*P + v*Q`` terms; ``None`` entries are degenerate."""
        from ..ec.point import JAC_INFINITY, Point, normalize_batch
        from ..ec.scalarmult import _mul_double_jac

        impl = self._curve_impl(curve)
        if impl is not None:
            return [
                Point.infinity(curve)
                if term is None
                else self.mul_double(curve, *term)
                for term in terms
            ]
        jacs = [
            JAC_INFINITY if term is None else _mul_double_jac(*term)
            for term in terms
        ]
        return normalize_batch(curve, jacs)

    # -- pure-Python affine-window fallback ----------------------------------

    def _comb_table(self, curve):
        """Wide-comb precomputation for ``curve`` (cached, bounded).

        Same construction as the reference 4-tooth comb
        (:func:`repro.ec.scalarmult._base_table`) with 8 teeth: the
        255 tooth combinations are accumulated in Jacobian coordinates
        and normalized together through one shared batch inversion.
        """
        cached = self._comb_tables.get(curve)
        if cached is not None:
            return cached
        from ..ec.point import (
            JAC_INFINITY,
            jac_add,
            jac_double,
            normalize_batch,
            to_jacobian,
        )

        columns = -(-curve.n.bit_length() // _FALLBACK_TEETH)
        spine = [to_jacobian(curve.generator)]
        for _ in range(_FALLBACK_TEETH - 1):
            jac = spine[-1]
            for _ in range(columns):
                jac = jac_double(curve, jac)
            spine.append(jac)
        combos = []
        for pattern in range(1, 1 << _FALLBACK_TEETH):
            acc = JAC_INFINITY
            for tooth in range(_FALLBACK_TEETH):
                if (pattern >> tooth) & 1:
                    acc = jac_add(curve, acc, spine[tooth])
            combos.append(acc)
        table = (columns, normalize_batch(curve, combos))
        _bounded_insert(self._comb_tables, _COMB_CACHE_LIMIT, curve, table)
        return table

    def _comb_mul_base_jac(self, curve, k: int):
        """Wide-comb ``k*G`` left in Jacobian coordinates (``1 <= k < n``)."""
        from ..ec.point import JAC_INFINITY, jac_add_mixed, jac_double

        columns, table = self._comb_table(curve)
        acc = JAC_INFINITY
        for col in range(columns - 1, -1, -1):
            acc = jac_double(curve, acc)
            pattern = 0
            for tooth in range(_FALLBACK_TEETH):
                if (k >> (tooth * columns + col)) & 1:
                    pattern |= 1 << tooth
            if pattern:
                acc = jac_add_mixed(curve, acc, table[pattern - 1])
        return acc

    def describe(self) -> str:
        """One-line implementation summary for ``describe()`` cells."""
        if OPENSSL_EC:
            return (
                "cryptography (OpenSSL scalar mult; ECDH x-coordinates +"
                " Okeya-Sakurai y-recovery for arbitrary points;"
                " wide-comb fallback for non-OpenSSL curves)"
            )
        return (
            "pure-Python affine-window fallback (8-tooth comb, shared-Z"
            " batch normalization; cryptography not importable)"
        )
