"""Pluggable crypto backends: same bytes, same trace, different speed.

The from-scratch FIPS primitives in :mod:`repro.primitives` are the
*reference* implementation — readable, auditable, and the source of
truth for every test vector in the suite.  They are also what caps how
many vehicles and scenarios a fleet sweep can push through: the paper's
cost accounting only needs the *counts* of compressions and block
encryptions, yet the reference pays the full pure-Python price for each
one.  This package makes the implementation pluggable:

``reference``
    The unchanged from-scratch primitives.  Default.

``accelerated``
    ``hashlib``/``hmac`` from the standard library for the SHA-2 family
    and HMAC, and AES **and EC scalar multiplication** via the optional
    ``cryptography`` package (OpenSSL) with a graceful fallback to the
    reference AES / a wide pure-Python comb when it is not importable
    (EC additionally degrades per curve when the local OpenSSL build
    lacks one).  Trace events are computed analytically from message
    lengths — and stay with the EC callers entirely — so hardware
    pricing, energy accounting and every golden fleet/scenario digest
    are **bit-identical** to the reference; only host wall-clock
    changes.

Selection, most specific wins:

1. :func:`use_backend` — a context manager scoping a backend to a block
   (what :class:`repro.fleet.FleetConfig`'s ``backend`` knob uses);
2. :func:`set_backend` — process-wide default for the session;
3. the ``REPRO_BACKEND`` environment variable at import time;
4. ``reference``.

Example::

    >>> from repro.backend import available_backends, get_backend
    >>> available_backends()
    ('reference', 'accelerated')
    >>> get_backend().name
    'reference'
    >>> from repro.backend import use_backend
    >>> with use_backend("accelerated") as backend:
    ...     backend.name
    'accelerated'
    >>> get_backend().name
    'reference'
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Iterator

from ..errors import BackendError
from .base import (
    HASH_INFO,
    HashInfo,
    CryptoBackend,
    compression_blocks,
    final_blocks,
    hmac_sha2_blocks,
)

__all__ = [
    "CryptoBackend",
    "HASH_INFO",
    "HashInfo",
    "available_backends",
    "compression_blocks",
    "final_blocks",
    "get_backend",
    "hmac_sha2_blocks",
    "register_backend",
    "set_backend",
    "unregister_backend",
    "use_backend",
]


def _load_reference() -> CryptoBackend:
    """Build the reference backend (imported lazily to avoid cycles)."""
    from .reference import ReferenceBackend

    return ReferenceBackend()


def _load_accelerated() -> CryptoBackend:
    """Build the accelerated backend (imported lazily to avoid cycles)."""
    from .accelerated import AcceleratedBackend

    return AcceleratedBackend()


#: name -> zero-argument factory.  Factories import lazily so that
#: ``repro.primitives`` (which the implementations wrap) can itself
#: import :func:`get_backend` without a circular import.
_FACTORIES: dict[str, Callable[[], CryptoBackend]] = {
    "reference": _load_reference,
    "accelerated": _load_accelerated,
}
_INSTANCES: dict[str, CryptoBackend] = {}

#: Process-wide default, seeded from the environment once at import.
_DEFAULT: str = os.environ.get("REPRO_BACKEND", "reference")

#: Scoped override installed by :func:`use_backend` (context-local, so
#: nested scopes and threads compose the same way `repro.trace` does).
_OVERRIDE: ContextVar[str | None] = ContextVar(
    "repro_backend_override", default=None
)


def available_backends() -> tuple[str, ...]:
    """Registered backend names, registration order preserved."""
    return tuple(_FACTORIES)


def register_backend(
    name: str, factory: Callable[[], CryptoBackend]
) -> None:
    """Register a custom backend factory under ``name``.

    Intended for experiments (e.g. an instrumented or hardware-offload
    backend); the two built-in names cannot be replaced.
    """
    if name in ("reference", "accelerated"):
        raise BackendError(f"built-in backend {name!r} cannot be replaced")
    if not name or not isinstance(name, str):
        raise BackendError(f"backend name must be a non-empty str, got {name!r}")
    if not callable(factory):
        raise BackendError(
            f"backend factory for {name!r} must be a zero-argument"
            f" callable, got {type(factory).__name__}"
        )
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def unregister_backend(name: str) -> None:
    """Remove a backend registered with :func:`register_backend`.

    Built-ins cannot be removed.  Callers that install a temporary
    backend (e.g. the :mod:`repro.obs.profile` wrapper) use this so
    :func:`available_backends` is left exactly as they found it.
    """
    if name in ("reference", "accelerated"):
        raise BackendError(f"built-in backend {name!r} cannot be removed")
    if name not in _FACTORIES:
        raise BackendError(f"backend {name!r} is not registered")
    del _FACTORIES[name]
    _INSTANCES.pop(name, None)


def _resolve(name: str) -> CryptoBackend:
    """Instantiate (and cache) the backend registered under ``name``."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise BackendError(
            f"unknown crypto backend {name!r};"
            f" have {sorted(_FACTORIES)} (check REPRO_BACKEND)"
        ) from None
    if name not in _INSTANCES:
        _INSTANCES[name] = factory()
    return _INSTANCES[name]


def get_backend() -> CryptoBackend:
    """The currently active backend (override > default > reference)."""
    override = _OVERRIDE.get()
    return _resolve(override if override is not None else _DEFAULT)


def set_backend(name: str) -> CryptoBackend:
    """Set the process-wide default backend; returns the instance.

    Does not affect blocks currently inside :func:`use_backend` scopes
    (scoped overrides win).
    """
    global _DEFAULT
    backend = _resolve(name)  # validate before switching
    _DEFAULT = name
    return backend


@contextmanager
def use_backend(name: str | None) -> Iterator[CryptoBackend]:
    """Scope a backend to a ``with`` block.

    ``None`` is a no-op scope that keeps the ambient backend — callers
    with an optional backend knob (e.g. ``FleetConfig.backend``) can
    always wrap their work without special-casing.
    """
    if name is None:
        yield get_backend()
        return
    backend = _resolve(name)
    token = _OVERRIDE.set(name)
    try:
        yield backend
    finally:
        _OVERRIDE.reset(token)
