"""The accelerated backend: stdlib ``hashlib``/``hmac`` + OpenSSL AES.

Swaps the pure-Python compression loops for C implementations while
emitting **exactly** the trace events the reference backend would have:

* SHA-2 streaming objects wrap ``hashlib`` and count compressed blocks
  analytically from the number of buffered bytes (FIPS 180-4 padding is
  deterministic, so the count is a pure function of message length);
* one-shot HMAC goes through :func:`hmac.digest` (C fast path in
  CPython) with the full inner/outer/key-hash block accounting of
  :func:`repro.backend.base.hmac_sha2_blocks`;
* AES uses the optional ``cryptography`` package (OpenSSL) when it is
  importable — single blocks through a persistent ECB context, chaining
  modes through one C call per message — and **falls back gracefully**
  to the from-scratch AES otherwise (hashes stay accelerated; only the
  cipher drops back);
* EC scalar multiplication dispatches to
  :class:`repro.backend.ec_accelerated.AcceleratedEc` — OpenSSL point
  math per curve where the local build supports it, a wide pure-Python
  affine-window comb otherwise.  Trace events stay with the callers in
  :mod:`repro.ec.scalarmult`, so EC accounting is backend-invariant by
  construction.

Because the trace streams are identical and every primitive is
deterministic, fleet digests, hardware pricing and energy accounting are
bit-for-bit the same under this backend; only host wall-clock drops.
``benchmarks/bench_fleet_scale.py`` measures and asserts the speedup.
"""

from __future__ import annotations

import hashlib
import hmac as _stdlib_hmac

from .. import trace
from ..errors import CryptoError
from .base import (
    CryptoBackend,
    HASH_INFO,
    HashInfo,
    compression_blocks,
    final_blocks,
    hmac_sha2_blocks,
)
from .ec_accelerated import OPENSSL_EC, AcceleratedEc

try:  # AES offload is optional; hashes accelerate regardless.
    from cryptography.hazmat.primitives.ciphers import (
        Cipher as _CrCipher,
        algorithms as _cr_algorithms,
        modes as _cr_modes,
    )

    AES_ACCELERATED = True
except ImportError:  # pragma: no cover - exercised via the fallback test
    _CrCipher = _cr_algorithms = _cr_modes = None
    AES_ACCELERATED = False

_HASHLIB_CTORS = {
    "sha224": hashlib.sha224,
    "sha256": hashlib.sha256,
    "sha384": hashlib.sha384,
    "sha512": hashlib.sha512,
}

_AES_BLOCK = 16
_AES_ROUNDS = {16: 10, 24: 12, 32: 14}


def _check_hash_name(name: str) -> HashInfo:
    """Resolve hash metadata with the reference error message."""
    try:
        return HASH_INFO[name]
    except KeyError:
        raise CryptoError(
            f"unknown hash {name!r}; known: {sorted(HASH_INFO)}"
        ) from None


class _AcceleratedHash:
    """``hashlib``-backed streaming hash with analytic block accounting.

    Mirrors the reference surface (``update``/``digest``/``hexdigest``/
    ``copy`` plus ``name``/``block_size``/``digest_size``) and emits
    ``sha2.block`` events at the same call boundaries: full blocks as
    they are absorbed by :meth:`update`, padding blocks on every
    (repeatable, non-destructive) :meth:`digest`.
    """

    __slots__ = ("_hash", "_buffered", "_info")

    def __init__(self, info: HashInfo, data: bytes = b"") -> None:
        self._info = info
        self._hash = _HASHLIB_CTORS[info.name]()
        self._buffered = 0
        if data:
            self.update(data)

    @property
    def name(self) -> str:
        """Canonical hash name (``sha224``/``sha256``/...)."""
        return self._info.name

    @property
    def block_size(self) -> int:
        """Compression block size in bytes."""
        return self._info.block_size

    @property
    def digest_size(self) -> int:
        """Digest size in bytes."""
        return self._info.digest_size

    def update(self, data: bytes) -> "_AcceleratedHash":
        """Absorb more message bytes; returns self for chaining."""
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise CryptoError("hash input must be bytes-like")
        # bytes() first, like the reference: a memoryview's len() counts
        # elements, not bytes, and the block accounting needs bytes.
        data = bytes(data)
        pending = self._buffered + len(data)
        full, self._buffered = divmod(pending, self._info.block_size)
        if full:
            trace.record("sha2.block", full)
        self._hash.update(data)
        return self

    def copy(self) -> "_AcceleratedHash":
        """Independent copy of the running hash state (no trace events)."""
        dup = object.__new__(type(self))
        dup._info = self._info
        dup._hash = self._hash.copy()
        dup._buffered = self._buffered
        return dup

    def digest(self) -> bytes:
        """Finalize (non-destructively) and return the digest bytes."""
        trace.record("sha2.block", final_blocks(self._buffered, self._info))
        return self._hash.digest()

    def hexdigest(self) -> str:
        """Digest as a lowercase hex string."""
        return self.digest().hex()


class _AcceleratedAes:
    """OpenSSL-backed AES with per-block events and bulk fast paths.

    Single-block calls go through one persistent ECB context (one C call
    per block); the chaining-mode helpers used by
    :mod:`repro.primitives.modes` and :mod:`repro.primitives.cmac`
    process the whole message in one C call while recording the same
    one-event-per-block accounting the reference loops produce.
    """

    __slots__ = ("key_size", "rounds", "_key", "_ecb_enc", "_ecb_dec")

    def __init__(self, key: bytes) -> None:
        if len(key) not in _AES_ROUNDS:
            raise CryptoError(
                f"AES key must be 16/24/32 bytes, got {len(key)}"
            )
        self.key_size = len(key)
        self.rounds = _AES_ROUNDS[len(key)]
        self._key = bytes(key)
        # ECB contexts are built lazily: the hot fleet path only touches
        # the CTR/CBC bulk helpers, which carry their own contexts.
        self._ecb_enc = None
        self._ecb_dec = None

    def _ecb_encryptor(self):
        if self._ecb_enc is None:
            self._ecb_enc = _CrCipher(
                _cr_algorithms.AES(self._key), _cr_modes.ECB()
            ).encryptor()
        return self._ecb_enc

    def _ecb_decryptor(self):
        if self._ecb_dec is None:
            self._ecb_dec = _CrCipher(
                _cr_algorithms.AES(self._key), _cr_modes.ECB()
            ).decryptor()
        return self._ecb_dec

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != _AES_BLOCK:
            raise CryptoError(f"block must be 16 bytes, got {len(block)}")
        trace.record("aes.block")
        return self._ecb_encryptor().update(block)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        if len(block) != _AES_BLOCK:
            raise CryptoError(f"block must be 16 bytes, got {len(block)}")
        trace.record("aes.block")
        return self._ecb_decryptor().update(block)

    def encrypt_ecb(self, data: bytes) -> bytes:
        """ECB over whole blocks in one C call."""
        if len(data) % _AES_BLOCK:
            raise CryptoError("ECB requires whole blocks")
        if data:
            trace.record("aes.block", len(data) // _AES_BLOCK)
        return self._ecb_encryptor().update(data)

    def decrypt_ecb(self, data: bytes) -> bytes:
        """ECB decryption of whole blocks in one C call."""
        if len(data) % _AES_BLOCK:
            raise CryptoError("ECB requires whole blocks")
        if data:
            trace.record("aes.block", len(data) // _AES_BLOCK)
        return self._ecb_decryptor().update(data)

    def encrypt_cbc(self, iv: bytes, data: bytes) -> bytes:
        """CBC over pre-padded whole blocks in one C call."""
        if len(data) % _AES_BLOCK:
            raise CryptoError("unpadded CBC requires whole blocks")
        if data:
            trace.record("aes.block", len(data) // _AES_BLOCK)
        enc = _CrCipher(
            _cr_algorithms.AES(self._key), _cr_modes.CBC(iv)
        ).encryptor()
        return enc.update(data) + enc.finalize()

    def decrypt_cbc(self, iv: bytes, data: bytes) -> bytes:
        """CBC decryption of whole blocks in one C call (no unpadding)."""
        if len(data) % _AES_BLOCK:
            raise CryptoError("CBC ciphertext must be whole non-empty blocks")
        if data:
            trace.record("aes.block", len(data) // _AES_BLOCK)
        dec = _CrCipher(
            _cr_algorithms.AES(self._key), _cr_modes.CBC(iv)
        ).decryptor()
        return dec.update(data) + dec.finalize()

    def ctr_keystream(self, nonce: bytes, length: int) -> bytes:
        """AES-CTR keystream (128-bit big-endian counter) in one C call."""
        if length <= 0:
            return b""
        n_blocks = (length + _AES_BLOCK - 1) // _AES_BLOCK
        trace.record("aes.block", n_blocks)
        enc = _CrCipher(
            _cr_algorithms.AES(self._key), _cr_modes.CTR(nonce)
        ).encryptor()
        return enc.update(b"\x00" * length) + enc.finalize()


class AcceleratedBackend(CryptoBackend):
    """``hashlib``/``hmac``/OpenSSL-backed primitives, trace-identical."""

    name = "accelerated"

    #: True when the optional ``cryptography`` package provides AES; the
    #: cipher falls back to the from-scratch AES otherwise.
    aes_accelerated = AES_ACCELERATED

    #: True when the optional ``cryptography`` package provides EC point
    #: math; scalar multiplication falls back to the pure-Python
    #: affine-window engine otherwise (and per curve when a curve is
    #: unknown to the local OpenSSL build).
    ec_accelerated = OPENSSL_EC

    def __init__(self) -> None:
        # Per-backend-instance EC engine: its curve-impl / public-key /
        # comb-table caches die with the backend instance, so registry
        # resets in tests cannot leak state across backend generations.
        self._ec = AcceleratedEc()

    def create_hash(self, name: str, data: bytes = b""):
        """Streaming hash over ``hashlib`` with analytic accounting."""
        return _AcceleratedHash(_check_hash_name(name), data)

    def hash_digest(self, name: str, data: bytes) -> bytes:
        """One-shot digest: count blocks analytically, hash in C."""
        info = _check_hash_name(name)
        trace.record("sha2.block", compression_blocks(len(data), info))
        return _HASHLIB_CTORS[name](data).digest()

    def hmac_digest(self, key: bytes, message: bytes, hash_name: str) -> bytes:
        """One-shot HMAC through :func:`hmac.digest` (C fast path)."""
        info = _check_hash_name(hash_name)
        trace.record("hmac.call")
        trace.record(
            "sha2.block", hmac_sha2_blocks(len(key), len(message), info)
        )
        return _stdlib_hmac.digest(key, message, hash_name)

    def create_cipher(self, key: bytes):
        """OpenSSL AES when available, from-scratch AES otherwise."""
        if self.aes_accelerated:
            return _AcceleratedAes(key)
        from ..primitives.aes import Aes

        return Aes(key)

    # -- elliptic-curve operations (see repro.backend.ec_accelerated) -------

    def ec_mul_base(self, curve, k: int):
        """``k*G`` through OpenSSL key derivation (or the wide comb)."""
        return self._ec.mul_base(curve, k)

    def ec_mul(self, curve, k: int, point):
        """``k*P`` through ECDH x-coordinates + y-recovery (or wNAF)."""
        return self._ec.mul(curve, k, point)

    def ec_mul_double(self, curve, u: int, p_point, v: int, q_point):
        """``u*P + v*Q`` from two accelerated multiplies + one addition."""
        return self._ec.mul_double(curve, u, p_point, v, q_point)

    def ec_mul_base_batch(self, curve, ks: list) -> list:
        """Batched ``k*G`` (OpenSSL results need no normalization pass)."""
        return self._ec.mul_base_batch(curve, ks)

    def ec_mul_double_batch(self, curve, terms: list) -> list:
        """Batched ``u*P + v*Q`` terms (``None`` = degenerate term)."""
        return self._ec.mul_double_batch(curve, terms)

    def describe(self) -> dict:
        """Introspection for benchmarks and docs."""
        return {
            "name": self.name,
            "sha2": "hashlib (OpenSSL/C)",
            "hmac": "stdlib hmac.digest (C fast path)",
            "aes": (
                "cryptography (OpenSSL)"
                if self.aes_accelerated
                else "from-scratch fallback (cryptography not importable)"
            ),
            "ec": self._ec.describe(),
        }
