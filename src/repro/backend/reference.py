"""The reference backend: the unchanged from-scratch FIPS primitives.

This is a thin adapter — the implementations themselves live in
:mod:`repro.primitives` (SHA-2 in ``sha2.py``, AES in ``aes.py``, HMAC
in ``hmac.py``) and are exactly the code the seed repository shipped.
Trace events are emitted by the primitives as each compression/block
actually executes, which defines the accounting every other backend must
reproduce analytically.

The EC operations need no adapter at all: the ``ec_*`` defaults on
:class:`~repro.backend.base.CryptoBackend` *are* the reference path —
they delegate to the unchanged Jacobian/wNAF/comb code in
:mod:`repro.ec.scalarmult` — so this class simply inherits them.
"""

from __future__ import annotations

from ..errors import CryptoError
from .base import CryptoBackend, HASH_INFO


class ReferenceBackend(CryptoBackend):
    """From-scratch pure-Python primitives (the default backend)."""

    name = "reference"

    def create_hash(self, name: str, data: bytes = b""):
        """Instantiate the from-scratch streaming hash class."""
        from ..primitives.sha2 import HASHES

        try:
            return HASHES[name](data)
        except KeyError:
            raise CryptoError(
                f"unknown hash {name!r}; known: {sorted(HASH_INFO)}"
            ) from None

    def hash_digest(self, name: str, data: bytes) -> bytes:
        """One-shot digest through the streaming class."""
        return self.create_hash(name, data).digest()

    def hmac_digest(self, key: bytes, message: bytes, hash_name: str) -> bytes:
        """One-shot HMAC through the streaming :class:`~repro.primitives.Hmac`."""
        from ..primitives.hmac import Hmac

        return Hmac(key, hash_name).update(message).digest()

    def create_cipher(self, key: bytes):
        """Instantiate the from-scratch AES (validates the key size)."""
        from ..primitives.aes import Aes

        return Aes(key)

    def describe(self) -> dict:
        """Introspection for benchmarks and docs."""
        return {
            "name": self.name,
            "sha2": "from-scratch FIPS 180-4 (pure Python)",
            "hmac": "RFC 2104 over the from-scratch SHA-2",
            "aes": "from-scratch FIPS 197 (pure Python)",
            "ec": "from-scratch Jacobian wNAF/comb (pure Python)",
        }
