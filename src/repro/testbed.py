"""Deterministic test-bed construction: CA, devices, session contexts.

Reproduces the paper's Fig. 1 architecture in memory: a central authority
issues ECQV credentials to a set of devices, which then establish sessions
pairwise.  Everything is seeded, so two test beds built with the same seed
are byte-for-byte identical — the property all experiments rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ec import Curve, SECP256R1
from .ecqv import CertificateAuthority, EcqvCredential, issue_credential
from .errors import ReproError
from .primitives import HmacDrbg
from .protocols import SessionContext, install_pairwise_key
from .protocols.base import Party
from .protocols.registry import get_protocol

#: Default epoch used as "now" by test beds (fixed for reproducibility).
DEFAULT_NOW = 1_700_000_000


def device_id(name: str) -> bytes:
    """Derive a 16-byte device identity from a human-readable name."""
    raw = name.encode()
    if len(raw) > 16:
        raise ReproError(f"device name too long: {name!r}")
    return raw.ljust(16, b"-")


@dataclass
class TestBed:
    """A provisioned network: one CA plus named device credentials."""

    curve: Curve
    ca: CertificateAuthority
    credentials: dict[str, EcqvCredential]
    seed: bytes
    now: int = DEFAULT_NOW
    _ctx_counter: int = field(default=0, repr=False)

    def context(self, name: str) -> SessionContext:
        """Fresh :class:`SessionContext` for a named device.

        Each context gets its own DRBG stream (device name + a counter in
        the personalization) so repeated sessions draw fresh randomness
        while the overall experiment stays deterministic.
        """
        try:
            credential = self.credentials[name]
        except KeyError:
            raise ReproError(
                f"unknown device {name!r}; have {sorted(self.credentials)}"
            ) from None
        self._ctx_counter += 1
        rng = HmacDrbg(
            self.seed,
            personalization=b"session|%s|%d" % (name.encode(), self._ctx_counter),
        )
        return SessionContext(
            credential=credential,
            ca_public=self.ca.public_key,
            rng=rng,
            now=self.now,
        )

    def context_pair(
        self, name_a: str, name_b: str, protocol: str | None = None
    ) -> tuple[SessionContext, SessionContext]:
        """Context pair for two devices, with PSKs installed if needed."""
        ctx_a = self.context(name_a)
        ctx_b = self.context(name_b)
        if protocol is None or get_protocol(protocol).needs_pairwise_psk:
            psk_rng = HmacDrbg(
                self.seed,
                personalization=b"psk|%s|%s"
                % (min(name_a, name_b).encode(), max(name_a, name_b).encode()),
            )
            install_pairwise_key(ctx_a, ctx_b, psk_rng.generate(32))
        return ctx_a, ctx_b

    def party_pair(
        self, protocol: str, name_a: str, name_b: str
    ) -> tuple[Party, Party]:
        """Instantiate a protocol between two named devices."""
        ctx_a, ctx_b = self.context_pair(name_a, name_b, protocol)
        return get_protocol(protocol).factory(ctx_a, ctx_b)


def make_testbed(
    device_names: tuple[str, ...] = ("alice", "bob"),
    curve: Curve = SECP256R1,
    seed: bytes = b"repro-testbed",
    now: int = DEFAULT_NOW,
    validity_seconds: int = 7 * 24 * 3600,
) -> TestBed:
    """Provision a CA and issue one ECQV credential per named device."""
    ca_rng = HmacDrbg(seed, personalization=b"ca")
    ca = CertificateAuthority(
        curve, device_id("central-ca"), ca_rng, clock=lambda: now
    )
    credentials: dict[str, EcqvCredential] = {}
    for name in device_names:
        dev_rng = HmacDrbg(seed, personalization=b"issue|" + name.encode())
        credentials[name] = issue_credential(
            ca, device_id(name), dev_rng, validity_seconds=validity_seconds
        )
    return TestBed(
        curve=curve, ca=ca, credentials=credentials, seed=seed, now=now
    )
