"""Analysis utilities: transmission overhead accounting (Table II)."""

from .overhead import (
    MessageOverhead,
    PAPER_TABLE2,
    ProtocolOverhead,
    measure_overhead,
    overhead_table,
    render_overhead_table,
    verify_against_paper,
)

__all__ = [
    "MessageOverhead",
    "PAPER_TABLE2",
    "ProtocolOverhead",
    "measure_overhead",
    "overhead_table",
    "render_overhead_table",
    "verify_against_paper",
]

from .report import (
    ReproductionReport,
    attach_divergence,
    attach_observability,
    build_report,
    write_report,
)

__all__ += [
    "ReproductionReport",
    "attach_divergence",
    "attach_observability",
    "build_report",
    "write_report",
]
