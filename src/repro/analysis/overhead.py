"""Transmission-overhead analysis — the paper's Table II.

Counts communication steps and application-level bytes of each protocol
from *actually serialized* messages (the wire layouts in
:mod:`repro.protocols`), independent of the underlying communication
technology, exactly as §V-B does.  Also provides the ISO-TP/CAN-FD frame
expansion of each message for the prototype discussion.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AnalysisError
from ..network.cantp import segment_message
from ..protocols import ProtocolTranscript, run_protocol
from ..testbed import TestBed, make_testbed

#: Table II of the paper: (communication steps, total application bytes).
#: S-ECDSA is listed as "4(+1): 427(+192) B" - base and ext broken out here.
PAPER_TABLE2: dict[str, tuple[int, int]] = {
    "s-ecdsa": (4, 427),
    "s-ecdsa-ext": (5, 619),
    "sts": (4, 491),
    "scianc": (4, 362),
    "poramb": (6, 820),
}


@dataclass(frozen=True)
class MessageOverhead:
    """Wire accounting of one protocol message."""

    label: str
    layout: str
    size_bytes: int
    isotp_frames: int


@dataclass
class ProtocolOverhead:
    """Table II row for one protocol."""

    protocol_name: str
    messages: list[MessageOverhead]

    @property
    def n_steps(self) -> int:
        """Number of transmissions."""
        return len(self.messages)

    @property
    def total_bytes(self) -> int:
        """Total application-layer bytes."""
        return sum(m.size_bytes for m in self.messages)

    @property
    def total_frames(self) -> int:
        """Total ISO-TP data frames over CAN-FD (excl. flow control)."""
        return sum(m.isotp_frames for m in self.messages)

    def matches_paper(self) -> bool:
        """True if steps and bytes equal the paper's Table II."""
        if self.protocol_name not in PAPER_TABLE2:
            return True  # opt. variants are byte-identical to sts
        steps, total = PAPER_TABLE2[self.protocol_name]
        return self.n_steps == steps and self.total_bytes == total


def measure_overhead(transcript: ProtocolTranscript) -> ProtocolOverhead:
    """Extract the Table II accounting from a completed run."""
    messages = []
    for message in transcript.messages:
        frames = segment_message(message.payload)
        messages.append(
            MessageOverhead(
                label=message.label,
                layout=message.summary(),
                size_bytes=message.size,
                isotp_frames=len(frames),
            )
        )
    return ProtocolOverhead(
        protocol_name=transcript.protocol_name,
        messages=messages,
    )


def overhead_table(
    testbed: TestBed | None = None,
    protocol_names: tuple[str, ...] = tuple(PAPER_TABLE2),
) -> dict[str, ProtocolOverhead]:
    """Measure every protocol's overhead (the full Table II)."""
    if testbed is None:
        testbed = make_testbed(seed=b"repro-overhead")
    table: dict[str, ProtocolOverhead] = {}
    for name in protocol_names:
        party_a, party_b = testbed.party_pair(name, "alice", "bob")
        transcript = run_protocol(party_a, party_b)
        overhead = measure_overhead(transcript)
        overhead.protocol_name = name
        table[name] = overhead
    return table


def render_overhead_table(table: dict[str, ProtocolOverhead]) -> str:
    """ASCII rendering in the paper's Table II style."""
    lines = []
    for name, overhead in table.items():
        paper = PAPER_TABLE2.get(name)
        check = ""
        if paper is not None:
            ok = overhead.matches_paper()
            check = (
                f"   [paper: {paper[0]} steps, {paper[1]} B]"
                f" {'MATCH' if ok else 'MISMATCH'}"
            )
        lines.append(
            f"{name}: {overhead.n_steps} steps, {overhead.total_bytes} B,"
            f" {overhead.total_frames} CAN-FD data frames{check}"
        )
        for message in overhead.messages:
            lines.append(
                f"    {message.layout}  -> {message.isotp_frames} frame(s)"
            )
    return "\n".join(lines)


def verify_against_paper(table: dict[str, ProtocolOverhead]) -> None:
    """Raise :class:`AnalysisError` on any Table II disagreement."""
    for name, overhead in table.items():
        if name in PAPER_TABLE2 and not overhead.matches_paper():
            steps, total = PAPER_TABLE2[name]
            raise AnalysisError(
                f"Table II mismatch for {name}: measured"
                f" ({overhead.n_steps} steps, {overhead.total_bytes} B),"
                f" paper ({steps} steps, {total} B)"
            )
