"""repro — dynamic secure sessions for ECQV implicit certificates.

A complete, from-scratch Python reproduction of

    F. Basic, C. Steger, R. Kofler,
    "Establishing Dynamic Secure Sessions for ECQV Implicit Certificates
    in Embedded Systems", DATE 2023.

Subpackages
-----------
``repro.ec``          elliptic-curve arithmetic (SEC 2 curves, SEC 1 encoding)
``repro.primitives``  SHA-2, HMAC, HKDF/X9.63, AES + modes, CMAC, HMAC-DRBG
``repro.ecdsa``       ECDSA (RFC 6979) and ECDH
``repro.ecqv``        SEC 4 implicit certificates (101-byte minimal encoding)
``repro.protocols``   STS-ECQV (+ Opt. I/II) and the three SKD baselines
``repro.hardware``    calibrated device cost models (Table I boards)
``repro.network``     CAN-FD + ISO-TP + application stack (Fig. 6)
``repro.sim``         event engine, schedules (Eqs. 5-8), timelines (Fig. 7)
``repro.security``    threat model, executable attacks, Table III matrix
``repro.analysis``    transmission overhead accounting (Table II)
``repro.experiments`` one runner per paper table/figure
``repro.testbed``     deterministic CA/device provisioning helpers

Quickstart
----------
>>> from repro.testbed import make_testbed
>>> from repro.protocols import run_protocol
>>> testbed = make_testbed(("alice", "bob"))
>>> a, b = testbed.party_pair("sts", "alice", "bob")
>>> transcript = run_protocol(a, b)
>>> a.session_key == b.session_key
True
"""

from . import trace
from .errors import ReproError
from .testbed import TestBed, make_testbed

__version__ = "1.0.0"

__all__ = ["ReproError", "TestBed", "make_testbed", "trace", "__version__"]
