"""ISO 15765-2 (CAN-TP / DoCAN) transport layer over CAN-FD.

The paper's prototype "uses the CAN-FD derivation with an implemented
CAN-TP layer for message fragmentation" [20].  KD protocol messages are up
to 245 bytes (STS B1), so they do not fit one 64-byte frame and need the
ISO-TP segmented flow:

    FirstFrame  ->            (12-bit length PCI)
    <- FlowControl            (ContinueToSend, BlockSize, STmin)
    ConsecutiveFrame(s) ->    (4-bit rolling sequence number)

Single-frame messages use the CAN-FD escape PCI (``0x00 len``) for
payloads above the classic 7-byte limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import SegmentationError
from .canfd import CanFdBus, CanFdFrame, make_frame

#: Transmit data-link size: CAN-FD frames carry up to 64 bytes.
TX_DL = 64

#: Flow-control status values.
FC_CONTINUE = 0x0
FC_WAIT = 0x1
FC_OVERFLOW = 0x2

_MAX_ISOTP_LEN = 0xFFF  # 12-bit FF length (long-form FF not needed here)


class TpFrameType(Enum):
    """ISO-TP protocol control information frame types."""

    SINGLE = 0x0
    FIRST = 0x1
    CONSECUTIVE = 0x2
    FLOW_CONTROL = 0x3


@dataclass(frozen=True)
class TpFrame:
    """A typed ISO-TP frame before CAN encoding."""

    frame_type: TpFrameType
    payload: bytes  # PCI bytes + data

    def to_can(self, can_id: int) -> CanFdFrame:
        """Wrap into a (padded) CAN-FD frame."""
        return make_frame(can_id, self.payload)


def classify(frame_payload: bytes) -> TpFrameType:
    """Determine the ISO-TP frame type from the first PCI nibble."""
    if not frame_payload:
        raise SegmentationError("empty ISO-TP frame")
    return TpFrameType(frame_payload[0] >> 4)


def segment_message(data: bytes, tx_dl: int = TX_DL) -> list[TpFrame]:
    """Split an application message into ISO-TP frames (sender side).

    Returns the sender's frames only — the peer's FlowControl frame is
    inserted by the channel/timing layer.
    """
    if tx_dl < 8 or tx_dl > 64:
        raise SegmentationError(f"TX_DL must be 8..64, got {tx_dl}")
    n = len(data)
    if n == 0:
        raise SegmentationError("cannot segment an empty message")
    if n <= 7:
        # Classic single frame: PCI nibble 0 + length.
        return [TpFrame(TpFrameType.SINGLE, bytes([n]) + data)]
    if n <= tx_dl - 2:
        # CAN-FD escape single frame: 0x00, length byte.
        return [TpFrame(TpFrameType.SINGLE, bytes([0x00, n]) + data)]
    if n > _MAX_ISOTP_LEN:
        raise SegmentationError(
            f"message of {n} bytes exceeds 12-bit ISO-TP length"
        )
    frames: list[TpFrame] = []
    ff_capacity = tx_dl - 2
    pci = bytes([(TpFrameType.FIRST.value << 4) | (n >> 8), n & 0xFF])
    frames.append(TpFrame(TpFrameType.FIRST, pci + data[:ff_capacity]))
    offset = ff_capacity
    sequence = 1
    cf_capacity = tx_dl - 1
    while offset < n:
        chunk = data[offset : offset + cf_capacity]
        pci_byte = (TpFrameType.CONSECUTIVE.value << 4) | (sequence & 0xF)
        frames.append(TpFrame(TpFrameType.CONSECUTIVE, bytes([pci_byte]) + chunk))
        offset += len(chunk)
        sequence = (sequence + 1) & 0xF
    return frames


def flow_control_frame(
    status: int = FC_CONTINUE, block_size: int = 0, st_min_ms: int = 0
) -> TpFrame:
    """Build a FlowControl frame (receiver side)."""
    if status not in (FC_CONTINUE, FC_WAIT, FC_OVERFLOW):
        raise SegmentationError(f"invalid flow status {status}")
    if not 0 <= block_size <= 0xFF:
        raise SegmentationError(f"invalid block size {block_size}")
    if not 0 <= st_min_ms <= 0x7F:
        raise SegmentationError(f"invalid STmin {st_min_ms}")
    pci = bytes(
        [(TpFrameType.FLOW_CONTROL.value << 4) | status, block_size, st_min_ms]
    )
    return TpFrame(TpFrameType.FLOW_CONTROL, pci)


class Reassembler:
    """Receiver-side ISO-TP state machine.

    Feed frames with :meth:`accept`; a completed message is returned once
    the final consecutive frame arrives (``None`` otherwise).
    """

    def __init__(self) -> None:
        self._expected_length = 0
        self._buffer = bytearray()
        self._next_sequence = 1
        self._active = False

    @property
    def in_progress(self) -> bool:
        """True while a segmented message is partially received."""
        return self._active

    def accept(self, frame: TpFrame) -> bytes | None:
        """Process one inbound frame; returns the message when complete."""
        kind = frame.frame_type
        payload = frame.payload
        if kind == TpFrameType.SINGLE:
            if self._active:
                raise SegmentationError("single frame during segmented transfer")
            if payload[0] == 0x00:
                length = payload[1]
                data = payload[2 : 2 + length]
            else:
                length = payload[0] & 0xF
                data = payload[1 : 1 + length]
            if len(data) != length:
                raise SegmentationError("single frame shorter than its length")
            return bytes(data)
        if kind == TpFrameType.FIRST:
            if self._active:
                raise SegmentationError("nested first frame")
            self._expected_length = ((payload[0] & 0xF) << 8) | payload[1]
            self._buffer = bytearray(payload[2:])
            self._next_sequence = 1
            self._active = True
            return None
        if kind == TpFrameType.CONSECUTIVE:
            if not self._active:
                raise SegmentationError("consecutive frame without first frame")
            sequence = payload[0] & 0xF
            if sequence != self._next_sequence:
                raise SegmentationError(
                    f"sequence error: got {sequence},"
                    f" expected {self._next_sequence}"
                )
            self._next_sequence = (self._next_sequence + 1) & 0xF
            remaining = self._expected_length - len(self._buffer)
            self._buffer.extend(payload[1 : 1 + remaining])
            if len(self._buffer) >= self._expected_length:
                self._active = False
                return bytes(self._buffer)
            return None
        raise SegmentationError("flow-control frame fed to reassembler")


@dataclass
class IsoTpTiming:
    """Timing breakdown of one segmented transfer."""

    n_frames: int
    n_flow_controls: int
    data_ms: float
    flow_control_ms: float
    st_min_gap_ms: float

    @property
    def total_ms(self) -> float:
        """End-to-end transfer time."""
        return self.data_ms + self.flow_control_ms + self.st_min_gap_ms


@dataclass
class IsoTpChannel:
    """One direction of an ISO-TP connection with its flow parameters.

    Attributes:
        bus: the CAN-FD bus carrying the frames.
        tx_id: CAN identifier for data frames.
        rx_id: CAN identifier the peer uses for flow control.
        block_size: FC BlockSize (0 = no further FCs after the first).
        st_min_ms: FC STmin separation between consecutive frames.
    """

    bus: CanFdBus
    tx_id: int = 0x18
    rx_id: int = 0x19
    block_size: int = 0
    st_min_ms: int = 0

    def frames_for(self, data: bytes) -> list[TpFrame]:
        """Sender frames for one message (excludes the peer's FCs)."""
        return segment_message(data)

    def transfer(self, data: bytes) -> IsoTpTiming:
        """Simulate transmitting one message; returns its timing."""
        frames = self.frames_for(data)
        data_ms = 0.0
        for frame in frames:
            data_ms += self.bus.transmit(frame.to_can(self.tx_id))
        n_fc = 0
        fc_ms = 0.0
        n_cf = sum(
            1 for f in frames if f.frame_type == TpFrameType.CONSECUTIVE
        )
        if any(f.frame_type == TpFrameType.FIRST for f in frames):
            # One FC after the FF, plus one per full block if BS > 0.
            n_fc = 1
            if self.block_size:
                n_fc += max(0, (n_cf - 1)) // self.block_size
            fc = flow_control_frame(FC_CONTINUE, self.block_size, self.st_min_ms)
            for _ in range(n_fc):
                fc_ms += self.bus.transmit(fc.to_can(self.rx_id))
        gap_ms = float(self.st_min_ms) * max(0, n_cf - 1)
        return IsoTpTiming(
            n_frames=len(frames),
            n_flow_controls=n_fc,
            data_ms=data_ms,
            flow_control_ms=fc_ms,
            st_min_gap_ms=gap_ms,
        )

    def roundtrip_check(self, data: bytes) -> bytes:
        """Segment and immediately reassemble (test helper)."""
        reassembler = Reassembler()
        result: bytes | None = None
        for frame in self.frames_for(data):
            result = reassembler.accept(frame)
        if result is None:
            raise SegmentationError("message did not reassemble")
        return result
