"""CAN-FD data-link layer: frames, DLC handling and bit-time model.

Models the paper's prototype configuration (§V-C): CAN-FD with the nominal
(arbitration) phase at 0.5 Mbit/s and the data phase at 2 Mbit/s.  The
paper reports the physical transfer time of the whole KD exchange as
negligible (<1 ms) against the crypto processing — our bit-time model
reproduces that observation quantitatively in the Fig. 7 simulation.

The frame-time model counts the ISO 11898-1:2015 CAN FD base-frame fields,
splitting them between the two bit-rate phases, and applies a configurable
dynamic bit-stuffing ratio to the stuffable region (exact stuffing is
content-dependent; the default 12 % is the usual engineering estimate
between the theoretical 0 and worst-case 20 %).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import FrameError

#: Payload sizes a CAN-FD frame can carry (DLC 0-15).
CANFD_DATA_LENGTHS = (0, 1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 20, 24, 32, 48, 64)

_DLC_BY_LENGTH = {length: dlc for dlc, length in enumerate(CANFD_DATA_LENGTHS)}

MAX_STANDARD_ID = 0x7FF
MAX_EXTENDED_ID = 0x1FFF_FFFF


def padded_length(n_bytes: int) -> int:
    """Smallest CAN-FD data length that can carry ``n_bytes``."""
    if n_bytes < 0 or n_bytes > 64:
        raise FrameError(f"CAN-FD payload must be 0..64 bytes, got {n_bytes}")
    for length in CANFD_DATA_LENGTHS:
        if length >= n_bytes:
            return length
    raise FrameError("unreachable")  # pragma: no cover


def dlc_for_length(length: int) -> int:
    """DLC code for an exact CAN-FD data length."""
    try:
        return _DLC_BY_LENGTH[length]
    except KeyError:
        raise FrameError(
            f"{length} is not a valid CAN-FD data length"
        ) from None


@dataclass(frozen=True)
class CanFdFrame:
    """One CAN-FD frame (data padded to a valid DLC length with zeros)."""

    can_id: int
    data: bytes
    extended_id: bool = False
    bit_rate_switch: bool = True

    def __post_init__(self) -> None:
        limit = MAX_EXTENDED_ID if self.extended_id else MAX_STANDARD_ID
        if not 0 <= self.can_id <= limit:
            raise FrameError(f"CAN id {self.can_id:#x} out of range")
        if len(self.data) not in _DLC_BY_LENGTH:
            raise FrameError(
                f"frame data length {len(self.data)} is not a valid DLC size;"
                " pad with make_frame()"
            )

    @property
    def dlc(self) -> int:
        """The frame's DLC code."""
        return dlc_for_length(len(self.data))


def make_frame(
    can_id: int, payload: bytes, extended_id: bool = False
) -> CanFdFrame:
    """Build a frame, zero-padding the payload to a valid DLC length."""
    target = padded_length(len(payload))
    return CanFdFrame(
        can_id=can_id,
        data=payload + b"\x00" * (target - len(payload)),
        extended_id=extended_id,
    )


@dataclass(frozen=True)
class CanFdBusConfig:
    """Bus timing configuration.

    Defaults are the paper's prototype settings: 0.5 Mbit/s nominal,
    2 Mbit/s data phase.

    Attributes:
        nominal_bitrate: arbitration-phase bit rate (bit/s).
        data_bitrate: data-phase bit rate (bit/s).
        stuff_ratio: estimated dynamic stuff bits per stuffable bit.
        inter_frame_gap_bits: idle bits enforced between frames (IFS).
    """

    nominal_bitrate: int = 500_000
    data_bitrate: int = 2_000_000
    stuff_ratio: float = 0.12
    inter_frame_gap_bits: int = 3

    def __post_init__(self) -> None:
        if self.nominal_bitrate <= 0 or self.data_bitrate <= 0:
            raise FrameError("bit rates must be positive")
        if not 0.0 <= self.stuff_ratio <= 0.25:
            raise FrameError(
                f"stuff_ratio {self.stuff_ratio} outside plausible [0, 0.25]"
            )


@dataclass
class CanFdBus:
    """A CAN-FD bus with a bit-accurate(ish) frame-time model.

    Tracks cumulative statistics so experiments can report totals.
    """

    config: CanFdBusConfig = field(default_factory=CanFdBusConfig)
    frames_sent: int = 0
    bytes_sent: int = 0
    busy_ms: float = 0.0

    def frame_bits(self, frame: CanFdFrame) -> tuple[float, float]:
        """(nominal-phase bits, data-phase bits) for one frame.

        Field accounting (CAN FD base format):

        * nominal phase: SOF(1) + ID(11 or 29+IDE bits) + RRS(1) + IDE(1)
          + FDF(1) + res(1) + BRS(1), then back after the CRC delimiter for
          ACK(1) + ACK-delim(1) + EOF(7) + IFS(3).
        * data phase: ESI(1) + DLC(4) + data(8·len) + stuff count(4) +
          CRC(17 for ≤16 data bytes, else 21) + fixed stuff bits (one per
          4 CRC bits) + CRC delimiter(1).

        Dynamic stuffing applies from SOF through the end of the data
        field; we approximate it with ``config.stuff_ratio``.
        """
        id_bits = 29 + 2 if frame.extended_id else 11
        nominal_header = 1 + id_bits + 1 + 1 + 1 + 1 + 1
        nominal_trailer = 1 + 1 + 7 + self.config.inter_frame_gap_bits
        data_len = len(frame.data)
        crc_bits = 17 if data_len <= 16 else 21
        fixed_stuff = (crc_bits + 4 + 3) // 4  # one per 4 CRC bits, rounded
        data_phase = 1 + 4 + 8 * data_len + 4 + crc_bits + fixed_stuff + 1
        # Dynamic stuffing region: header (nominal) + ESI/DLC/data (data ph.)
        nominal_stuffed = nominal_header * (1.0 + self.config.stuff_ratio)
        data_stuffed = (1 + 4 + 8 * data_len) * self.config.stuff_ratio
        return nominal_stuffed + nominal_trailer, data_phase + data_stuffed

    def frame_time_ms(self, frame: CanFdFrame) -> float:
        """Transmission time of one frame in milliseconds."""
        nominal_bits, data_bits = self.frame_bits(frame)
        if not frame.bit_rate_switch:
            total_bits = nominal_bits + data_bits
            return 1_000.0 * total_bits / self.config.nominal_bitrate
        return 1_000.0 * (
            nominal_bits / self.config.nominal_bitrate
            + data_bits / self.config.data_bitrate
        )

    def transmit(self, frame: CanFdFrame) -> float:
        """Account for one frame transmission; returns its duration (ms)."""
        duration = self.frame_time_ms(frame)
        self.frames_sent += 1
        self.bytes_sent += len(frame.data)
        self.busy_ms += duration
        return duration
