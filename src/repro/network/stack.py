"""The full prototype network stack: application / ISO-TP / CAN-FD.

Composes the three layers of the paper's Fig. 6 into a single object the
session simulator can ask two questions of: *how many frames does this
message take* and *how long does its transfer occupy the bus*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .app import AppMessage, kd_message
from .canfd import CanFdBus, CanFdBusConfig
from .cantp import IsoTpChannel, IsoTpTiming, Reassembler, TpFrame


@dataclass
class NetworkStack:
    """One device's view of the CAN-FD session network.

    Attributes:
        bus: shared CAN-FD bus (pass the same instance to both devices for
            shared accounting).
        channel: ISO-TP parameters for this device's transfers.
    """

    bus: CanFdBus = field(default_factory=lambda: CanFdBus(CanFdBusConfig()))
    channel: IsoTpChannel = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.channel is None:
            self.channel = IsoTpChannel(bus=self.bus)

    def kd_transfer(
        self, session_id: int, label: str, payload: bytes
    ) -> IsoTpTiming:
        """Transfer one KD protocol message; returns the timing breakdown."""
        message = kd_message(session_id, label, payload)
        return self.channel.transfer(message.encode())

    def transfer_ms(self, app_payload: bytes) -> float:
        """Bus time of an already-framed application payload."""
        return self.channel.transfer(app_payload).total_ms

    def frames_for_kd(
        self, session_id: int, label: str, payload: bytes
    ) -> list[TpFrame]:
        """Sender-side ISO-TP frames of one KD message."""
        message = kd_message(session_id, label, payload)
        return self.channel.frames_for(message.encode())

    def loopback(self, app_payload: bytes) -> bytes:
        """Segment + reassemble a payload (integrity check helper)."""
        reassembler = Reassembler()
        result = None
        for frame in self.channel.frames_for(app_payload):
            result = reassembler.accept(frame)
        assert result is not None
        return result


def decode_kd_payload(raw: bytes) -> AppMessage:
    """Decode a reassembled application payload back into a message."""
    return AppMessage.decode(raw)
