"""Application-layer message format of the prototype (paper Fig. 6).

Above ISO-TP, the prototype frames every session message as::

    CommCode(1) || SessCommID(2) || OPCode(1) || AppData(...)

``CommCode`` selects the traffic class (key derivation, application data,
management), ``SessCommID`` identifies the session communication, and
``OPCode`` identifies the protocol step (we map it to the message label).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import NetworkError
from ..utils import bytes_to_int, int_to_bytes

HEADER_SIZE = 4

#: Communication codes (traffic classes).
COMM_KEY_DERIVATION = 0x10
COMM_APP_DATA = 0x20
COMM_MANAGEMENT = 0x30

_VALID_COMM_CODES = (COMM_KEY_DERIVATION, COMM_APP_DATA, COMM_MANAGEMENT)

#: OP codes for KD protocol steps, keyed by message label.
OP_CODES: dict[str, int] = {
    "A1": 0x01, "B1": 0x02, "A2": 0x03, "B2": 0x04,
    "A3": 0x05, "B3": 0x06,
    "DATA": 0x40, "ACK": 0x41,
}

_LABEL_BY_OP = {v: k for k, v in OP_CODES.items()}


@dataclass(frozen=True)
class AppMessage:
    """A decoded application-layer message."""

    comm_code: int
    session_id: int
    op_code: int
    data: bytes

    def __post_init__(self) -> None:
        if self.comm_code not in _VALID_COMM_CODES:
            raise NetworkError(f"invalid comm code {self.comm_code:#04x}")
        if not 0 <= self.session_id <= 0xFFFF:
            raise NetworkError(f"session id {self.session_id} out of range")
        if not 0 <= self.op_code <= 0xFF:
            raise NetworkError(f"op code {self.op_code} out of range")

    @property
    def label(self) -> str:
        """The protocol step label this OP code maps to (or hex)."""
        return _LABEL_BY_OP.get(self.op_code, f"op{self.op_code:#04x}")

    def encode(self) -> bytes:
        """Serialize header + data."""
        return (
            bytes([self.comm_code])
            + int_to_bytes(self.session_id, 2)
            + bytes([self.op_code])
            + self.data
        )

    @classmethod
    def decode(cls, raw: bytes) -> "AppMessage":
        """Parse header + data."""
        if len(raw) < HEADER_SIZE:
            raise NetworkError(f"app message too short: {len(raw)} bytes")
        return cls(
            comm_code=raw[0],
            session_id=bytes_to_int(raw[1:3]),
            op_code=raw[3],
            data=raw[HEADER_SIZE:],
        )


def kd_message(session_id: int, label: str, payload: bytes) -> AppMessage:
    """Wrap a KD protocol message payload for transmission."""
    try:
        op_code = OP_CODES[label]
    except KeyError:
        raise NetworkError(f"no OP code for step label {label!r}") from None
    return AppMessage(
        comm_code=COMM_KEY_DERIVATION,
        session_id=session_id,
        op_code=op_code,
        data=payload,
    )


def data_message(session_id: int, payload: bytes) -> AppMessage:
    """Wrap an encrypted application-data record for transmission."""
    return AppMessage(
        comm_code=COMM_APP_DATA,
        session_id=session_id,
        op_code=OP_CODES["DATA"],
        data=payload,
    )
