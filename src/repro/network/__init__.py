"""CAN-FD / ISO-TP / application network simulation (paper Fig. 6 stack)."""

from .app import (
    AppMessage,
    COMM_APP_DATA,
    COMM_KEY_DERIVATION,
    COMM_MANAGEMENT,
    OP_CODES,
    data_message,
    kd_message,
)
from .canfd import (
    CANFD_DATA_LENGTHS,
    CanFdBus,
    CanFdBusConfig,
    CanFdFrame,
    dlc_for_length,
    make_frame,
    padded_length,
)
from .cantp import (
    FC_CONTINUE,
    FC_OVERFLOW,
    FC_WAIT,
    IsoTpChannel,
    IsoTpTiming,
    Reassembler,
    TX_DL,
    TpFrame,
    TpFrameType,
    flow_control_frame,
    segment_message,
)
from .stack import NetworkStack, decode_kd_payload

__all__ = [
    "AppMessage",
    "CANFD_DATA_LENGTHS",
    "COMM_APP_DATA",
    "COMM_KEY_DERIVATION",
    "COMM_MANAGEMENT",
    "CanFdBus",
    "CanFdBusConfig",
    "CanFdFrame",
    "FC_CONTINUE",
    "FC_OVERFLOW",
    "FC_WAIT",
    "IsoTpChannel",
    "IsoTpTiming",
    "NetworkStack",
    "OP_CODES",
    "Reassembler",
    "TX_DL",
    "TpFrame",
    "TpFrameType",
    "data_message",
    "decode_kd_payload",
    "dlc_for_length",
    "flow_control_frame",
    "kd_message",
    "make_frame",
    "padded_length",
    "segment_message",
]
