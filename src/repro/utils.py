"""Small shared helpers: integer/byte conversions and constant-time compare.

These are the encoding conventions used throughout the library (and by the
SEC 1 / SEC 4 standards the ECQV layer implements): big-endian, fixed-width
octet strings.
"""

from __future__ import annotations

from .errors import ReproError


def int_to_bytes(value: int, length: int) -> bytes:
    """Encode a non-negative integer as a big-endian octet string.

    Args:
        value: the integer to encode; must be ``>= 0``.
        length: exact number of output bytes.

    Raises:
        ReproError: if the value is negative or does not fit in ``length``
            bytes.
    """
    if value < 0:
        raise ReproError(f"cannot encode negative integer {value}")
    try:
        return value.to_bytes(length, "big")
    except OverflowError as exc:
        raise ReproError(
            f"integer {value:#x} does not fit in {length} bytes"
        ) from exc


def bytes_to_int(data: bytes) -> int:
    """Decode a big-endian octet string into a non-negative integer."""
    return int.from_bytes(data, "big")


def byte_length(value: int) -> int:
    """Number of bytes needed to represent ``value`` (at least 1)."""
    if value < 0:
        raise ReproError(f"cannot measure negative integer {value}")
    return max(1, (value.bit_length() + 7) // 8)


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Compare two byte strings without data-dependent early exit.

    Embedded implementations use this pattern to avoid timing side channels
    when comparing MACs or signatures.  Python cannot give real constant-time
    guarantees, but we keep the access pattern uniform so the simulated cost
    (one pass over the data) matches what a device would do.
    """
    if len(a) != len(b):
        return False
    diff = 0
    for x, y in zip(a, b):
        diff |= x ^ y
    return diff == 0


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise ReproError(
            f"xor_bytes length mismatch: {len(a)} vs {len(b)}"
        )
    return bytes(x ^ y for x, y in zip(a, b))


def chunks(data: bytes, size: int) -> list[bytes]:
    """Split ``data`` into consecutive chunks of at most ``size`` bytes."""
    if size <= 0:
        raise ReproError(f"chunk size must be positive, got {size}")
    return [data[i : i + size] for i in range(0, len(data), size)]


def hexstr(data: bytes, group: int = 0) -> str:
    """Render bytes as lowercase hex, optionally grouped for readability."""
    h = data.hex()
    if group <= 0:
        return h
    return " ".join(h[i : i + 2 * group] for i in range(0, len(h), 2 * group))
