"""Process-parallel fleet execution with bit-identical merged digests.

``FleetConfig.workers > 1`` partitions the gateway shards across worker
*processes*.  Each worker provisions the full deterministic topology
(same seed, same DRBG streams, same trust store) and then drives **only
the event streams of its own shards** — arrivals of vehicles statically
assigned to an owned shard, injections targeting an owned shard.  At the
barrier the parent folds the per-worker snapshots back together with the
proven merge laws and assembles a :class:`~repro.fleet.stats.FleetStats`
that is **bit-identical** to the single-worker run.

Why the merged digest can be exact
----------------------------------

The digest freezes three kinds of state, each with its own merge law:

* **integer counters** — addition is associative and commutative;
* **latency summaries** — accumulated in
  :class:`~repro.fleet.stats.StreamingLatency` value→count tables whose
  merge is order-independent and whose ``summary()`` replays
  ``LatencySummary.from_samples`` bit-for-bit (equal values are adjacent
  after sorting, so the float-addition sequence is identical);
* **the fleet energy float** — accumulated in
  :class:`~repro.fleet.stats.ExactSum` (Shewchuk partials), whose value
  is the *correctly rounded* exact sum and therefore independent of
  which process added which sample in which order.

What makes a configuration partitionable
----------------------------------------

:func:`partition_plan` returns a plan only when shard event streams are
provably independent: static-hash placement (assignment is a pure
function of the vehicle identity / scenario pin), at least two shards,
no V2V pairings (cross-shard sessions), no failover/rejoin (handovers
move vehicles between shards and bump chain epochs), no live
re-balancing and no roaming profiles (load-driven migrations), and no
stale-cert floods (they require a failover).  Everything else — replay
storms, CA-queue floods, burst/diurnal/Poisson arrivals, convoy pins,
behavior profiles — stays per-shard and parallelises.  Configurations
that fail the check fall back to the serial loop, where digest parity is
trivial.

Transport integrity
-------------------

Every :class:`WorkerSnapshot` travels with a ``checksum`` — the SHA-256
of its canonical rendering, computed in the worker and re-verified by
the parent before merging.  A snapshot corrupted in transit (or a
worker/parent version skew) fails loudly instead of silently producing
a wrong digest.

Worker-local telemetry: workers run their own
:class:`~repro.obs.fleet.FleetInstrumentation` hooks; metric snapshots
merge into the parent observer (counters add, gauges max, histogram
sums are exact), while span streams stay worker-local — the parent
observer carries the merged metrics, the final heartbeat (annotated
with the max worker ``peak_rss_kb``) and the run meta.
"""

from __future__ import annotations

import dataclasses
import hashlib
import multiprocessing
from dataclasses import dataclass

from ..backend import get_backend, use_backend
from ..errors import SimulationError
from .scenario import StaleCertFlood
from .stats import (
    ExactSum,
    FleetStats,
    InjectionStats,
    ShardStats,
    StreamingLatency,
    merge_shard_stats,
)

__all__ = [
    "PartitionPlan",
    "WorkerSnapshot",
    "partition_plan",
    "run_parallel",
]

#: Fleet-level counters shipped verbatim from each worker; every one
#: merges by addition.
_COUNTER_FIELDS = (
    "enrollments",
    "sessions_established",
    "rekeys",
    "records_sent",
    "handovers",
    "migrations",
    "rejoins",
    "re_enrollments",
    "v2v_sessions",
    "v2v_rekeys",
    "v2v_cross_shard",
    "v2v_records_sent",
)

#: Raw per-shard accounting shipped from workers; the parent rebuilds
#: :class:`~repro.fleet.stats.ShardStats` from these at the *global*
#: end time (utilisation must be computed against the merged clock).
_SHARD_FIELDS = (
    "index",
    "name",
    "vehicles_assigned",
    "enrollments",
    "sessions_established",
    "rekeys",
    "handovers_in",
    "failed",
    "busy_ms",
    "batches",
    "max_batch",
    "energy_mj",
    "epoch",
    "migrations_in",
    "migrations_out",
)


@dataclass(frozen=True)
class PartitionPlan:
    """A viable shard→worker assignment for one run.

    ``owned[w]`` is the tuple of shard indices worker ``w`` simulates;
    shards are dealt round-robin (shard ``i`` → worker ``i % workers``)
    and the worker count is capped at the shard count, so every worker
    owns at least one shard.
    """

    workers: int
    owned: tuple[tuple[int, ...], ...]


@dataclass
class WorkerSnapshot:
    """Everything one worker's partition run produced, merge-ready.

    The latency fields are :class:`~repro.fleet.stats.StreamingLatency`
    tables and ``vehicle_energy`` an :class:`~repro.fleet.stats.ExactSum`
    — the *mergeable* forms, not rendered summaries, so the parent can
    fold any number of snapshots and only then freeze the result.
    ``checksum`` is the SHA-256 of :func:`_canonical_snapshot`, verified
    on receipt.
    """

    worker: int
    owned: tuple[int, ...]
    now: float
    events_processed: int
    shard_rows: tuple[dict, ...]
    counters: dict
    enrollment_latency: StreamingLatency
    establishment_latency: StreamingLatency
    queue_latency: StreamingLatency
    v2v_latency: StreamingLatency
    migration_latency: StreamingLatency
    vehicle_energy: ExactSum
    injection_rows: tuple[tuple[int, int, int], ...]
    metrics: object | None
    peak_rss_kb: int | None
    tree_root: str | None = None
    checksum: str = ""


def _canonical_snapshot(snap: WorkerSnapshot) -> str:
    """Canonical rendering of a snapshot's simulated-result fields.

    Pure function of the digest-relevant material (counters, shard rows,
    latency tables, energy partials, injections, clock) — host-side
    annotations (``metrics``, ``peak_rss_kb``, ``tree_root``) are
    deliberately outside the checksum, exactly as ``wall`` annotations
    are outside the run digest; the telemetry plane has its own
    integrity check (the subtree merge proof in ``_finalize_obs``).
    """
    parts = [
        f"worker={snap.worker}",
        "owned=" + ",".join(str(i) for i in snap.owned),
        f"now={snap.now!r}",
        f"events={snap.events_processed}",
        "counters="
        + ";".join(f"{key}:{snap.counters[key]}" for key in _COUNTER_FIELDS),
        "energy=" + snap.vehicle_energy.canonical(),
        "enroll=" + snap.enrollment_latency.canonical(),
        "establish=" + snap.establishment_latency.canonical(),
        "queue=" + snap.queue_latency.canonical(),
        "v2v=" + snap.v2v_latency.canonical(),
        "migrate=" + snap.migration_latency.canonical(),
        "injections="
        + ";".join(f"{a}:{r}:{s}" for a, r, s in snap.injection_rows),
    ]
    for row in snap.shard_rows:
        fields = ";".join(f"{key}:{row[key]!r}" for key in _SHARD_FIELDS)
        parts.append(
            f"shard[{row['index']}]={fields};"
            f"queue:{row['queue_latency'].canonical()}"
        )
    return "|".join(parts)


def _checksum(snap: WorkerSnapshot) -> str:
    return hashlib.sha256(_canonical_snapshot(snap).encode()).hexdigest()


def partition_plan(config, schedule) -> PartitionPlan | None:
    """A shard partition for ``config``, or ``None`` when coupled.

    Returns a :class:`PartitionPlan` only when every shard's event
    stream is provably independent of every other's (see the module
    docstring for the full argument); the orchestrator treats ``None``
    as "run the serial loop".
    """
    if config.workers <= 1:
        return None
    if config.shards < 2:
        return None
    if config.shard_policy != "static-hash":
        # round-robin / least-loaded assignment depends on the dynamic
        # arrival interleaving across shards.
        return None
    if config.v2v_fraction > 0.0:
        return None
    if config.shard_fail_at_ms is not None:
        return None
    if config.migrate_threshold is not None:
        return None
    if config.policy not in (None, "default"):
        # Alternative bundles may migrate on cross-shard load signals
        # (utilisation re-balancing, failover spreading), coupling the
        # shard streams; the default bundle is the extracted legacy
        # strategies, independent under the remaining guards.
        return None
    if schedule is not None:
        if schedule.scenario.policies:
            # Scenario-shipped rules are arbitrary plugins — assume
            # coupled.
            return None
        if any(
            profile.roam_every is not None
            for profile in schedule.profiles.values()
        ):
            return None
        if any(
            isinstance(spec, StaleCertFlood)
            for spec in schedule.injections
        ):
            return None
    workers = min(config.workers, config.shards)
    owned: list[list[int]] = [[] for _ in range(workers)]
    for shard in range(config.shards):
        owned[shard % workers].append(shard)
    return PartitionPlan(
        workers=workers, owned=tuple(tuple(o) for o in owned)
    )


def _worker_run(payload) -> WorkerSnapshot:
    """Worker-process entry: build the fleet, drive one partition.

    Builds the *full* deterministic topology (cheap relative to the
    storm: O(shards) provisioning) with ``workers=1`` so the worker's
    orchestrator is exactly the serial one, then schedules only the
    owned shards' events.  Returns a checksummed snapshot of everything
    the barrier merge needs.
    """
    worker_index, owned, config, scenario, want_obs, max_events = payload
    from .orchestrator import FleetOrchestrator

    obs = None
    if want_obs:
        from ..obs import Observer

        obs = Observer()
    orch = FleetOrchestrator(config, scenario=scenario, obs=obs)
    owned_set = frozenset(owned)
    with use_backend(config.backend):
        orch._run_partition(owned_set, max_events)
    if orch._hooks is not None:
        orch._hooks.partition_finished(orch)
    counters = {
        "enrollments": sum(1 for v in orch.vehicles if v.enrolled),
        "sessions_established": orch._sessions_established,
        "rekeys": orch._rekeys,
        "records_sent": orch._records_sent,
        "handovers": orch._handovers,
        "migrations": orch._migrations,
        "rejoins": orch._rejoins,
        "re_enrollments": orch._re_enrollments,
        "v2v_sessions": orch._v2v_sessions,
        "v2v_rekeys": orch._v2v_rekeys,
        "v2v_cross_shard": orch._v2v_cross_shard,
        "v2v_records_sent": orch._v2v_records_sent,
    }
    shard_rows = []
    for index in sorted(owned_set):
        shard = orch.shards[index]
        shard_rows.append(
            {
                "index": shard.index,
                "name": shard.ca_name,
                "vehicles_assigned": shard.vehicles_assigned,
                "enrollments": shard.enrollments,
                "sessions_established": shard.sessions_established,
                "rekeys": shard.rekeys,
                "handovers_in": shard.handovers_in,
                "failed": shard.failed,
                "busy_ms": shard.resource.busy_ms,
                "batches": shard.batches,
                "max_batch": shard.max_batch,
                "queue_latency": shard.queue_latency,
                "energy_mj": shard.energy_mj,
                "epoch": shard.epoch,
                "migrations_in": shard.migrations_in,
                "migrations_out": shard.migrations_out,
            }
        )
    from ..obs import _peak_rss_kb

    snap = WorkerSnapshot(
        worker=worker_index,
        owned=tuple(sorted(owned_set)),
        now=orch.sim.now,
        events_processed=orch.sim.events_processed,
        shard_rows=tuple(shard_rows),
        counters=counters,
        enrollment_latency=orch._enrollment_latencies,
        establishment_latency=orch._establishment_latencies,
        queue_latency=orch._queue_latencies,
        v2v_latency=orch._v2v_latencies,
        migration_latency=orch._migration_latencies,
        vehicle_energy=orch._vehicle_energy,
        injection_rows=tuple(
            (log["attempts"], log["rejected"], log["succeeded"])
            for log in orch._injection_log
        ),
        metrics=obs.metrics.snapshot() if obs is not None else None,
        peak_rss_kb=_peak_rss_kb(),
    )
    if snap.metrics is not None:
        from ..obs.tree import DigestTree

        # The worker's metric-plane subtree root: the parent rebuilds
        # the subtree from the shipped snapshot and verifies it hashes
        # to this root before folding (see _finalize_obs).
        snap.tree_root = DigestTree.from_metrics(snap.metrics).root_digest
    snap.checksum = _checksum(snap)
    return snap


def _start_method() -> str:
    """Prefer ``fork`` (cheap, inherits the warm process) when available."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


def run_parallel(
    config,
    scenario,
    schedule,
    plan: PartitionPlan,
    obs=None,
    max_events: int = 5_000_000,
):
    """Execute ``plan`` across worker processes and merge at the barrier.

    The returned :class:`~repro.fleet.orchestrator.FleetResult` carries
    a stats object bit-identical to the serial run's.  ``vehicles`` is
    empty — per-vehicle timelines live and die inside the workers
    (that is the point: the parent never materialises per-vehicle
    state) — so callers needing timelines should run ``workers=1``.
    """
    from .orchestrator import FleetResult

    # Resolve the ambient backend to a concrete name so spawn-started
    # workers (fresh processes, default ambient) execute the same one.
    worker_config = dataclasses.replace(
        config,
        workers=1,
        backend=config.backend or get_backend().name,
    )
    payloads = [
        (w, plan.owned[w], worker_config, scenario, obs is not None,
         max_events)
        for w in range(plan.workers)
    ]
    ctx = multiprocessing.get_context(_start_method())
    with ctx.Pool(processes=plan.workers) as pool:
        snapshots = pool.map(_worker_run, payloads)
    for snap in snapshots:
        expected = _checksum(snap)
        if snap.checksum != expected:
            raise SimulationError(
                f"worker {snap.worker} snapshot failed its transport"
                f" checksum ({snap.checksum[:12]}… != {expected[:12]}…);"
                " refusing to merge corrupted results"
            )
    stats = _merge(config, scenario, schedule, snapshots)
    if obs is not None:
        _finalize_obs(obs, config, scenario, stats, snapshots)
    return FleetResult(stats=stats, vehicles=[], obs=obs)


def _merge(config, scenario, schedule, snapshots) -> FleetStats:
    """Fold worker snapshots into the serial run's exact FleetStats."""
    # The merged clock: the serial run ends at the last event overall,
    # each worker at the last event among its shards.
    now = max(snap.now for snap in snapshots)
    rows: dict[int, dict] = {}
    for snap in snapshots:
        for row in snap.shard_rows:
            if row["index"] in rows:
                raise SimulationError(
                    f"shard {row['index']} reported by two workers —"
                    " partition plan is not a partition"
                )
            rows[row["index"]] = row
    if sorted(rows) != list(range(config.shards)):
        raise SimulationError(
            f"parallel run covered shards {sorted(rows)} of"
            f" {config.shards} — a worker went missing"
        )
    per_shard = tuple(
        ShardStats(
            index=row["index"],
            name=row["name"],
            vehicles_assigned=row["vehicles_assigned"],
            enrollments=row["enrollments"],
            sessions_established=row["sessions_established"],
            rekeys=row["rekeys"],
            handovers_in=row["handovers_in"],
            failed=row["failed"],
            ca_busy_ms=row["busy_ms"],
            # Recomputed against the *global* clock, matching
            # Resource.utilisation(now) in the serial assembly.
            ca_utilisation=(row["busy_ms"] / now) if now > 0 else 0.0,
            ca_batches=row["batches"],
            ca_max_batch=row["max_batch"],
            queue_latency=row["queue_latency"].summary(),
            ca_energy_mj=row["energy_mj"],
            epoch=row["epoch"],
            migrations_in=row["migrations_in"],
            migrations_out=row["migrations_out"],
        )
        for row in (rows[index] for index in sorted(rows))
    )
    merged = merge_shard_stats(per_shard)
    totals = {
        key: sum(snap.counters[key] for snap in snapshots)
        for key in _COUNTER_FIELDS
    }
    enrollment = StreamingLatency()
    establishment = StreamingLatency()
    queue = StreamingLatency()
    v2v = StreamingLatency()
    migration = StreamingLatency()
    energy = ExactSum()
    for snap in snapshots:
        enrollment.merge(snap.enrollment_latency)
        establishment.merge(snap.establishment_latency)
        queue.merge(snap.queue_latency)
        v2v.merge(snap.v2v_latency)
        migration.merge(snap.migration_latency)
        energy.merge(snap.vehicle_energy)
    injections = schedule.injections if schedule is not None else ()
    injection_stats = tuple(
        InjectionStats(
            kind=spec.kind,
            at_ms=spec.at_ms,
            attempts=sum(s.injection_rows[i][0] for s in snapshots),
            rejected=sum(s.injection_rows[i][1] for s in snapshots),
            succeeded=sum(s.injection_rows[i][2] for s in snapshots),
        )
        for i, spec in enumerate(injections)
    )
    return FleetStats(
        vehicles=config.n_vehicles,
        enrollments=totals["enrollments"],
        sessions_established=totals["sessions_established"],
        rekeys=totals["rekeys"],
        records_sent=totals["records_sent"],
        duration_ms=now,
        ca_busy_ms=merged["ca_busy_ms"],
        ca_utilisation=(
            merged["ca_busy_ms"] / (now * len(per_shard))
            if now > 0
            else 0.0
        ),
        ca_batches=merged["ca_batches"],
        ca_max_batch=merged["ca_max_batch"],
        enrollment_latency=enrollment.summary(),
        establishment_latency=establishment.summary(),
        vehicle_energy_mj=energy.value,
        ca_energy_mj=merged["ca_energy_mj"],
        per_shard=per_shard,
        ca_queue_latency=queue.summary(),
        v2v_sessions=totals["v2v_sessions"],
        v2v_rekeys=totals["v2v_rekeys"],
        v2v_cross_shard=totals["v2v_cross_shard"],
        v2v_records_sent=totals["v2v_records_sent"],
        v2v_latency=v2v.summary(),
        handovers=totals["handovers"],
        migrations=totals["migrations"],
        rejoins=totals["rejoins"],
        re_enrollments=totals["re_enrollments"],
        migration_latency=migration.summary(),
        scenario=scenario.name if scenario is not None else "",
        policy=config.policy or "",
        profile_counts=(
            schedule.profile_counts if schedule is not None else ()
        ),
        injection_stats=injection_stats,
    )


def _finalize_obs(obs, config, scenario, stats, snapshots) -> None:
    """Fold worker telemetry into the parent observer.

    Mirrors ``FleetInstrumentation.run_finished`` for the parts the
    parent owns: merged metrics, per-kind injection counters, the final
    heartbeat (annotated with the fleet-wide peak RSS when available)
    and the run meta.  Span streams stay worker-local by design.

    The absorb step carries its own proof: each worker shipped the
    digest-tree root of its metric-plane subtree, so the parent
    (1) rebuilds every subtree from the received snapshot and checks it
    hashes back to the shipped root, then (2) folds the subtrees under
    the tree merge law and demands the fold equal the tree *recomputed*
    from the absorbed registry — merge ≡ recomputation, the law
    ``tests/fleet/test_divergence_parallel.py`` exercises for
    workers ∈ {1, 2, 4}.  A mismatch is a merge-law violation, not a
    transport error, and fails the run loudly.
    """
    from ..obs.tree import DigestTree

    proof_eligible = not obs.metrics.snapshot().events()
    worker_trees = []
    for snap in snapshots:
        if snap.metrics is not None:
            subtree = DigestTree.from_metrics(snap.metrics)
            if (
                snap.tree_root is not None
                and subtree.root_digest != snap.tree_root
            ):
                raise SimulationError(
                    f"worker {snap.worker} metric subtree hashes to"
                    f" {subtree.root_digest[:12]}… but shipped root"
                    f" {snap.tree_root[:12]}…; refusing to merge"
                )
            worker_trees.append(subtree)
            obs.metrics.absorb(snap.metrics)
    if worker_trees and proof_eligible:
        folded = worker_trees[0].merge(*worker_trees[1:])
        recomputed = DigestTree.from_metrics(obs.metrics.snapshot())
        if folded.root_digest != recomputed.root_digest:
            raise SimulationError(
                "worker subtree fold"
                f" ({folded.root_digest[:12]}…) does not equal the"
                " tree recomputed from the absorbed registry"
                f" ({recomputed.root_digest[:12]}…) — the digest-tree"
                " merge law failed"
            )
        obs.meta["tree_root"] = recomputed.root_digest
    for inj in stats.injection_stats:
        obs.metrics.counter(
            "fleet.injection_attempts", kind=inj.kind
        ).inc(inj.attempts)
        obs.metrics.counter(
            "fleet.injection_rejected", kind=inj.kind
        ).inc(inj.rejected)
        obs.metrics.counter(
            "fleet.injection_succeeded", kind=inj.kind
        ).inc(inj.succeeded)
    beat = obs.heartbeat(
        sim_ms=stats.duration_ms,
        vehicles_done=config.n_vehicles,
        vehicles_total=config.n_vehicles,
        records_sent=stats.records_sent,
    )
    peaks = [
        snap.peak_rss_kb
        for snap in snapshots
        if snap.peak_rss_kb is not None
    ]
    if peaks:
        wall = beat.setdefault("wall", {})
        wall["peak_rss_kb"] = max([*peaks, wall.get("peak_rss_kb", 0)])
    obs.meta.update(
        {
            "run": scenario.name if scenario is not None else "fleet",
            "sim_end_ms": stats.duration_ms,
            "backend": config.backend,
            "n_vehicles": config.n_vehicles,
            "shards": config.shards,
            "workers": len(snapshots),
            "digest": stats.digest(),
        }
    )
