"""Fleet-scale session orchestration (enrollment → KD → expiry → re-key).

Scales the paper's two-station scenario to ``N`` concurrent vehicles on
the deterministic discrete-event simulator, with a contended central
CA/gateway, batched ECQV issuance, ephemeral pooling, enforced
session-key lifetimes and aggregate throughput/latency/energy statistics
priced on the hardware cost model.
"""

from .orchestrator import (
    FleetConfig,
    FleetOrchestrator,
    FleetResult,
    GATEWAY_NAME,
    run_fleet,
)
from .stats import FleetStats, LatencySummary
from .vehicle import TimelineEvent, Vehicle

__all__ = [
    "FleetConfig",
    "FleetOrchestrator",
    "FleetResult",
    "FleetStats",
    "GATEWAY_NAME",
    "LatencySummary",
    "TimelineEvent",
    "Vehicle",
    "run_fleet",
]
