"""Fleet-scale session orchestration (enrollment → KD → expiry → re-key).

Scales the paper's two-station scenario to ``N`` concurrent vehicles on
the deterministic discrete-event simulator — now on an explicit
deployment topology (:mod:`repro.fleet.topology`): ``M`` gateway shards
whose CAs chain to one fleet root, pluggable shard-assignment policies,
direct vehicle↔vehicle sessions with cross-shard trust-chain validation,
and deterministic gateway-failure/handover scenarios.  Batched ECQV
issuance, ephemeral pooling, enforced session-key lifetimes and aggregate
throughput/latency/energy statistics (with per-shard breakdowns) are
priced on the hardware cost model; ``shards=1, v2v_fraction=0`` is the
original single-gateway fleet, bit-for-bit.

The workload itself is declarative (:mod:`repro.fleet.scenario`): a
JSON-round-trippable :class:`Scenario` composes arrival processes,
vehicle behavior profiles and adversarial injections (replay storms,
stale-cert floods, CA-queue floods — all rejected, all accounted), and
compiles deterministically to the event schedule the orchestrator runs.
"""

from .orchestrator import (
    FleetConfig,
    FleetOrchestrator,
    FleetResult,
    GATEWAY_NAME,
    run_fleet,
)
from .scenario import (
    BehaviorProfile,
    BurstArrivals,
    CaQueueFlood,
    CompiledProfile,
    DiurnalArrivals,
    NAMED_SCENARIOS,
    PoissonArrivals,
    ReplayStorm,
    Scenario,
    ScenarioSchedule,
    StaleCertFlood,
    UniformArrivals,
    compile_scenario,
    get_scenario,
    load_scenario,
)
from .parallel import PartitionPlan, partition_plan
from .stats import (
    ExactSum,
    FleetStats,
    InjectionStats,
    LatencySummary,
    ShardStats,
    StreamingLatency,
    merge_shard_stats,
)
from .topology import (
    FleetTopology,
    GatewayShard,
    POLICY_LEAST_LOADED,
    POLICY_ROUND_ROBIN,
    POLICY_STATIC_HASH,
    ROOT_CA_NAME,
    SHARD_POLICIES,
    plan_v2v_pairs,
    shard_ca_name,
    shard_gateway_name,
)
from .vehicle import TimelineEvent, Vehicle

__all__ = [
    "BehaviorProfile",
    "BurstArrivals",
    "CaQueueFlood",
    "CompiledProfile",
    "DiurnalArrivals",
    "ExactSum",
    "FleetConfig",
    "FleetOrchestrator",
    "FleetResult",
    "FleetStats",
    "FleetTopology",
    "GATEWAY_NAME",
    "GatewayShard",
    "InjectionStats",
    "LatencySummary",
    "NAMED_SCENARIOS",
    "POLICY_LEAST_LOADED",
    "POLICY_ROUND_ROBIN",
    "POLICY_STATIC_HASH",
    "PartitionPlan",
    "PoissonArrivals",
    "ROOT_CA_NAME",
    "ReplayStorm",
    "SHARD_POLICIES",
    "Scenario",
    "ScenarioSchedule",
    "ShardStats",
    "StaleCertFlood",
    "StreamingLatency",
    "TimelineEvent",
    "UniformArrivals",
    "Vehicle",
    "compile_scenario",
    "get_scenario",
    "load_scenario",
    "merge_shard_stats",
    "partition_plan",
    "plan_v2v_pairs",
    "run_fleet",
    "shard_ca_name",
    "shard_gateway_name",
]
