"""Fleet-scale session orchestration (enrollment → KD → expiry → re-key).

Scales the paper's two-station scenario to ``N`` concurrent vehicles on
the deterministic discrete-event simulator — now on an explicit
deployment topology (:mod:`repro.fleet.topology`): ``M`` gateway shards
whose CAs chain to one fleet root, pluggable shard-assignment policies,
direct vehicle↔vehicle sessions with cross-shard trust-chain validation,
and deterministic gateway-failure/handover scenarios.  Batched ECQV
issuance, ephemeral pooling, enforced session-key lifetimes and aggregate
throughput/latency/energy statistics (with per-shard breakdowns) are
priced on the hardware cost model; ``shards=1, v2v_fraction=0`` is the
original single-gateway fleet, bit-for-bit.

The workload itself is declarative (:mod:`repro.fleet.scenario`): a
JSON-round-trippable :class:`Scenario` composes arrival processes,
vehicle behavior profiles and adversarial injections (replay storms,
stale-cert floods, CA-queue floods — all rejected, all accounted), and
compiles deterministically to the event schedule the orchestrator runs.

Run behavior is governed by declarative **policies**
(:mod:`repro.fleet.policy`): condition → action rules evaluated against
a read-only fleet snapshot at the orchestrator's decision points (shard
assignment, migration, re-key cadence, failover adoption).  The
``default`` bundle is the extracted legacy strategies — bit-identical
to every historical digest — and alternative bundles (utilisation
re-balancing, storm-hardened re-keying, failover spreading) swap
strategies without touching the orchestrator.
"""

from .orchestrator import (
    FleetConfig,
    FleetOrchestrator,
    FleetResult,
    GATEWAY_NAME,
    run_fleet,
)
from .scenario import (
    BehaviorProfile,
    BurstArrivals,
    CaQueueFlood,
    CompiledProfile,
    DiurnalArrivals,
    NAMED_SCENARIOS,
    PoissonArrivals,
    ReplayStorm,
    Scenario,
    ScenarioSchedule,
    StaleCertFlood,
    UniformArrivals,
    compile_scenario,
    get_scenario,
    load_scenario,
)
from .parallel import PartitionPlan, partition_plan
from .policy import (
    BUNDLE_OVERRIDES,
    DECISION_POINTS,
    Decision,
    FailoverSpread,
    FleetState,
    POLICY_BUNDLES,
    POLICY_RULES,
    PolicyEngine,
    RoamCadence,
    SessionExpiryRekey,
    ShardPolicyAssign,
    ShardView,
    StormRekey,
    ThresholdRebalance,
    UtilisationRebalance,
    VehicleView,
    bundle_conflict,
    load_policy,
    policy_dict,
    policy_json,
    register_policy,
    resolve_policies,
)
from .stats import (
    ExactSum,
    FleetStats,
    InjectionStats,
    LatencySummary,
    ShardStats,
    StreamingLatency,
    merge_shard_stats,
)
from .topology import (
    FleetTopology,
    GatewayShard,
    POLICY_LEAST_LOADED,
    POLICY_ROUND_ROBIN,
    POLICY_STATIC_HASH,
    ROOT_CA_NAME,
    SHARD_POLICIES,
    plan_v2v_pairs,
    shard_ca_name,
    shard_gateway_name,
)
from .vehicle import TimelineEvent, Vehicle

__all__ = [
    "BUNDLE_OVERRIDES",
    "BehaviorProfile",
    "BurstArrivals",
    "CaQueueFlood",
    "CompiledProfile",
    "DECISION_POINTS",
    "Decision",
    "DiurnalArrivals",
    "ExactSum",
    "FailoverSpread",
    "FleetConfig",
    "FleetOrchestrator",
    "FleetResult",
    "FleetState",
    "FleetStats",
    "FleetTopology",
    "GATEWAY_NAME",
    "GatewayShard",
    "InjectionStats",
    "LatencySummary",
    "NAMED_SCENARIOS",
    "POLICY_BUNDLES",
    "POLICY_LEAST_LOADED",
    "POLICY_ROUND_ROBIN",
    "POLICY_RULES",
    "POLICY_STATIC_HASH",
    "PartitionPlan",
    "PoissonArrivals",
    "PolicyEngine",
    "ROOT_CA_NAME",
    "ReplayStorm",
    "RoamCadence",
    "SHARD_POLICIES",
    "Scenario",
    "ScenarioSchedule",
    "SessionExpiryRekey",
    "ShardPolicyAssign",
    "ShardStats",
    "ShardView",
    "StaleCertFlood",
    "StormRekey",
    "StreamingLatency",
    "ThresholdRebalance",
    "TimelineEvent",
    "UniformArrivals",
    "UtilisationRebalance",
    "Vehicle",
    "VehicleView",
    "bundle_conflict",
    "compile_scenario",
    "get_scenario",
    "load_policy",
    "load_scenario",
    "merge_shard_stats",
    "partition_plan",
    "plan_v2v_pairs",
    "policy_dict",
    "policy_json",
    "register_policy",
    "resolve_policies",
    "run_fleet",
    "shard_ca_name",
    "shard_gateway_name",
]
