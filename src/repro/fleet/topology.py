"""Fleet deployment topology: gateway shards, trust chain, V2V pairing.

The single-gateway fleet of PR 1 put every CA and gateway duty on one
central device — the bottleneck *and* the single point of failure of every
run.  This module generalizes the deployment to an explicit topology:

* **Gateway shards** — ``M`` central devices, each with its own
  :class:`~repro.sim.engine.Resource`, its own issuing CA and its own
  gateway credential.  With ``M > 1`` the shard CAs are *subordinates*
  chained to one fleet root (:func:`~repro.ecqv.chain.make_sub_ca`), and a
  shared :class:`~repro.ecqv.TrustStore` lets any fleet member validate
  any other member's certificate up to the root.
* **Shard assignment policies** — ``static-hash`` (stable identity-based
  placement), ``least-loaded`` (pick the shard with the fewest active
  vehicles) and ``round-robin``.
* **V2V pairing** — a deterministic plan of vehicle↔vehicle sessions
  established directly between two enrolled vehicles, no gateway in the
  data path; cross-shard pairs exercise the trust chain.
* **Failover** — a shard can be marked failed mid-run; its vehicles are
  adopted by surviving shards (policy-driven), re-keying there with their
  existing chained credentials.
* **Churn lifecycle** — vehicles *migrate* between healthy shards
  (re-enrolling at the target sub-CA), and a failed shard can *rejoin*:
  :meth:`FleetTopology.rejoin_shard` re-provisions it with a fresh sub-CA
  key pair chained to the same root at the next **chain epoch**, retiring
  the old epoch's intermediate in the trust store so stale credentials
  are rejected instead of silently validating.

The degenerate topology (``shards=1``) reproduces the PR 1 deployment
byte-for-byte: same device names, same DRBG personalizations, no root CA
above the single gateway CA and no trust store, so every digest of the
single-gateway fleet is preserved.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field

from ..ec import precompute_point
from ..ecqv import (
    Certificate,
    CertificateAuthority,
    CertificateRequester,
    EcqvCredential,
    TrustStore,
    make_sub_ca,
)
from ..errors import SimulationError
from ..hardware import DeviceModel, get_device
from ..primitives import HmacDrbg, sha256
from ..protocols import SessionManager
from ..protocols.pool import EphemeralPool
from ..sim.engine import Resource
from ..testbed import DEFAULT_NOW, device_id
from .stats import ShardStats, StreamingLatency
from .vehicle import Vehicle

#: Identity of the central CA/gateway device (paper Fig. 1's RPi 4) in the
#: degenerate single-shard deployment.
GATEWAY_NAME = "fleet-gateway"

#: Identity of the fleet root CA anchoring every shard CA (sharded runs).
ROOT_CA_NAME = "fleet-root-ca"

#: Registered shard-assignment policies.
POLICY_STATIC_HASH = "static-hash"
POLICY_LEAST_LOADED = "least-loaded"
POLICY_ROUND_ROBIN = "round-robin"
SHARD_POLICIES = (POLICY_STATIC_HASH, POLICY_LEAST_LOADED, POLICY_ROUND_ROBIN)


def shard_ca_name(index: int, total: int) -> str:
    """CA/resource identity of shard ``index`` in a ``total``-shard fleet."""
    return "central-ca" if total == 1 else f"central-ca-{index}"


def shard_gateway_name(index: int, total: int) -> str:
    """Gateway identity of shard ``index`` in a ``total``-shard fleet."""
    return GATEWAY_NAME if total == 1 else f"fleet-gw{index}"


@dataclass
class GatewayShard:
    """One gateway shard: CA + gateway endpoint + contended resource.

    Mutable orchestration state (queue, accounting) lives here so the
    orchestrator's enrollment and establishment paths are uniform across
    any shard count.
    """

    index: int
    ca_name: str
    gateway_name: str
    ca: CertificateAuthority
    #: The shard CA's own certificate chained to the fleet root
    #: (``None`` in the degenerate deployment where the shard CA *is*
    #: the trust anchor).
    ca_certificate: Certificate | None
    gateway_credential: EcqvCredential
    resource: Resource
    device: DeviceModel
    pool: EphemeralPool | None
    manager: SessionManager | None = None
    failed: bool = False
    #: Chain epoch of the shard's CA: 1 at provisioning, bumped by every
    #: post-failure rejoin (the trust store retires the old epoch's cert).
    epoch: int = 1
    # -- orchestration accounting --------------------------------------------
    queue: deque = field(default_factory=deque)
    issuing: bool = False
    batches: int = 0
    max_batch: int = 0
    vehicles_assigned: int = 0
    active_vehicles: int = 0
    enrollments: int = 0
    sessions_established: int = 0
    rekeys: int = 0
    handovers_in: int = 0
    migrations_in: int = 0
    migrations_out: int = 0
    queue_latency: StreamingLatency = field(default_factory=StreamingLatency)
    energy_mj: float = 0.0
    session_counter: int = 0

    @property
    def gateway_id(self) -> bytes:
        """The shard gateway's 16-byte identity."""
        return self.gateway_credential.subject_id

    def adopt(self, vehicle: Vehicle) -> None:
        """Take over a vehicle from a failed shard."""
        self.vehicles_assigned += 1
        self.active_vehicles += 1
        self.handovers_in += 1
        vehicle.shard = self.index

    def receive_migration(self, vehicle: Vehicle) -> None:
        """Take over a vehicle migrating in from a *healthy* shard."""
        self.vehicles_assigned += 1
        self.active_vehicles += 1
        self.migrations_in += 1
        vehicle.shard = self.index

    def stats(self, now: float) -> ShardStats:
        """Freeze this shard's accounting into a :class:`ShardStats`."""
        return ShardStats(
            index=self.index,
            name=self.ca_name,
            vehicles_assigned=self.vehicles_assigned,
            enrollments=self.enrollments,
            sessions_established=self.sessions_established,
            rekeys=self.rekeys,
            handovers_in=self.handovers_in,
            failed=self.failed,
            ca_busy_ms=self.resource.busy_ms,
            ca_utilisation=self.resource.utilisation(now),
            ca_batches=self.batches,
            ca_max_batch=self.max_batch,
            queue_latency=self.queue_latency.summary(),
            ca_energy_mj=self.energy_mj,
            epoch=self.epoch,
            migrations_in=self.migrations_in,
            migrations_out=self.migrations_out,
        )


class FleetTopology:
    """The provisioned deployment a fleet run executes on.

    Builds the root CA (sharded runs), every gateway shard with its
    chained CA, gateway credential and ephemeral pool, the fleet-wide
    :class:`~repro.ecqv.TrustStore`, and registers the long-lived public
    points (root key, shard CA keys, gateway keys, shard reconstruction
    points) with :func:`~repro.ec.precompute_point` so the whole run's
    repeated multiplications of those keys share one wNAF table each.

    All of this happens before the storm begins (gateways are provisioned
    ahead of time, exactly as PR 1 treated its single gateway), so none of
    it lands on the simulated timeline.
    """

    def __init__(self, config) -> None:
        self.config = config
        seed = config.seed
        total = config.shards
        curve = config.curve
        clock = lambda: DEFAULT_NOW  # noqa: E731
        if total == 1:
            self.root_ca: CertificateAuthority | None = None
            self.trust_store: TrustStore | None = None
        else:
            self.root_ca = CertificateAuthority(
                curve,
                device_id(ROOT_CA_NAME),
                HmacDrbg(seed, personalization=b"fleet|root|ca"),
                clock=clock,
                require_signed_requests=config.authenticate_requests,
            )
            self.trust_store = TrustStore(self.root_ca.public_key)
            precompute_point(self.root_ca.public_key)
        self.shards: list[GatewayShard] = [
            self._build_shard(index, total) for index in range(total)
        ]
        if self.trust_store is not None:
            for shard in self.shards:
                self.trust_store.add_intermediate(shard.ca_certificate)
        #: The trust anchor every session context validates against: the
        #: root key when sharded, the single CA key otherwise.
        self.anchor_public = (
            self.root_ca.public_key
            if self.root_ca is not None
            else self.shards[0].ca.public_key
        )
        self._round_robin = 0
        #: Optional assignment override, set by the orchestrator: a
        #: callable ``(vehicle) -> GatewayShard | None`` consulted by
        #: :meth:`assign` after the pinned-shard check.  ``None`` (a
        #: standalone topology, or every policy rule passing) keeps the
        #: legacy arithmetic below — the ``default`` policy bundle
        #: reproduces it bit-for-bit through this hook.
        self.policy_hook = None

    # -- construction ---------------------------------------------------------

    def _enroll_gateway(
        self,
        ca: CertificateAuthority,
        gateway_name: str,
        enroll_pers: bytes,
        pool_pers: bytes,
        pool_entries: int,
    ):
        """Enroll a gateway at its shard CA and build its ephemeral pool.

        Shared by every provisioning path (degenerate, chained, rejoin);
        the personalization strings are passed in verbatim so each path
        keeps its historical DRBG streams bit-for-bit.
        """
        config = self.config
        gw_requester = CertificateRequester(
            config.curve,
            device_id(gateway_name),
            HmacDrbg(config.seed, personalization=enroll_pers),
        )
        gw_issued = ca.issue(
            gw_requester.create_request(
                authenticate=config.authenticate_requests
            ),
            validity_seconds=config.cert_validity_seconds,
        )
        gateway_credential = gw_requester.process_response(
            gw_issued, ca.public_key
        )
        pool: EphemeralPool | None = None
        if config.use_batch_ec and config.pool_size > 0:
            pool = EphemeralPool(
                config.curve,
                HmacDrbg(config.seed, personalization=pool_pers),
                pool_entries,
            )
        precompute_point(ca.public_key)
        precompute_point(gateway_credential.public_key)
        return gateway_credential, pool

    def _provision_chained_shard(
        self,
        index: int,
        total: int,
        ca_name: str,
        gateway_name: str,
        epoch: int,
    ):
        """Provision one sharded deployment's CA, gateway and pool.

        The single recipe behind both initial provisioning (``epoch=1``,
        bare personalizations — PR 2 bit-parity) and a post-failure
        rejoin (``epoch>=2``, every DRBG stream suffixed with the epoch
        so the reborn shard's key material is fresh but deterministic).
        """
        config = self.config
        clock = lambda: DEFAULT_NOW  # noqa: E731
        suffix = b"" if epoch == 1 else b"|epoch%d" % epoch
        ca, ca_certificate = make_sub_ca(
            self.root_ca,
            device_id(ca_name),
            HmacDrbg(
                config.seed,
                personalization=b"fleet|shard%d|ca" % index + suffix,
            ),
            clock=clock,
            validity_seconds=config.cert_validity_seconds,
            authenticate_request=config.authenticate_requests,
        )
        ca.require_signed_requests = config.authenticate_requests
        # A shard serves ~n/M vehicles, so its pool is sized for its
        # share (2 sessions' worth each).  Handover/migration surges
        # past the pool degrade gracefully to on-demand Op1.
        gateway_credential, pool = self._enroll_gateway(
            ca,
            gateway_name,
            enroll_pers=b"fleet|gw%d|enroll" % index + suffix,
            pool_pers=b"fleet|gw%d|pool" % index + suffix,
            pool_entries=2 * -(-config.n_vehicles // total),
        )
        precompute_point(ca_certificate.reconstruction_point)
        return ca, ca_certificate, gateway_credential, pool

    def _build_shard(self, index: int, total: int) -> GatewayShard:
        config = self.config
        ca_name = shard_ca_name(index, total)
        gateway_name = shard_gateway_name(index, total)
        if total == 1:
            # Degenerate deployment: byte-identical to the PR 1 fleet
            # (single anchor CA, 2*n pool, legacy personalizations).
            clock = lambda: DEFAULT_NOW  # noqa: E731
            ca = CertificateAuthority(
                config.curve,
                device_id(ca_name),
                HmacDrbg(config.seed, personalization=b"fleet|ca"),
                clock=clock,
                require_signed_requests=config.authenticate_requests,
            )
            ca_certificate = None
            gateway_credential, pool = self._enroll_gateway(
                ca,
                gateway_name,
                enroll_pers=b"fleet|gateway|enroll",
                pool_pers=b"fleet|gateway|pool",
                pool_entries=2 * config.n_vehicles,
            )
        else:
            ca, ca_certificate, gateway_credential, pool = (
                self._provision_chained_shard(
                    index, total, ca_name, gateway_name, epoch=1
                )
            )
        return GatewayShard(
            index=index,
            ca_name=ca_name,
            gateway_name=gateway_name,
            ca=ca,
            ca_certificate=ca_certificate,
            gateway_credential=gateway_credential,
            resource=Resource(
                ca_name,
                record_intervals=not getattr(config, "stream", False),
            ),
            device=get_device(config.ca_device),
            pool=pool,
        )

    # -- churn: gateway rejoin -------------------------------------------------

    def rejoin_shard(self, index: int) -> GatewayShard:
        """Re-provision a failed shard at the next chain epoch.

        The shard comes back with a *fresh* CA key pair — enrolled at the
        same fleet root, so every peer still validates it through the one
        anchor — and a fresh gateway credential and ephemeral pool keyed
        by the new epoch's DRBG personalizations.  The trust store rolls
        the shard's intermediate (:meth:`~repro.ecqv.TrustStore.replace_intermediate`),
        which *retires* the pre-failure epoch: certificates issued by the
        dead CA stop resolving, so holders must re-enroll rather than keep
        presenting credentials whose issuing key died with the gateway.

        Like initial provisioning this happens off the simulated timeline
        (the gateway is assumed re-imaged out of band); the orchestrator
        schedules *when* it happens and rebuilds the session manager.
        """
        if self.root_ca is None or self.trust_store is None:
            raise SimulationError(
                "gateway rejoin requires a sharded (rooted) topology"
            )
        shard = self.shards[index]
        if not shard.failed:
            raise SimulationError(
                f"shard {index} is alive; only failed shards can rejoin"
            )
        epoch = shard.epoch + 1
        ca, ca_certificate, gateway_credential, pool = (
            self._provision_chained_shard(
                index,
                len(self.shards),
                shard.ca_name,
                shard.gateway_name,
                epoch=epoch,
            )
        )
        self.trust_store.replace_intermediate(ca_certificate)
        shard.ca = ca
        shard.ca_certificate = ca_certificate
        shard.gateway_credential = gateway_credential
        shard.pool = pool
        shard.failed = False
        shard.epoch = epoch
        return shard

    # -- shard assignment ------------------------------------------------------

    def alive_shards(self) -> list[GatewayShard]:
        """Shards currently accepting work, in index order."""
        return [shard for shard in self.shards if not shard.failed]

    def assign(self, vehicle: Vehicle) -> GatewayShard:
        """Pick the serving shard for a vehicle under the configured policy.

        Every policy is deterministic: ``static-hash`` places by a hash
        of the vehicle identity, ``least-loaded`` picks the fewest active
        vehicles (ties to the lowest index), ``round-robin`` cycles a
        counter — all over the currently *alive* shards, so the same
        policies drive both initial placement and failover adoption.
        """
        alive = self.alive_shards()
        if not alive:
            raise SimulationError("no alive gateway shard to assign to")
        if vehicle.pinned_shard is not None:
            # Platoon convoys pin to one shard; the pin wins over every
            # policy while its shard is alive and falls back to the
            # policy (failover adoption) while it is down.
            pinned = self.shards[vehicle.pinned_shard]
            if not pinned.failed:
                return pinned
        if self.policy_hook is not None:
            chosen = self.policy_hook(vehicle)
            if chosen is not None:
                return chosen
        policy = self.config.shard_policy
        if policy == POLICY_STATIC_HASH:
            digest = sha256(b"fleet|shard-assign|" + vehicle.device_id)
            return alive[int.from_bytes(digest[:8], "big") % len(alive)]
        if policy == POLICY_LEAST_LOADED:
            return min(alive, key=lambda s: (s.active_vehicles, s.index))
        # round-robin
        shard = alive[self._round_robin % len(alive)]
        self._round_robin += 1
        return shard


def plan_v2v_pairs(config) -> list[tuple[int, int]]:
    """Deterministic V2V pairing plan for a fleet configuration.

    Shuffles the vehicle indices with a seed-derived PRNG and pairs them
    off until ``v2v_fraction`` of the fleet participates.  Each pair is
    ``(initiator_index, responder_index)`` with the initiator the lower
    index; a vehicle joins at most one pair.  Whether a pair straddles
    shards falls out of the assignment policy at run time — with
    ``static-hash`` placement and several shards, a healthy fraction does,
    which is exactly the cross-shard validation the trust chain exists for.
    """
    if config.v2v_fraction <= 0.0 or config.n_vehicles < 2:
        return []
    rng = random.Random(
        int.from_bytes(sha256(config.seed + b"|v2v-pairs"), "big")
    )
    indices = list(range(config.n_vehicles))
    rng.shuffle(indices)
    participants = int(round(config.v2v_fraction * config.n_vehicles))
    n_pairs = min(participants // 2, config.n_vehicles // 2)
    pairs = []
    for i in range(n_pairs):
        a, b = indices[2 * i], indices[2 * i + 1]
        pairs.append((min(a, b), max(a, b)))
    return sorted(pairs)
