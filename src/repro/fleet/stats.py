"""Aggregate statistics for fleet-scale orchestration runs.

Everything here is deterministic: latencies come from the discrete-event
clock, energy from the hardware cost model, and :meth:`FleetStats.digest`
hashes a canonical rendering so two runs with the same seed can be checked
for bit-identical aggregate behaviour (the reproducibility contract the
fleet benchmark enforces).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..primitives import sha256


def _percentile(sorted_samples: list[float], q: float) -> float:
    """Nearest-rank percentile on pre-sorted samples (deterministic)."""
    if not sorted_samples:
        return 0.0
    index = min(
        len(sorted_samples) - 1,
        max(0, round(q * (len(sorted_samples) - 1))),
    )
    return sorted_samples[index]


@dataclass(frozen=True)
class LatencySummary:
    """Five-number summary of a latency sample set (milliseconds)."""

    count: int
    min_ms: float
    mean_ms: float
    p50_ms: float
    p95_ms: float
    max_ms: float

    @classmethod
    def from_samples(cls, samples: list[float]) -> "LatencySummary":
        """Summarize raw samples; all-zero summary for an empty set."""
        if not samples:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        ordered = sorted(samples)
        return cls(
            count=len(ordered),
            min_ms=ordered[0],
            mean_ms=sum(ordered) / len(ordered),
            p50_ms=_percentile(ordered, 0.50),
            p95_ms=_percentile(ordered, 0.95),
            max_ms=ordered[-1],
        )

    def row(self) -> str:
        """One-line rendering used by reports."""
        return (
            f"n={self.count} min={self.min_ms:.3f} mean={self.mean_ms:.3f}"
            f" p50={self.p50_ms:.3f} p95={self.p95_ms:.3f}"
            f" max={self.max_ms:.3f} ms"
        )


@dataclass(frozen=True)
class FleetStats:
    """Aggregate outcome of one :class:`~repro.fleet.FleetOrchestrator` run."""

    vehicles: int
    enrollments: int
    sessions_established: int
    rekeys: int
    records_sent: int
    duration_ms: float
    ca_busy_ms: float
    ca_utilisation: float
    ca_batches: int
    ca_max_batch: int
    enrollment_latency: LatencySummary
    establishment_latency: LatencySummary
    vehicle_energy_mj: float
    ca_energy_mj: float

    @property
    def throughput_records_per_s(self) -> float:
        """Application records delivered per simulated second."""
        if self.duration_ms <= 0:
            return 0.0
        return self.records_sent / (self.duration_ms / 1000.0)

    @property
    def sessions_per_s(self) -> float:
        """Session establishments (incl. re-keys) per simulated second."""
        if self.duration_ms <= 0:
            return 0.0
        return self.sessions_established / (self.duration_ms / 1000.0)

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"fleet: {self.vehicles} vehicles, {self.enrollments} enrolled,"
            f" {self.sessions_established} sessions"
            f" ({self.rekeys} re-keys), {self.records_sent} records",
            f"  sim duration        : {self.duration_ms:.3f} ms",
            f"  throughput          : {self.throughput_records_per_s:.2f}"
            f" records/s, {self.sessions_per_s:.2f} sessions/s",
            f"  CA busy             : {self.ca_busy_ms:.3f} ms"
            f" ({self.ca_utilisation * 100.0:.1f} % utilisation,"
            f" {self.ca_batches} issuance batches,"
            f" max batch {self.ca_max_batch})",
            f"  enrollment latency  : {self.enrollment_latency.row()}",
            f"  establish latency   : {self.establishment_latency.row()}",
            f"  energy              : vehicles {self.vehicle_energy_mj:.3f} mJ,"
            f" CA {self.ca_energy_mj:.3f} mJ",
        ]
        return "\n".join(lines)

    def digest(self) -> str:
        """Stable hash of the aggregate numbers (reproducibility checks).

        Floats are rendered with fixed precision so the digest is
        insensitive to representation noise but sensitive to any real
        behavioural change.
        """
        canonical = "|".join(
            [
                f"v={self.vehicles}",
                f"enr={self.enrollments}",
                f"sess={self.sessions_established}",
                f"rekey={self.rekeys}",
                f"rec={self.records_sent}",
                f"dur={self.duration_ms:.6f}",
                f"cabusy={self.ca_busy_ms:.6f}",
                f"cau={self.ca_utilisation:.6f}",
                f"cab={self.ca_batches}",
                f"cam={self.ca_max_batch}",
                f"enl={self.enrollment_latency.row()}",
                f"esl={self.establishment_latency.row()}",
                f"ve={self.vehicle_energy_mj:.6f}",
                f"cae={self.ca_energy_mj:.6f}",
            ]
        )
        return sha256(canonical.encode()).hex()
