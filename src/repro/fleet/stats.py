"""Aggregate statistics for fleet-scale orchestration runs.

Everything here is deterministic: latencies come from the discrete-event
clock, energy from the hardware cost model, and :meth:`FleetStats.digest`
hashes a canonical rendering so two runs with the same seed can be checked
for bit-identical aggregate behaviour (the reproducibility contract the
fleet benchmark enforces).

Topology runs add a per-shard breakdown (:class:`ShardStats`, one per
gateway shard) plus V2V/handover aggregates.  The digest grows extension
segments **only** for non-degenerate runs — a single-gateway, no-V2V run
hashes the exact canonical string the single-gateway orchestrator always
produced, which is what keeps ``shards=1, v2v_fraction=0`` bit-compatible
with the pre-topology fleet.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import StatsError
from ..primitives import sha256


def _require_finite(value: float, where: str) -> float:
    """Reject NaN/inf before it can poison digest material."""
    value = float(value)
    if not math.isfinite(value):
        raise StatsError(
            f"{where} must be finite, got {value!r}; NaN/inf samples"
            " would render into digest material and poison the"
            " reproducibility contract"
        )
    return value


def _percentile(sorted_samples: list[float], q: float) -> float:
    """Nearest-rank percentile on pre-sorted samples (deterministic).

    **Legacy rounding rule, digest-frozen.**  ``round()`` is banker's
    rounding, so an exact ``.5`` rank resolves to the *even* neighbour —
    e.g. the p50 of 4 samples reads rank ``round(1.5) == 2``, but the
    p99 of 151 samples reads rank ``round(148.5) == 148``, the *lower*
    sample.  That bias is a bug for a tail percentile, but ``p50_ms`` and
    ``p95_ms`` computed with this rule are baked into every historical
    :meth:`LatencySummary.row` digest (PR 1 onward), so the rule here
    must never change.  ``p99_ms`` is digest-excluded and uses the
    corrected :func:`_percentile_ceil` instead.
    """
    if not sorted_samples:
        return 0.0
    index = min(
        len(sorted_samples) - 1,
        max(0, round(q * (len(sorted_samples) - 1))),
    )
    return sorted_samples[index]


def _percentile_ceil(sorted_samples: list[float], q: float) -> float:
    """Nearest-rank percentile with round-half-**up** rank resolution.

    ``floor(rank + 0.5)`` picks the upper neighbour on exact ``.5``
    ranks, so a tail percentile can never under-report by one sample the
    way banker's rounding does (see :func:`_percentile`).  Used only for
    the digest-excluded ``p99_ms``; changing it cannot perturb any
    historical digest because :meth:`LatencySummary.row` never renders
    it.
    """
    if not sorted_samples:
        return 0.0
    rank = q * (len(sorted_samples) - 1)
    index = min(len(sorted_samples) - 1, int(rank + 0.5))
    return sorted_samples[index]


@dataclass(frozen=True)
class LatencySummary:
    """Summary of a latency sample set (milliseconds).

    ``p99_ms`` arrived with the topology benchmarks; it is deliberately
    excluded from :meth:`row` (and therefore from every digest built on
    it) so its addition cannot perturb historical digests.
    """

    count: int
    min_ms: float
    mean_ms: float
    p50_ms: float
    p95_ms: float
    max_ms: float
    p99_ms: float = 0.0

    @classmethod
    def from_samples(cls, samples: list[float]) -> "LatencySummary":
        """Summarize raw samples; all-zero summary for an empty set.

        Non-finite samples raise :class:`~repro.errors.StatsError`: a
        NaN would even corrupt the *sort* the percentile ranks rely on,
        and both NaN and inf would render into digest material.
        """
        if not samples:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        for sample in samples:
            _require_finite(sample, "latency samples")
        ordered = sorted(samples)
        return cls(
            count=len(ordered),
            min_ms=ordered[0],
            mean_ms=sum(ordered) / len(ordered),
            p50_ms=_percentile(ordered, 0.50),
            p95_ms=_percentile(ordered, 0.95),
            max_ms=ordered[-1],
            p99_ms=_percentile_ceil(ordered, 0.99),
        )

    def row(self) -> str:
        """One-line rendering used by reports (and digest material)."""
        return (
            f"n={self.count} min={self.min_ms:.3f} mean={self.mean_ms:.3f}"
            f" p50={self.p50_ms:.3f} p95={self.p95_ms:.3f}"
            f" max={self.max_ms:.3f} ms"
        )

    def as_dict(self) -> dict:
        """JSON-ready mapping (all fields, including ``p99_ms``)."""
        return {
            "count": self.count,
            "min_ms": self.min_ms,
            "mean_ms": self.mean_ms,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "max_ms": self.max_ms,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LatencySummary":
        """Rebuild a summary from its :meth:`as_dict` mapping.

        Accepts pre-topology serialized summaries too: ``p99_ms`` only
        arrived with the topology benchmarks, so dicts written before
        then lack the key and default to ``0.0`` — the same value the
        field's dataclass default gives a freshly built summary.

        Non-finite values raise :class:`~repro.errors.StatsError` (a
        hand-edited or corrupted benchmark record must fail loudly, not
        hash ``nan`` into a digest).
        """
        return cls(
            count=data["count"],
            min_ms=_require_finite(data["min_ms"], "min_ms"),
            mean_ms=_require_finite(data["mean_ms"], "mean_ms"),
            p50_ms=_require_finite(data["p50_ms"], "p50_ms"),
            p95_ms=_require_finite(data["p95_ms"], "p95_ms"),
            max_ms=_require_finite(data["max_ms"], "max_ms"),
            p99_ms=_require_finite(data.get("p99_ms", 0.0), "p99_ms"),
        )


class StreamingLatency:
    """Constant-state streaming replacement for a raw sample list.

    Holds the sample **multiset** as a ``value -> count`` mapping instead
    of materializing one Python float object per sample.  Memory is
    bounded by the number of *distinct* sample values — which the
    discrete cost model quantizes heavily (thousands of vehicles doing
    identical priced work produce identical latencies) — not by the
    sample count, and :meth:`summary` reproduces
    :meth:`LatencySummary.from_samples` **bit-for-bit** on every
    digest-frozen field:

    * ``min``/``max`` are the smallest/largest distinct value;
    * ``mean`` replays the sequential float addition ``sum(sorted(...))``
      performs — equal values are adjacent after sorting, so repeated
      addition over the sorted distinct values is the *same* float
      operation sequence;
    * ``p50``/``p95`` (and the digest-excluded ``p99``) resolve the
      legacy nearest-rank indices through cumulative counts.

    ``merge`` adds count mappings, which is order-independent and
    associative — the property the process-parallel barrier merge
    relies on (locked by the hypothesis suite).
    """

    __slots__ = ("_counts", "_n")

    def __init__(self) -> None:
        self._counts: dict[float, int] = {}
        self._n = 0

    def add(self, value: float) -> None:
        """Record one sample; NaN/inf raise :class:`~repro.errors.StatsError`."""
        value = _require_finite(value, "latency samples")
        self._counts[value] = self._counts.get(value, 0) + 1
        self._n += 1

    @property
    def count(self) -> int:
        """Samples recorded so far."""
        return self._n

    @property
    def distinct(self) -> int:
        """Distinct sample values held (the memory bound)."""
        return len(self._counts)

    def merge(self, other: "StreamingLatency") -> None:
        """Fold another accumulator in (order-independent, associative)."""
        for value, count in other._counts.items():
            self._counts[value] = self._counts.get(value, 0) + count
        self._n += other._n

    def summary(self) -> "LatencySummary":
        """Freeze into a summary, bit-identical to the materialized path."""
        if not self._n:
            return LatencySummary.from_samples([])
        values = sorted(self._counts)
        total = 0.0
        for value in values:
            for _ in range(self._counts[value]):
                total += value
        return LatencySummary(
            count=self._n,
            min_ms=values[0],
            mean_ms=total / self._n,
            p50_ms=self._value_at(values, self._rank_legacy(0.50)),
            p95_ms=self._value_at(values, self._rank_legacy(0.95)),
            max_ms=values[-1],
            p99_ms=self._value_at(values, self._rank_ceil(0.99)),
        )

    def _rank_legacy(self, q: float) -> int:
        # The digest-frozen banker's-rounding rank of _percentile.
        return min(self._n - 1, max(0, round(q * (self._n - 1))))

    def _rank_ceil(self, q: float) -> int:
        # The round-half-up rank of _percentile_ceil (p99 only).
        return min(self._n - 1, int(q * (self._n - 1) + 0.5))

    def _value_at(self, values: list[float], rank: int) -> float:
        """The ``rank``-th (0-based) order statistic via cumulative counts."""
        seen = 0
        for value in values:
            seen += self._counts[value]
            if rank < seen:
                return value
        return values[-1]  # pragma: no cover - rank is always < n

    def canonical(self) -> str:
        """Canonical rendering for transport checkpointing (repr-exact)."""
        return ";".join(
            f"{value!r}:{self._counts[value]}" for value in sorted(self._counts)
        )


class ExactSum:
    """Exactly-rounded streaming float sum (Shewchuk partials).

    Keeps the running sum as a list of non-overlapping partials whose
    mathematical sum is *exactly* the sum of every input; :attr:`value`
    rounds once via :func:`math.fsum`.  The result equals
    ``math.fsum(inputs)`` regardless of input order, and :meth:`merge`
    (feeding another accumulator's partials in) preserves exactness —
    so per-worker partial sums fold into the same bits the single-worker
    accumulation produces.  Used for the fleet-global vehicle energy
    total, the one digest-feeding float accumulated across shard
    boundaries in interleaved event order.
    """

    __slots__ = ("_partials",)

    def __init__(self) -> None:
        self._partials: list[float] = []

    def add(self, value: float) -> None:
        """Fold one term in; NaN/inf raise :class:`~repro.errors.StatsError`."""
        x = _require_finite(value, "sum terms")
        partials = self._partials
        i = 0
        for y in partials:
            if abs(x) < abs(y):
                x, y = y, x
            hi = x + y
            lo = y - (hi - x)
            if lo:
                partials[i] = lo
                i += 1
            x = hi
        partials[i:] = [x]

    def merge(self, other: "ExactSum") -> None:
        """Fold another accumulator in exactly (order-independent)."""
        for partial in list(other._partials):
            self.add(partial)

    @property
    def value(self) -> float:
        """The correctly-rounded sum of every term added so far."""
        return math.fsum(self._partials)

    def canonical(self) -> str:
        """Canonical rendering for transport checkpointing (repr-exact)."""
        return ";".join(f"{partial!r}" for partial in self._partials)


@dataclass(frozen=True)
class ShardStats:
    """One gateway shard's share of a fleet run.

    The churn fields (``epoch``, ``migrations_in``, ``migrations_out``)
    default to the values every pre-churn run had, and :meth:`row` only
    renders them when they moved off those defaults — which is what keeps
    every historical shard digest bit-stable while making any epoch roll
    or migration visible in the digest of a churn run.
    """

    index: int
    name: str
    vehicles_assigned: int
    enrollments: int
    sessions_established: int
    rekeys: int
    handovers_in: int
    failed: bool
    ca_busy_ms: float
    ca_utilisation: float
    ca_batches: int
    ca_max_batch: int
    queue_latency: LatencySummary
    ca_energy_mj: float
    # -- churn extensions (defaults keep legacy digests bit-stable) ----------
    epoch: int = 1
    migrations_in: int = 0
    migrations_out: int = 0

    @property
    def churned(self) -> bool:
        """True when this shard saw an epoch roll or any migration."""
        return (
            self.epoch != 1
            or self.migrations_in > 0
            or self.migrations_out > 0
        )

    def row(self) -> str:
        """One-line rendering used by reports and the shard digest."""
        rendered = (
            f"shard {self.index} ({self.name}){' [FAILED]' if self.failed else ''}:"
            f" {self.vehicles_assigned} assigned, {self.enrollments} enrolled,"
            f" {self.sessions_established} sessions ({self.rekeys} re-keys,"
            f" {self.handovers_in} handovers in),"
            f" busy {self.ca_busy_ms:.3f} ms"
            f" ({self.ca_utilisation * 100.0:.1f} %,"
            f" {self.ca_batches} batches, max {self.ca_max_batch}),"
            f" queue [{self.queue_latency.row()}],"
            f" energy {self.ca_energy_mj:.3f} mJ"
        )
        if self.churned:
            rendered += (
                f", epoch {self.epoch},"
                f" migrations +{self.migrations_in}/-{self.migrations_out}"
            )
        return rendered

    def digest(self) -> str:
        """Stable hash of this shard's aggregate numbers."""
        return sha256(self.row().encode()).hex()

    def as_dict(self) -> dict:
        """JSON-ready mapping of this shard's breakdown."""
        return {
            "index": self.index,
            "name": self.name,
            "vehicles_assigned": self.vehicles_assigned,
            "enrollments": self.enrollments,
            "sessions_established": self.sessions_established,
            "rekeys": self.rekeys,
            "handovers_in": self.handovers_in,
            "failed": self.failed,
            "ca_busy_ms": self.ca_busy_ms,
            "ca_utilisation": self.ca_utilisation,
            "ca_batches": self.ca_batches,
            "ca_max_batch": self.ca_max_batch,
            "queue_latency": self.queue_latency.as_dict(),
            "ca_energy_mj": self.ca_energy_mj,
            "epoch": self.epoch,
            "migrations_in": self.migrations_in,
            "migrations_out": self.migrations_out,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShardStats":
        """Rebuild a shard breakdown from its :meth:`as_dict` mapping."""
        return cls(
            index=data["index"],
            name=data["name"],
            vehicles_assigned=data["vehicles_assigned"],
            enrollments=data["enrollments"],
            sessions_established=data["sessions_established"],
            rekeys=data["rekeys"],
            handovers_in=data["handovers_in"],
            failed=data["failed"],
            ca_busy_ms=data["ca_busy_ms"],
            ca_utilisation=data["ca_utilisation"],
            ca_batches=data["ca_batches"],
            ca_max_batch=data["ca_max_batch"],
            queue_latency=LatencySummary.from_dict(data["queue_latency"]),
            ca_energy_mj=data["ca_energy_mj"],
            epoch=data.get("epoch", 1),
            migrations_in=data.get("migrations_in", 0),
            migrations_out=data.get("migrations_out", 0),
        )


@dataclass(frozen=True)
class InjectionStats:
    """Outcome accounting of one adversarial scenario injection.

    ``attempts`` counts the attack operations the adversary actually ran
    against the live fleet, ``rejected`` how many the defenses threw out
    (sequence/MAC checks, chain-epoch retirement, proof-of-possession
    screening), and ``succeeded`` the forgeries that got through — which
    the scenario benchmarks assert to be zero.
    """

    kind: str
    at_ms: float
    attempts: int
    rejected: int
    succeeded: int

    def row(self) -> str:
        """One-line rendering used by reports and the scenario digest."""
        return (
            f"{self.kind}@{self.at_ms:.3f}ms: attempts={self.attempts}"
            f" rejected={self.rejected} succeeded={self.succeeded}"
        )

    def as_dict(self) -> dict:
        """JSON-ready mapping of this injection's accounting."""
        return {
            "kind": self.kind,
            "at_ms": self.at_ms,
            "attempts": self.attempts,
            "rejected": self.rejected,
            "succeeded": self.succeeded,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "InjectionStats":
        """Rebuild the accounting from its :meth:`as_dict` mapping."""
        return cls(
            kind=data["kind"],
            at_ms=data["at_ms"],
            attempts=data["attempts"],
            rejected=data["rejected"],
            succeeded=data["succeeded"],
        )


def merge_shard_stats(shards: "tuple[ShardStats, ...] | list[ShardStats]") -> dict:
    """Cross-shard merge: fold per-shard breakdowns into fleet-level CA totals.

    Counts sum across shards and the max batch is the fleet-wide
    maximum; the float totals (busy time, energy) accumulate via
    :func:`math.fsum` over the shards sorted by their canonical order
    (shard index), so the merge is **order-independent**: float addition
    is not associative, and the plain ``sum`` this used to run could
    drift from the sequential digest under a permuted or parallel merge.
    ``fsum`` is exactly rounded, hence permutation-invariant even before
    the canonical sort (the sort makes the intent explicit and keeps any
    future non-exact reducer honest).  For a single shard this is the
    identity — the degenerate fleet reports exactly its one resource's
    numbers.
    """
    ordered = sorted(shards, key=lambda s: s.index)
    return {
        "vehicles_assigned": sum(s.vehicles_assigned for s in shards),
        "enrollments": sum(s.enrollments for s in shards),
        "sessions_established": sum(s.sessions_established for s in shards),
        "rekeys": sum(s.rekeys for s in shards),
        "handovers_in": sum(s.handovers_in for s in shards),
        "ca_busy_ms": math.fsum(s.ca_busy_ms for s in ordered),
        "ca_batches": sum(s.ca_batches for s in shards),
        "ca_max_batch": max((s.ca_max_batch for s in shards), default=0),
        "ca_energy_mj": math.fsum(s.ca_energy_mj for s in ordered),
        "failed_shards": sum(1 for s in shards if s.failed),
        "migrations_in": sum(s.migrations_in for s in shards),
        "migrations_out": sum(s.migrations_out for s in shards),
        "max_epoch": max((s.epoch for s in shards), default=1),
    }


def _empty_latency() -> LatencySummary:
    return LatencySummary.from_samples([])


@dataclass(frozen=True)
class FleetStats:
    """Aggregate outcome of one :class:`~repro.fleet.FleetOrchestrator` run.

    The pre-topology fields keep their exact meaning (``sessions_established``
    counts vehicle↔gateway establishments; V2V sessions are reported
    separately) so single-gateway digests stay bit-stable.

    Examples:
        Stats are a pure function of the config seed, round-trip through
        ``as_dict``/``from_dict`` losslessly, and :meth:`digest` is the
        reproducibility anchor every benchmark asserts on::

            >>> from repro.fleet import FleetConfig, FleetStats, run_fleet
            >>> stats = run_fleet(FleetConfig(
            ...     n_vehicles=2, seed=b"docs-stats", records_per_vehicle=2,
            ...     max_records=2, arrival_spread_ms=5.0)).stats
            >>> stats.records_sent
            4
            >>> FleetStats.from_dict(stats.as_dict()).digest() == stats.digest()
            True

        The crypto backend never enters the digest (bit-parity
        contract)::

            >>> fast = run_fleet(FleetConfig(
            ...     n_vehicles=2, seed=b"docs-stats", records_per_vehicle=2,
            ...     max_records=2, arrival_spread_ms=5.0,
            ...     backend="accelerated")).stats
            >>> fast.digest() == stats.digest()
            True
    """

    vehicles: int
    enrollments: int
    sessions_established: int
    rekeys: int
    records_sent: int
    duration_ms: float
    ca_busy_ms: float
    ca_utilisation: float
    ca_batches: int
    ca_max_batch: int
    enrollment_latency: LatencySummary
    establishment_latency: LatencySummary
    vehicle_energy_mj: float
    ca_energy_mj: float
    # -- topology extensions (defaults keep legacy construction valid) -------
    per_shard: tuple[ShardStats, ...] = ()
    ca_queue_latency: LatencySummary = field(default_factory=_empty_latency)
    v2v_sessions: int = 0
    v2v_rekeys: int = 0
    v2v_cross_shard: int = 0
    v2v_records_sent: int = 0
    v2v_latency: LatencySummary = field(default_factory=_empty_latency)
    handovers: int = 0
    # -- churn extensions (defaults keep legacy construction valid) ----------
    migrations: int = 0
    rejoins: int = 0
    re_enrollments: int = 0
    migration_latency: LatencySummary = field(default_factory=_empty_latency)
    # -- scenario extensions (defaults keep legacy construction valid) -------
    #: Scenario name (metadata only — never hashed, so the same workload
    #: digests identically whether it ran as a named scenario or not).
    scenario: str = ""
    profile_counts: tuple[tuple[str, int], ...] = ()
    injection_stats: tuple[InjectionStats, ...] = ()
    # -- policy extension (defaults keep legacy construction valid) ----------
    #: Policy bundle name (metadata only — never hashed: the ``default``
    #: bundle reproduces the legacy strategies bit-for-bit, so the same
    #: workload digests identically with the engine on or off, and
    #: alternative bundles are compared by their *behavioral* deltas).
    policy: str = ""

    @property
    def throughput_records_per_s(self) -> float:
        """Application records delivered per simulated second."""
        seconds = self.duration_ms / 1000.0
        # Guard the *computed* denominator: a subnormal duration can
        # underflow to exactly 0.0 even though duration_ms > 0.
        if seconds <= 0:
            return 0.0
        return self.records_sent / seconds

    @property
    def sessions_per_s(self) -> float:
        """Session establishments (incl. re-keys) per simulated second."""
        seconds = self.duration_ms / 1000.0
        if seconds <= 0:
            return 0.0
        return self.sessions_established / seconds

    @property
    def is_topology_run(self) -> bool:
        """True when sharding, V2V, failover or churn shaped this run."""
        return (
            len(self.per_shard) > 1
            or self.v2v_sessions > 0
            or self.handovers > 0
            or self.is_churn_run
        )

    @property
    def is_churn_run(self) -> bool:
        """True when live migration, re-enrollment or a rejoin happened."""
        return (
            self.migrations > 0
            or self.rejoins > 0
            or self.re_enrollments > 0
        )

    @property
    def is_scenario_run(self) -> bool:
        """True when behavior profiles or injections shaped this run.

        A scenario that only swaps the arrival process (no profiles, no
        injections) is deliberately *not* a scenario run for digest
        purposes: its behavior difference is already fully visible in the
        base aggregates, and the legacy uniform scenario must hash
        bit-identically to the pre-scenario orchestrator.
        """
        return bool(self.profile_counts) or bool(self.injection_stats)

    @property
    def attack_attempts(self) -> int:
        """Total adversarial attempts across every injection."""
        return sum(s.attempts for s in self.injection_stats)

    @property
    def attack_rejections(self) -> int:
        """Total rejected adversarial attempts across every injection."""
        return sum(s.rejected for s in self.injection_stats)

    @property
    def attack_successes(self) -> int:
        """Total successful forgeries (zero on every healthy defense)."""
        return sum(s.succeeded for s in self.injection_stats)

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"fleet: {self.vehicles} vehicles, {self.enrollments} enrolled,"
            f" {self.sessions_established} sessions"
            f" ({self.rekeys} re-keys), {self.records_sent} records",
            f"  sim duration        : {self.duration_ms:.3f} ms",
            f"  throughput          : {self.throughput_records_per_s:.2f}"
            f" records/s, {self.sessions_per_s:.2f} sessions/s",
            f"  CA busy             : {self.ca_busy_ms:.3f} ms"
            f" ({self.ca_utilisation * 100.0:.1f} % utilisation,"
            f" {self.ca_batches} issuance batches,"
            f" max batch {self.ca_max_batch})",
            f"  enrollment latency  : {self.enrollment_latency.row()}",
            f"  establish latency   : {self.establishment_latency.row()}",
            f"  energy              : vehicles {self.vehicle_energy_mj:.3f} mJ,"
            f" CA {self.ca_energy_mj:.3f} mJ",
        ]
        if self.ca_queue_latency.count:
            lines.append(
                f"  CA queue latency    : {self.ca_queue_latency.row()}"
            )
        if self.is_topology_run:
            if self.v2v_sessions:
                lines.append(
                    f"  V2V                 : {self.v2v_sessions} sessions"
                    f" ({self.v2v_rekeys} re-keys,"
                    f" {self.v2v_cross_shard} cross-shard),"
                    f" {self.v2v_records_sent} records"
                )
                lines.append(
                    f"  V2V latency         : {self.v2v_latency.row()}"
                )
            if self.handovers:
                lines.append(
                    f"  handovers           : {self.handovers}"
                    " (gateway failover)"
                )
            if self.is_churn_run:
                lines.append(
                    f"  churn               : {self.migrations} migrations,"
                    f" {self.re_enrollments} re-enrollments,"
                    f" {self.rejoins} gateway rejoins"
                )
                if self.migration_latency.count:
                    lines.append(
                        f"  migration latency   :"
                        f" {self.migration_latency.row()}"
                    )
            for shard in self.per_shard:
                lines.append(f"  {shard.row()}")
        if self.scenario:
            lines.append(f"  scenario            : {self.scenario}")
        if self.policy:
            lines.append(f"  policy              : {self.policy}")
        if self.profile_counts:
            rendered = ", ".join(
                f"{name}={count}" for name, count in self.profile_counts
            )
            lines.append(f"  profiles            : {rendered}")
        for injection in self.injection_stats:
            lines.append(f"  injection           : {injection.row()}")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        """JSON-ready mapping of the whole aggregate (machine-readable
        benchmark output; ``BENCH_*.json`` files are built from this)."""
        return {
            "vehicles": self.vehicles,
            "enrollments": self.enrollments,
            "sessions_established": self.sessions_established,
            "rekeys": self.rekeys,
            "records_sent": self.records_sent,
            "duration_ms": self.duration_ms,
            "throughput_records_per_s": self.throughput_records_per_s,
            "sessions_per_s": self.sessions_per_s,
            "ca_busy_ms": self.ca_busy_ms,
            "ca_utilisation": self.ca_utilisation,
            "ca_batches": self.ca_batches,
            "ca_max_batch": self.ca_max_batch,
            "enrollment_latency": self.enrollment_latency.as_dict(),
            "establishment_latency": self.establishment_latency.as_dict(),
            "ca_queue_latency": self.ca_queue_latency.as_dict(),
            "energy_mj": {
                "vehicles": self.vehicle_energy_mj,
                "ca": self.ca_energy_mj,
            },
            "v2v": {
                "sessions": self.v2v_sessions,
                "rekeys": self.v2v_rekeys,
                "cross_shard": self.v2v_cross_shard,
                "records_sent": self.v2v_records_sent,
                "latency": self.v2v_latency.as_dict(),
            },
            "handovers": self.handovers,
            "churn": {
                "migrations": self.migrations,
                "rejoins": self.rejoins,
                "re_enrollments": self.re_enrollments,
                "migration_latency": self.migration_latency.as_dict(),
            },
            "per_shard": [shard.as_dict() for shard in self.per_shard],
            "scenario": {
                "name": self.scenario,
                "profiles": [
                    [name, count] for name, count in self.profile_counts
                ],
                "injections": [
                    injection.as_dict() for injection in self.injection_stats
                ],
            },
            "policy": self.policy,
            "digest": self.digest(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FleetStats":
        """Rebuild the aggregate from its :meth:`as_dict` mapping.

        Derived fields (throughputs, the digest) are recomputed, so a
        round-tripped instance compares equal to — and digests identically
        to — the original; the regression-gate tooling relies on this.

        Back-compat: dicts serialized before the topology/churn/scenario
        layers lack their sections entirely (``per_shard``, ``v2v``,
        ``ca_queue_latency``, ``handovers``, ``churn``, ``scenario``).
        Each missing section falls back to the same defaults the
        dataclass gives a freshly built pre-topology instance — the
        ``p99_ms`` precedent in :meth:`LatencySummary.from_dict` — so a
        frozen legacy record still round-trips to its original digest
        instead of KeyErroring.
        """
        churn = data.get("churn", {})
        scenario = data.get("scenario", {})
        v2v = data.get("v2v", {})
        empty_latency = _empty_latency().as_dict()
        return cls(
            vehicles=data["vehicles"],
            enrollments=data["enrollments"],
            sessions_established=data["sessions_established"],
            rekeys=data["rekeys"],
            records_sent=data["records_sent"],
            duration_ms=data["duration_ms"],
            ca_busy_ms=data["ca_busy_ms"],
            ca_utilisation=data["ca_utilisation"],
            ca_batches=data["ca_batches"],
            ca_max_batch=data["ca_max_batch"],
            enrollment_latency=LatencySummary.from_dict(
                data["enrollment_latency"]
            ),
            establishment_latency=LatencySummary.from_dict(
                data["establishment_latency"]
            ),
            vehicle_energy_mj=data["energy_mj"]["vehicles"],
            ca_energy_mj=data["energy_mj"]["ca"],
            per_shard=tuple(
                ShardStats.from_dict(shard)
                for shard in data.get("per_shard", [])
            ),
            ca_queue_latency=LatencySummary.from_dict(
                data.get("ca_queue_latency", empty_latency)
            ),
            v2v_sessions=v2v.get("sessions", 0),
            v2v_rekeys=v2v.get("rekeys", 0),
            v2v_cross_shard=v2v.get("cross_shard", 0),
            v2v_records_sent=v2v.get("records_sent", 0),
            v2v_latency=LatencySummary.from_dict(
                v2v.get("latency", empty_latency)
            ),
            handovers=data.get("handovers", 0),
            migrations=churn.get("migrations", 0),
            rejoins=churn.get("rejoins", 0),
            re_enrollments=churn.get("re_enrollments", 0),
            migration_latency=LatencySummary.from_dict(
                churn["migration_latency"]
            )
            if "migration_latency" in churn
            else _empty_latency(),
            scenario=scenario.get("name", ""),
            profile_counts=tuple(
                (name, count) for name, count in scenario.get("profiles", [])
            ),
            injection_stats=tuple(
                InjectionStats.from_dict(entry)
                for entry in scenario.get("injections", [])
            ),
            policy=data.get("policy", ""),
        )

    def digest(self) -> str:
        """Stable hash of the aggregate numbers (reproducibility checks).

        Floats are rendered with fixed precision so the digest is
        insensitive to representation noise but sensitive to any real
        behavioural change.  The canonical string of a degenerate run
        (one shard, no V2V, no handovers) is byte-identical to the
        pre-topology rendering; sharded/V2V/failover runs append
        extension segments, including every per-shard digest.
        """
        canonical = "|".join(
            [
                f"v={self.vehicles}",
                f"enr={self.enrollments}",
                f"sess={self.sessions_established}",
                f"rekey={self.rekeys}",
                f"rec={self.records_sent}",
                f"dur={self.duration_ms:.6f}",
                f"cabusy={self.ca_busy_ms:.6f}",
                f"cau={self.ca_utilisation:.6f}",
                f"cab={self.ca_batches}",
                f"cam={self.ca_max_batch}",
                f"enl={self.enrollment_latency.row()}",
                f"esl={self.establishment_latency.row()}",
                f"ve={self.vehicle_energy_mj:.6f}",
                f"cae={self.ca_energy_mj:.6f}",
            ]
        )
        if self.is_topology_run:
            extension = [
                f"qlat={self.ca_queue_latency.row()}",
                f"v2v={self.v2v_sessions}",
                f"v2vr={self.v2v_rekeys}",
                f"v2vx={self.v2v_cross_shard}",
                f"v2vrec={self.v2v_records_sent}",
                f"v2vlat={self.v2v_latency.row()}",
                f"ho={self.handovers}",
            ]
            if self.is_churn_run:
                # Churn sub-segment: only churn runs hash it, so every
                # pre-churn topology digest stays bit-identical.  Epoch
                # awareness rides in through the per-shard digests below
                # (ShardStats.row renders epoch/migration counters).
                extension.extend(
                    [
                        f"mig={self.migrations}",
                        f"rej={self.rejoins}",
                        f"reenr={self.re_enrollments}",
                        f"miglat={self.migration_latency.row()}",
                    ]
                )
            extension.extend(
                f"shard{shard.index}={shard.digest()}"
                for shard in self.per_shard
            )
            canonical = canonical + "|" + "|".join(extension)
        if self.is_scenario_run:
            # Scenario sub-segment: only runs shaped by profiles or
            # injections hash it, so every historical digest — including
            # a named scenario that merely swaps the arrival process —
            # stays bit-identical.  The scenario *name* is metadata and
            # deliberately excluded.
            scenario_extension = [
                "profiles="
                + ",".join(
                    f"{name}:{count}" for name, count in self.profile_counts
                ),
                *(
                    f"inj{index}={injection.row()}"
                    for index, injection in enumerate(self.injection_stats)
                ),
            ]
            canonical = canonical + "|" + "|".join(scenario_extension)
        return sha256(canonical.encode()).hex()
