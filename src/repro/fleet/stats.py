"""Aggregate statistics for fleet-scale orchestration runs.

Everything here is deterministic: latencies come from the discrete-event
clock, energy from the hardware cost model, and :meth:`FleetStats.digest`
hashes a canonical rendering so two runs with the same seed can be checked
for bit-identical aggregate behaviour (the reproducibility contract the
fleet benchmark enforces).

Topology runs add a per-shard breakdown (:class:`ShardStats`, one per
gateway shard) plus V2V/handover aggregates.  The digest grows extension
segments **only** for non-degenerate runs — a single-gateway, no-V2V run
hashes the exact canonical string the single-gateway orchestrator always
produced, which is what keeps ``shards=1, v2v_fraction=0`` bit-compatible
with the pre-topology fleet.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..primitives import sha256


def _percentile(sorted_samples: list[float], q: float) -> float:
    """Nearest-rank percentile on pre-sorted samples (deterministic)."""
    if not sorted_samples:
        return 0.0
    index = min(
        len(sorted_samples) - 1,
        max(0, round(q * (len(sorted_samples) - 1))),
    )
    return sorted_samples[index]


@dataclass(frozen=True)
class LatencySummary:
    """Summary of a latency sample set (milliseconds).

    ``p99_ms`` arrived with the topology benchmarks; it is deliberately
    excluded from :meth:`row` (and therefore from every digest built on
    it) so its addition cannot perturb historical digests.
    """

    count: int
    min_ms: float
    mean_ms: float
    p50_ms: float
    p95_ms: float
    max_ms: float
    p99_ms: float = 0.0

    @classmethod
    def from_samples(cls, samples: list[float]) -> "LatencySummary":
        """Summarize raw samples; all-zero summary for an empty set."""
        if not samples:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        ordered = sorted(samples)
        return cls(
            count=len(ordered),
            min_ms=ordered[0],
            mean_ms=sum(ordered) / len(ordered),
            p50_ms=_percentile(ordered, 0.50),
            p95_ms=_percentile(ordered, 0.95),
            max_ms=ordered[-1],
            p99_ms=_percentile(ordered, 0.99),
        )

    def row(self) -> str:
        """One-line rendering used by reports (and digest material)."""
        return (
            f"n={self.count} min={self.min_ms:.3f} mean={self.mean_ms:.3f}"
            f" p50={self.p50_ms:.3f} p95={self.p95_ms:.3f}"
            f" max={self.max_ms:.3f} ms"
        )

    def as_dict(self) -> dict:
        """JSON-ready mapping (all fields, including ``p99_ms``)."""
        return {
            "count": self.count,
            "min_ms": self.min_ms,
            "mean_ms": self.mean_ms,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "max_ms": self.max_ms,
        }


@dataclass(frozen=True)
class ShardStats:
    """One gateway shard's share of a fleet run."""

    index: int
    name: str
    vehicles_assigned: int
    enrollments: int
    sessions_established: int
    rekeys: int
    handovers_in: int
    failed: bool
    ca_busy_ms: float
    ca_utilisation: float
    ca_batches: int
    ca_max_batch: int
    queue_latency: LatencySummary
    ca_energy_mj: float

    def row(self) -> str:
        """One-line rendering used by reports and the shard digest."""
        return (
            f"shard {self.index} ({self.name}){' [FAILED]' if self.failed else ''}:"
            f" {self.vehicles_assigned} assigned, {self.enrollments} enrolled,"
            f" {self.sessions_established} sessions ({self.rekeys} re-keys,"
            f" {self.handovers_in} handovers in),"
            f" busy {self.ca_busy_ms:.3f} ms"
            f" ({self.ca_utilisation * 100.0:.1f} %,"
            f" {self.ca_batches} batches, max {self.ca_max_batch}),"
            f" queue [{self.queue_latency.row()}],"
            f" energy {self.ca_energy_mj:.3f} mJ"
        )

    def digest(self) -> str:
        """Stable hash of this shard's aggregate numbers."""
        return sha256(self.row().encode()).hex()


def merge_shard_stats(shards: "tuple[ShardStats, ...] | list[ShardStats]") -> dict:
    """Cross-shard merge: fold per-shard breakdowns into fleet-level CA totals.

    Busy time, batches, energy and counts sum across shards (in shard
    order, so the float accumulation is deterministic); the max batch is
    the fleet-wide maximum.  For a single shard this is the identity —
    the degenerate fleet reports exactly its one resource's numbers.
    """
    return {
        "vehicles_assigned": sum(s.vehicles_assigned for s in shards),
        "enrollments": sum(s.enrollments for s in shards),
        "sessions_established": sum(s.sessions_established for s in shards),
        "rekeys": sum(s.rekeys for s in shards),
        "handovers_in": sum(s.handovers_in for s in shards),
        "ca_busy_ms": sum(s.ca_busy_ms for s in shards),
        "ca_batches": sum(s.ca_batches for s in shards),
        "ca_max_batch": max((s.ca_max_batch for s in shards), default=0),
        "ca_energy_mj": sum(s.ca_energy_mj for s in shards),
        "failed_shards": sum(1 for s in shards if s.failed),
    }


def _empty_latency() -> LatencySummary:
    return LatencySummary.from_samples([])


@dataclass(frozen=True)
class FleetStats:
    """Aggregate outcome of one :class:`~repro.fleet.FleetOrchestrator` run.

    The pre-topology fields keep their exact meaning (``sessions_established``
    counts vehicle↔gateway establishments; V2V sessions are reported
    separately) so single-gateway digests stay bit-stable.
    """

    vehicles: int
    enrollments: int
    sessions_established: int
    rekeys: int
    records_sent: int
    duration_ms: float
    ca_busy_ms: float
    ca_utilisation: float
    ca_batches: int
    ca_max_batch: int
    enrollment_latency: LatencySummary
    establishment_latency: LatencySummary
    vehicle_energy_mj: float
    ca_energy_mj: float
    # -- topology extensions (defaults keep legacy construction valid) -------
    per_shard: tuple[ShardStats, ...] = ()
    ca_queue_latency: LatencySummary = field(default_factory=_empty_latency)
    v2v_sessions: int = 0
    v2v_rekeys: int = 0
    v2v_cross_shard: int = 0
    v2v_records_sent: int = 0
    v2v_latency: LatencySummary = field(default_factory=_empty_latency)
    handovers: int = 0

    @property
    def throughput_records_per_s(self) -> float:
        """Application records delivered per simulated second."""
        if self.duration_ms <= 0:
            return 0.0
        return self.records_sent / (self.duration_ms / 1000.0)

    @property
    def sessions_per_s(self) -> float:
        """Session establishments (incl. re-keys) per simulated second."""
        if self.duration_ms <= 0:
            return 0.0
        return self.sessions_established / (self.duration_ms / 1000.0)

    @property
    def is_topology_run(self) -> bool:
        """True when sharding, V2V traffic or failover shaped this run."""
        return (
            len(self.per_shard) > 1
            or self.v2v_sessions > 0
            or self.handovers > 0
        )

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"fleet: {self.vehicles} vehicles, {self.enrollments} enrolled,"
            f" {self.sessions_established} sessions"
            f" ({self.rekeys} re-keys), {self.records_sent} records",
            f"  sim duration        : {self.duration_ms:.3f} ms",
            f"  throughput          : {self.throughput_records_per_s:.2f}"
            f" records/s, {self.sessions_per_s:.2f} sessions/s",
            f"  CA busy             : {self.ca_busy_ms:.3f} ms"
            f" ({self.ca_utilisation * 100.0:.1f} % utilisation,"
            f" {self.ca_batches} issuance batches,"
            f" max batch {self.ca_max_batch})",
            f"  enrollment latency  : {self.enrollment_latency.row()}",
            f"  establish latency   : {self.establishment_latency.row()}",
            f"  energy              : vehicles {self.vehicle_energy_mj:.3f} mJ,"
            f" CA {self.ca_energy_mj:.3f} mJ",
        ]
        if self.ca_queue_latency.count:
            lines.append(
                f"  CA queue latency    : {self.ca_queue_latency.row()}"
            )
        if self.is_topology_run:
            if self.v2v_sessions:
                lines.append(
                    f"  V2V                 : {self.v2v_sessions} sessions"
                    f" ({self.v2v_rekeys} re-keys,"
                    f" {self.v2v_cross_shard} cross-shard),"
                    f" {self.v2v_records_sent} records"
                )
                lines.append(
                    f"  V2V latency         : {self.v2v_latency.row()}"
                )
            if self.handovers:
                lines.append(
                    f"  handovers           : {self.handovers}"
                    " (gateway failover)"
                )
            for shard in self.per_shard:
                lines.append(f"  {shard.row()}")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        """JSON-ready mapping of the whole aggregate (machine-readable
        benchmark output; ``BENCH_*.json`` files are built from this)."""
        return {
            "vehicles": self.vehicles,
            "enrollments": self.enrollments,
            "sessions_established": self.sessions_established,
            "rekeys": self.rekeys,
            "records_sent": self.records_sent,
            "duration_ms": self.duration_ms,
            "throughput_records_per_s": self.throughput_records_per_s,
            "sessions_per_s": self.sessions_per_s,
            "ca_busy_ms": self.ca_busy_ms,
            "ca_utilisation": self.ca_utilisation,
            "ca_batches": self.ca_batches,
            "ca_max_batch": self.ca_max_batch,
            "enrollment_latency": self.enrollment_latency.as_dict(),
            "establishment_latency": self.establishment_latency.as_dict(),
            "ca_queue_latency": self.ca_queue_latency.as_dict(),
            "energy_mj": {
                "vehicles": self.vehicle_energy_mj,
                "ca": self.ca_energy_mj,
            },
            "v2v": {
                "sessions": self.v2v_sessions,
                "rekeys": self.v2v_rekeys,
                "cross_shard": self.v2v_cross_shard,
                "records_sent": self.v2v_records_sent,
                "latency": self.v2v_latency.as_dict(),
            },
            "handovers": self.handovers,
            "per_shard": [
                {
                    "index": shard.index,
                    "name": shard.name,
                    "vehicles_assigned": shard.vehicles_assigned,
                    "enrollments": shard.enrollments,
                    "sessions_established": shard.sessions_established,
                    "rekeys": shard.rekeys,
                    "handovers_in": shard.handovers_in,
                    "failed": shard.failed,
                    "ca_busy_ms": shard.ca_busy_ms,
                    "ca_utilisation": shard.ca_utilisation,
                    "ca_batches": shard.ca_batches,
                    "ca_max_batch": shard.ca_max_batch,
                    "queue_latency": shard.queue_latency.as_dict(),
                    "ca_energy_mj": shard.ca_energy_mj,
                }
                for shard in self.per_shard
            ],
            "digest": self.digest(),
        }

    def digest(self) -> str:
        """Stable hash of the aggregate numbers (reproducibility checks).

        Floats are rendered with fixed precision so the digest is
        insensitive to representation noise but sensitive to any real
        behavioural change.  The canonical string of a degenerate run
        (one shard, no V2V, no handovers) is byte-identical to the
        pre-topology rendering; sharded/V2V/failover runs append
        extension segments, including every per-shard digest.
        """
        canonical = "|".join(
            [
                f"v={self.vehicles}",
                f"enr={self.enrollments}",
                f"sess={self.sessions_established}",
                f"rekey={self.rekeys}",
                f"rec={self.records_sent}",
                f"dur={self.duration_ms:.6f}",
                f"cabusy={self.ca_busy_ms:.6f}",
                f"cau={self.ca_utilisation:.6f}",
                f"cab={self.ca_batches}",
                f"cam={self.ca_max_batch}",
                f"enl={self.enrollment_latency.row()}",
                f"esl={self.establishment_latency.row()}",
                f"ve={self.vehicle_energy_mj:.6f}",
                f"cae={self.ca_energy_mj:.6f}",
            ]
        )
        if self.is_topology_run:
            extension = [
                f"qlat={self.ca_queue_latency.row()}",
                f"v2v={self.v2v_sessions}",
                f"v2vr={self.v2v_rekeys}",
                f"v2vx={self.v2v_cross_shard}",
                f"v2vrec={self.v2v_records_sent}",
                f"v2vlat={self.v2v_latency.row()}",
                f"ho={self.handovers}",
            ]
            extension.extend(
                f"shard{shard.index}={shard.digest()}"
                for shard in self.per_shard
            )
            canonical = canonical + "|" + "|".join(extension)
        return sha256(canonical.encode()).hex()
