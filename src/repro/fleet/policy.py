"""Declarative fleet-policy engine: condition → action rules at the
orchestrator's decision points.

Before this module the four behavioral strategies of a fleet run —
*where a vehicle enrolls* (shard assignment), *when it re-keys*, *when
it live-migrates* (roaming cadence and threshold re-balancing) and *who
adopts it when a gateway fails* — were hard-coded inside
:mod:`repro.fleet.orchestrator` and :mod:`repro.fleet.topology`.  This
module extracts them into small declarative **policy rules**: frozen
dataclasses registered by kind, evaluated against a read-only
:class:`FleetState` snapshot, returning a :class:`Decision` (or ``None``
to pass).  The orchestrator asks the :class:`PolicyEngine` at each
decision point; the first rule to answer wins.

Reproducibility contract
------------------------

The ``default`` bundle re-expresses today's hard-coded strategies
**bit-for-bit**: every golden digest of PRs 1–9 is unchanged whether
the engine runs with ``policy=None``, ``policy="default"``, serially,
process-parallel or streaming (locked by
``tests/fleet/test_policy_parity.py``).  Three guarantees make that
possible:

* **read-only state** — rules see frozen :class:`ShardView` /
  :class:`VehicleView` snapshots, never live objects, so a rule cannot
  mutate the simulation;
* **per-rule memory** — stateful strategies (round-robin counters,
  re-balance cool-downs) keep their state in an engine-owned dict passed
  to :meth:`evaluate`, keeping the rule *specs* immutable and
  JSON-round-trippable;
* **first-match determinism** — rules are evaluated in declaration
  order; equal ``(state, rules)`` always produce the same decision
  stream.

Custom rules ship with a scenario (``Scenario.policies``) or are grouped
into named **bundles** selected by ``FleetConfig.policy``.  A bundle
that overrides an explicit config knob (``utilisation-rebalance``
replaces ``migrate_threshold``) is rejected at config-validation time
instead of silently preferring one — see :data:`BUNDLE_OVERRIDES`.

>>> from repro.fleet.policy import ThresholdRebalance, load_policy, policy_dict
>>> rule = ThresholdRebalance(threshold=2)
>>> policy_dict(rule)
{'kind': 'threshold-rebalance', 'threshold': 2}
>>> load_policy(policy_dict(rule)) == rule
True
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields, replace

from ..errors import PolicyError
from ..primitives import sha256
from .topology import (
    POLICY_LEAST_LOADED,
    POLICY_ROUND_ROBIN,
    POLICY_STATIC_HASH,
    SHARD_POLICIES,
)

__all__ = [
    "DECISION_POINTS",
    "POLICY_BUNDLES",
    "POLICY_RULES",
    "BUNDLE_OVERRIDES",
    "Decision",
    "FailoverSpread",
    "FleetState",
    "PolicyEngine",
    "RoamCadence",
    "SessionExpiryRekey",
    "ShardPolicyAssign",
    "ShardView",
    "StormRekey",
    "ThresholdRebalance",
    "UtilisationRebalance",
    "VehicleView",
    "bundle_conflict",
    "load_policy",
    "policy_dict",
    "policy_json",
    "register_policy",
    "resolve_policies",
]

#: The orchestrator consults the engine at exactly these points.
DECISION_POINTS = ("assign", "migrate", "rekey", "failover")


# ---------------------------------------------------------------------------
# Read-only state views
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ShardView:
    """Read-only snapshot of one gateway shard at decision time.

    ``utilisation`` is the shard's share of all *active* vehicles across
    alive shards (0.0 when the fleet is idle) — the load signal the
    ``utilisation-rebalance`` strategy thresholds on.
    """

    index: int
    failed: bool
    active_vehicles: int
    queue_depth: int
    epoch: int
    utilisation: float


@dataclass(frozen=True)
class VehicleView:
    """Read-only snapshot of the vehicle a decision concerns."""

    index: int
    name: str
    device_id: bytes
    shard: int
    records_sent: int
    rekeys: int
    migrations: int
    migrating: bool
    re_enrolling: bool
    pinned_shard: int | None
    roam_every: int | None
    last_roam_records: int


@dataclass(frozen=True)
class FleetState:
    """Everything a policy rule may look at for one decision.

    ``rekey_due`` carries the session managers' own budget verdict
    (computed exactly once by the orchestrator — the check has session
    side effects, so rules must consume the precomputed flag instead of
    re-asking).  ``session_records`` and ``last_storm_ms`` feed the
    storm-hardened re-key strategy and are plain reads.
    """

    point: str
    now_ms: float
    vehicle: VehicleView
    shards: tuple
    rekey_due: bool = False
    session_records: int = 0
    last_storm_ms: float | None = None

    def alive(self) -> tuple:
        """Alive shards, in index order (matching the topology's view)."""
        return tuple(view for view in self.shards if not view.failed)

    def shard_view(self, index: int) -> ShardView | None:
        """The view for shard ``index``, or ``None`` if out of range."""
        if 0 <= index < len(self.shards):
            return self.shards[index]
        return None


@dataclass(frozen=True)
class Decision:
    """One policy verdict: what to do, decided by which rule.

    ``rule`` and ``point`` are stamped by the engine — rules return bare
    decisions (``Decision(target_shard=2)``) and never name themselves.
    """

    rule: str = ""
    point: str = ""
    target_shard: int | None = None
    roam: bool = False
    rekey: bool = False


# ---------------------------------------------------------------------------
# Rule registry + spec round-trip
# ---------------------------------------------------------------------------

#: kind → rule class, populated by :func:`register_policy`.
POLICY_RULES: dict = {}


def register_policy(kind: str):
    """Class decorator registering a policy rule under ``kind``.

    The decorated class must be a (frozen) dataclass with a ``point``
    class attribute naming one of :data:`DECISION_POINTS` and an
    ``evaluate(state, memory)`` method.  Registration makes the kind
    loadable by :func:`load_policy` and usable in scenario specs.
    """
    if not kind or not isinstance(kind, str):
        raise PolicyError(f"policy rule kind must be a non-empty string, got {kind!r}")

    def decorate(cls):
        if kind in POLICY_RULES:
            raise PolicyError(f"policy rule kind {kind!r} registered twice")
        cls.kind = kind
        POLICY_RULES[kind] = cls
        return cls

    return decorate


def policy_dict(rule) -> dict:
    """Render one policy rule as a JSON-compatible dict (lossless)."""
    cls = POLICY_RULES.get(getattr(rule, "kind", None))
    if cls is None or type(rule) is not cls:
        raise PolicyError(
            f"not a registered policy rule: {rule!r}"
            f" (known kinds: {sorted(POLICY_RULES)})"
        )
    payload = {"kind": rule.kind}
    for field_ in fields(rule):
        payload[field_.name] = getattr(rule, field_.name)
    return payload


def policy_json(rule) -> str:
    """Render one policy rule as canonical JSON."""
    return json.dumps(policy_dict(rule), sort_keys=True)


def load_policy(data):
    """Load one policy rule from a dict or JSON string.

    Inverse of :func:`policy_dict` / :func:`policy_json`; raises
    :class:`~repro.errors.PolicyError` naming the offending kind or
    parameter.
    """
    if isinstance(data, str):
        try:
            data = json.loads(data)
        except json.JSONDecodeError as exc:
            raise PolicyError(
                f"policy payload is not valid JSON ({exc.msg})"
            ) from exc
    if not isinstance(data, dict):
        raise PolicyError(
            f"policy payload must be an object, got {type(data).__name__}"
        )
    kind = data.get("kind")
    cls = POLICY_RULES.get(kind)
    if cls is None:
        raise PolicyError(
            f"unknown policy rule kind {kind!r}"
            f" (known: {sorted(POLICY_RULES)})"
        )
    params = {key: value for key, value in data.items() if key != "kind"}
    known = {field_.name for field_ in fields(cls)}
    unknown = sorted(set(params) - known)
    if unknown:
        raise PolicyError(
            f"policy rule {kind!r} got unknown parameters {unknown}"
            f" (accepts: {sorted(known)})"
        )
    try:
        return cls(**params)
    except TypeError as exc:
        raise PolicyError(f"policy rule {kind!r}: {exc}") from exc


# ---------------------------------------------------------------------------
# The extracted legacy strategies (the `default` bundle's rules)
# ---------------------------------------------------------------------------

@register_policy("shard-assign")
@dataclass(frozen=True)
class ShardPolicyAssign:
    """Shard assignment — the three legacy ``shard_policy`` arithmetics.

    Bit-identical extraction of :meth:`FleetTopology.assign`:
    ``static-hash`` places by identity digest over the *alive* list,
    ``least-loaded`` picks the fewest active vehicles (index
    tie-break), ``round-robin`` cycles a counter held in the engine's
    per-rule memory.
    """

    point = "assign"
    overrides = ()
    policy: str = POLICY_STATIC_HASH

    def __post_init__(self) -> None:
        if self.policy not in SHARD_POLICIES:
            raise PolicyError(
                f"shard-assign: unknown shard policy {self.policy!r}"
                f" (accepts: {list(SHARD_POLICIES)})"
            )

    def evaluate(self, state: FleetState, memory: dict) -> Decision | None:
        """Pick a shard for ``state.vehicle`` by the configured policy."""
        alive = state.alive()
        if not alive:
            return None
        if self.policy == POLICY_STATIC_HASH:
            digest = sha256(b"fleet|shard-assign|" + state.vehicle.device_id)
            choice = alive[int.from_bytes(digest[:8], "big") % len(alive)]
            return Decision(target_shard=choice.index)
        if self.policy == POLICY_LEAST_LOADED:
            choice = min(alive, key=lambda s: (s.active_vehicles, s.index))
            return Decision(target_shard=choice.index)
        count = memory.get("round_robin", 0)
        memory["round_robin"] = count + 1
        return Decision(target_shard=alive[count % len(alive)].index)


@register_policy("roam-cadence")
@dataclass(frozen=True)
class RoamCadence:
    """Roamer cadence — migrate to the next alive shard every
    ``roam_every`` delivered records (profile-driven).

    Bit-identical extraction of the orchestrator's ``_maybe_roam``
    guard chain; fires with ``roam=True`` so the orchestrator applies
    the roam bookkeeping (``last_roam_records`` marker, ``roams``
    counter) exactly as before.
    """

    point = "migrate"
    overrides = ()

    def evaluate(self, state: FleetState, memory: dict) -> Decision | None:
        """Roam to the next alive shard when the cadence is hit."""
        vehicle = state.vehicle
        if vehicle.roam_every is None:
            return None
        if vehicle.records_sent <= 0:
            return None
        if vehicle.records_sent % vehicle.roam_every != 0:
            return None
        if vehicle.records_sent == vehicle.last_roam_records:
            return None
        if vehicle.migrating or vehicle.re_enrolling:
            return None
        alive = state.alive()
        shard = state.shard_view(vehicle.shard)
        if len(alive) < 2 or shard is None or shard.failed:
            return None
        successors = [view for view in alive if view.index > vehicle.shard]
        target = successors[0] if successors else alive[0]
        if target.index == vehicle.shard:
            return None
        return Decision(target_shard=target.index, roam=True)


@register_policy("threshold-rebalance")
@dataclass(frozen=True)
class ThresholdRebalance:
    """Imbalance-triggered migration — the legacy ``migrate_threshold``.

    Bit-identical extraction of the orchestrator's ``_maybe_migrate``:
    move a vehicle to the least-loaded alive shard when its current
    shard holds more than ``threshold`` more active vehicles.
    """

    point = "migrate"
    overrides = ()
    threshold: int = 1

    def __post_init__(self) -> None:
        if not isinstance(self.threshold, int) or self.threshold < 1:
            raise PolicyError(
                "threshold-rebalance: threshold must be an int >= 1,"
                f" got {self.threshold!r}"
            )

    def evaluate(self, state: FleetState, memory: dict) -> Decision | None:
        """Migrate to the least-loaded shard past the head-count gap."""
        vehicle = state.vehicle
        if (
            vehicle.migrating
            or vehicle.re_enrolling
            or vehicle.pinned_shard is not None
        ):
            return None
        shard = state.shard_view(vehicle.shard)
        if shard is None or shard.failed:
            return None
        alive = state.alive()
        if len(alive) < 2:
            return None
        target = min(alive, key=lambda s: (s.active_vehicles, s.index))
        if target.index == shard.index:
            return None
        if shard.active_vehicles - target.active_vehicles <= self.threshold:
            return None
        return Decision(target_shard=target.index)


@register_policy("session-expiry-rekey")
@dataclass(frozen=True)
class SessionExpiryRekey:
    """Re-key when the session managers report the budget exhausted.

    The legacy cadence: fire exactly when ``rekey_due`` — the
    precomputed ``needs_rekey`` verdict of either session half — is
    set.  Every bundle includes this rule (last, as the backstop), so a
    due re-key is never dropped.
    """

    point = "rekey"
    overrides = ()

    def evaluate(self, state: FleetState, memory: dict) -> Decision | None:
        """Re-key exactly when the managers report the budget spent."""
        if state.rekey_due:
            return Decision(rekey=True)
        return None


# ---------------------------------------------------------------------------
# Alternative strategies
# ---------------------------------------------------------------------------

@register_policy("utilisation-rebalance")
@dataclass(frozen=True)
class UtilisationRebalance:
    """Migrate vehicles off any shard above ``max_utilisation``.

    Alternative to :class:`ThresholdRebalance`: instead of a fixed
    head-count gap, move a vehicle when its shard carries more than the
    given share of all active vehicles (default 80 %).  A per-vehicle
    cool-down in the rule memory requires at least one delivered record
    between fires, so two shards can never ping-pong a vehicle without
    it making progress.
    """

    point = "migrate"
    overrides = ("migrate_threshold",)
    max_utilisation: float = 0.8

    def __post_init__(self) -> None:
        if not (0.0 < float(self.max_utilisation) <= 1.0):
            raise PolicyError(
                "utilisation-rebalance: max_utilisation must be in (0, 1],"
                f" got {self.max_utilisation!r}"
            )

    def evaluate(self, state: FleetState, memory: dict) -> Decision | None:
        """Migrate off an over-utilised shard (with per-vehicle cool-down)."""
        vehicle = state.vehicle
        if (
            vehicle.migrating
            or vehicle.re_enrolling
            or vehicle.pinned_shard is not None
        ):
            return None
        shard = state.shard_view(vehicle.shard)
        if shard is None or shard.failed:
            return None
        alive = state.alive()
        if len(alive) < 2:
            return None
        if shard.utilisation <= self.max_utilisation:
            return None
        if vehicle.records_sent <= memory.get(vehicle.index, -1):
            return None
        target = min(
            (view for view in alive if view.index != shard.index),
            key=lambda s: (s.active_vehicles, s.index),
        )
        memory[vehicle.index] = vehicle.records_sent
        return Decision(target_shard=target.index)


@register_policy("storm-rekey")
@dataclass(frozen=True)
class StormRekey:
    """Tighten the re-key budget while a replay storm is active.

    For ``window_ms`` after an adversarial replay-storm injection
    fires, re-key as soon as the current session has carried ``budget``
    records — well before the managers' own budget would — limiting how
    much traffic any key replayed during the storm window protects.
    Reads the raw session record count snapshot (side-effect free);
    never suppresses a due re-key (:class:`SessionExpiryRekey` runs
    after it as the backstop).
    """

    point = "rekey"
    overrides = ()
    window_ms: float = 2000.0
    budget: int = 4

    def __post_init__(self) -> None:
        if not (float(self.window_ms) > 0.0):
            raise PolicyError(
                f"storm-rekey: window_ms must be > 0, got {self.window_ms!r}"
            )
        if not isinstance(self.budget, int) or self.budget < 1:
            raise PolicyError(
                f"storm-rekey: budget must be an int >= 1, got {self.budget!r}"
            )

    def evaluate(self, state: FleetState, memory: dict) -> Decision | None:
        """Re-key early while inside an active replay-storm window."""
        if state.last_storm_ms is None:
            return None
        if state.now_ms - state.last_storm_ms > self.window_ms:
            return None
        if state.session_records >= self.budget:
            return Decision(rekey=True)
        return None


@register_policy("failover-spread")
@dataclass(frozen=True)
class FailoverSpread:
    """Spread failover adoptions over the least-loaded alive shards.

    The legacy failover path adopts orphans via the configured
    ``shard_policy`` (static-hash keeps a vehicle's identity placement,
    which can dog-pile one survivor).  This rule adopts onto the
    least-loaded alive shard instead, defer-ing (``None``) for vehicles
    whose alive pin the topology must honor.
    """

    point = "failover"
    overrides = ()

    def evaluate(self, state: FleetState, memory: dict) -> Decision | None:
        """Adopt an orphaned vehicle onto the least-loaded alive shard."""
        alive = state.alive()
        if not alive:
            return None
        vehicle = state.vehicle
        if vehicle.pinned_shard is not None:
            pinned = state.shard_view(vehicle.pinned_shard)
            if pinned is not None and not pinned.failed:
                return None
        target = min(alive, key=lambda s: (s.active_vehicles, s.index))
        return Decision(target_shard=target.index)


# ---------------------------------------------------------------------------
# Bundles
# ---------------------------------------------------------------------------

def _wants_roam(schedule) -> bool:
    if schedule is None:
        return False
    return any(
        profile.roam_every is not None
        for profile in schedule.profiles.values()
    )


def _default_rules(config, schedule) -> tuple:
    rules = [ShardPolicyAssign(policy=config.shard_policy)]
    if _wants_roam(schedule):
        rules.append(RoamCadence())
    if config.migrate_threshold is not None:
        rules.append(ThresholdRebalance(threshold=config.migrate_threshold))
    rules.append(SessionExpiryRekey())
    return tuple(rules)


def _utilisation_rules(config, schedule) -> tuple:
    rules = [ShardPolicyAssign(policy=config.shard_policy)]
    if _wants_roam(schedule):
        rules.append(RoamCadence())
    rules.append(UtilisationRebalance())
    rules.append(SessionExpiryRekey())
    return tuple(rules)


def _storm_hardened_rules(config, schedule) -> tuple:
    rules = list(_default_rules(config, schedule))
    # Storm rule first: under an active storm it pre-empts (and is
    # attributed for) re-keys the expiry backstop would fire later.
    rules.insert(len(rules) - 1, StormRekey())
    return tuple(rules)


def _failover_spread_rules(config, schedule) -> tuple:
    return _default_rules(config, schedule) + (FailoverSpread(),)


#: name → factory ``(config, schedule) -> tuple[rules]``.
POLICY_BUNDLES = {
    "default": _default_rules,
    "utilisation-rebalance": _utilisation_rules,
    "storm-hardened": _storm_hardened_rules,
    "failover-spread": _failover_spread_rules,
}

#: Config knobs each bundle replaces with its own strategy.  Setting
#: the knob explicitly *and* selecting the bundle is ambiguous and is
#: rejected by ``FleetConfig`` validation (see :func:`bundle_conflict`).
BUNDLE_OVERRIDES = {
    "utilisation-rebalance": ("migrate_threshold",),
}


def bundle_conflict(name: str, config) -> str | None:
    """The conflict message for ``config`` + bundle ``name``, or None.

    A bundle listed in :data:`BUNDLE_OVERRIDES` replaces the named
    config knobs; an explicitly-set knob alongside it would be silently
    ignored, so the combination is reported as a conflict instead.
    """
    for knob in BUNDLE_OVERRIDES.get(name, ()):
        value = getattr(config, knob)
        if value is not None:
            return (
                f"policy bundle {name!r} overrides {knob}, but"
                f" {knob}={value!r} was also set explicitly;"
                f" drop {knob} or select a bundle that honors it"
            )
    return None


def resolve_policies(config, schedule=None) -> tuple:
    """The rule tuple a run executes: scenario rules, then the bundle.

    Scenario-shipped rules (``Scenario.policies``) come first so they
    can pre-empt the bundle at shared decision points; the bundle named
    by ``config.policy`` (``None`` means ``default``) supplies the
    baseline strategies after them.
    """
    name = config.policy or "default"
    factory = POLICY_BUNDLES.get(name)
    if factory is None:
        raise PolicyError(
            f"unknown policy bundle {name!r}"
            f" (known: {sorted(POLICY_BUNDLES)})"
        )
    conflict = bundle_conflict(name, config)
    if conflict is not None:
        raise PolicyError(conflict)
    scenario_rules = ()
    if schedule is not None:
        scenario_rules = tuple(schedule.scenario.policies)
    return scenario_rules + tuple(factory(config, schedule))


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------

class PolicyEngine:
    """Evaluates registered rules at the fleet's decision points.

    Rules are grouped by point and evaluated in declaration order; the
    first non-``None`` :class:`Decision` wins and is validated (target
    must be an alive, in-range shard; a re-key decision must request a
    re-key) before being stamped with the winning rule's kind.  Each
    rule gets a private ``memory`` dict for counters and cool-downs.

    ``decision_counts`` tallies ``(point, kind) -> fires`` for the
    ablation benchmark; the observability hooks (when attached) emit a
    span event and a ``policy.<point>`` counter per decision.
    """

    def __init__(self, rules, hooks=None) -> None:
        self._hooks = hooks
        self._points: dict = {point: [] for point in DECISION_POINTS}
        self.decision_counts: dict = {}
        for rule in rules:
            cls = POLICY_RULES.get(getattr(rule, "kind", None))
            if cls is None or type(rule) is not cls:
                raise PolicyError(
                    f"not a registered policy rule: {rule!r}"
                    f" (known kinds: {sorted(POLICY_RULES)})"
                )
            point = getattr(rule, "point", None)
            if point not in self._points:
                raise PolicyError(
                    f"policy rule {rule.kind!r} declares unknown decision"
                    f" point {point!r} (accepts: {list(DECISION_POINTS)})"
                )
            self._points[point].append((rule, {}))
        self.only_default_rekey = all(
            isinstance(rule, SessionExpiryRekey)
            for rule, _ in self._points["rekey"]
        )

    def has_rules(self, point: str) -> bool:
        """Whether any rule is installed at ``point``."""
        if point not in self._points:
            raise PolicyError(
                f"unknown decision point {point!r}"
                f" (accepts: {list(DECISION_POINTS)})"
            )
        return bool(self._points[point])

    def decide(self, point: str, state: FleetState) -> Decision | None:
        """First-match evaluation of ``point``'s rules against ``state``."""
        for rule, memory in self._points[point]:
            decision = rule.evaluate(state, memory)
            if decision is None:
                continue
            decision = replace(decision, rule=rule.kind, point=point)
            self._validate(decision, state, rule)
            key = (point, rule.kind)
            self.decision_counts[key] = self.decision_counts.get(key, 0) + 1
            if self._hooks is not None:
                self._hooks.policy_decision(
                    state.now_ms,
                    point,
                    rule.kind,
                    state.vehicle.index,
                    decision.target_shard,
                )
            return decision
        return None

    @staticmethod
    def _validate(decision: Decision, state: FleetState, rule) -> None:
        if decision.point in ("assign", "migrate", "failover"):
            target = decision.target_shard
            if target is None or not (0 <= target < len(state.shards)):
                raise PolicyError(
                    f"policy rule {rule.kind!r} chose out-of-range shard"
                    f" {target!r} at the {decision.point!r} point"
                    f" ({len(state.shards)} shards)"
                )
            if state.shards[target].failed:
                raise PolicyError(
                    f"policy rule {rule.kind!r} chose failed shard {target}"
                    f" at the {decision.point!r} point"
                )
            if decision.point == "migrate" and target == state.vehicle.shard:
                raise PolicyError(
                    f"policy rule {rule.kind!r} asked to migrate"
                    f" {state.vehicle.name} onto its own shard {target}"
                )
        elif not decision.rekey:
            raise PolicyError(
                f"policy rule {rule.kind!r} fired at the rekey point"
                " without requesting a rekey"
            )
