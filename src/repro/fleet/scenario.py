"""Declarative workload scenarios for fleet orchestration runs.

Every fleet run before this module drove one workload shape: enrollment
arrivals jittered uniformly over ``[0, arrival_spread_ms)`` and every
vehicle sending the same record stream.  A :class:`Scenario` makes the
workload itself declarative — a deterministic, JSON-round-trippable spec
composed of three pluggable parts:

* **Arrival processes** — how the fleet wakes up: :class:`UniformArrivals`
  (the bit-compatible legacy jitter), :class:`PoissonArrivals` (open-road
  memoryless arrivals), :class:`BurstArrivals` (rush-hour waves) and
  :class:`DiurnalArrivals` (a sinusoidal intensity ramp inverted by
  bisection).
* **Behavior profiles** (:class:`BehaviorProfile`) — how vehicles behave
  once enrolled: commuter cadences (per-vehicle record budgets, send
  intervals and re-key budgets), platoon convoys (members arrive together
  and pin to one shard) and roamers (periodically live-migrate across
  shards).
* **Adversarial injections** — the :mod:`repro.security.attacks` threat
  model lifted to fleet scale: :class:`ReplayStorm` (captured application
  records replayed at a gateway), :class:`StaleCertFlood` (retired
  chain-epoch certificates presented after a gateway rejoin) and
  :class:`CaQueueFlood` (forged enrollment requests flooding a shard CA's
  issuance queue).  Every injection runs real cryptography against the
  live fleet and is accounted as attempts vs. rejections — successful
  forgeries would be visible (and are asserted zero by the benchmarks).

:func:`compile_scenario` turns a spec plus a
:class:`~repro.fleet.FleetConfig` into a :class:`ScenarioSchedule` — the
fully resolved per-vehicle arrival times, profile assignments, convoy
pins and time-ordered injections the
:class:`~repro.fleet.FleetOrchestrator` consumes.  Compilation is a pure
function of ``(spec, seed)``: equal inputs produce bit-identical
schedules (:meth:`ScenarioSchedule.digest`), and the legacy uniform
spec reproduces the pre-scenario orchestrator's arrival stream — and
therefore its :class:`~repro.fleet.stats.FleetStats` digests — bit for
bit.

Specs round-trip through JSON losslessly: ``load_scenario(s.as_dict())
== s`` and ``load_scenario(json.dumps(s.as_dict())) == s``.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass, field, fields

from ..errors import ScenarioError
from ..primitives import sha256
from .policy import POLICY_RULES, load_policy, policy_dict

__all__ = [
    "ARRIVAL_KINDS",
    "BehaviorProfile",
    "BurstArrivals",
    "CaQueueFlood",
    "CompiledProfile",
    "DiurnalArrivals",
    "INJECTION_KINDS",
    "NAMED_SCENARIOS",
    "PoissonArrivals",
    "ReplayStorm",
    "Scenario",
    "ScenarioSchedule",
    "StaleCertFlood",
    "UniformArrivals",
    "compile_scenario",
    "get_scenario",
    "load_scenario",
]


def _seed_rng(seed: bytes, label: bytes) -> random.Random:
    """A deterministic PRNG stream derived from the master seed."""
    return random.Random(int.from_bytes(sha256(seed + label), "big"))


def _require(condition: bool, message: str) -> None:
    """Raise a :class:`~repro.errors.ScenarioError` unless ``condition``."""
    if not condition:
        raise ScenarioError(message)


# -- arrival processes ---------------------------------------------------------


@dataclass(frozen=True)
class UniformArrivals:
    """Legacy arrivals: uniform jitter over ``[0, spread_ms)``.

    With ``spread_ms=None`` the spread comes from
    ``config.arrival_spread_ms`` and the compiled arrival stream is
    *bit-identical* to the pre-scenario orchestrator's (same DRBG
    derivation, same draw order) — the parity anchor every golden digest
    relies on.

    Attributes:
        spread_ms: jitter window in simulated ms (``None`` = take the
            config's ``arrival_spread_ms``).
    """

    spread_ms: float | None = None

    kind = "uniform"

    def __post_init__(self) -> None:
        if self.spread_ms is not None:
            _require(
                self.spread_ms >= 0.0,
                f"uniform arrivals need spread_ms >= 0, got {self.spread_ms}",
            )

    def compile(self, config) -> tuple[float, ...]:
        """Per-vehicle arrival times, replaying the legacy jitter stream."""
        spread = (
            config.arrival_spread_ms
            if self.spread_ms is None
            else self.spread_ms
        )
        rng = _seed_rng(config.seed, b"|arrivals")
        return tuple(
            rng.uniform(0.0, spread) for _ in range(config.n_vehicles)
        )


@dataclass(frozen=True)
class PoissonArrivals:
    """Memoryless arrivals: exponential inter-arrival gaps.

    Attributes:
        rate_per_s: mean arrivals per simulated second (> 0).
    """

    rate_per_s: float = 50.0

    kind = "poisson"

    def __post_init__(self) -> None:
        _require(
            self.rate_per_s > 0.0,
            f"poisson arrivals need rate_per_s > 0, got {self.rate_per_s}",
        )

    def compile(self, config) -> tuple[float, ...]:
        """Cumulative exponential gaps drawn from the scenario stream."""
        rng = _seed_rng(config.seed, b"|scenario|poisson")
        rate_per_ms = self.rate_per_s / 1000.0
        now = 0.0
        times = []
        for _ in range(config.n_vehicles):
            now += rng.expovariate(rate_per_ms)
            times.append(now)
        return tuple(times)


@dataclass(frozen=True)
class BurstArrivals:
    """Rush-hour waves: the fleet arrives in ``waves`` separated bursts.

    Vehicles are split into contiguous index blocks, one per wave; wave
    ``w`` arrives jittered uniformly over
    ``[w * wave_interval_ms, w * wave_interval_ms + wave_spread_ms)``.
    ``wave_spread_ms`` must not exceed ``wave_interval_ms`` — overlapping
    waves are a spec error, not a silently merged workload.

    Attributes:
        waves: number of bursts (>= 1).
        wave_interval_ms: spacing between wave starts (> 0).
        wave_spread_ms: jitter window within a wave (>= 0).
    """

    waves: int = 3
    wave_interval_ms: float = 500.0
    wave_spread_ms: float = 100.0

    kind = "burst"

    def __post_init__(self) -> None:
        _require(
            self.waves >= 1, f"burst arrivals need waves >= 1, got {self.waves}"
        )
        _require(
            self.wave_interval_ms > 0.0,
            f"burst arrivals need wave_interval_ms > 0,"
            f" got {self.wave_interval_ms}",
        )
        _require(
            self.wave_spread_ms >= 0.0,
            f"burst arrivals need wave_spread_ms >= 0,"
            f" got {self.wave_spread_ms}",
        )
        _require(
            self.wave_spread_ms <= self.wave_interval_ms,
            f"burst waves overlap: wave_spread_ms {self.wave_spread_ms} >"
            f" wave_interval_ms {self.wave_interval_ms}; shrink the spread"
            " or widen the interval",
        )

    def compile(self, config) -> tuple[float, ...]:
        """Wave start plus in-wave jitter, vehicles blocked by index."""
        rng = _seed_rng(config.seed, b"|scenario|burst")
        n = config.n_vehicles
        times = []
        for index in range(n):
            wave = index * self.waves // n
            times.append(
                wave * self.wave_interval_ms
                + rng.uniform(0.0, self.wave_spread_ms)
            )
        return tuple(times)


@dataclass(frozen=True)
class DiurnalArrivals:
    """A diurnal intensity ramp over one period.

    Arrival intensity follows ``1 + amplitude * sin(2*pi*t/T - pi/2)`` —
    a trough at ``t=0`` ramping to a peak at ``T/2`` and back.  Each
    vehicle's arrival is the inverse CDF of a uniform draw, solved by
    bisection (deterministic; no closed form needed).

    Attributes:
        period_ms: the period ``T`` the whole fleet arrives within (> 0).
        amplitude: peak-to-mean intensity swing in ``[0, 1]``.
    """

    period_ms: float = 2_000.0
    amplitude: float = 0.9

    kind = "diurnal"

    def __post_init__(self) -> None:
        _require(
            self.period_ms > 0.0,
            f"diurnal arrivals need period_ms > 0, got {self.period_ms}",
        )
        _require(
            0.0 <= self.amplitude <= 1.0,
            f"diurnal amplitude must be within [0, 1], got {self.amplitude}",
        )

    def _cdf(self, t: float) -> float:
        period = self.period_ms
        return (
            t
            - (self.amplitude * period / (2.0 * math.pi))
            * math.sin(2.0 * math.pi * t / period)
        ) / period

    def compile(self, config) -> tuple[float, ...]:
        """Inverse-CDF sampling of the sinusoidal intensity by bisection."""
        rng = _seed_rng(config.seed, b"|scenario|diurnal")
        times = []
        for _ in range(config.n_vehicles):
            u = rng.random()
            lo, hi = 0.0, self.period_ms
            for _ in range(60):  # ~1e-18 relative precision, deterministic
                mid = (lo + hi) / 2.0
                if self._cdf(mid) < u:
                    lo = mid
                else:
                    hi = mid
            times.append((lo + hi) / 2.0)
        return tuple(times)


#: Registry of arrival-process kinds for JSON deserialization.
ARRIVAL_KINDS = {
    cls.kind: cls
    for cls in (UniformArrivals, PoissonArrivals, BurstArrivals, DiurnalArrivals)
}


# -- behavior profiles ---------------------------------------------------------


@dataclass(frozen=True)
class BehaviorProfile:
    """How a block of vehicles behaves once enrolled.

    Profiles claim vehicles in spec order from index 0 (the first profile
    takes the first ``count`` vehicles and so on); unclaimed vehicles keep
    the config-default behavior.  ``None`` fields inherit the config.

    Attributes:
        name: profile identity (unique within a scenario; shows up in the
            stats' profile counters).
        count: vehicles this profile claims (>= 1).
        records_per_vehicle: per-vehicle record budget override.
        send_interval_ms: per-vehicle record spacing override.
        max_records: per-vehicle session-key record budget override — a
            commuter re-key cadence tighter (or looser) than the fleet
            policy, enforced by the vehicle-side session manager.
        roam_every: live-migrate to the next alive shard after every
            ``roam_every`` delivered records (a roamer; needs >= 2 shards
            to ever fire).
        convoy_size: partition the claimed vehicles into convoys of this
            size; each convoy arrives together (at its leader's compiled
            time) and pins to one seed-derived shard (a platoon).
    """

    name: str
    count: int
    records_per_vehicle: int | None = None
    send_interval_ms: float | None = None
    max_records: int | None = None
    roam_every: int | None = None
    convoy_size: int | None = None

    kind = "profile"

    def __post_init__(self) -> None:
        _require(bool(self.name), "behavior profiles need a non-empty name")
        _require(
            self.count >= 1,
            f"profile {self.name!r} must claim at least one vehicle,"
            f" got count={self.count}",
        )
        for attr in ("records_per_vehicle", "max_records", "roam_every"):
            value = getattr(self, attr)
            _require(
                value is None or value >= 1,
                f"profile {self.name!r} needs {attr} >= 1, got {value}",
            )
        _require(
            self.send_interval_ms is None or self.send_interval_ms > 0.0,
            f"profile {self.name!r} needs send_interval_ms > 0,"
            f" got {self.send_interval_ms}",
        )
        _require(
            self.convoy_size is None or self.convoy_size >= 2,
            f"profile {self.name!r} needs convoy_size >= 2,"
            f" got {self.convoy_size}",
        )
        _require(
            self.roam_every is None or self.convoy_size is None,
            f"profile {self.name!r} cannot both roam and pin to a convoy"
            " shard; split it into two profiles",
        )


@dataclass(frozen=True)
class CompiledProfile:
    """A profile resolved against one config (all ``None`` filled in)."""

    name: str
    records_per_vehicle: int
    send_interval_ms: float
    max_records: int | None
    roam_every: int | None

    @classmethod
    def resolve(cls, profile: BehaviorProfile, config) -> "CompiledProfile":
        """Fill a profile's inherited fields from the fleet config."""
        return cls(
            name=profile.name,
            records_per_vehicle=(
                config.records_per_vehicle
                if profile.records_per_vehicle is None
                else profile.records_per_vehicle
            ),
            send_interval_ms=(
                config.send_interval_ms
                if profile.send_interval_ms is None
                else profile.send_interval_ms
            ),
            max_records=profile.max_records,
            roam_every=profile.roam_every,
        )


# -- adversarial injections ----------------------------------------------------


@dataclass(frozen=True)
class ReplayStorm:
    """Replay captured application records against a gateway shard.

    The adversary records vehicle→gateway wire traffic (the orchestrator
    keeps the capture when this injection is scheduled) and at ``at_ms``
    replays the freshest captured record of each victim back at the
    target gateway, cycling victims until ``replays`` attempts are spent.
    Every attempt runs the real record-channel verification on the
    gateway (priced on the shard's resource — the storm costs the
    gateway real time) and must be rejected: sequence-window enforcement
    kills verbatim replays, and any re-keyed session fails the MAC
    outright.

    Attributes:
        at_ms: injection time on the simulated clock (>= 0).
        replays: total replay attempts (>= 1).
        target_shard: gateway shard under attack.
    """

    at_ms: float
    replays: int = 32
    target_shard: int = 0

    kind = "replay-storm"

    def __post_init__(self) -> None:
        _require(self.at_ms >= 0.0, f"at_ms must be >= 0, got {self.at_ms}")
        _require(
            self.replays >= 1, f"replays must be >= 1, got {self.replays}"
        )
        _require(
            self.target_shard >= 0,
            f"target_shard must be >= 0, got {self.target_shard}",
        )

    def validate(self, config) -> None:
        """Compile-time checks against the fleet config."""
        _require(
            self.target_shard < config.shards,
            f"replay-storm targets shard {self.target_shard} but the fleet"
            f" has {config.shards} shard(s)",
        )


@dataclass(frozen=True)
class StaleCertFlood:
    """Present retired chain-epoch certificates after a gateway rejoin.

    When the failed shard rejoins, the trust store retires its old
    epoch's intermediate; this injection models adversaries (or simply
    stale peers) flooding the rejoined gateway with certificates issued
    by the dead CA.  Each attempt runs the full chain validation
    (:meth:`~repro.ecqv.TrustStore.resolve_and_validate`, priced on the
    gateway) and must be rejected with the chain-epoch error.

    Attributes:
        at_ms: injection time; must land *after* the configured rejoin.
        attempts: validation attempts (>= 1), cycling the captured
            stale certificates.
    """

    at_ms: float
    attempts: int = 32

    kind = "stale-cert-flood"

    def __post_init__(self) -> None:
        _require(self.at_ms >= 0.0, f"at_ms must be >= 0, got {self.at_ms}")
        _require(
            self.attempts >= 1, f"attempts must be >= 1, got {self.attempts}"
        )

    def validate(self, config) -> None:
        """Compile-time checks against the fleet config."""
        _require(
            config.shard_rejoin_at_ms is not None,
            "stale-cert-flood needs a gateway rejoin to roll the chain"
            " epoch: set shard_fail_at_ms and shard_rejoin_at_ms on the"
            " FleetConfig",
        )
        _require(
            self.at_ms > config.shard_rejoin_at_ms,
            f"stale-cert-flood at {self.at_ms} ms fires before the rejoin"
            f" at {config.shard_rejoin_at_ms} ms; there is no retired"
            " epoch to flood yet",
        )


@dataclass(frozen=True)
class CaQueueFlood:
    """Flood a shard CA's issuance queue with forged enrollment requests.

    At ``at_ms`` the adversary enqueues ``requests`` certificate
    requests whose proof-of-possession signatures are forged (signed
    with scalars unrelated to the request points).  The CA screens every
    flood request with a real batched ECDSA verification — work that
    contends the shard's resource and delays legitimate enrollments (the
    DoS under measurement) — and rejects each one; an accepted forgery
    would count as a success and is asserted zero by the benchmarks.

    Attributes:
        at_ms: injection time on the simulated clock (>= 0).
        requests: forged requests enqueued (>= 1).
        target_shard: CA shard under attack.
    """

    at_ms: float
    requests: int = 64
    target_shard: int = 0

    kind = "ca-flood"

    def __post_init__(self) -> None:
        _require(self.at_ms >= 0.0, f"at_ms must be >= 0, got {self.at_ms}")
        _require(
            self.requests >= 1, f"requests must be >= 1, got {self.requests}"
        )
        _require(
            self.target_shard >= 0,
            f"target_shard must be >= 0, got {self.target_shard}",
        )

    def validate(self, config) -> None:
        """Compile-time checks against the fleet config."""
        _require(
            self.target_shard < config.shards,
            f"ca-flood targets shard {self.target_shard} but the fleet"
            f" has {config.shards} shard(s)",
        )
        _require(
            config.authenticate_requests,
            "ca-flood needs authenticate_requests=True on the FleetConfig:"
            " without proof-of-possession screening the CA would issue"
            " certificates to the flooder instead of rejecting it",
        )


#: Registry of injection kinds for JSON deserialization.
INJECTION_KINDS = {
    cls.kind: cls for cls in (ReplayStorm, StaleCertFlood, CaQueueFlood)
}


# -- the scenario spec ---------------------------------------------------------


def _spec_dict(spec) -> dict:
    """Render one kinded spec dataclass as a JSON-ready mapping."""
    data = {"kind": spec.kind}
    for spec_field in fields(spec):
        data[spec_field.name] = getattr(spec, spec_field.name)
    return data


def _load_kinded(data: dict, registry: dict, what: str):
    """Rebuild a kinded spec dataclass from its mapping."""
    payload = dict(data)
    kind = payload.pop("kind", None)
    if kind not in registry:
        raise ScenarioError(
            f"unknown {what} kind {kind!r}; have {sorted(registry)}"
        )
    return registry[kind](**payload)


@dataclass(frozen=True)
class Scenario:
    """One declarative workload: arrivals + behavior profiles + injections.

    Attributes:
        name: scenario identity (reported in benchmark records).
        arrivals: the arrival process (defaults to the legacy uniform
            jitter, making ``Scenario(name=...)`` a bit-compatible
            wrapper of the pre-scenario workload).
        profiles: behavior profiles, claiming vehicles in order.
        injections: adversarial injections, any order (compiled sorted
            by time).
        policies: policy rules shipped with the workload
            (:mod:`repro.fleet.policy` specs).  They run *ahead of* the
            bundle :attr:`~repro.fleet.FleetConfig.policy` selects, so a
            scenario can pre-empt the default strategies at shared
            decision points.
        description: free-text note (round-trips, not hashed).

    Examples:
        Specs validate eagerly, round-trip losslessly through JSON, and
        compile deterministically against a
        :class:`~repro.fleet.FleetConfig`::

            >>> from repro.fleet import (PoissonArrivals, ReplayStorm,
            ...     Scenario, load_scenario)
            >>> spec = Scenario(
            ...     name="docs-demo",
            ...     arrivals=PoissonArrivals(rate_per_s=40.0),
            ...     injections=(ReplayStorm(at_ms=2_000.0, replays=8),),
            ... )
            >>> load_scenario(spec.as_json()) == spec
            True
            >>> Scenario(name="")
            Traceback (most recent call last):
                ...
            repro.errors.ScenarioError: scenarios need a non-empty name

        Equal ``(spec, config)`` pairs always compile to the identical
        schedule::

            >>> from repro.fleet import FleetConfig, compile_scenario
            >>> config = FleetConfig(n_vehicles=4, seed=b"docs")
            >>> a = compile_scenario(spec, config)
            >>> b = compile_scenario(spec, config)
            >>> a.arrival_ms == b.arrival_ms
            True
    """

    name: str
    arrivals: object = field(default_factory=UniformArrivals)
    profiles: tuple[BehaviorProfile, ...] = ()
    injections: tuple[object, ...] = ()
    policies: tuple[object, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        _require(bool(self.name), "scenarios need a non-empty name")
        object.__setattr__(self, "profiles", tuple(self.profiles))
        object.__setattr__(self, "injections", tuple(self.injections))
        object.__setattr__(self, "policies", tuple(self.policies))
        for policy in self.policies:
            _require(
                type(policy) in POLICY_RULES.values(),
                f"policies must be one of {sorted(POLICY_RULES)},"
                f" got {type(policy).__name__}",
            )
        _require(
            type(self.arrivals) in ARRIVAL_KINDS.values(),
            f"arrivals must be one of {sorted(ARRIVAL_KINDS)},"
            f" got {type(self.arrivals).__name__}",
        )
        for injection in self.injections:
            _require(
                type(injection) in INJECTION_KINDS.values(),
                f"injections must be one of {sorted(INJECTION_KINDS)},"
                f" got {type(injection).__name__}",
            )
        names = [profile.name for profile in self.profiles]
        _require(
            len(names) == len(set(names)),
            f"duplicate profile names in scenario {self.name!r}: {names}",
        )

    def as_dict(self) -> dict:
        """JSON-ready mapping; ``load_scenario`` inverts it losslessly."""
        return {
            "name": self.name,
            "description": self.description,
            "arrivals": _spec_dict(self.arrivals),
            "profiles": [_spec_dict(profile) for profile in self.profiles],
            "injections": [
                _spec_dict(injection) for injection in self.injections
            ],
            "policies": [policy_dict(policy) for policy in self.policies],
        }

    def as_json(self) -> str:
        """Canonical JSON rendering of :meth:`as_dict`."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)


def load_scenario(data: "dict | str") -> Scenario:
    """Rebuild a :class:`Scenario` from :meth:`Scenario.as_dict` output.

    Accepts the mapping itself or its JSON string.  Unknown kinds and
    unknown fields raise :class:`~repro.errors.ScenarioError` /
    ``TypeError`` rather than being silently dropped.
    """
    if isinstance(data, str):
        data = json.loads(data)
    if not isinstance(data, dict):
        raise ScenarioError(
            f"scenario payload must be a mapping, got {type(data).__name__}"
        )
    return Scenario(
        name=data.get("name", ""),
        description=data.get("description", ""),
        arrivals=_load_kinded(
            data.get("arrivals", {"kind": "uniform"}),
            ARRIVAL_KINDS,
            "arrival process",
        ),
        profiles=tuple(
            _load_kinded(
                payload, {BehaviorProfile.kind: BehaviorProfile}, "profile"
            )
            for payload in data.get("profiles", [])
        ),
        injections=tuple(
            _load_kinded(payload, INJECTION_KINDS, "injection")
            for payload in data.get("injections", [])
        ),
        policies=tuple(
            load_policy(payload) for payload in data.get("policies", [])
        ),
    )


# -- compilation ---------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioSchedule:
    """A scenario fully resolved against one fleet configuration.

    Everything the orchestrator consumes: one arrival time, profile name
    and optional shard pin per vehicle index, the resolved profiles, the
    convoy partition, and the injections in firing order.

    Attributes:
        scenario: the source spec.
        arrival_ms: per-vehicle arrival times.
        profile_of: per-vehicle profile name (``""`` = config default).
        profiles: resolved profiles keyed by name.
        convoys: platoon convoys as tuples of member indices.
        pinned_shard: per-vehicle shard pin (``None`` = policy-assigned).
        injections: injections sorted by ``at_ms`` (stable).
    """

    scenario: Scenario
    arrival_ms: tuple[float, ...]
    profile_of: tuple[str, ...]
    profiles: dict
    convoys: tuple[tuple[int, ...], ...]
    pinned_shard: tuple[int | None, ...]
    injections: tuple[object, ...]

    @property
    def profile_counts(self) -> tuple[tuple[str, int], ...]:
        """Vehicles actually assigned per profile, in spec order."""
        return tuple(
            (profile.name, self.profile_of.count(profile.name))
            for profile in self.scenario.profiles
        )

    @property
    def is_adversarial(self) -> bool:
        """True when the schedule carries at least one injection."""
        return bool(self.injections)

    def profile_for(self, index: int) -> "CompiledProfile | None":
        """The resolved profile of vehicle ``index`` (None = default)."""
        name = self.profile_of[index]
        return self.profiles[name] if name else None

    def digest(self) -> str:
        """Stable hash of the fully compiled schedule.

        Equal ``(spec, seed, fleet shape)`` must compile to equal
        digests — the determinism contract the property tests pin.
        """
        segments = [
            f"scenario={self.scenario.name}",
            "arr=" + ",".join(f"{t:.9f}" for t in self.arrival_ms),
            "prof=" + ",".join(self.profile_of),
            "pins="
            + ",".join(
                "-" if pin is None else str(pin)
                for pin in self.pinned_shard
            ),
            "convoys="
            + ";".join(
                ",".join(str(i) for i in convoy) for convoy in self.convoys
            ),
            "inj="
            + ";".join(
                json.dumps(_spec_dict(injection), sort_keys=True)
                for injection in self.injections
            ),
        ]
        if self.scenario.policies:
            # Extension segment: hashed only when the scenario ships
            # policy rules, so every pre-policy schedule digest is
            # preserved bit-for-bit.
            segments.append(
                "pol="
                + ";".join(
                    json.dumps(policy_dict(policy), sort_keys=True)
                    for policy in self.scenario.policies
                )
            )
        canonical = "|".join(segments)
        return sha256(canonical.encode()).hex()


def compile_scenario(scenario: Scenario, config) -> ScenarioSchedule:
    """Resolve a scenario against a config into an executable schedule.

    Pure and deterministic: arrival processes draw from seed-derived
    PRNG streams, profiles claim contiguous vehicle index blocks in spec
    order, platoon convoys synchronize on their leader's arrival and pin
    to a seed-derived shard, and injections are validated against the
    config (actionable :class:`~repro.errors.ScenarioError` on any
    mismatch) then sorted by firing time.
    """
    claimed = sum(profile.count for profile in scenario.profiles)
    _require(
        claimed <= config.n_vehicles,
        f"scenario {scenario.name!r} profiles claim {claimed} vehicles but"
        f" the fleet has {config.n_vehicles}; shrink the profile counts or"
        " grow n_vehicles",
    )
    for profile in scenario.profiles:
        if profile.roam_every is not None:
            _require(
                config.shards >= 2,
                f"profile {profile.name!r} roams across shards but the"
                f" fleet has {config.shards} shard(s)",
            )
        if profile.convoy_size is not None:
            _require(
                profile.count % profile.convoy_size == 0,
                f"profile {profile.name!r} claims {profile.count} vehicles"
                f" but convoys ride {profile.convoy_size} abreast; a"
                f" trailing partial convoy would be a singleton — make"
                " count a multiple of convoy_size",
            )
    for injection in scenario.injections:
        injection.validate(config)

    arrival = list(scenario.arrivals.compile(config))
    profile_of = [""] * config.n_vehicles
    pinned: list[int | None] = [None] * config.n_vehicles
    convoys: list[tuple[int, ...]] = []
    cursor = 0
    for profile in scenario.profiles:
        members = list(range(cursor, cursor + profile.count))
        cursor += profile.count
        for index in members:
            profile_of[index] = profile.name
        if profile.convoy_size is not None:
            for start in range(0, len(members), profile.convoy_size):
                convoy = tuple(members[start : start + profile.convoy_size])
                convoys.append(convoy)
                leader = convoy[0]
                # The convoy rides together: everyone takes the leader's
                # compiled arrival, and the whole convoy pins to one
                # seed-derived shard so its members share a gateway.
                shard = int.from_bytes(
                    sha256(config.seed + b"|scenario|convoy|%d" % leader),
                    "big",
                ) % config.shards
                for index in convoy:
                    arrival[index] = arrival[leader]
                    pinned[index] = shard
    return ScenarioSchedule(
        scenario=scenario,
        arrival_ms=tuple(arrival),
        profile_of=tuple(profile_of),
        profiles={
            profile.name: CompiledProfile.resolve(profile, config)
            for profile in scenario.profiles
        },
        convoys=tuple(convoys),
        pinned_shard=tuple(pinned),
        injections=tuple(
            sorted(scenario.injections, key=lambda inj: (inj.at_ms, inj.kind))
        ),
    )


# -- named scenarios -----------------------------------------------------------


def _legacy_uniform() -> Scenario:
    return Scenario(
        name="legacy-uniform",
        description=(
            "The pre-scenario workload: uniform arrival jitter, default"
            " behavior, no adversary.  Bit-identical to running without a"
            " scenario at all."
        ),
    )


def _rush_hour() -> Scenario:
    return Scenario(
        name="rush-hour",
        description="Four commute waves slamming the CAs in bursts.",
        arrivals=BurstArrivals(
            waves=4, wave_interval_ms=400.0, wave_spread_ms=120.0
        ),
    )


def _poisson_open_road() -> Scenario:
    return Scenario(
        name="poisson-open-road",
        description="Memoryless highway arrivals at a steady rate.",
        arrivals=PoissonArrivals(rate_per_s=120.0),
    )


def _diurnal_commute() -> Scenario:
    return Scenario(
        name="diurnal-commute",
        description=(
            "A diurnal intensity ramp; a commuter block re-keys on a"
            " tighter record budget and chats faster than the fleet"
            " default."
        ),
        arrivals=DiurnalArrivals(period_ms=2_000.0, amplitude=0.9),
        profiles=(
            BehaviorProfile(
                name="commuter",
                count=8,
                send_interval_ms=15.0,
                max_records=3,
            ),
        ),
    )


def _platoon_convoys() -> Scenario:
    return Scenario(
        name="platoon-convoys",
        description=(
            "Half the fleet rides in 4-vehicle convoys that arrive"
            " together and pin to one gateway shard each."
        ),
        arrivals=BurstArrivals(
            waves=3, wave_interval_ms=500.0, wave_spread_ms=150.0
        ),
        profiles=(
            BehaviorProfile(name="platoon", count=16, convoy_size=4),
        ),
    )


def _roaming_rebalance() -> Scenario:
    return Scenario(
        name="roaming-rebalance",
        description=(
            "A roamer block live-migrates to the next shard every few"
            " records, churning the shard placement mid-run."
        ),
        profiles=(
            BehaviorProfile(name="roamer", count=8, roam_every=4),
        ),
    )


def _replay_storm() -> Scenario:
    return Scenario(
        name="replay-storm",
        description=(
            "Adversarial: captured application records replayed at a"
            " gateway mid-run; every replay must die on the record"
            " channel's sequence/MAC checks."
        ),
        injections=(
            ReplayStorm(at_ms=4_000.0, replays=48, target_shard=0),
        ),
    )


def _stale_cert_flood() -> Scenario:
    return Scenario(
        name="stale-cert-flood",
        description=(
            "Adversarial: after the failed gateway rejoins at the next"
            " chain epoch, the old epoch's certificates are flooded at"
            " the trust store; every validation must raise the"
            " chain-epoch rejection."
        ),
        injections=(StaleCertFlood(at_ms=6_500.0, attempts=48),),
    )


def _ca_flood() -> Scenario:
    return Scenario(
        name="ca-flood",
        description=(
            "Adversarial: forged enrollment requests flood the CA queue"
            " during the arrival storm; batched proof-of-possession"
            " verification rejects all of them while legitimate"
            " enrollments pay the queue-time cost."
        ),
        injections=(
            CaQueueFlood(at_ms=50.0, requests=96, target_shard=0),
        ),
    )


#: Named scenario registry: name -> zero-argument factory.
NAMED_SCENARIOS = {
    "legacy-uniform": _legacy_uniform,
    "rush-hour": _rush_hour,
    "poisson-open-road": _poisson_open_road,
    "diurnal-commute": _diurnal_commute,
    "platoon-convoys": _platoon_convoys,
    "roaming-rebalance": _roaming_rebalance,
    "replay-storm": _replay_storm,
    "stale-cert-flood": _stale_cert_flood,
    "ca-flood": _ca_flood,
}


def get_scenario(name: str) -> Scenario:
    """Build a named scenario; actionable error on unknown names.

    Examples:
        The registry covers six workload shapes and three adversarial
        scenarios (see the README table)::

            >>> from repro.fleet import NAMED_SCENARIOS, get_scenario
            >>> len(NAMED_SCENARIOS)
            9
            >>> get_scenario("rush-hour").name
            'rush-hour'
            >>> bool(get_scenario("replay-storm").injections)
            True
            >>> get_scenario("gridlock")
            Traceback (most recent call last):
                ...
            repro.errors.ScenarioError: unknown scenario 'gridlock'; have ['ca-flood', 'diurnal-commute', 'legacy-uniform', 'platoon-convoys', 'poisson-open-road', 'replay-storm', 'roaming-rebalance', 'rush-hour', 'stale-cert-flood']
    """
    try:
        factory = NAMED_SCENARIOS[name]
    except KeyError:
        raise ScenarioError(
            f"unknown scenario {name!r}; have {sorted(NAMED_SCENARIOS)}"
        ) from None
    return factory()
