"""Per-vehicle state and lifecycle timeline for fleet orchestration.

Each vehicle is one constrained device working through the paper's full
session-key lifecycle: ECQV enrollment at the CA, dynamic key derivation
with the gateway, then managed application traffic until the session-key
policy forces a re-key.  The timeline records every lifecycle transition
with its discrete-event timestamp, giving per-vehicle observability on
top of the fleet-wide aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ecqv import EcqvCredential
from ..protocols import SessionManager
from ..protocols.pool import EphemeralPool


@dataclass(frozen=True)
class TimelineEvent:
    """One lifecycle transition of a vehicle (times in simulator ms)."""

    time_ms: float
    kind: str  # "arrive" | "request" | "certified" | "enrolled"
    #          # | "established" | "rekey" | "done"
    #          # | "requeue" | "handover" (gateway failover)
    #          # | "v2v-established" | "v2v-rekey" | "v2v-done"
    #          # | "migrate" | "re-enroll" | "re-enrolled" (fleet churn)
    detail: str = ""


@dataclass
class Vehicle:
    """One fleet member's mutable orchestration state.

    ``shard`` tracks the gateway shard currently serving the vehicle; it
    changes on failover handover and on live migration.  The ``v2v_*``
    fields exist when the topology paired this vehicle with another fleet
    member for direct (non-hub) sessions.  ``migrations`` counts live
    cross-shard moves, ``re_enrollments`` the fresh certificates the
    vehicle pulled after a migration or a chain-epoch roll.
    """

    name: str
    index: int
    device_id: bytes
    arrival_ms: float
    events: list[TimelineEvent] = field(default_factory=list)
    credential: EcqvCredential | None = None
    manager: SessionManager | None = None
    pool: EphemeralPool | None = None
    enrolled_at: float | None = None
    records_sent: int = 0
    sessions: int = 0
    rekeys: int = 0
    generation: int = 0
    done_at: float | None = None
    session_counter: int = 0
    shard: int = 0
    handovers: int = 0
    migrations: int = 0
    re_enrollments: int = 0
    migrating: bool = False
    re_enrolling: bool = False
    v2v_peer_index: int | None = None
    v2v_sessions: int = 0
    v2v_records_sent: int = 0
    v2v_done_at: float | None = None
    # -- scenario extensions (defaults = config-driven behavior) -------------
    #: Behavior-profile name assigned by the compiled scenario ("" = none).
    profile: str = ""
    #: Shard this vehicle is pinned to (platoon convoys); ``None`` lets the
    #: topology's assignment policy place it.
    pinned_shard: int | None = None
    #: Record count at the last roamer-triggered migration (guards against
    #: re-triggering on the same record after the post-migrate establish).
    last_roam_records: int = -1
    #: Roamer-profile migrations this vehicle initiated.
    roams: int = 0

    def log(self, time_ms: float, kind: str, detail: str = "") -> None:
        """Append one timeline event."""
        self.events.append(TimelineEvent(time_ms, kind, detail))

    @property
    def enrolled(self) -> bool:
        """True once the ECQV credential is held and key-confirmed."""
        return self.credential is not None

    def timeline(self) -> str:
        """Human-readable per-vehicle lifecycle rendering."""
        rows = [
            f"{event.time_ms:12.3f} ms  {event.kind:<12s} {event.detail}"
            for event in self.events
        ]
        return "\n".join([f"vehicle {self.name}:"] + rows)
